//! Cross-crate equivalence: every SpMSpV implementation in the workspace
//! computes the same product, across matrix classes, tile sizes,
//! extraction thresholds and vector sparsities.

use tilespmspv::baselines::{bucket_spmspv, tile_spmv, BsrMatrix};
use tilespmspv::core::spmspv::{tile_spmspv_with, KernelChoice, SpMSpVOptions};
use tilespmspv::prelude::*;
use tilespmspv::sparse::gen::{
    banded, geometric_graph, grid2d, random_sparse_vector, rmat, uniform_random, RmatConfig,
};
use tilespmspv::sparse::reference::{spmspv_col, spmspv_row};
use tilespmspv::sparse::CsrMatrix;

fn matrix_zoo() -> Vec<(&'static str, CsrMatrix<f64>)> {
    vec![
        ("banded", banded(300, 9, 0.7, 1).to_csr()),
        ("uniform", uniform_random(257, 257, 3000, 2).to_csr()),
        ("grid", grid2d(18, 17).to_csr()),
        ("geometric", geometric_graph(400, 5.0, 3).to_csr()),
        ("rmat", rmat(RmatConfig::new(8, 6), 4).to_csr()),
        ("rect-wide", uniform_random(100, 500, 2500, 5).to_csr()),
        ("rect-tall", uniform_random(500, 90, 2500, 6).to_csr()),
        ("empty", CsrMatrix::zeros(64, 64)),
    ]
}

#[test]
fn all_implementations_agree() {
    for (name, a) in matrix_zoo() {
        let csc = a.to_csc();
        for sparsity in [0.0, 0.003, 0.05, 0.4] {
            let x = random_sparse_vector(a.ncols(), sparsity, 1);
            let reference = spmspv_row(&a, &x).unwrap();

            // The two serial directions.
            let col = spmspv_col(&csc, &x).unwrap();
            assert!(
                col.max_abs_diff(&reference) < 1e-9,
                "{name}@{sparsity}: column reference diverged"
            );

            // CombBLAS bucket.
            let (bucket, _) = bucket_spmspv(&csc, &x).unwrap();
            assert!(
                bucket.max_abs_diff(&reference) < 1e-9,
                "{name}@{sparsity}: bucket diverged"
            );

            // Dense-vector algorithms.
            let xd = x.to_dense();
            for block in [4usize, 16] {
                let bsr = BsrMatrix::from_csr(&a, block).unwrap();
                let (y, _) = bsr.bsrmv(&xd);
                let dense_ref = reference.to_dense();
                for i in 0..a.nrows() {
                    assert!(
                        (y[i] - dense_ref[i]).abs() < 1e-9,
                        "{name}@{sparsity}: bsr-{block} row {i}"
                    );
                }
            }

            // Tiled kernels across sizes, thresholds and kernel choices.
            for ts in TileSize::all() {
                for threshold in [0usize, 3] {
                    let cfg = TileConfig {
                        tile_size: ts,
                        extract_threshold: threshold,
                        ..Default::default()
                    };
                    let tiled = TileMatrix::from_csr(&a, cfg).unwrap();

                    let (spmv_y, _) = tile_spmv(&tiled, &xd);
                    let dense_ref = reference.to_dense();
                    for i in 0..a.nrows() {
                        assert!(
                            (spmv_y[i] - dense_ref[i]).abs() < 1e-9,
                            "{name}@{sparsity}: tile_spmv {ts}/{threshold} row {i}"
                        );
                    }

                    for choice in [KernelChoice::RowTile, KernelChoice::ColTile] {
                        let opts = SpMSpVOptions {
                            kernel: choice,
                            ..Default::default()
                        };
                        let (y, _) = tile_spmspv_with(&tiled, &x, opts).unwrap();
                        assert!(
                            y.max_abs_diff(&reference) < 1e-9,
                            "{name}@{sparsity}: tile {ts}/{threshold}/{choice:?} diverged"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn tiled_format_is_lossless_for_the_zoo() {
    for (name, a) in matrix_zoo() {
        for ts in TileSize::all() {
            for threshold in [0usize, 2, 8] {
                let cfg = TileConfig {
                    tile_size: ts,
                    extract_threshold: threshold,
                    ..Default::default()
                };
                let tiled = TileMatrix::from_csr(&a, cfg).unwrap();
                assert_eq!(tiled.to_csr(), a, "{name} {ts} threshold {threshold}");
            }
        }
    }
}

#[test]
fn report_flops_track_vector_density() {
    let a = banded(2000, 10, 0.9, 7).to_csr();
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    let sparse_x = random_sparse_vector(2000, 0.001, 1);
    let dense_x = random_sparse_vector(2000, 0.5, 1);
    let (_, sparse_r) = tile_spmspv_with(&tiled, &sparse_x, SpMSpVOptions::default()).unwrap();
    let (_, dense_r) = tile_spmspv_with(&tiled, &dense_x, SpMSpVOptions::default()).unwrap();
    assert!(
        sparse_r.stats.flops * 10 < dense_r.stats.flops,
        "flops should grow with vector density: {} vs {}",
        sparse_r.stats.flops,
        dense_r.stats.flops
    );
}
