//! TileSpMV (Niu et al., IPDPS '21) — the tiled SpMV the paper extends.
//!
//! Same tiled storage as TileSpMSpV, but the input vector is dense: every
//! stored tile is processed unconditionally, and the whole vector is read.
//! Against TileSpMSpV this isolates exactly the paper's contribution — the
//! `x_ptr` empty-tile skip — which is why Fig. 6's TileSpMV bars converge
//! with TileSpMSpV at dense vectors and fall behind as the vector sparsifies.

use tsv_core::tile::TileMatrix;
use tsv_simt::grid::launch_over_chunks;
use tsv_simt::stats::KernelStats;

/// Computes `y = A x` with a dense `x`; returns `y` (length `nrows`) and
/// the work counters. One-shot wrapper over [`tile_spmv_into`].
pub fn tile_spmv(a: &TileMatrix, x: &[f64]) -> (Vec<f64>, KernelStats) {
    let mut y_padded = Vec::new();
    let stats = tile_spmv_into(a, x, &mut y_padded);
    y_padded.truncate(a.nrows());
    (y_padded, stats)
}

/// Computes `y = A x` into a caller-owned padded buffer, reusing its
/// allocation across calls. `y_padded` is resized to `m_tiles * nt` and
/// zeroed; on return the first `nrows` entries hold the product. Iterative
/// workloads (PageRank power iteration) call this in a loop so no output
/// vector is allocated per step.
pub fn tile_spmv_into(a: &TileMatrix, x: &[f64], y_padded: &mut Vec<f64>) -> KernelStats {
    assert_eq!(
        x.len(),
        a.ncols(),
        "dense vector length must equal the matrix column count"
    );
    let nt = a.nt();
    y_padded.clear();
    y_padded.resize(a.m_tiles() * nt, 0.0);
    if a.m_tiles() == 0 {
        return KernelStats::default();
    }

    let mut stats = launch_over_chunks("baseline/tilespmv", y_padded, nt, |warp, y_tile| {
        let rt = warp.warp_id;
        for t in a.row_tile_range(rt) {
            let view = a.tile(t);
            let base_c = view.col_tile * nt;
            // Every tile is read — there is no emptiness test to make.
            warp.stats.read(4);
            warp.stats.read(nt * 8); // the dense x slice for this tile

            if let Some(d) = view.dense {
                warp.stats.read(nt * nt * 8);
                for lr in 0..nt {
                    let row = &d[lr * nt..(lr + 1) * nt];
                    let mut sum = 0.0;
                    for (lc, v) in row.iter().enumerate() {
                        let c = base_c + lc;
                        if c < a.ncols() {
                            sum += v * x[c];
                        }
                    }
                    y_tile[lr] += sum;
                }
                warp.stats.flop(2 * nt * nt);
                warp.stats.lane_steps += ((nt * nt) / 32) as u64 * 32;
            } else {
                warp.stats.read((nt + 1) * 2 + view.nnz() * (1 + 8));
                for (lr, y_slot) in y_tile.iter_mut().enumerate() {
                    let (cols, vals) = view.row(lr);
                    if cols.is_empty() {
                        continue;
                    }
                    let mut sum = 0.0;
                    for (&lc, &v) in cols.iter().zip(vals) {
                        let c = base_c + lc as usize;
                        sum += v * x[c];
                    }
                    warp.stats.flop(2 * cols.len());
                    *y_slot += sum;
                }
                warp.stats.lane_steps += view.nnz().div_ceil(2) as u64;
            }
        }
        warp.stats.write(nt * 8);
    });

    // The extracted entries still participate (same hybrid as TileSpMSpV).
    for (r, c, v) in a.extra().iter() {
        y_padded[r] += v * x[c];
    }
    stats.read(a.extra().nnz() * 16);
    stats.flop(2 * a.extra().nnz());

    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_core::tile::{TileConfig, TileSize};
    use tsv_sparse::gen::{banded, random_sparse_vector, uniform_random};
    use tsv_sparse::reference::spmv;

    #[test]
    fn matches_reference_spmv() {
        let a = banded(150, 7, 0.8, 2).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let x: Vec<f64> = (0..150).map(|i| f64::from(i % 5) - 2.0).collect();
        let (y, stats) = tile_spmv(&tm, &x);
        let expect = spmv(&a, &x).unwrap();
        for i in 0..150 {
            assert!((y[i] - expect[i]).abs() < 1e-9, "row {i}");
        }
        assert!(stats.flops > 0);
    }

    #[test]
    fn matches_reference_with_extraction() {
        let a = uniform_random(200, 200, 800, 6).to_csr();
        let cfg = TileConfig {
            tile_size: TileSize::S16,
            extract_threshold: 3,
            ..Default::default()
        };
        let tm = TileMatrix::from_csr(&a, cfg).unwrap();
        assert!(tm.extra().nnz() > 0);
        let x = random_sparse_vector(200, 0.5, 1).to_dense();
        let (y, _) = tile_spmv(&tm, &x);
        let expect = spmv(&a, &x).unwrap();
        for i in 0..200 {
            assert!((y[i] - expect[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn work_is_independent_of_vector_sparsity() {
        // The defining *disadvantage* vs. TileSpMSpV: same bytes touched
        // whether x is dense or nearly empty.
        let a = banded(1000, 8, 0.9, 3).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let dense = random_sparse_vector(1000, 0.9, 1).to_dense();
        let sparse = random_sparse_vector(1000, 0.001, 1).to_dense();
        let (_, s1) = tile_spmv(&tm, &dense);
        let (_, s2) = tile_spmv(&tm, &sparse);
        assert_eq!(s1.gmem_read_bytes, s2.gmem_read_bytes);
    }

    #[test]
    fn into_variant_reuses_buffer_and_matches_wrapper() {
        let a = banded(300, 5, 0.8, 4).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let x: Vec<f64> = (0..300).map(|i| f64::from(i % 7)).collect();
        let (expect, expect_stats) = tile_spmv(&tm, &x);

        let mut buf = Vec::new();
        let s1 = tile_spmv_into(&tm, &x, &mut buf);
        assert_eq!(&buf[..tm.nrows()], &expect[..]);
        assert_eq!(s1, expect_stats);
        let ptr = buf.as_ptr() as usize;
        let cap = buf.capacity();
        let s2 = tile_spmv_into(&tm, &x, &mut buf);
        assert_eq!(&buf[..tm.nrows()], &expect[..]);
        assert_eq!(s2, expect_stats);
        assert_eq!((buf.as_ptr() as usize, buf.capacity()), (ptr, cap));
    }

    #[test]
    #[should_panic(expected = "length")]
    fn wrong_vector_length_panics() {
        let a = banded(64, 3, 1.0, 1).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        tile_spmv(&tm, &[0.0; 10]);
    }
}
