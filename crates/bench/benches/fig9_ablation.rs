//! Figure 9 bench: step-wise stacking of the three directional kernels
//! (K1, K1+K2, K1+K2+K3) on representative matrices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsv_bench::workloads::bfs_source;
use tsv_core::bfs::{tile_bfs, BfsOptions, KernelSet, TileBfsGraph};
use tsv_sparse::suite::{representative, SuiteScale};

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for e in representative(SuiteScale::Tiny) {
        let a = e.matrix;
        let src = bfs_source(&a);
        let g = TileBfsGraph::from_csr(&a).unwrap();

        for (label, set) in [
            ("K1", KernelSet::PushCscOnly),
            ("K1+K2", KernelSet::PushOnly),
            ("K1+K2+K3", KernelSet::All),
        ] {
            let opts = BfsOptions {
                kernels: set,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, e.name), &e.name, |b, _| {
                b.iter(|| black_box(tile_bfs(&g, src, opts).unwrap()));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
