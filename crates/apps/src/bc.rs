//! Brandes betweenness centrality over TileBFS level structure.
//!
//! For each source, TileBFS provides the level sets; the forward sweep
//! counts shortest paths level by level (each level is a masked SpMSpV
//! over (+, ×)), and the backward sweep accumulates dependencies. Exact
//! betweenness uses every vertex as a source; `betweenness` takes a
//! source list so callers can sample (the standard approximation).

use rayon::prelude::*;
use std::sync::Arc;
use tsv_core::bfs::{tile_bfs_traced, BfsOptions, BfsWorkspace, TileBfsGraph};
use tsv_simt::trace::{self, Tracer};
use tsv_sparse::{CsrMatrix, SparseError};

/// Computes (optionally sampled) betweenness centrality of an undirected
/// graph. `sources` lists the Brandes roots; pass all vertices for the
/// exact measure. Scores follow the undirected convention (each path
/// counted once).
pub fn betweenness(a: &CsrMatrix<f64>, sources: &[usize]) -> Result<Vec<f64>, SparseError> {
    betweenness_traced(a, sources, None)
}

/// [`betweenness`] with run telemetry: the tiling phase and every BFS
/// iteration of every Brandes pass land on `tracer` when one is attached
/// and enabled. The rayon workers share the tracer — its ring is
/// thread-safe and each worker gets its own track in the Chrome export.
pub fn betweenness_traced(
    a: &CsrMatrix<f64>,
    sources: &[usize],
    tracer: Option<Arc<Tracer>>,
) -> Result<Vec<f64>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let tr = tracer.as_deref();
    let t0 = trace::start(tr);
    let g = TileBfsGraph::from_csr(a)?;
    trace::phase(tr, "bc/tiling", t0);
    for &s in sources {
        if s >= n {
            return Err(SparseError::IndexOutOfBounds {
                row: s,
                col: 0,
                nrows: n,
                ncols: 1,
            });
        }
    }

    // One Brandes pass per source, in parallel, summed at the end. Sources
    // are chunked so each worker amortizes one BFS workspace over its whole
    // share instead of allocating frontiers per source.
    let chunk = sources
        .len()
        .div_ceil(rayon::current_num_threads().max(1))
        .max(1);
    let partials: Vec<Vec<f64>> = sources
        .par_chunks(chunk)
        .map(|part| {
            let mut bc = vec![0.0f64; n];
            let mut ws = BfsWorkspace::new();
            for &s in part {
                brandes_pass(a, &g, s, &mut ws, &mut bc, tr);
            }
            bc
        })
        .collect();

    let mut bc = vec![0.0f64; n];
    for p in partials {
        for (acc, v) in bc.iter_mut().zip(p) {
            *acc += v;
        }
    }
    // Each undirected path is found from both endpoints' perspectives.
    for v in &mut bc {
        *v /= 2.0;
    }
    Ok(bc)
}

/// Like [`betweenness`], but computes the per-source level sets in batches
/// of 64 with [`tsv_apps_msbfs`](crate::msbfs::multi_source_bfs), so every
/// adjacency read during the BFS phase is shared by up to 64 traversals.
/// Results are identical to [`betweenness`].
pub fn betweenness_msbfs(a: &CsrMatrix<f64>, sources: &[usize]) -> Result<Vec<f64>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let mut bc = vec![0.0f64; n];
    for batch in sources.chunks(64) {
        let levels = crate::msbfs::multi_source_bfs(a, batch)?;
        let partials: Vec<Vec<f64>> = batch
            .par_iter()
            .zip(&levels)
            .map(|(&s, ls)| {
                let mut acc = vec![0.0f64; n];
                brandes_sweeps(a, s, ls, &mut acc);
                acc
            })
            .collect();
        for p in partials {
            for (acc, v) in bc.iter_mut().zip(p) {
                *acc += v;
            }
        }
    }
    for v in &mut bc {
        *v /= 2.0;
    }
    Ok(bc)
}

fn brandes_pass(
    a: &CsrMatrix<f64>,
    g: &TileBfsGraph,
    source: usize,
    ws: &mut BfsWorkspace,
    bc: &mut [f64],
    tracer: Option<&Tracer>,
) {
    let levels = match tile_bfs_traced(g, source, BfsOptions::default(), ws, tracer) {
        Ok(r) => r.levels,
        Err(_) => return,
    };
    brandes_sweeps(a, source, &levels, bc);
}

/// Forward path counting and backward dependency accumulation over a
/// precomputed level assignment.
fn brandes_sweeps(a: &CsrMatrix<f64>, source: usize, levels: &[i32], bc: &mut [f64]) {
    let n = a.nrows();
    let max_level = *levels.iter().max().unwrap_or(&0);
    if max_level <= 0 {
        return;
    }
    let mut by_level: Vec<Vec<u32>> = vec![Vec::new(); (max_level + 1) as usize];
    for (v, &l) in levels.iter().enumerate() {
        if l >= 0 {
            by_level[l as usize].push(v as u32);
        }
    }

    // Forward: path counts.
    let mut sigma = vec![0.0f64; n];
    sigma[source] = 1.0;
    for (l, level_set) in by_level.iter().enumerate().skip(1) {
        for &v in level_set {
            let v = v as usize;
            let (nbrs, _) = a.row(v);
            let mut s = 0.0;
            for &u in nbrs {
                if levels[u as usize] == l as i32 - 1 {
                    s += sigma[u as usize];
                }
            }
            sigma[v] = s;
        }
    }

    // Backward: dependency accumulation.
    let mut delta = vec![0.0f64; n];
    for l in (1..=max_level as usize).rev() {
        for &v in &by_level[l] {
            let v = v as usize;
            let (nbrs, _) = a.row(v);
            for &u in nbrs {
                let u = u as usize;
                if levels[u] == l as i32 - 1 && sigma[v] > 0.0 {
                    delta[u] += sigma[u] / sigma[v] * (1.0 + delta[v]);
                }
            }
            if v != source {
                bc[v] += delta[v];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::CooMatrix;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr()
    }

    fn exact(a: &CsrMatrix<f64>) -> Vec<f64> {
        let all: Vec<usize> = (0..a.nrows()).collect();
        betweenness(a, &all).unwrap()
    }

    #[test]
    fn path_graph_has_known_values() {
        // Path 0-1-2-3-4: bc(v) for interior v at distance k from the end
        // is (k)(n-1-k) pairs routed through it.
        let a = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let bc = exact(&a);
        assert_eq!(bc, vec![0.0, 3.0, 4.0, 3.0, 0.0]);
    }

    #[test]
    fn star_center_carries_everything() {
        // Star with center 0 and 4 leaves: every leaf pair routes through
        // the center: C(4,2) = 6 pairs.
        let a = undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let bc = exact(&a);
        assert_eq!(bc[0], 6.0);
        assert!(bc[1..].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn cycle_is_uniform() {
        let a = undirected(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]);
        let bc = exact(&a);
        for &v in &bc {
            assert!((v - bc[0]).abs() < 1e-12, "cycle must be uniform: {bc:?}");
        }
        assert!(bc[0] > 0.0);
    }

    #[test]
    fn split_paths_share_credit() {
        // Two disjoint 2-hop routes between 0 and 3: each midpoint gets
        // half a pair from (0,3) plus its own adjacent pairs' paths.
        let a = undirected(4, &[(0, 1), (1, 3), (0, 2), (2, 3)]);
        let bc = exact(&a);
        assert!((bc[1] - 0.5).abs() < 1e-12, "{bc:?}");
        assert!((bc[2] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_subset_of_sources_is_partial() {
        let a = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let partial = betweenness(&a, &[0]).unwrap();
        let full = exact(&a);
        for (p, f) in partial.iter().zip(&full) {
            assert!(p <= f, "sampled {p} exceeds exact {f}");
        }
    }

    #[test]
    fn msbfs_variant_matches_per_source_variant() {
        let a = tsv_sparse::gen::geometric_graph(300, 4.5, 7).to_csr();
        let sources: Vec<usize> = (0..80).map(|i| (i * 3) % 300).collect();
        let plain = betweenness(&a, &sources).unwrap();
        let batched = betweenness_msbfs(&a, &sources).unwrap();
        for (v, (p, b)) in plain.iter().zip(&batched).enumerate() {
            assert!((p - b).abs() < 1e-9, "vertex {v}: {p} vs {b}");
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = undirected(4, &[(0, 1)]);
        assert!(betweenness(&a, &[9]).is_err());
        let mut rect = CooMatrix::new(2, 3);
        rect.push(0, 2, 1.0);
        assert!(betweenness(&rect.to_csr(), &[0]).is_err());
    }
}
