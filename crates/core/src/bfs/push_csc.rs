//! Push-CSC (K1): the vector-driven push kernel of Algorithm 5.
//!
//! One warp per frontier *nonzero* (vertex), exactly as the paper assigns
//! work: the warp's lanes take the stored tiles of the vertex's column
//! tile, each reading the one column word of its tile, masking visited
//! vertices (`sum = (NOT (mask AND col)) AND col`, line 4), and merging
//! into the output frontier with `atomicOr`.
//!
//! Work scales with `frontier nonzeros × tiles per column` — vanishing for
//! very sparse frontiers (the policy's `< 0.01` rule) but re-reading each
//! tile once per frontier bit in its column tile when the frontier is
//! dense, which is the regime Push-CSR (K2) takes over.

use crate::tile::{BitFrontier, BitTileMatrix};
use tsv_simt::atomic::AtomicWords;
use tsv_simt::backend::{Backend, ModelBackend};
use tsv_simt::sanitize::{self, Sanitizer};
use tsv_simt::stats::KernelStats;

/// Expands the frontier `x` one level; returns the newly discovered
/// vertices (`y & !m`) and the kernel's work counters.
pub fn push_csc(a: &BitTileMatrix, x: &BitFrontier, m: &BitFrontier) -> (BitFrontier, KernelStats) {
    let mut frontier = Vec::new();
    let y = AtomicWords::zeroed(a.n_tiles());
    let stats = push_csc_into(&ModelBackend, a, x, m, &mut frontier, &y, None);
    let mut out = BitFrontier::new(x.len(), a.nt());
    out.set_words(y.into_vec());
    (out, stats)
}

/// Workspace form of [`push_csc`]: the frontier vertex list is built in the
/// caller's buffer and the output words accumulate into a caller-owned
/// (pre-zeroed) [`AtomicWords`], so an iterative driver allocates nothing.
pub fn push_csc_into<B: Backend>(
    backend: &B,
    a: &BitTileMatrix,
    x: &BitFrontier,
    m: &BitFrontier,
    frontier: &mut Vec<u32>,
    y: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats {
    let nt = a.nt();
    let word_bytes = nt / 8;

    // The frontier nonzeros, each one warp's work unit (Algorithm 5's
    // "32 threads process the nonzeros of a vector").
    frontier.clear();
    frontier.extend(x.iter_vertices().map(|v| v as u32));

    backend.launch(frontier.len(), |warp| {
        let v = frontier[warp.warp_id] as usize;
        let ct = v / nt;
        let lc = v % nt;
        warp.stats.read(4); // the frontier entry

        // Lanes stripe over the stored tiles of this column tile; each
        // reads column word `lc` of its tile. The tile-id list is
        // contiguous, but the single column word per tile and the mask
        // word are random accesses.
        for t in a.col_tile_range(ct) {
            let rt = a.csc_row_tile(t);
            let col_word = a.csc_tile_words(t)[lc];
            warp.stats.read(4);
            warp.stats.read_scattered(word_bytes);
            // sum = (NOT (mask AND col)) AND col  ==  col & !mask
            let sum = col_word & !m.word(rt);
            warp.stats.read_scattered(word_bytes);
            warp.stats.bitop(2);
            sanitize::read(san, "mask", rt, warp.warp_id, 0);
            if sum != 0 {
                // Different frontier vertices may merge into the same
                // output word — the atomicOr is what mediates them.
                y.fetch_or(rt, sum);
                warp.stats.atomic(1);
                sanitize::rmw(san, "y-frontier", rt, warp.warp_id, 0);
            }
        }
        let tiles = a.col_tile_range(ct).len();
        warp.stats.lane_steps += tiles.div_ceil(32) as u64 * 32;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::CooMatrix;

    fn chain_graph(n: usize) -> BitTileMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        BitTileMatrix::from_csr(&coo.to_csr(), 32, 0).unwrap()
    }

    #[test]
    fn expands_one_level() {
        let a = chain_graph(100);
        let mut x = BitFrontier::new(100, 32);
        x.set(50);
        let mut m = x.clone();
        let (y, stats) = push_csc(&a, &x, &m);
        assert_eq!(y.iter_vertices().collect::<Vec<_>>(), vec![49, 51]);
        assert!(stats.atomics > 0);
        assert_eq!(stats.warps, 1);

        // Second level from {49, 51}.
        m.or_assign(&y);
        let (y2, _) = push_csc(&a, &y, &m);
        assert_eq!(y2.iter_vertices().collect::<Vec<_>>(), vec![48, 52]);
    }

    #[test]
    fn visited_vertices_are_masked_out() {
        let a = chain_graph(64);
        let mut x = BitFrontier::new(64, 32);
        x.set(10);
        let mut m = x.clone();
        m.set(9); // pretend 9 already visited
        let (y, _) = push_csc(&a, &x, &m);
        assert_eq!(y.iter_vertices().collect::<Vec<_>>(), vec![11]);
    }

    #[test]
    fn cross_tile_edges_propagate() {
        // Edge spanning tiles 0 and 1 (vertices 31, 32 with nt=32).
        let a = chain_graph(64);
        let mut x = BitFrontier::new(64, 32);
        x.set(31);
        let m = x.clone();
        let (y, _) = push_csc(&a, &x, &m);
        assert_eq!(y.iter_vertices().collect::<Vec<_>>(), vec![30, 32]);
    }

    #[test]
    fn empty_frontier_is_free() {
        let a = chain_graph(64);
        let x = BitFrontier::new(64, 32);
        let m = BitFrontier::new(64, 32);
        let (y, stats) = push_csc(&a, &x, &m);
        assert!(y.none());
        assert_eq!(stats.warps, 0);
        assert_eq!(stats.gmem_bytes(), 0);
    }
}
