//! End-to-end tests of the `tsv` binary.

use std::process::Command;

fn tsv(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_tsv"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn info_on_generated_matrix() {
    let (stdout, _, ok) = tsv(&["info", "gen:banded:300:5"]);
    assert!(ok);
    assert!(stdout.contains("300 x 300"));
    assert!(stdout.contains("tiles 16"));
}

#[test]
fn spmspv_on_suite_matrix() {
    let (stdout, _, ok) = tsv(&["spmspv", "suite:cavity23:tiny", "--sparsity", "0.05"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("kernel:"));
}

#[test]
fn bfs_all_algorithms() {
    for algo in ["tile", "gunrock", "gswitch", "enterprise"] {
        let (stdout, stderr, ok) = tsv(&["bfs", "gen:geometric:500:4", "--algo", algo]);
        assert!(ok, "{algo}: {stderr}");
        assert!(stdout.contains("reached:"), "{algo}: {stdout}");
    }
}

#[test]
fn convert_roundtrips_through_mtx() {
    let dir = std::env::temp_dir().join("tsv_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.mtx");
    let path_str = path.to_str().unwrap();

    let (stdout, _, ok) = tsv(&["convert", "gen:banded:64:3", path_str]);
    assert!(ok, "{stdout}");

    let (stdout, _, ok) = tsv(&["info", path_str]);
    assert!(ok);
    assert!(stdout.contains("64 x 64"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn trace_out_flag_emits_documents() {
    let dir = std::env::temp_dir().join("tsv_cli_trace_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("bfs.trace.json");
    let (stdout, stderr, ok) = tsv(&[
        "bfs",
        "gen:banded:300:5",
        "--trace-out",
        trace.to_str().unwrap(),
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("trace:"), "{stdout}");
    let doc = std::fs::read_to_string(&trace).unwrap();
    assert!(doc.contains("traceEvents"), "chrome trace envelope");
    let summary = std::fs::read_to_string(dir.join("bfs.trace.summary.json")).unwrap();
    assert!(summary.contains("\"schema_version\""), "{summary}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metrics_out_and_report_flags_emit_documents() {
    let dir = std::env::temp_dir().join("tsv_cli_metrics_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let prom = dir.join("spmspv.prom");
    let (stdout, stderr, ok) = tsv(&[
        "spmspv",
        "gen:banded:300:5",
        "--sparsity",
        "0.05",
        "--metrics-out",
        prom.to_str().unwrap(),
        "--report",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("utilization:"), "{stdout}");
    assert!(stdout.contains("bound"), "{stdout}");
    assert!(stdout.contains("metrics:"), "{stdout}");
    let text = std::fs::read_to_string(&prom).unwrap();
    assert!(
        text.contains("# TYPE tsv_simt_launches_total counter"),
        "{text}"
    );
    assert!(text.contains("tsv_engine_phase_ns"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn errors_are_reported_with_nonzero_exit() {
    let (_, stderr, ok) = tsv(&["info", "/no/such/file.mtx"]);
    assert!(!ok);
    assert!(stderr.contains("error"));

    let (_, stderr, ok) = tsv(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (_, stderr, ok) = tsv(&["bfs", "gen:banded:100:3", "--algo", "nope"]);
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = tsv(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage:"));
}
