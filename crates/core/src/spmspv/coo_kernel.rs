//! The hybrid pass over extracted very-sparse entries (§3.2.1).
//!
//! Entries that were pulled out of the tiled structure live in a
//! column-indexed COO side matrix. The pass is *vector-driven*, like the
//! GSwitch traversal the paper delegates this part to: only the columns
//! matching `x`'s nonzeros are touched, each entry contributing one
//! multiply merged into `y` with an atomic add. Warps process contiguous
//! chunks of the frontier's nonzero list.

use super::generic::coo_kernel_semiring;
use crate::semiring::PlusTimes;
use crate::tile::TileMatrix;
use tsv_simt::atomic::AtomicWords;
use tsv_simt::stats::KernelStats;
use tsv_sparse::SparseVector;

/// Accumulates `extra * x` into the padded `y` buffer; returns the updated
/// buffer and the pass's work counters.
///
/// This is the one-shot `(+, ×)` form of
/// [`coo_kernel_semiring`](super::generic::coo_kernel_semiring); traversal
/// and counters are identical, with the atomic merge replaced by the
/// generic kernel's deterministic warp-ordered reduction.
pub fn coo_kernel(
    a: &TileMatrix,
    x: &SparseVector<f64>,
    mut y_padded: Vec<f64>,
) -> (Vec<f64>, KernelStats) {
    let touched = AtomicWords::zeroed(a.m_tiles().div_ceil(64));
    let mut contribs = Vec::new();
    let stats = coo_kernel_semiring::<PlusTimes, _>(
        &tsv_simt::backend::ModelBackend,
        a,
        x,
        &mut y_padded,
        &mut contribs,
        &touched,
        None,
    );
    (y_padded, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{TileConfig, TileSize};
    use tsv_sparse::CooMatrix;

    /// A matrix whose tiles all hold a single entry, so everything is
    /// extracted at threshold 2.
    fn all_extracted() -> TileMatrix {
        let mut coo = CooMatrix::new(64, 64);
        coo.push(1, 2, 3.0);
        coo.push(1, 20, 10.0);
        coo.push(40, 2, -1.0);
        let cfg = TileConfig {
            tile_size: TileSize::S16,
            extract_threshold: 2,
            ..Default::default()
        };
        TileMatrix::from_csr(&coo.to_csr(), cfg).unwrap()
    }

    #[test]
    fn accumulates_products_into_existing_y() {
        let a = all_extracted();
        assert_eq!(a.extra().nnz(), 3);
        let x = SparseVector::from_entries(64, vec![(2, 2.0)]).unwrap();
        let y0 = vec![0.5; 64];
        let (y, stats) = coo_kernel(&a, &x, y0);
        assert!((y[1] - (0.5 + 6.0)).abs() < 1e-12);
        assert!((y[40] - (0.5 - 2.0)).abs() < 1e-12);
        assert_eq!(y[0], 0.5);
        // Column 20 is never touched: only the two column-2 entries count.
        assert_eq!(stats.flops, 4);
        assert_eq!(stats.atomics, 2);
    }

    #[test]
    fn untouched_columns_cost_nothing() {
        let a = all_extracted();
        let x = SparseVector::from_entries(64, vec![(50, 1.0)]).unwrap();
        let (y, stats) = coo_kernel(&a, &x, vec![0.0; 64]);
        assert!(y.iter().all(|&v| v == 0.0));
        assert_eq!(stats.flops, 0);
        // Only the per-nonzero probes, no entry traffic.
        assert_eq!(stats.gmem_read_bytes, 4 + 8 + 8);
    }

    #[test]
    fn empty_inputs_are_free() {
        let a = all_extracted();
        let (y, stats) = coo_kernel(&a, &SparseVector::zeros(64), vec![1.0; 64]);
        assert_eq!(y, vec![1.0; 64]);
        assert_eq!(stats, KernelStats::default());
    }

    #[test]
    fn large_frontiers_split_across_warps() {
        let mut coo = CooMatrix::new(1000, 1000);
        for i in 0..1000 {
            coo.push(i, i, 1.0);
        }
        // A diagonal tile holds 16 entries; threshold 16 extracts them all.
        let cfg = TileConfig {
            tile_size: TileSize::S16,
            extract_threshold: 16,
            ..Default::default()
        };
        let a = TileMatrix::from_csr(&coo.to_csr(), cfg).unwrap();
        assert_eq!(a.extra().nnz(), 1000);
        let x = SparseVector::from_parts(1000, (0..1000).collect(), vec![2.0; 1000]).unwrap();
        let (y, stats) = coo_kernel(&a, &x, vec![0.0; 1008]);
        assert!(y[..1000].iter().all(|&v| v == 2.0));
        assert!(stats.warps > 1);
    }
}
