//! Property-based backend-equivalence tests: on random matrices and
//! frontiers the product must not depend on which execution substrate
//! ran the kernels. The native rayon backend replays the modeled grid's
//! chunk decomposition and merges warp contributions in warp order, so
//! PlusTimes is bit-identical to the model across every kernel × balance
//! combination — and across native thread counts. MinPlus and OrAnd are
//! order-independent, so they agree exactly with the serial oracle on
//! any backend. BFS levels are substrate-independent by the same
//! argument.

mod common;

use proptest::prelude::*;
use tilespmspv::core::exec::{BatchedSpMSpVEngine, BfsEngine, SpMSpVEngine};
use tilespmspv::core::semiring::{spmspv_semiring, MinPlus, OrAnd, PlusTimes};
use tilespmspv::core::spmspv::{Balance, KernelChoice, SpMSpVOptions, SpvFormat};
use tilespmspv::core::tile::{SellConfig, TileConfig};
use tilespmspv::simt::ExecBackend;
use tilespmspv::sparse::gen::random_sparse_vector;
use tilespmspv::sparse::{CooMatrix, CsrMatrix, SparseVector};

/// An arbitrary weighted digraph of up to 140 vertices with finite,
/// sign-mixed weights (duplicate edges summed).
fn arb_weighted() -> impl Strategy<Value = CsrMatrix<f64>> {
    (2usize..140)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, -4.0f64..4.0);
            (Just(n), proptest::collection::vec(edge, 0..400))
        })
        .prop_map(|(n, edges)| {
            let mut coo = CooMatrix::new(n, n);
            for (u, v, w) in edges {
                coo.push(u as usize, v as usize, w);
            }
            coo.sum_duplicates();
            coo.to_csr()
        })
}

fn bits(y: &SparseVector<f64>) -> Vec<u64> {
    y.values().iter().map(|v| v.to_bits()).collect()
}

/// A random matrix paired with a shrinking batch of frontiers over its
/// column space (the generator shared with the conformance-side suites).
fn arb_batched_case() -> impl Strategy<Value = (CsrMatrix<f64>, Vec<SparseVector<f64>>)> {
    arb_weighted().prop_flat_map(|a| {
        let n = a.ncols();
        (Just(a), common::arb_frontier_batch(n))
    })
}

/// One batched multiply through a fresh engine on the given backend.
fn run_batched(
    a: &CsrMatrix<f64>,
    xs: &[SparseVector<f64>],
    opts: SpMSpVOptions,
    backend: ExecBackend,
) -> Vec<(Vec<u32>, Vec<u64>)> {
    let mut engine =
        BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(a, TileConfig::default(), opts).unwrap();
    engine.set_backend(backend);
    let (ys, _) = engine.multiply(xs).unwrap();
    ys.iter().map(|y| (y.indices().to_vec(), bits(y))).collect()
}

/// One SpMSpV through a fresh engine on the given backend.
fn run_on<S: tilespmspv::core::semiring::Semiring>(
    a: &CsrMatrix<S::T>,
    x: &SparseVector<S::T>,
    opts: SpMSpVOptions,
    backend: ExecBackend,
) -> SparseVector<S::T>
where
    S::T: Default,
{
    let mut engine = SpMSpVEngine::<S>::from_csr_with(a, TileConfig::default(), opts).unwrap();
    engine.set_backend(backend);
    engine.multiply(x).unwrap().0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn plus_times_native_is_bitwise_identical_to_model(
        a in arb_weighted(),
        seed in 0u64..1000,
    ) {
        let sparsity = [0.004, 0.05, 0.4][seed as usize % 3];
        let x = random_sparse_vector(a.ncols(), sparsity, seed);
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let opts = SpMSpVOptions { kernel, balance, ..Default::default() };
                let model = run_on::<PlusTimes>(&a, &x, opts, ExecBackend::model());
                let native = run_on::<PlusTimes>(&a, &x, opts, ExecBackend::native(Some(2)));
                prop_assert_eq!(
                    native.indices(), model.indices(),
                    "support: {:?} {:?}", kernel, balance
                );
                prop_assert_eq!(
                    bits(&native), bits(&model),
                    "bits: {:?} {:?}", kernel, balance
                );
            }
        }
    }

    #[test]
    fn plus_times_native_is_thread_count_invariant(
        a in arb_weighted(),
        seed in 0u64..1000,
    ) {
        // The part-order merge makes the fold order a function of the
        // chunk decomposition alone, so growing the pool must not move a
        // single bit.
        let x = random_sparse_vector(a.ncols(), 0.1, seed);
        for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
            let opts = SpMSpVOptions {
                kernel: KernelChoice::RowTile,
                balance,
                ..Default::default()
            };
            let one = run_on::<PlusTimes>(&a, &x, opts, ExecBackend::native(Some(1)));
            for t in [2usize, 4] {
                let many = run_on::<PlusTimes>(&a, &x, opts, ExecBackend::native(Some(t)));
                prop_assert_eq!(many.indices(), one.indices(), "{} threads {:?}", t, balance);
                prop_assert_eq!(bits(&many), bits(&one), "{} threads {:?}", t, balance);
            }
        }
    }

    #[test]
    fn plus_times_sell_is_bitwise_identical_to_tile_csr(
        a in arb_weighted(),
        seed in 0u64..1000,
    ) {
        // The SELL slab bodies fold each row in the same ascending-column
        // order as the tile-CSR walk (the σ-sort permutes only *which
        // lane* a row occupies, undone at emit), so on both substrates the
        // product must match the baseline format bit for bit.
        let sparsity = [0.01, 0.08, 0.35][seed as usize % 3];
        let x = random_sparse_vector(a.ncols(), sparsity, seed);
        let sell = SpvFormat::Sell(SellConfig { c: 8, sigma: 16, ..SellConfig::default() });
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let base = SpMSpVOptions { kernel, balance, ..Default::default() };
                let tilecsr = run_on::<PlusTimes>(&a, &x, base, ExecBackend::model());
                for backend in [ExecBackend::model(), ExecBackend::native(Some(2))] {
                    let opts = SpMSpVOptions { format: sell, ..base };
                    let y = run_on::<PlusTimes>(&a, &x, opts, backend.clone());
                    prop_assert_eq!(
                        y.indices(), tilecsr.indices(),
                        "support: {:?} {:?} {}", kernel, balance, backend.describe()
                    );
                    prop_assert_eq!(
                        bits(&y), bits(&tilecsr),
                        "bits: {:?} {:?} {}", kernel, balance, backend.describe()
                    );
                }
            }
        }
    }

    #[test]
    fn plus_times_sell_is_thread_count_invariant(
        a in arb_weighted(),
        seed in 0u64..1000,
    ) {
        // Both supported lane widths: the chunk decomposition (and with it
        // the merge order) is thread-count independent, and the slab walk
        // is deterministic per tile.
        let x = random_sparse_vector(a.ncols(), 0.1, seed);
        for c in [4usize, 8] {
            let opts = SpMSpVOptions {
                kernel: KernelChoice::RowTile,
                balance: Balance::binned(),
                format: SpvFormat::Sell(SellConfig { c, sigma: 32, ..SellConfig::default() }),
                ..Default::default()
            };
            let one = run_on::<PlusTimes>(&a, &x, opts, ExecBackend::native(Some(1)));
            for t in [2usize, 4] {
                let many = run_on::<PlusTimes>(&a, &x, opts, ExecBackend::native(Some(t)));
                prop_assert_eq!(many.indices(), one.indices(), "C={} {} threads", c, t);
                prop_assert_eq!(bits(&many), bits(&one), "C={} {} threads", c, t);
            }
        }
    }

    #[test]
    fn min_plus_native_matches_the_oracle(a in arb_weighted(), seed in 0u64..1000) {
        // min is order-independent and each term one f64 addition, so the
        // native backend must reproduce the serial oracle exactly.
        let csc = a.to_csc();
        let x = random_sparse_vector(a.ncols(), 0.15, seed);
        let expect = spmspv_semiring::<MinPlus>(&csc, &x).unwrap();
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let opts = SpMSpVOptions { kernel, balance, ..Default::default() };
                let y = run_on::<MinPlus>(&a, &x, opts, ExecBackend::native(Some(2)));
                prop_assert_eq!(&y, &expect, "{:?} {:?}", kernel, balance);
            }
        }
    }

    #[test]
    fn or_and_native_matches_the_oracle(a in arb_weighted(), seed in 0u64..1000) {
        let pattern = CsrMatrix::from_parts(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            vec![true; a.nnz()],
        )
        .unwrap();
        let csc = pattern.to_csc();
        let picks = random_sparse_vector(a.ncols(), 0.1, seed);
        let entries: Vec<(u32, bool)> = picks.indices().iter().map(|&i| (i, true)).collect();
        let x = SparseVector::from_entries(a.ncols(), entries).unwrap();
        let expect = spmspv_semiring::<OrAnd>(&csc, &x).unwrap();
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let opts = SpMSpVOptions { kernel, balance, ..Default::default() };
                let y = run_on::<OrAnd>(&pattern, &x, opts, ExecBackend::native(Some(2)));
                prop_assert_eq!(y.indices(), expect.indices(), "{:?} {:?}", kernel, balance);
            }
        }
    }

    #[test]
    fn batched_plus_times_is_thread_count_invariant(case in arb_batched_case()) {
        // The batched slab inherits the sequential kernel's chunk
        // decomposition (nt·b slots per row tile), so growing the native
        // pool must not move a single bit in any query lane.
        let (a, xs) = case;
        for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
            let opts = SpMSpVOptions {
                kernel: KernelChoice::RowTile,
                balance,
                ..Default::default()
            };
            let one = run_batched(&a, &xs, opts, ExecBackend::native(Some(1)));
            for t in [2usize, 4] {
                let many = run_batched(&a, &xs, opts, ExecBackend::native(Some(t)));
                prop_assert_eq!(&many, &one, "{} threads {:?} B={}", t, balance, xs.len());
            }
        }
    }

    #[test]
    fn batched_model_and_native_agree_and_match_sequential(case in arb_batched_case()) {
        let (a, xs) = case;
        for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
            let opts = SpMSpVOptions {
                kernel: KernelChoice::RowTile,
                balance,
                ..Default::default()
            };
            // The sequential engine's lane-by-lane products are the
            // reference for both substrates' batched passes.
            let want: Vec<(Vec<u32>, Vec<u64>)> = xs
                .iter()
                .map(|x| {
                    let y = run_on::<PlusTimes>(&a, x, opts, ExecBackend::model());
                    (y.indices().to_vec(), bits(&y))
                })
                .collect();
            let model = run_batched(&a, &xs, opts, ExecBackend::model());
            let native = run_batched(&a, &xs, opts, ExecBackend::native(Some(2)));
            prop_assert_eq!(&model, &want, "model batched vs sequential {:?}", balance);
            prop_assert_eq!(&native, &want, "native batched vs sequential {:?}", balance);
        }
    }

    #[test]
    fn bfs_levels_are_backend_invariant(a in arb_weighted(), source in 0usize..140) {
        // The traversal's frontier evolution is a pure function of the
        // graph, so the native pool must reach the same levels in the
        // same number of iterations as the modeled grid.
        let source = source % a.nrows();
        let mut model_engine = BfsEngine::from_csr(&a).unwrap();
        let model = model_engine.run(source).unwrap();
        for t in [1usize, 3] {
            let mut native_engine = BfsEngine::from_csr(&a).unwrap();
            native_engine.set_backend(ExecBackend::native(Some(t)));
            let native = native_engine.run(source).unwrap();
            prop_assert_eq!(&native.levels, &model.levels, "{} threads", t);
            prop_assert_eq!(native.iterations.len(), model.iterations.len(), "{} threads", t);
        }
    }
}
