//! Push-CSR (K2): the matrix-driven push kernel of Algorithm 6.
//!
//! One warp per *row tile*, mirroring the numeric row kernel: the warp
//! scans its stored tiles, skips those whose frontier word is zero, and for
//! the rest tests each row word against the frontier (`A_row AND x != 0`
//! sets the row's output bit). Work scans all stored tiles but each costs
//! O(1) when its frontier word is empty — the right trade once the
//! frontier is dense (the `>= 0.01` rule).
//!
//! **Long row tiles** (§3.4: "for row tiles which is very long, the load
//! will be unbalanced... we introduce the method of splitting long row
//! tiles and use multiple warps to process them"): a row tile with more
//! than [`SPLIT_LEN`] stored tiles is divided into segments, one warp per
//! segment, whose partial words merge into `y` with `atomicOr`. Short row
//! tiles keep the atomic-free single-warp path.

use crate::tile::{BitFrontier, BitTileMatrix};
use tsv_simt::atomic::AtomicWords;
use tsv_simt::backend::{Backend, ModelBackend};
use tsv_simt::sanitize::{self, Sanitizer};
use tsv_simt::stats::KernelStats;

/// Stored tiles per warp segment when a row tile is split.
pub const SPLIT_LEN: usize = 64;

/// Expands the frontier `x` one level; returns the newly discovered
/// vertices (`y & !m`) and the kernel's work counters.
pub fn push_csr(a: &BitTileMatrix, x: &BitFrontier, m: &BitFrontier) -> (BitFrontier, KernelStats) {
    let segments = csr_segments(a);
    let y = AtomicWords::zeroed(a.n_tiles());
    let stats = push_csr_into(&ModelBackend, a, x, m, &segments, &y, None);
    let mut out = BitFrontier::new(x.len(), a.nt());
    out.set_words(y.into_vec());
    (out, stats)
}

/// The kernel's work list: `(row tile, segment)` pairs; short row tiles are
/// a single segment, long ones split every [`SPLIT_LEN`] stored tiles. The
/// list depends only on the matrix, so iterative drivers compute it once.
pub fn csr_segments(a: &BitTileMatrix) -> Vec<(u32, u32)> {
    let mut segments: Vec<(u32, u32)> = Vec::with_capacity(a.n_tiles());
    for rt in 0..a.n_tiles() {
        let len = a.row_tile_range(rt).len();
        let n_seg = len.div_ceil(SPLIT_LEN).max(1);
        for s in 0..n_seg {
            segments.push((rt as u32, s as u32));
        }
    }
    segments
}

/// Workspace form of [`push_csr`]: runs over a precomputed
/// [`csr_segments`] list, accumulating into a caller-owned (pre-zeroed)
/// [`AtomicWords`].
pub fn push_csr_into<B: Backend>(
    backend: &B,
    a: &BitTileMatrix,
    x: &BitFrontier,
    m: &BitFrontier,
    segments: &[(u32, u32)],
    y: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats {
    let nt = a.nt();
    let word_bytes = nt / 8;

    backend.launch(segments.len(), |warp| {
        let (rt, seg) = segments[warp.warp_id];
        let rt = rt as usize;
        let range = a.row_tile_range(rt);
        let split = range.len() > SPLIT_LEN;
        let start = range.start + seg as usize * SPLIT_LEN;
        let end = (start + SPLIT_LEN).min(range.end);

        let mut acc = 0u64;
        for t in start..end {
            let ct = a.csr_col_tile(t);
            let xw = x.word(ct);
            warp.stats.read(4); // col-tile id (streamed)
            warp.stats.read_scattered(word_bytes); // frontier word lookup
            if xw == 0 {
                continue; // line 3 of Algorithm 6
            }
            let words = a.csr_tile_words(t);
            warp.stats.read(nt * word_bytes);
            for (r, &w) in words.iter().enumerate() {
                if w & xw != 0 {
                    acc |= 1u64 << r;
                }
            }
            warp.stats.bitop(nt);
            warp.stats.lane_steps += nt as u64;
        }
        // sum = (NOT (mask AND acc)) AND acc, then one merge per segment.
        let fresh = acc & !m.word(rt);
        warp.stats.read(word_bytes);
        warp.stats.bitop(2);
        sanitize::read(san, "mask", rt, warp.warp_id, 0);
        if fresh != 0 {
            y.fetch_or(rt, fresh);
            if split {
                // Multiple warps share this output word.
                warp.stats.atomic(1);
                sanitize::rmw(san, "y-frontier", rt, warp.warp_id, 0);
            } else {
                // Unsplit row tiles own their output word outright: on the
                // GPU this is an uncontended plain store, and the sanitizer
                // sees a plain store so it would flag any overlap.
                warp.stats.write(word_bytes);
                sanitize::write(san, "y-frontier", rt, warp.warp_id, 0);
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::push_csc::push_csc;
    use tsv_sparse::gen::{banded, rmat, RmatConfig};
    use tsv_sparse::CooMatrix;

    #[test]
    fn matches_push_csc_on_random_frontiers() {
        let a = rmat(RmatConfig::new(8, 4), 6).to_csr();
        let bit = BitTileMatrix::from_csr(&a, 32, 0).unwrap();
        let n = a.nrows();
        let mut x = BitFrontier::new(n, 32);
        for v in [0usize, 7, 100, 200] {
            x.set(v % n);
        }
        let mut m = x.clone();
        m.set(3);
        let (y_csr, _) = push_csr(&bit, &x, &m);
        let (y_csc, _) = push_csc(&bit, &x, &m);
        assert_eq!(y_csr, y_csc);
    }

    #[test]
    fn empty_frontier_words_skip_tiles() {
        let a = banded(128, 3, 1.0, 1).to_csr();
        let bit = BitTileMatrix::from_csr(&a, 32, 0).unwrap();
        let x = BitFrontier::new(128, 32);
        let m = BitFrontier::new(128, 32);
        let (y, stats) = push_csr(&bit, &x, &m);
        assert!(y.none());
        // Only the per-tile header reads, never tile bodies.
        assert_eq!(stats.bitops, 2 * bit.n_tiles() as u64);
    }

    #[test]
    fn dense_frontier_discovers_everything_reachable() {
        let mut coo = CooMatrix::new(40, 40);
        for i in 0..39 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        let bit = BitTileMatrix::from_csr(&coo.to_csr(), 32, 0).unwrap();
        let mut x = BitFrontier::new(40, 32);
        for v in 0..40 {
            x.set(v);
        }
        let m = BitFrontier::new(40, 32);
        let (y, _) = push_csr(&bit, &x, &m);
        // Every vertex has a frontier neighbor.
        assert_eq!(y.count_ones(), 40);
    }

    #[test]
    fn long_row_tiles_split_across_warps() {
        // One row tile connected to > SPLIT_LEN column tiles: vertex 0
        // linked to one vertex in each of 100 tiles (nt = 32).
        let n = 32 * (SPLIT_LEN + 40);
        let mut coo = CooMatrix::new(n, n);
        for ct in 1..(SPLIT_LEN + 40) {
            let v = ct * 32 + 5;
            coo.push(0, v, 1.0);
            coo.push(v, 0, 1.0);
        }
        let bit = BitTileMatrix::from_csr(&coo.to_csr(), 32, 0).unwrap();
        assert!(bit.row_tile_range(0).len() > SPLIT_LEN);

        // Frontier = all the remote vertices; they all push into row tile 0.
        let mut x = BitFrontier::new(n, 32);
        for ct in 1..(SPLIT_LEN + 40) {
            x.set(ct * 32 + 5);
        }
        let m = BitFrontier::new(n, 32);
        let (y, stats) = push_csr(&bit, &x, &m);
        assert!(y.get(0), "vertex 0 must be discovered");
        // The split produced more warps than row tiles with stored tiles.
        let populated: usize = (0..bit.n_tiles())
            .filter(|&rt| !bit.row_tile_range(rt).is_empty())
            .count();
        assert!(
            stats.warps as usize > populated,
            "expected split segments: {} warps for {} populated row tiles",
            stats.warps,
            populated
        );
        assert!(stats.atomics > 0, "split segments merge atomically");

        // And the result matches the unsplit direction.
        let (y_csc, _) = push_csc(&bit, &x, &m);
        assert_eq!(y, y_csc);
    }

    #[test]
    fn short_row_tiles_use_no_atomics() {
        let a = banded(96, 4, 0.9, 5).to_csr();
        let bit = BitTileMatrix::from_csr(&a, 32, 0).unwrap();
        let mut x = BitFrontier::new(96, 32);
        x.set(50);
        let m = x.clone();
        let (_, stats) = push_csr(&bit, &x, &m);
        assert_eq!(stats.atomics, 0);
    }
}
