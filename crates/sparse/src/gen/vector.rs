//! Random sparse vector generation for the Figure 6 sparsity sweep.

use crate::spvec::SparseVector;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates a sparse vector of length `n` with `round(n * sparsity)`
/// nonzero entries at uniformly random positions, values in `(0, 1]`.
///
/// The paper generates the sweep vectors "randomly with random seed 1";
/// `random_sparse_vector(n, s, 1)` reproduces that protocol. At least one
/// entry is produced whenever `sparsity > 0` and `n > 0`, so the very sparse
/// end of the sweep (0.0001 on small matrices) is never empty.
pub fn random_sparse_vector(n: usize, sparsity: f64, seed: u64) -> SparseVector<f64> {
    assert!(
        (0.0..=1.0).contains(&sparsity),
        "sparsity must be in [0, 1]"
    );
    if n == 0 || sparsity == 0.0 {
        return SparseVector::zeros(n);
    }
    let nnz = ((n as f64 * sparsity).round() as usize).clamp(1, n);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut indices: Vec<u32> = if nnz * 3 >= n {
        // Dense request: shuffle all positions and take a prefix.
        let mut all: Vec<u32> = (0..n as u32).collect();
        all.shuffle(&mut rng);
        all.truncate(nnz);
        all
    } else {
        let mut seen = std::collections::HashSet::with_capacity(nnz * 2);
        let mut picked = Vec::with_capacity(nnz);
        while picked.len() < nnz {
            let i = rng.random_range(0..n) as u32;
            if seen.insert(i) {
                picked.push(i);
            }
        }
        picked
    };
    indices.sort_unstable();
    let vals = indices.iter().map(|_| 1.0 - rng.random::<f64>()).collect();
    SparseVector::from_parts(n, indices, vals).expect("generated indices are sorted and bounded")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nnz_matches_sparsity() {
        let v = random_sparse_vector(10_000, 0.01, 1);
        assert_eq!(v.nnz(), 100);
        assert_eq!(v.len(), 10_000);
    }

    #[test]
    fn extreme_sparsity_keeps_one_entry() {
        let v = random_sparse_vector(100, 0.0001, 1);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn zero_sparsity_gives_empty_vector() {
        let v = random_sparse_vector(100, 0.0, 1);
        assert_eq!(v.nnz(), 0);
    }

    #[test]
    fn full_sparsity_gives_dense_vector() {
        let v = random_sparse_vector(64, 1.0, 1);
        assert_eq!(v.nnz(), 64);
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(
            random_sparse_vector(1000, 0.1, 1),
            random_sparse_vector(1000, 0.1, 1)
        );
        assert_ne!(
            random_sparse_vector(1000, 0.1, 1),
            random_sparse_vector(1000, 0.1, 2)
        );
    }

    #[test]
    fn values_nonzero_indices_sorted() {
        let v = random_sparse_vector(500, 0.5, 4);
        assert!(v.values().iter().all(|&x| x > 0.0 && x <= 1.0));
        assert!(v.indices().windows(2).all(|w| w[0] < w[1]));
    }
}
