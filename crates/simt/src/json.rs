//! Minimal JSON support for the telemetry exporters.
//!
//! The workspace deliberately carries no serde dependency; the telemetry
//! layer emits JSON through small formatting helpers and validates what it
//! emitted (unit tests, the `repro trace` smoke check) through the
//! recursive-descent parser below. The parser handles the full JSON value
//! grammar; numbers are held as `f64`, which is exact for every counter the
//! exporters write (all below 2^53).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Inf; those become
/// `null`, which keeps emitted documents parseable).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest roundtrip formatting keeps integers integral.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Self>),
    /// An object. Key order is not preserved.
    Obj(BTreeMap<String, Self>),
}

impl JsonValue {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Self> {
        match self {
            Self::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Self]> {
        match self {
            Self::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number when this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer count.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|v| v as u64)
    }

    /// The string when this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.num(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn num(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not emitted by our writers;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8");
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_basic_values() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":"hi\nthere","c":true,"d":null,"e":{}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("hi\nthere"));
        assert_eq!(v.get("c"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert!(matches!(v.get("e"), Some(JsonValue::Obj(m)) if m.is_empty()));
    }

    #[test]
    fn escape_then_parse_is_identity() {
        let nasty = "a\"b\\c\nd\te\u{1}f — μs";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1 2", "\"abc"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numbers_parse_including_exponents() {
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-0.125").unwrap().as_f64(), Some(-0.125));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn number_formatting_is_json_safe() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(3.0), "3");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }
}
