//! TileBFS (§3.4): direction-optimized BFS over bitmask tiles.
//!
//! [`TileBfsGraph::from_csr`] converts an adjacency matrix into the bitmask
//! tile structure (choosing `nt` by the paper's order rule) and
//! [`tile_bfs`] runs the traversal, switching per iteration among
//! [`push_csc`](push_csc::push_csc) (K1), [`push_csr`](push_csr::push_csr)
//! (K2) and [`pull_csc`](pull_csc::pull_csc) (K3) according to frontier
//! density and the unvisited count. Extracted very-sparse edges are applied
//! by a separate per-iteration pass (the paper's GSwitch hybrid).

pub mod policy;
pub mod pull_csc;
pub mod push_csc;
pub mod push_csr;
pub(crate) mod verify;

pub use policy::{KernelKind, KernelSet, PolicyThresholds};

use crate::tile::{BitFrontier, BitTileMatrix, TileSize};
use std::time::{Duration, Instant};
use tsv_simt::analyze::PlanReport;
use tsv_simt::atomic::AtomicWords;
use tsv_simt::backend::{Backend, ModelBackend};
use tsv_simt::sanitize::{self, Sanitizer};
use tsv_simt::stats::KernelStats;
use tsv_simt::trace::{self, IterationInfo, Tracer};
use tsv_simt::warp::WARP_SIZE;
use tsv_sparse::{CsrMatrix, SparseError};

/// An adjacency matrix prepared for TileBFS.
#[derive(Debug, Clone)]
pub struct TileBfsGraph {
    bit: BitTileMatrix,
    n: usize,
    symmetric: bool,
    /// Push-CSR's `(row tile, segment)` work list, precomputed once — it
    /// depends only on the matrix structure.
    segments: Vec<(u32, u32)>,
}

impl TileBfsGraph {
    /// Builds the BFS structure with the paper's defaults: `nt` from the
    /// matrix order (>10 000 → 64, else 32) and extraction threshold 2.
    pub fn from_csr<T: Copy + Sync>(a: &CsrMatrix<T>) -> Result<Self, SparseError> {
        Self::with_params(a, TileSize::for_bfs(a.nrows()).nt().max(32), 2)
    }

    /// Builds with explicit tile size (32 or 64) and extraction threshold.
    ///
    /// The graph convention is *row adjacency*: entry `(u, v)` is the edge
    /// `u → v`, matching [`tsv_sparse::reference::bfs_levels`]. The SpMSpV
    /// formulation `y = Ax` pushes along columns, so for an asymmetric
    /// pattern the bitmask structure is built from `Aᵀ`; symmetric patterns
    /// (the paper's undirected setting) skip the transpose.
    pub fn with_params<T: Copy + Sync>(
        a: &CsrMatrix<T>,
        nt: usize,
        extract_threshold: usize,
    ) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        // One transpose serves both the symmetry test and (when asymmetric)
        // the structure build — the seed computed it twice.
        let t = a.transpose();
        let symmetric = t.row_ptr() == a.row_ptr() && t.col_idx() == a.col_idx();
        let bit = if symmetric {
            BitTileMatrix::from_csr(a, nt, extract_threshold)?
        } else {
            BitTileMatrix::from_csr(&t, nt, extract_threshold)?
        };
        let segments = push_csr::csr_segments(&bit);
        Ok(Self {
            n: a.nrows(),
            bit,
            symmetric,
            segments,
        })
    }

    /// Vertex count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The underlying bitmask tile structure.
    pub fn bit(&self) -> &BitTileMatrix {
        &self.bit
    }

    /// Whether the adjacency pattern is symmetric (undirected graph); the
    /// pull kernel is only eligible when it is.
    pub fn symmetric(&self) -> bool {
        self.symmetric
    }

    /// Push-CSR's precomputed `(row tile, segment)` work list.
    pub fn csr_segments(&self) -> &[(u32, u32)] {
        &self.segments
    }
}

/// Options for [`tile_bfs`].
#[derive(Debug, Clone, Copy)]
pub struct BfsOptions {
    /// Which kernels the policy may use (Figure 9's ablation knob).
    pub kernels: KernelSet,
    /// Selection thresholds.
    pub thresholds: PolicyThresholds,
    /// Lane width for the pull kernel's inner loop: `0` (default) keeps
    /// the paper's scalar column-at-a-time walk with its per-column early
    /// exit; `4` or `8` select the lane-blocked sweep (see
    /// [`pull_csc::pull_csc_into`]). The discovered frontier is identical;
    /// the work counters differ.
    pub pull_lanes: usize,
    /// Run the plan-time static race verifier over every kernel shape the
    /// policy may launch, before the first iteration. The report lands in
    /// [`BfsResult::analysis`]; malformed launch geometry surfaces as
    /// [`SparseError::Plan`] instead of a mid-kernel panic.
    pub verify: bool,
}

impl Default for BfsOptions {
    fn default() -> Self {
        Self {
            kernels: KernelSet::All,
            thresholds: PolicyThresholds::default(),
            pull_lanes: 0,
            verify: false,
        }
    }
}

/// One BFS iteration's record (feeds Figures 9 and 10).
#[derive(Debug, Clone, Copy)]
pub struct IterationRecord {
    /// The level this iteration discovered (source is level 0; the first
    /// iteration discovers level 1).
    pub level: u32,
    /// Kernel selected by the policy.
    pub kernel: KernelKind,
    /// Frontier size entering the iteration.
    pub frontier: usize,
    /// Vertices discovered by the iteration.
    pub discovered: usize,
    /// Vertices still unvisited entering the iteration — together with
    /// `frontier` this is exactly what the policy saw when it picked
    /// `kernel`.
    pub unvisited: usize,
    /// Work counters (tile kernel + extra-edge pass).
    pub stats: KernelStats,
    /// Wall-clock time of the iteration on the CPU substrate.
    pub wall: Duration,
}

/// Result of a TileBFS run.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// Level of each vertex (`-1` when unreachable).
    pub levels: Vec<i32>,
    /// Per-iteration trace.
    pub iterations: Vec<IterationRecord>,
    /// Summed work counters.
    pub total_stats: KernelStats,
    /// The static verifier's report, when [`BfsOptions::verify`] was set.
    pub analysis: Option<PlanReport>,
}

impl BfsResult {
    /// Number of vertices reached (including the source).
    pub fn reached(&self) -> usize {
        self.levels.iter().filter(|&&l| l >= 0).count()
    }

    /// Total wall time across iterations.
    pub fn wall(&self) -> Duration {
        self.iterations.iter().map(|r| r.wall).sum()
    }
}

/// Reusable traversal scratch for [`tile_bfs_with_workspace`] (and the
/// engine layer built on it): the four bit frontiers, the push kernels'
/// atomic accumulator, a word staging buffer and the frontier vertex list.
/// Buffers are (re)sized once per graph geometry and then reused across
/// runs and iterations, so steady-state traversals allocate only their
/// result.
#[derive(Debug)]
pub struct BfsWorkspace {
    x: BitFrontier,
    m: BitFrontier,
    y: BitFrontier,
    unvisited: BitFrontier,
    y_atomic: AtomicWords,
    y_words: Vec<u64>,
    frontier: Vec<u32>,
    runs: u64,
    reallocs: u64,
}

impl BfsWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            x: BitFrontier::new(0, 32),
            m: BitFrontier::new(0, 32),
            y: BitFrontier::new(0, 32),
            unvisited: BitFrontier::new(0, 32),
            y_atomic: AtomicWords::zeroed(0),
            y_words: Vec::new(),
            frontier: Vec::new(),
            runs: 0,
            reallocs: 0,
        }
    }

    fn prepare(&mut self, g: &TileBfsGraph) {
        let nt = g.bit.nt();
        if self.x.len() != g.n || self.x.nt() != nt {
            self.x = BitFrontier::new(g.n, nt);
            self.m = BitFrontier::new(g.n, nt);
            self.y = BitFrontier::new(g.n, nt);
            self.unvisited = BitFrontier::new(g.n, nt);
            self.y_atomic = AtomicWords::zeroed(g.bit.n_tiles());
            self.y_words = vec![0u64; g.bit.n_tiles()];
            self.reallocs += 1;
        }
    }

    /// Completed traversals.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Times the buffers were (re)sized for a new graph geometry.
    pub fn reallocs(&self) -> u64 {
        self.reallocs
    }

    /// Approximate resident scratch bytes (capacities, not lengths) — the
    /// quantity behind the `tsv_engine_workspace_bytes{engine="bfs"}`
    /// high-water gauge.
    pub fn approx_bytes(&self) -> u64 {
        let frontier_words = |f: &BitFrontier| f.words().len() as u64 * 8;
        frontier_words(&self.x)
            + frontier_words(&self.m)
            + frontier_words(&self.y)
            + frontier_words(&self.unvisited)
            + self.y_atomic.len() as u64 * 8
            + self.y_words.capacity() as u64 * 8
            + self.frontier.capacity() as u64 * 4
    }

    /// Zeroes the run/realloc counters without touching the buffers, so a
    /// fresh measurement window starts from zero while steady-state reuse
    /// is preserved (the next traversal still won't reallocate).
    pub fn reset_counters(&mut self) {
        self.runs = 0;
        self.reallocs = 0;
    }
}

impl Default for BfsWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs TileBFS from `source`.
///
/// This is the one-shot convenience form: it builds a fresh
/// [`BfsWorkspace`] per call. Repeated traversals (betweenness chunks,
/// multi-source sweeps) should hold a [`crate::exec::BfsEngine`] or call
/// [`tile_bfs_with_workspace`] with a kept workspace.
///
/// ```
/// use tsv_core::bfs::{tile_bfs, BfsOptions, TileBfsGraph};
///
/// let a = tsv_sparse::gen::grid2d(12, 12).to_csr().without_diagonal();
/// let g = TileBfsGraph::from_csr(&a).unwrap();
/// let result = tile_bfs(&g, 0, BfsOptions::default()).unwrap();
///
/// assert_eq!(result.levels, tsv_sparse::reference::bfs_levels(&a, 0).unwrap());
/// assert_eq!(result.reached(), 144);
/// ```
pub fn tile_bfs(
    g: &TileBfsGraph,
    source: usize,
    opts: BfsOptions,
) -> Result<BfsResult, SparseError> {
    let mut ws = BfsWorkspace::new();
    tile_bfs_with_workspace(g, source, opts, &mut ws)
}

/// Runs TileBFS from `source`, reusing `ws` for every per-iteration buffer.
pub fn tile_bfs_with_workspace(
    g: &TileBfsGraph,
    source: usize,
    opts: BfsOptions,
    ws: &mut BfsWorkspace,
) -> Result<BfsResult, SparseError> {
    tile_bfs_traced(g, source, opts, ws, None)
}

/// [`tile_bfs_with_workspace`] with live telemetry: each iteration is
/// recorded on `tracer` as it completes (category `"bfs"`, one event per
/// iteration carrying the kernel label, frontier density, unvisited count
/// and work counters). With `None` the traversal pays one branch per
/// iteration.
pub fn tile_bfs_traced(
    g: &TileBfsGraph,
    source: usize,
    opts: BfsOptions,
    ws: &mut BfsWorkspace,
    tracer: Option<&Tracer>,
) -> Result<BfsResult, SparseError> {
    tile_bfs_instrumented(g, source, opts, ws, tracer, None)
}

/// [`tile_bfs_traced`] with race detection: each per-iteration kernel
/// launch (and the extracted-edge pass) runs inside its own sanitizer
/// epoch, so conflicts are attributed to the kernel and iteration that made
/// them. With `None`, each shadow access costs one branch — the same
/// contract as the trace gate.
pub fn tile_bfs_instrumented(
    g: &TileBfsGraph,
    source: usize,
    opts: BfsOptions,
    ws: &mut BfsWorkspace,
    tracer: Option<&Tracer>,
    san: Option<&Sanitizer>,
) -> Result<BfsResult, SparseError> {
    tile_bfs_on_backend(&ModelBackend, g, source, opts, ws, tracer, san)
}

/// [`tile_bfs_instrumented`] over an explicit execution [`Backend`]: every
/// per-iteration kernel launch (and the extracted-edge pass) runs on
/// `backend` instead of the default modeled SIMT grid. The traversal,
/// policy decisions and work counters are backend-independent; only the
/// substrate executing the warps changes.
#[allow(clippy::too_many_arguments)]
pub fn tile_bfs_on_backend<B: Backend>(
    backend: &B,
    g: &TileBfsGraph,
    source: usize,
    opts: BfsOptions,
    ws: &mut BfsWorkspace,
    tracer: Option<&Tracer>,
    san: Option<&Sanitizer>,
) -> Result<BfsResult, SparseError> {
    if source >= g.n {
        return Err(SparseError::IndexOutOfBounds {
            row: source,
            col: 0,
            nrows: g.n,
            ncols: 1,
        });
    }
    let analysis = if opts.verify {
        Some(verify::verify_bfs_plan(g, opts.kernels).map_err(crate::spmspv::verify::plan_error)?)
    } else {
        None
    };
    ws.prepare(g);
    let BfsWorkspace {
        x,
        m,
        y,
        unvisited,
        y_atomic,
        y_words,
        frontier,
        runs,
        ..
    } = ws;

    let n = g.n;
    let mut levels = vec![-1i32; n];
    levels[source] = 0;

    x.clear();
    x.set(source);
    m.clear();
    m.set(source);
    let mut visited = 1usize;

    let mut iterations = Vec::new();
    let mut total_stats = KernelStats::default();
    let mut level = 0u32;

    loop {
        let frontier_size = x.count_ones();
        if frontier_size == 0 {
            break;
        }
        let unvisited_count = n - visited;
        let density = frontier_size as f64 / n as f64;
        let unvisited_frac = unvisited_count as f64 / n as f64;
        let kernel = policy::choose(
            density,
            unvisited_frac,
            opts.kernels,
            g.symmetric(),
            opts.thresholds,
        );

        let t0 = trace::start(tracer);
        let start = Instant::now();
        sanitize::begin(san, kernel.trace_label(), g.bit.nt());
        let mut stats = match kernel {
            KernelKind::PushCsc => {
                y_atomic.clear();
                let s = push_csc::push_csc_into(backend, &g.bit, x, m, frontier, y_atomic, san);
                y_atomic.copy_into(y_words);
                y.load_words(y_words);
                s
            }
            KernelKind::PushCsr => {
                y_atomic.clear();
                let s = push_csr::push_csr_into(backend, &g.bit, x, m, &g.segments, y_atomic, san);
                y_atomic.copy_into(y_words);
                y.load_words(y_words);
                s
            }
            KernelKind::PullCsc => {
                m.complement_into(unvisited);
                let s = pull_csc::pull_csc_into(
                    backend,
                    &g.bit,
                    m,
                    unvisited,
                    y_words,
                    opts.pull_lanes,
                    san,
                );
                y.load_words(y_words);
                s
            }
        };
        sanitize::barrier(san);
        if g.bit.extra_nnz() > 0 {
            sanitize::begin(san, "bfs/extra-pass", g.bit.nt());
            stats += extra_pass_into(backend, &g.bit, x, m, y, frontier, y_atomic, y_words, san);
            sanitize::barrier(san);
        }
        let wall = start.elapsed();

        let discovered = y.count_ones();
        trace::iteration(
            tracer,
            kernel.trace_label(),
            Some(stats),
            IterationInfo {
                level: level + 1,
                frontier: frontier_size,
                discovered,
                unvisited: unvisited_count,
                density,
            },
            t0,
        );
        iterations.push(IterationRecord {
            level: level + 1,
            kernel,
            frontier: frontier_size,
            discovered,
            unvisited: unvisited_count,
            stats,
            wall,
        });
        total_stats += stats;

        if discovered == 0 {
            break;
        }
        level += 1;
        for v in y.iter_vertices() {
            levels[v] = level as i32;
        }
        visited += discovered;
        m.or_assign(y);
        std::mem::swap(x, y);
    }
    *runs += 1;

    Ok(BfsResult {
        levels,
        iterations,
        total_stats,
        analysis,
    })
}

/// Applies the extracted very-sparse edges for one iteration, in place on
/// `y`. The pass is frontier-driven (like the GSwitch traversal the paper
/// delegates this part to): only the out-lists of frontier vertices are
/// walked, each unvisited target joining `y`. `scratch` and `staging` are
/// caller-owned buffers of `n_tiles` words.
#[allow(clippy::too_many_arguments)]
fn extra_pass_into<B: Backend>(
    backend: &B,
    bit: &BitTileMatrix,
    x: &BitFrontier,
    m: &BitFrontier,
    y: &mut BitFrontier,
    frontier: &mut Vec<u32>,
    scratch: &mut AtomicWords,
    staging: &mut [u64],
    san: Option<&Sanitizer>,
) -> KernelStats {
    let nt = y.nt();
    scratch.load_from(y.words());
    frontier.clear();
    frontier.extend(x.iter_vertices().map(|v| v as u32));
    let chunk = WARP_SIZE;
    let n_warps = frontier.len().div_ceil(chunk);
    let words = &*scratch;

    let stats = backend.launch(n_warps, |warp| {
        let start = warp.warp_id * chunk;
        let end = (start + chunk).min(frontier.len());
        for &c in &frontier[start..end] {
            warp.stats.read(4); // the frontier vertex (streamed)
            warp.stats.read_scattered(8); // extra_src_ptr probe
            let out = bit.extra_out(c as usize);
            warp.stats.read(out.len() * 4);
            for &r in out {
                let r = r as usize;
                warp.stats.read_scattered(8); // mask probe
                sanitize::read(san, "mask", r / nt, warp.warp_id, 0);
                if !m.get(r) {
                    words.fetch_or(r / nt, 1u64 << (r % nt));
                    warp.stats.atomic(1);
                    sanitize::rmw(san, "y-frontier", r / nt, warp.warp_id, 0);
                }
            }
            warp.stats.lane_steps += out.len().div_ceil(WARP_SIZE) as u64 * WARP_SIZE as u64;
        }
    });

    words.copy_into(staging);
    y.load_words(staging);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{geometric_graph, grid2d, rmat, RmatConfig};
    use tsv_sparse::reference::bfs_levels;
    use tsv_sparse::CooMatrix;

    fn assert_levels_match(a: &CsrMatrix<f64>, source: usize, opts: BfsOptions) {
        let g = TileBfsGraph::from_csr(a).unwrap();
        let result = tile_bfs(&g, source, opts).unwrap();
        let expect = bfs_levels(a, source).unwrap();
        assert_eq!(result.levels, expect, "kernels {:?}", opts.kernels);
    }

    #[test]
    fn matches_serial_bfs_on_grid() {
        let a = grid2d(20, 15).to_csr().without_diagonal();
        for set in [KernelSet::PushCscOnly, KernelSet::PushOnly, KernelSet::All] {
            assert_levels_match(
                &a,
                0,
                BfsOptions {
                    kernels: set,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn matches_serial_bfs_on_powerlaw() {
        let a = rmat(RmatConfig::new(9, 8), 3).to_csr();
        // Pick a source with outgoing edges.
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        for set in [KernelSet::PushCscOnly, KernelSet::PushOnly, KernelSet::All] {
            assert_levels_match(
                &a,
                source,
                BfsOptions {
                    kernels: set,
                    ..Default::default()
                },
            );
        }
    }

    #[test]
    fn matches_serial_bfs_on_road_like_graph() {
        let a = geometric_graph(600, 4.0, 9).to_csr();
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        assert_levels_match(&a, source, BfsOptions::default());
    }

    #[test]
    fn matches_serial_bfs_with_extraction() {
        let a = rmat(RmatConfig::new(8, 3), 7).to_csr();
        let g = TileBfsGraph::with_params(&a, 32, 3).unwrap();
        assert!(g.bit().extra_nnz() > 0);
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let result = tile_bfs(&g, source, BfsOptions::default()).unwrap();
        assert_eq!(result.levels, bfs_levels(&a, source).unwrap());
    }

    #[test]
    fn directed_graph_disables_pull_and_stays_correct() {
        // Directed cycle: asymmetric pattern.
        let n = 50;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push((i + 1) % n, i, 1.0);
        }
        let a = coo.to_csr();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        assert!(!g.symmetric());
        let r = tile_bfs(&g, 0, BfsOptions::default()).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, 0).unwrap());
        assert!(r
            .iterations
            .iter()
            .all(|it| it.kernel != KernelKind::PullCsc));
    }

    #[test]
    fn pull_kernel_engages_near_the_end() {
        // Dense frontier + nearly-complete coverage triggers K3 on a small
        // symmetric graph when thresholds are loose.
        let a = grid2d(30, 30).to_csr().without_diagonal();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        let opts = BfsOptions {
            kernels: KernelSet::All,
            thresholds: PolicyThresholds {
                push_csc_density: 0.01,
                pull_unvisited_frac: 0.5,
            },
            ..Default::default()
        };
        let r = tile_bfs(&g, 0, opts).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, 0).unwrap());
        assert!(
            r.iterations
                .iter()
                .any(|it| it.kernel == KernelKind::PullCsc),
            "expected at least one pull iteration"
        );
    }

    #[test]
    fn unreachable_vertices_keep_minus_one() {
        let mut coo = CooMatrix::new(70, 70);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        coo.push(5, 6, 1.0);
        coo.push(6, 5, 1.0);
        let a = coo.to_csr();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        let r = tile_bfs(&g, 0, BfsOptions::default()).unwrap();
        assert_eq!(r.reached(), 2);
        assert_eq!(r.levels[5], -1);
    }

    #[test]
    fn trace_records_iterations() {
        let a = grid2d(10, 10).to_csr().without_diagonal();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        let r = tile_bfs(&g, 0, BfsOptions::default()).unwrap();
        // 10x10 grid from a corner: 18 levels.
        let max_level = *r.levels.iter().max().unwrap() as usize;
        assert_eq!(max_level, 18);
        assert!(r.iterations.len() >= max_level);
        assert_eq!(
            r.iterations.iter().map(|i| i.discovered).sum::<usize>(),
            r.reached() - 1
        );
        assert!(r.wall() > Duration::ZERO);
        assert!(r.total_stats.warps > 0);
    }

    #[test]
    fn invalid_source_rejected() {
        let a = grid2d(4, 4).to_csr();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        assert!(tile_bfs(&g, 99, BfsOptions::default()).is_err());
    }

    #[test]
    fn workspace_reuse_matches_one_shot() {
        let a = grid2d(20, 15).to_csr().without_diagonal();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        assert!(!g.csr_segments().is_empty());
        let mut ws = BfsWorkspace::new();
        let r1 = tile_bfs_with_workspace(&g, 0, BfsOptions::default(), &mut ws).unwrap();
        let r2 = tile_bfs_with_workspace(&g, 5, BfsOptions::default(), &mut ws).unwrap();
        let one1 = tile_bfs(&g, 0, BfsOptions::default()).unwrap();
        let one2 = tile_bfs(&g, 5, BfsOptions::default()).unwrap();
        assert_eq!(r1.levels, one1.levels);
        assert_eq!(r2.levels, one2.levels);
        assert_eq!(r1.total_stats, one1.total_stats);
        assert_eq!(r2.total_stats, one2.total_stats);
        assert_eq!(ws.runs(), 2);
        assert_eq!(ws.reallocs(), 1, "second run must reuse the buffers");
    }

    #[test]
    fn bfs_rule_picks_tile_size_by_order() {
        let small = grid2d(10, 10).to_csr();
        let g = TileBfsGraph::from_csr(&small).unwrap();
        assert_eq!(g.bit().nt(), 32);
    }
}
