//! Process-lifetime metrics registry.
//!
//! The tracer ([`crate::trace`]) and [`crate::profile::Profiler`] describe
//! *one run*: they are cleared on engine reset and their output is
//! per-invocation. This module is the complementary view — a registry of
//! counters, gauges and histograms that lives as long as the process and
//! keeps accumulating across engine resets, backend switches and workload
//! changes. It is the substrate a long-lived serving front end scrapes.
//!
//! Design constraints (mirrored from the tracer/sanitizer precedent):
//!
//! * **Dependency-free.** Hand-rolled Prometheus text exposition and JSON
//!   (via [`crate::json`]); atomics from `std` only.
//! * **Always-on but cheap.** Every instrument shares one `AtomicBool`
//!   enabled flag (relaxed load). When disabled, an event costs exactly one
//!   branch; when enabled, a counter increment is one relaxed atomic add.
//!   No locks are taken on the event path — the registry mutex is touched
//!   only at registration (once per series per process) and at exposition.
//! * **Monotone where it matters.** Counters only go up; gauges track a
//!   high-water mark alongside the current value so a scrape after the
//!   burst still sees the peak.
//!
//! Series names follow Prometheus conventions and carry their labels
//! inline: `tsv_simt_launches_total{backend="model"}`. [`series`] builds
//! such keys. Exposition groups series into families (the name up to `{`)
//! and emits one `# TYPE` line per family.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json;
use crate::stats::KernelStats;

/// Number of log2 buckets in a [`Histogram`].
///
/// Bucket 0 holds the value 0; bucket `k >= 1` holds values in
/// `[2^(k-1), 2^k)`, i.e. its inclusive upper bound is `2^k - 1`. The last
/// bucket additionally absorbs everything above its lower bound.
pub const HIST_BUCKETS: usize = 32;

/// A monotonically increasing counter.
pub struct Counter {
    on: Arc<AtomicBool>,
    value: AtomicU64,
}

impl Counter {
    fn new(on: Arc<AtomicBool>) -> Self {
        Self {
            on,
            value: AtomicU64::new(0),
        }
    }

    /// Whether the owning registry currently records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on.load(Relaxed)
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. One relaxed atomic when enabled, one branch when not.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.on.load(Relaxed) {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A gauge: a current value plus the highest value ever set.
///
/// Values are `f64` (stored as bits in an `AtomicU64`). NaN sets are
/// ignored so exposition never has to encode a NaN.
pub struct Gauge {
    on: Arc<AtomicBool>,
    bits: AtomicU64,
    high_bits: AtomicU64,
}

impl Gauge {
    fn new(on: Arc<AtomicBool>) -> Self {
        Self {
            on,
            bits: AtomicU64::new(0f64.to_bits()),
            high_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Whether the owning registry currently records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on.load(Relaxed)
    }

    /// Sets the current value and folds it into the high-water mark.
    #[inline]
    pub fn set(&self, v: f64) {
        if !self.on.load(Relaxed) || v.is_nan() {
            return;
        }
        self.bits.store(v.to_bits(), Relaxed);
        let mut cur = self.high_bits.load(Relaxed);
        while v > f64::from_bits(cur) {
            match self
                .high_bits
                .compare_exchange_weak(cur, v.to_bits(), Relaxed, Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value (0 until the first `set`).
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Relaxed))
    }

    /// Highest value ever set, or `None` before the first `set`.
    pub fn high_water(&self) -> Option<f64> {
        let h = f64::from_bits(self.high_bits.load(Relaxed));
        (h > f64::NEG_INFINITY).then_some(h)
    }
}

/// A log2-bucketed histogram of `u64` observations.
pub struct Histogram {
    on: Arc<AtomicBool>,
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(on: Arc<AtomicBool>) -> Self {
        Self {
            on,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Whether the owning registry currently records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on.load(Relaxed)
    }

    /// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`,
    /// clamped to the last bucket.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive upper bound of bucket `i` (the Prometheus `le` label);
    /// `None` for the open-ended last bucket.
    pub fn bucket_bound(i: usize) -> Option<u64> {
        (i + 1 < HIST_BUCKETS).then(|| (1u64 << i) - 1)
    }

    /// Records one observation. Three relaxed atomics when enabled, one
    /// branch when not.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !self.on.load(Relaxed) {
            return;
        }
        self.buckets[Self::bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Per-bucket counts (not cumulative).
    pub fn bucket_counts(&self) -> [u64; HIST_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Relaxed))
    }
}

/// Builds a series key: `name{k1="v1",k2="v2"}` (or just `name` with no
/// labels). Label values are JSON/Prometheus-escaped.
pub fn series(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut s = String::with_capacity(name.len() + 16 * labels.len());
    s.push_str(name);
    s.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{}\"", json::escape(v));
    }
    s.push('}');
    s
}

/// Splits a series key into `(family, labels-with-braces-or-empty)`.
fn split_key(key: &str) -> (&str, &str) {
    match key.find('{') {
        Some(i) => (&key[..i], &key[i..]),
        None => (key, ""),
    }
}

/// Splices an extra `le="..."` label into a series key's label set.
fn with_le(name: &str, labels: &str, le: &str) -> String {
    if labels.is_empty() {
        format!("{name}{{le=\"{le}\"}}")
    } else {
        // labels is `{...}`; insert before the closing brace.
        format!("{name}{},le=\"{le}\"}}", &labels[..labels.len() - 1])
    }
}

/// The registry: a named collection of instruments sharing one enabled
/// flag. Use [`global`] for the process-wide instance that all built-in
/// instrumentation reports to; fresh instances are for tests.
pub struct MetricsRegistry {
    enabled: Arc<AtomicBool>,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh, enabled registry.
    pub fn new() -> Self {
        Self {
            enabled: Arc::new(AtomicBool::new(true)),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
        }
    }

    /// Whether instruments record events.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Turns recording on or off for every instrument of this registry.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Relaxed);
    }

    /// Gets or creates the counter named `key`.
    pub fn counter(&self, key: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        Arc::clone(
            map.entry(key.to_string())
                .or_insert_with(|| Arc::new(Counter::new(Arc::clone(&self.enabled)))),
        )
    }

    /// Gets or creates the gauge named `key`.
    pub fn gauge(&self, key: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap();
        Arc::clone(
            map.entry(key.to_string())
                .or_insert_with(|| Arc::new(Gauge::new(Arc::clone(&self.enabled)))),
        )
    }

    /// Gets or creates the histogram named `key`.
    pub fn histogram(&self, key: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        Arc::clone(
            map.entry(key.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(Arc::clone(&self.enabled)))),
        )
    }

    /// Number of registered series across all kinds.
    pub fn series_count(&self) -> usize {
        self.counters.lock().unwrap().len()
            + self.gauges.lock().unwrap().len()
            + self.histograms.lock().unwrap().len()
    }

    /// Prometheus text-format exposition of every registered series.
    ///
    /// Counters expose their value; gauges expose the current value plus a
    /// `<family>_highwater` gauge; histograms expose cumulative
    /// `<family>_bucket{le=...}` series, `<family>_sum` and
    /// `<family>_count`. Families are `# TYPE`-declared once, series are
    /// emitted in sorted order (BTreeMap), so output is deterministic.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        let mut declare = |out: &mut String, family: &str, kind: &str| {
            if typed.insert(family.to_string()) {
                let _ = writeln!(out, "# TYPE {family} {kind}");
            }
        };

        for (key, c) in self.counters.lock().unwrap().iter() {
            let (family, labels) = split_key(key);
            declare(&mut out, family, "counter");
            let _ = writeln!(out, "{family}{labels} {}", c.get());
        }
        for (key, g) in self.gauges.lock().unwrap().iter() {
            let (family, labels) = split_key(key);
            declare(&mut out, family, "gauge");
            let _ = writeln!(out, "{family}{labels} {}", fmt_f64(g.get()));
            let hw_family = format!("{family}_highwater");
            declare(&mut out, &hw_family, "gauge");
            let hw = g.high_water().unwrap_or(0.0);
            let _ = writeln!(out, "{hw_family}{labels} {}", fmt_f64(hw));
        }
        for (key, h) in self.histograms.lock().unwrap().iter() {
            let (family, labels) = split_key(key);
            declare(&mut out, family, "histogram");
            let counts = h.bucket_counts();
            let mut cum = 0u64;
            for (i, n) in counts.iter().enumerate() {
                cum += n;
                // Empty buckets below the data are elided (keeps 32-bucket
                // series readable); the cumulative contract still holds
                // because cum carries forward.
                if *n == 0 && i + 1 < HIST_BUCKETS {
                    continue;
                }
                let le = match Histogram::bucket_bound(i) {
                    Some(b) => b.to_string(),
                    None => "+Inf".to_string(),
                };
                let bkey = with_le(&format!("{family}_bucket"), labels, &le);
                let _ = writeln!(out, "{bkey} {cum}");
            }
            let _ = writeln!(out, "{family}_sum{labels} {}", h.sum());
            let _ = writeln!(out, "{family}_count{labels} {}", h.count());
        }
        out
    }

    /// JSON export of the full registry, parseable by [`crate::json`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema_version\":1,");
        let _ = write!(out, "\"enabled\":{},", self.is_enabled());

        out.push_str("\"counters\":[");
        for (i, (key, c)) in self.counters.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"value\":{}}}",
                json::escape(key),
                c.get()
            );
        }
        out.push_str("],\"gauges\":[");
        for (i, (key, g)) in self.gauges.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"value\":{},\"high_water\":{}}}",
                json::escape(key),
                json::number(g.get()),
                json::number(g.high_water().unwrap_or(0.0))
            );
        }
        out.push_str("],\"histograms\":[");
        for (i, (key, h)) in self.histograms.lock().unwrap().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
                json::escape(key),
                h.count(),
                h.sum()
            );
            let counts = h.bucket_counts();
            let mut first = true;
            for (b, n) in counts.iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let le = match Histogram::bucket_bound(b) {
                    Some(bound) => format!("\"{bound}\""),
                    None => "\"+Inf\"".to_string(),
                };
                let _ = write!(out, "{{\"le\":{le},\"count\":{n}}}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// The process-wide registry all built-in instrumentation reports to.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

// ---------------------------------------------------------------------------
// Built-in launch instrumentation (hot path: handles cached in statics).
// ---------------------------------------------------------------------------

/// Cached handles for per-launch accounting of one backend.
pub struct LaunchMetrics {
    /// Kernel launches.
    pub launches: Arc<Counter>,
    /// Warps executed.
    pub warps: Arc<Counter>,
    /// Lane-iterations executed (per-thread work proxy).
    pub lane_steps: Arc<Counter>,
    /// Warps per launch — the grid/pool occupancy distribution.
    pub warps_per_launch: Arc<Histogram>,
}

impl LaunchMetrics {
    fn for_backend(backend: &str) -> Self {
        let reg = global();
        let l = [("backend", backend)];
        Self {
            launches: reg.counter(&series("tsv_simt_launches_total", &l)),
            warps: reg.counter(&series("tsv_simt_warps_total", &l)),
            lane_steps: reg.counter(&series("tsv_simt_lane_steps_total", &l)),
            warps_per_launch: reg.histogram(&series("tsv_simt_warps_per_launch", &l)),
        }
    }

    /// Folds one launch's summed counters into the registry.
    #[inline]
    pub fn record(&self, stats: &KernelStats) {
        if !self.launches.is_enabled() {
            return; // one branch covers all four series
        }
        self.launches.inc();
        self.warps.add(stats.warps);
        self.lane_steps.add(stats.lane_steps);
        self.warps_per_launch.observe(stats.warps);
    }
}

/// Handles for the modeled-grid launch path (cached after first use).
pub fn model_launch_metrics() -> &'static LaunchMetrics {
    static M: OnceLock<LaunchMetrics> = OnceLock::new();
    M.get_or_init(|| LaunchMetrics::for_backend("model"))
}

/// Handles for the native-backend launch path (cached after first use).
pub fn native_launch_metrics() -> &'static LaunchMetrics {
    static M: OnceLock<LaunchMetrics> = OnceLock::new();
    M.get_or_init(|| LaunchMetrics::for_backend("native"))
}

/// Cached handles for per-format kernel accounting: which tile storage
/// format the SpMSpV driver dispatched (tile-CSR baseline vs SELL-C-σ
/// slabs) and the padding overhead of the most recently built slab set.
pub struct FormatMetrics {
    /// SpMSpV driver passes dispatched with tile-CSR tile bodies.
    pub launches_tilecsr: Arc<Counter>,
    /// SpMSpV driver passes dispatched with SELL slab tile bodies.
    pub launches_sell: Arc<Counter>,
    /// `padded_entries / real_entries` of the most recent slab build
    /// (1.0 = no padding; the gauge's high-water mark keeps the worst).
    pub sell_padding_ratio: Arc<Gauge>,
}

impl FormatMetrics {
    /// Builds the handle set against an explicit registry (tests use a
    /// fresh one; the process-wide path goes through [`format_metrics`]).
    pub fn in_registry(reg: &MetricsRegistry) -> Self {
        Self {
            launches_tilecsr: reg.counter(&series(
                "tsv_core_kernel_format_launches_total",
                &[("format", "tilecsr")],
            )),
            launches_sell: reg.counter(&series(
                "tsv_core_kernel_format_launches_total",
                &[("format", "sell")],
            )),
            sell_padding_ratio: reg.gauge("tsv_core_sell_padding_ratio"),
        }
    }
}

/// Handles for the format-dispatch accounting (cached after first use).
pub fn format_metrics() -> &'static FormatMetrics {
    static M: OnceLock<FormatMetrics> = OnceLock::new();
    M.get_or_init(|| FormatMetrics::in_registry(global()))
}

// ---------------------------------------------------------------------------
// Exposition validation (used by the CLI after writing --metrics-out and by
// the CI smoke step via `tsv`'s self-check).
// ---------------------------------------------------------------------------

/// What [`validate_prometheus_text`] verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpositionSummary {
    /// `# TYPE`-declared metric families.
    pub families: usize,
    /// Sample lines.
    pub series: usize,
}

/// Structurally validates a Prometheus text exposition: every sample line
/// parses (`name[{labels}] value`), belongs to a `# TYPE`-declared family
/// (histogram samples may use the `_bucket`/`_sum`/`_count` suffixes, gauges
/// the `_highwater` suffix), and histogram bucket series are cumulative
/// with `_count` equal to the `+Inf` bucket.
pub fn validate_prometheus_text(text: &str) -> Result<ExpositionSummary, String> {
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    let mut series_n = 0usize;
    // (family) -> (last cumulative bucket value, saw +Inf, count value)
    let mut hist_state: BTreeMap<String, (u64, Option<u64>, Option<u64>)> = BTreeMap::new();

    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (it.next(), it.next(), it.next()) else {
                return Err(format!("line {ln}: malformed TYPE line {line:?}"));
            };
            if !["counter", "gauge", "histogram"].contains(&kind) {
                return Err(format!("line {ln}: unknown metric kind {kind:?}"));
            }
            if kinds.insert(name.to_string(), kind.to_string()).is_some() {
                return Err(format!("line {ln}: duplicate TYPE for {name}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or other comment
        }

        // Sample line: name[{labels}] value
        let (name_labels, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {ln}: no value in {line:?}"))?;
        if value != "+Inf" && value != "-Inf" && value.parse::<f64>().is_err() {
            return Err(format!("line {ln}: unparseable value {value:?}"));
        }
        let (name, labels) = split_key(name_labels);
        if !valid_metric_name(name) {
            return Err(format!("line {ln}: invalid metric name {name:?}"));
        }
        if !labels.is_empty() {
            validate_labels(labels).map_err(|e| format!("line {ln}: {e}"))?;
        }
        series_n += 1;

        // Resolve the declaring family.
        let family = if kinds.contains_key(name) {
            name.to_string()
        } else {
            let stripped = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .filter(|f| kinds.get(*f).map(String::as_str) == Some("histogram"));
            match stripped {
                Some(f) => f.to_string(),
                None => return Err(format!("line {ln}: series {name} has no TYPE declaration")),
            }
        };

        if kinds.get(&family).map(String::as_str) == Some("histogram") {
            let v: u64 = value
                .parse::<f64>()
                .map_err(|_| format!("line {ln}: histogram value {value:?}"))?
                as u64;
            if name.ends_with("_bucket") {
                let bare = labels_without_le(labels);
                let st = hist_state.entry(format!("{family}{bare}")).or_default();
                if v < st.0 {
                    return Err(format!(
                        "line {ln}: histogram {family} buckets not cumulative ({v} < {})",
                        st.0
                    ));
                }
                st.0 = v;
                if labels.contains("le=\"+Inf\"") {
                    st.1 = Some(v);
                }
            } else if name.ends_with("_count") {
                let st = hist_state.entry(format!("{family}{labels}")).or_default();
                st.2 = Some(v);
            }
        }
    }

    for (key, (_, inf, count)) in hist_state {
        match (inf, count) {
            (Some(i), Some(c)) if i != c => {
                return Err(format!("histogram {key}: +Inf bucket {i} != count {c}"));
            }
            (None, Some(_)) => {
                return Err(format!("histogram {key}: missing +Inf bucket"));
            }
            _ => {}
        }
    }

    Ok(ExpositionSummary {
        families: kinds.len(),
        series: series_n,
    })
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

fn validate_labels(labels: &str) -> Result<(), String> {
    let inner = labels
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("malformed label set {labels:?}"))?;
    // Split on commas outside quotes.
    let mut depth_quote = false;
    let mut start = 0usize;
    let bytes = inner.as_bytes();
    let mut parts = Vec::new();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'"' if i == 0 || bytes[i - 1] != b'\\' => depth_quote = !depth_quote,
            b',' if !depth_quote => {
                parts.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&inner[start..]);
    for p in parts {
        let (k, v) = p
            .split_once('=')
            .ok_or_else(|| format!("label {p:?} has no '='"))?;
        if !valid_metric_name(k) {
            return Err(format!("invalid label name {k:?}"));
        }
        if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
            return Err(format!("label value {v:?} not quoted"));
        }
    }
    Ok(())
}

fn labels_without_le(labels: &str) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner = &labels[1..labels.len() - 1];
    let kept: Vec<&str> = inner.split(',').filter(|p| !p.starts_with("le=")).collect();
    if kept.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", kept.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("tsv_test_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(Arc::ptr_eq(&c, &reg.counter("tsv_test_total")));

        let g = reg.gauge("tsv_test_bytes");
        assert_eq!(g.high_water(), None);
        g.set(10.0);
        g.set(3.0);
        assert_eq!(g.get(), 3.0);
        assert_eq!(g.high_water(), Some(10.0));
        g.set(f64::NAN);
        assert_eq!(g.get(), 3.0);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket 0 <- 0; bucket k <- [2^(k-1), 2^k).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Bound of bucket k is 2^k - 1, matching the index rule.
        for k in 0..HIST_BUCKETS - 1 {
            let b = Histogram::bucket_bound(k).unwrap();
            assert_eq!(Histogram::bucket_index(b), k.max(usize::from(b > 0)));
            if b < u64::MAX {
                assert!(Histogram::bucket_index(b + 1) > k || k == HIST_BUCKETS - 1);
            }
        }
        assert_eq!(Histogram::bucket_bound(HIST_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_observe_and_export() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("tsv_test_ns");
        for v in [0u64, 1, 2, 3, 900, 1 << 40] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 906 + (1 << 40));
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 1);
        assert_eq!(counts[2], 2);
        assert_eq!(counts[10], 1); // 900 in [512, 1024)
        assert_eq!(counts[HIST_BUCKETS - 1], 1);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("tsv_test_total");
        let g = reg.gauge("tsv_test_gauge");
        let h = reg.histogram("tsv_test_hist");
        reg.set_enabled(false);
        c.inc();
        g.set(7.0);
        h.observe(42);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0.0);
        assert_eq!(g.high_water(), None);
        assert_eq!(h.count(), 0);
        reg.set_enabled(true);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn prometheus_text_validates_and_lists_series() {
        let reg = MetricsRegistry::new();
        reg.counter(&series("tsv_x_total", &[("backend", "model")]))
            .add(3);
        reg.gauge("tsv_ws_bytes").set(128.0);
        let h = reg.histogram(&series("tsv_lat_ns", &[("phase", "spmspv/kernel")]));
        h.observe(5);
        h.observe(700);
        let text = reg.prometheus_text();
        let summary = validate_prometheus_text(&text).expect("valid exposition");
        assert_eq!(summary.families, 4); // x_total, ws_bytes, ws_bytes_highwater, lat_ns
        assert!(text.contains("# TYPE tsv_x_total counter"));
        assert!(text.contains("tsv_x_total{backend=\"model\"} 3"));
        assert!(text.contains("tsv_ws_bytes_highwater 128.0"));
        assert!(text.contains("le=\"+Inf\"} 2"));
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_prometheus_text("tsv_undeclared 1\n").is_err());
        assert!(validate_prometheus_text("# TYPE tsv_x counter\ntsv_x notanumber\n").is_err());
        assert!(validate_prometheus_text("# TYPE tsv_x widget\n").is_err());
        let bad_cum = "# TYPE tsv_h histogram\n\
                       tsv_h_bucket{le=\"1\"} 5\n\
                       tsv_h_bucket{le=\"+Inf\"} 3\n\
                       tsv_h_sum 9\ntsv_h_count 3\n";
        assert!(validate_prometheus_text(bad_cum).is_err());
    }

    #[test]
    fn json_export_roundtrips() {
        let reg = MetricsRegistry::new();
        reg.counter("tsv_a_total").add(2);
        reg.gauge("tsv_b").set(1.5);
        reg.histogram("tsv_c").observe(9);
        let doc = json::parse(&reg.to_json()).expect("parseable");
        assert_eq!(
            doc.get("schema_version")
                .and_then(super::super::json::JsonValue::as_u64),
            Some(1)
        );
        let counters = doc.get("counters").and_then(|v| v.as_array()).unwrap();
        assert_eq!(counters.len(), 1);
        assert_eq!(
            counters[0].get("name").and_then(|v| v.as_str()),
            Some("tsv_a_total")
        );
        assert_eq!(
            counters[0]
                .get("value")
                .and_then(super::super::json::JsonValue::as_u64),
            Some(2)
        );
        let gauges = doc.get("gauges").and_then(|v| v.as_array()).unwrap();
        assert_eq!(
            gauges[0]
                .get("high_water")
                .and_then(super::super::json::JsonValue::as_f64),
            Some(1.5)
        );
        let hists = doc.get("histograms").and_then(|v| v.as_array()).unwrap();
        let buckets = hists[0].get("buckets").and_then(|v| v.as_array()).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("le").and_then(|v| v.as_str()), Some("15"));
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("tsv_cc_total");
        let h = reg.histogram("tsv_cc_hist");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        assert_eq!(h.sum(), 8 * (999 * 1000 / 2));
    }
}
