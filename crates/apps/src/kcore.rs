//! k-core decomposition by peeling.
//!
//! The core number of a vertex is the largest `k` such that it belongs to
//! a subgraph where every vertex has degree ≥ `k`. The peeling algorithm
//! is the degree-ordered dual of BFS frontiers: each round removes the
//! minimum-degree bucket and updates neighbors — the same sparse work-set
//! pattern SpMSpV serves.

use tsv_sparse::{CsrMatrix, SparseError};

/// Computes the core number of every vertex of an undirected graph
/// (self-loops ignored).
pub fn k_core(a: &CsrMatrix<f64>) -> Result<Vec<u32>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let mut degree: Vec<u32> = (0..n)
        .map(|v| {
            let (cols, _) = a.row(v);
            cols.iter().filter(|&&c| c as usize != v).count() as u32
        })
        .collect();

    // Bucket the vertices by degree (the O(n + m) Matula–Beck ordering).
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d as usize].push(v as u32);
    }

    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut current_k = 0u32;
    let mut processed = 0usize;
    let mut cursor = 0usize;
    while processed < n {
        // Find the lowest non-empty bucket at or below the scan cursor.
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let Some(v) = buckets.get_mut(cursor).and_then(std::vec::Vec::pop) else {
            break;
        };
        let v = v as usize;
        if removed[v] || degree[v] as usize != cursor {
            continue; // stale bucket entry
        }
        current_k = current_k.max(degree[v]);
        core[v] = current_k;
        removed[v] = true;
        processed += 1;

        let (cols, _) = a.row(v);
        for &u in cols {
            let u = u as usize;
            if u == v || removed[u] {
                continue;
            }
            if degree[u] > degree[v] {
                degree[u] -= 1;
                buckets[degree[u] as usize].push(u as u32);
                cursor = cursor.min(degree[u] as usize);
            }
        }
    }
    Ok(core)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::CooMatrix;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn path_graph_is_one_core() {
        let a = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(k_core(&a).unwrap(), vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn triangle_with_pendant() {
        // Triangle 0-1-2 plus pendant 3 hanging off 0.
        let a = undirected(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]);
        assert_eq!(k_core(&a).unwrap(), vec![2, 2, 2, 1]);
    }

    #[test]
    fn complete_graph_core_is_n_minus_one() {
        let n = 6;
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let a = undirected(n, &edges);
        assert!(k_core(&a).unwrap().iter().all(|&c| c as usize == n - 1));
    }

    #[test]
    fn nested_cores() {
        // A 4-clique (core 3) with a path attached (core 1).
        let mut edges: Vec<(usize, usize)> = (0..4)
            .flat_map(|u| ((u + 1)..4).map(move |v| (u, v)))
            .collect();
        edges.push((3, 4));
        edges.push((4, 5));
        let a = undirected(6, &edges);
        let core = k_core(&a).unwrap();
        assert_eq!(&core[..4], &[3, 3, 3, 3]);
        assert_eq!(&core[4..], &[1, 1]);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let a = undirected(4, &[(0, 1)]);
        let core = k_core(&a).unwrap();
        assert_eq!(core[2], 0);
        assert_eq!(core[3], 0);
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let core = k_core(&coo.to_csr()).unwrap();
        assert_eq!(core, vec![1, 1, 0]);
    }

    #[test]
    fn rejects_non_square() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 1.0);
        assert!(k_core(&coo.to_csr()).is_err());
    }
}
