//! Kernel launches: a grid of warps over a rayon thread pool.

use crate::stats::KernelStats;
use crate::warp::WarpCtx;
use rayon::prelude::*;

/// Launches `n_warps` warps, each running `body`. Returns the summed work
/// counters.
///
/// This is the CPU analog of `kernel<<<grid, block>>>`: every warp is an
/// independent parallel task (rayon work-stealing plays the role of the GPU
/// warp scheduler, including the load-balancing behaviour the paper's long
/// row tiles stress). The body communicates results through the atomic
/// views in [`crate::atomic`] or through pre-partitioned output — see
/// [`launch_over_chunks`] for the common row-tile-owns-output pattern.
pub fn launch<F>(n_warps: usize, body: F) -> KernelStats
where
    F: Fn(&mut WarpCtx) + Sync,
{
    (0..n_warps)
        .into_par_iter()
        .map(|warp_id| {
            let mut ctx = WarpCtx::new(warp_id);
            body(&mut ctx);
            ctx.stats
        })
        .sum()
}

/// Launches one warp per output chunk: `output` is split into disjoint
/// `chunk_len`-sized pieces and warp `i` gets exclusive mutable access to
/// piece `i`.
///
/// This matches the paper's row-tile kernels, where a warp owns the `nt`
/// output rows of its row tile and therefore needs no atomics on y.
pub fn launch_over_chunks<T, F>(output: &mut [T], chunk_len: usize, body: F) -> KernelStats
where
    T: Send,
    F: Fn(&mut WarpCtx, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    output
        .par_chunks_mut(chunk_len)
        .enumerate()
        .map(|(warp_id, chunk)| {
            let mut ctx = WarpCtx::new(warp_id);
            body(&mut ctx, chunk);
            ctx.stats
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicWords;

    #[test]
    fn launch_runs_every_warp_once() {
        let hits = AtomicWords::zeroed(2);
        let stats = launch(128, |w| {
            hits.fetch_or(w.warp_id / 64, 1 << (w.warp_id % 64));
        });
        assert_eq!(stats.warps, 128);
        assert_eq!(hits.load(0), u64::MAX);
        assert_eq!(hits.load(1), u64::MAX);
    }

    #[test]
    fn launch_zero_warps_is_empty() {
        let stats = launch(0, |_| panic!("no warp should run"));
        assert_eq!(stats.warps, 0);
    }

    #[test]
    fn launch_sums_stats() {
        let stats = launch(10, |w| {
            w.stats.read(8);
            w.stats.flop(2);
        });
        assert_eq!(stats.gmem_read_bytes, 80);
        assert_eq!(stats.flops, 20);
    }

    #[test]
    fn chunks_partition_output_disjointly() {
        let mut out = vec![0u32; 100];
        let stats = launch_over_chunks(&mut out, 10, |w, chunk| {
            for v in chunk.iter_mut() {
                *v = w.warp_id as u32 + 1;
            }
        });
        assert_eq!(stats.warps, 10);
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 10);
        assert!(out.iter().all(|&v| v != 0));
    }

    #[test]
    fn chunks_handle_ragged_tail() {
        let mut out = vec![0u8; 25];
        let stats = launch_over_chunks(&mut out, 10, |_, chunk| {
            let len = chunk.len() as u8;
            for v in chunk.iter_mut() {
                *v = len;
            }
        });
        // 10 + 10 + 5 elements → 3 warps.
        assert_eq!(stats.warps, 3);
        assert_eq!(out[24], 5);
    }
}
