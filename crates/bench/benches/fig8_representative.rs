//! Figure 8 bench: the three BFS implementations over the representative
//! matrices of Table 2 (GTEPS is computed by `repro fig8` from the same
//! runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsv_baselines::{gswitch_bfs, gunrock_bfs};
use tsv_bench::workloads::bfs_source;
use tsv_core::bfs::{tile_bfs, BfsOptions, TileBfsGraph};
use tsv_sparse::suite::{representative, SuiteScale};

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for e in representative(SuiteScale::Tiny) {
        let a = e.matrix;
        let src = bfs_source(&a);
        let g = TileBfsGraph::from_csr(&a).unwrap();

        group.bench_with_input(BenchmarkId::new("TileBFS", e.name), &e.name, |b, _| {
            b.iter(|| black_box(tile_bfs(&g, src, BfsOptions::default()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("Gunrock", e.name), &e.name, |b, _| {
            b.iter(|| black_box(gunrock_bfs(&a, src).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("GSwitch", e.name), &e.name, |b, _| {
            b.iter(|| black_box(gswitch_bfs(&a, src).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
