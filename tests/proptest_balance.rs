//! Property-based tests for the work-balanced dispatch layer: on random
//! matrices and frontiers the product must not depend on how the work was
//! scheduled — any kernel choice crossed with any [`Balance`] mode yields
//! the same vector. For a fixed kernel the PlusTimes result is bit-exact
//! across balance modes (the binned path replays the direct kernel's
//! fold order); MinPlus and OrAnd are order-independent, so they are
//! exact across everything, including `Auto`.

use proptest::prelude::*;
use tilespmspv::core::exec::SpMSpVEngine;
use tilespmspv::core::semiring::{spmspv_semiring, MinPlus, OrAnd, PlusTimes};
use tilespmspv::core::spmspv::{tile_spmspv_with, Balance, KernelChoice, SpMSpVOptions};
use tilespmspv::core::tile::{TileConfig, TileMatrix};
use tilespmspv::sparse::gen::random_sparse_vector;
use tilespmspv::sparse::{CooMatrix, CsrMatrix, SparseVector};

/// An arbitrary weighted digraph of up to 140 vertices with finite,
/// sign-mixed weights (duplicate edges summed).
fn arb_weighted() -> impl Strategy<Value = CsrMatrix<f64>> {
    (2usize..140)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32, -4.0f64..4.0);
            (Just(n), proptest::collection::vec(edge, 0..400))
        })
        .prop_map(|(n, edges)| {
            let mut coo = CooMatrix::new(n, n);
            for (u, v, w) in edges {
                coo.push(u as usize, v as usize, w);
            }
            coo.sum_duplicates();
            coo.to_csr()
        })
}

/// The balance modes a product must be insensitive to: the default
/// thresholds, aggressive over-splitting, no splitting, and a target so
/// large every unit keeps one warp.
fn balance_modes() -> [Balance; 4] {
    [
        Balance::binned(),
        Balance::Binned {
            target_nnz: 1,
            max_split: 4,
        },
        Balance::Binned {
            target_nnz: 8,
            max_split: 1,
        },
        Balance::Binned {
            target_nnz: 10_000_000,
            max_split: 32,
        },
    ]
}

fn bits(y: &SparseVector<f64>) -> Vec<u64> {
    y.values().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn plus_times_is_bitwise_balance_invariant(a in arb_weighted(), seed in 0u64..1000) {
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let sparsity = [0.004, 0.05, 0.4][seed as usize % 3];
        let x = random_sparse_vector(a.ncols(), sparsity, seed);
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            let direct = SpMSpVOptions { kernel, ..Default::default() };
            let (y0, _) = tile_spmspv_with(&tiled, &x, direct).unwrap();
            for balance in balance_modes() {
                let opts = SpMSpVOptions { kernel, balance, ..Default::default() };
                let (y, _) = tile_spmspv_with(&tiled, &x, opts).unwrap();
                prop_assert_eq!(y.indices(), y0.indices(), "{:?} {:?}", kernel, balance);
                prop_assert_eq!(bits(&y), bits(&y0), "{:?} {:?}", kernel, balance);
            }
        }
    }

    #[test]
    fn plus_times_auto_matches_reference_under_any_balance(
        a in arb_weighted(),
        seed in 0u64..1000,
    ) {
        // `Auto` may pick different kernels for different balance modes,
        // so the invariant is agreement with the serial oracle, not
        // bitwise equality between modes.
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let csc = a.to_csc();
        let x = random_sparse_vector(a.ncols(), 0.1, seed);
        let expect = spmspv_semiring::<PlusTimes>(&csc, &x).unwrap();
        for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
            let opts = SpMSpVOptions { kernel: KernelChoice::Auto, balance, ..Default::default() };
            let (y, _) = tile_spmspv_with(&tiled, &x, opts).unwrap();
            prop_assert_eq!(y.indices(), expect.indices(), "{:?}", balance);
            prop_assert!(y.max_abs_diff(&expect) < 1e-9, "{:?}", balance);
        }
    }

    #[test]
    fn min_plus_is_exactly_balance_invariant(a in arb_weighted(), seed in 0u64..1000) {
        // min is order-independent and each term is one f64 addition, so
        // every kernel x balance combination is exactly the oracle.
        let csc = a.to_csc();
        let x = random_sparse_vector(a.ncols(), 0.15, seed);
        let expect = spmspv_semiring::<MinPlus>(&csc, &x).unwrap();
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile, KernelChoice::Auto] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let opts = SpMSpVOptions { kernel, balance, ..Default::default() };
                let mut engine =
                    SpMSpVEngine::<MinPlus>::from_csr_with(&a, TileConfig::default(), opts)
                        .unwrap();
                let (y, _) = engine.multiply(&x).unwrap();
                prop_assert_eq!(&y, &expect, "{:?} {:?}", kernel, balance);
            }
        }
    }

    #[test]
    fn or_and_is_exactly_balance_invariant(a in arb_weighted(), seed in 0u64..1000) {
        let pattern = CsrMatrix::from_parts(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            vec![true; a.nnz()],
        )
        .unwrap();
        let csc = pattern.to_csc();
        let picks = random_sparse_vector(a.ncols(), 0.1, seed);
        let entries: Vec<(u32, bool)> = picks.indices().iter().map(|&i| (i, true)).collect();
        let x = SparseVector::from_entries(a.ncols(), entries).unwrap();
        let expect = spmspv_semiring::<OrAnd>(&csc, &x).unwrap();
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile, KernelChoice::Auto] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let opts = SpMSpVOptions { kernel, balance, ..Default::default() };
                let mut engine =
                    SpMSpVEngine::<OrAnd>::from_csr_with(&pattern, TileConfig::default(), opts)
                        .unwrap();
                let (y, _) = engine.multiply(&x).unwrap();
                prop_assert_eq!(y.indices(), expect.indices(), "{:?} {:?}", kernel, balance);
            }
        }
    }
}
