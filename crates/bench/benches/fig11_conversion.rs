//! Figure 11 bench: cost of converting a CSR matrix into the bitmask tile
//! format (the preprocessing whose rate the figure compares to one BFS).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsv_core::bfs::TileBfsGraph;
use tsv_core::tile::{TileConfig, TileMatrix};
use tsv_sparse::suite::{representative, SuiteScale};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for e in representative(SuiteScale::Tiny) {
        let a = e.matrix;
        group.bench_with_input(BenchmarkId::new("bfs-format", e.name), &e.name, |b, _| {
            b.iter(|| black_box(TileBfsGraph::from_csr(&a).unwrap()));
        });
        group.bench_with_input(
            BenchmarkId::new("numeric-format", e.name),
            &e.name,
            |b, _| b.iter(|| black_box(TileMatrix::from_csr(&a, TileConfig::default()).unwrap())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
