//! Bit frontier vectors for TileBFS.
//!
//! The BFS input vector `x` (current frontier) and mask vector `m` (visited
//! set) are stored as "dense tiled bit vectors": one machine word per vector
//! tile, bit `k` of word `t` standing for vertex `t * nt + k` (§3.2.3). The
//! sparse form — the list of non-empty tile indices — is derived on demand,
//! the conversion the paper reports as negligible.

/// A length-`n` bit vector with one word per `nt`-element tile.
///
/// Words are held in `u64`; for `nt = 32` only the low 32 bits are used
/// (the physical format the paper stores is `u32` in that case, which the
/// storage accounting reflects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitFrontier {
    n: usize,
    nt: usize,
    words: Vec<u64>,
}

impl BitFrontier {
    /// An empty frontier over `n` vertices with tile length `nt`
    /// (`nt` must be 32 or 64 so a tile fits one word).
    ///
    /// ```
    /// use tsv_core::tile::BitFrontier;
    ///
    /// let mut f = BitFrontier::new(100, 32);
    /// f.set(42);
    /// assert!(f.get(42));
    /// assert_eq!(f.count_ones(), 1);
    /// assert_eq!(f.nonempty_tiles(), vec![1]);
    /// ```
    pub fn new(n: usize, nt: usize) -> Self {
        assert!(nt == 32 || nt == 64, "bit tiles require nt of 32 or 64");
        Self {
            n,
            nt,
            words: vec![0; n.div_ceil(nt)],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the vector covers zero vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Tile length.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Number of tiles (= words).
    pub fn n_tiles(&self) -> usize {
        self.words.len()
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words (kernels write these).
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Replaces the backing words (e.g. with the result of an atomic
    /// kernel). The caller must pass exactly `n_tiles` words.
    pub fn set_words(&mut self, words: Vec<u64>) {
        assert_eq!(words.len(), self.words.len());
        debug_assert!(
            self.check_tail_clear(&words),
            "bits beyond n must stay clear"
        );
        self.words = words;
    }

    /// Copies `src` into the backing words without reallocating — the
    /// buffer-reusing counterpart of [`BitFrontier::set_words`].
    pub fn load_words(&mut self, src: &[u64]) {
        assert_eq!(src.len(), self.words.len());
        self.words.copy_from_slice(src);
        debug_assert!(
            self.check_tail_clear(&self.words),
            "bits beyond n must stay clear"
        );
    }

    fn check_tail_clear(&self, words: &[u64]) -> bool {
        match words.last() {
            Some(&w) => w & !self.tile_valid_mask(self.n_tiles() - 1) == 0,
            None => true,
        }
    }

    /// Sets vertex `v`.
    #[inline]
    pub fn set(&mut self, v: usize) {
        assert!(v < self.n);
        self.words[v / self.nt] |= 1u64 << (v % self.nt);
    }

    /// Tests vertex `v`.
    #[inline]
    pub fn get(&self, v: usize) -> bool {
        assert!(v < self.n);
        self.words[v / self.nt] >> (v % self.nt) & 1 == 1
    }

    /// The word of tile `t`.
    #[inline]
    pub fn word(&self, t: usize) -> u64 {
        self.words[t]
    }

    /// The mask of *valid* bits of tile `t` (all `nt` bits except in the
    /// ragged final tile).
    #[inline]
    pub fn tile_valid_mask(&self, t: usize) -> u64 {
        let base = t * self.nt;
        let remaining = self.n - base;
        if remaining >= self.nt {
            if self.nt == 64 {
                u64::MAX
            } else {
                (1u64 << self.nt) - 1
            }
        } else {
            (1u64 << remaining) - 1
        }
    }

    /// Population count over the whole vector.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn none(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self |= other` (the frontier/mask union step of each iteration).
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self & !other`, the "newly discovered" filter (`y AND NOT m`).
    pub fn and_not(&self, other: &Self) -> Self {
        assert_eq!(self.n, other.n);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| a & !b)
            .collect();
        Self {
            n: self.n,
            nt: self.nt,
            words,
        }
    }

    /// The complement restricted to valid bits — the "unvisited" vector x₃
    /// the Pull-CSC iteration derives from m (Fig. 5).
    pub fn complement(&self) -> Self {
        let words = self
            .words
            .iter()
            .enumerate()
            .map(|(t, &w)| !w & self.tile_valid_mask(t))
            .collect();
        Self {
            n: self.n,
            nt: self.nt,
            words,
        }
    }

    /// Writes the complement into `out` without allocating — the workspace
    /// form of [`BitFrontier::complement`] used by the reusable BFS driver.
    pub fn complement_into(&self, out: &mut Self) {
        assert_eq!(self.n, out.n);
        assert_eq!(self.nt, out.nt);
        for (t, (d, &w)) in out.words.iter_mut().zip(&self.words).enumerate() {
            *d = !w & self.tile_valid_mask(t);
        }
    }

    /// Clears every bit.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Indices of non-empty tiles — the sparse form used by the
    /// vector-driven kernels.
    pub fn nonempty_tiles(&self) -> Vec<u32> {
        self.words
            .iter()
            .enumerate()
            .filter(|(_, &w)| w != 0)
            .map(|(t, _)| t as u32)
            .collect()
    }

    /// Set-vertex indices in increasing order.
    pub fn iter_vertices(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(t, &w)| {
            let base = t * self.nt;
            BitIter(w).map(move |b| base + b)
        })
    }

    /// Density `count_ones / n`, driving the paper's kernel selection.
    pub fn density(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.n as f64
        }
    }
}

/// Iterator over set bit positions of one word.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let b = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(b)
        }
    }
}

/// Iterates the set bits of an arbitrary word (used by the BFS kernels).
pub fn iter_bits(word: u64) -> impl Iterator<Item = usize> {
    BitIter(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut f = BitFrontier::new(100, 32);
        f.set(0);
        f.set(31);
        f.set(32);
        f.set(99);
        assert!(f.get(0) && f.get(31) && f.get(32) && f.get(99));
        assert!(!f.get(1) && !f.get(98));
        assert_eq!(f.count_ones(), 4);
    }

    #[test]
    fn tile_math() {
        let f = BitFrontier::new(100, 32);
        assert_eq!(f.n_tiles(), 4);
        // Last tile covers vertices 96..100 → 4 valid bits.
        assert_eq!(f.tile_valid_mask(3), 0b1111);
        assert_eq!(f.tile_valid_mask(0), u64::from(u32::MAX));
    }

    #[test]
    fn valid_mask_full_64() {
        let f = BitFrontier::new(128, 64);
        assert_eq!(f.tile_valid_mask(0), u64::MAX);
        assert_eq!(f.tile_valid_mask(1), u64::MAX);
    }

    #[test]
    fn complement_respects_tail() {
        let mut f = BitFrontier::new(70, 64);
        f.set(0);
        f.set(69);
        let c = f.complement();
        assert!(!c.get(0));
        assert!(!c.get(69));
        assert!(c.get(1));
        assert_eq!(c.count_ones(), 68);
        // No phantom bits beyond vertex 69.
        assert_eq!(c.word(1) >> 6, 0);
    }

    #[test]
    fn and_not_filters_visited() {
        let mut y = BitFrontier::new(64, 32);
        y.set(3);
        y.set(40);
        let mut m = BitFrontier::new(64, 32);
        m.set(3);
        let fresh = y.and_not(&m);
        assert!(!fresh.get(3));
        assert!(fresh.get(40));
    }

    #[test]
    fn or_assign_unions() {
        let mut a = BitFrontier::new(64, 32);
        a.set(1);
        let mut b = BitFrontier::new(64, 32);
        b.set(2);
        a.or_assign(&b);
        assert!(a.get(1) && a.get(2));
    }

    #[test]
    fn nonempty_tiles_and_vertex_iter() {
        let mut f = BitFrontier::new(200, 64);
        f.set(5);
        f.set(130);
        f.set(131);
        assert_eq!(f.nonempty_tiles(), vec![0, 2]);
        assert_eq!(f.iter_vertices().collect::<Vec<_>>(), vec![5, 130, 131]);
    }

    #[test]
    fn density_and_none() {
        let mut f = BitFrontier::new(100, 32);
        assert!(f.none());
        f.set(10);
        assert!((f.density() - 0.01).abs() < 1e-12);
        f.clear();
        assert!(f.none());
    }

    #[test]
    fn iter_bits_walks_set_positions() {
        let bits: Vec<_> = iter_bits(0b1000_0101).collect();
        assert_eq!(bits, vec![0, 2, 7]);
        assert_eq!(iter_bits(0).count(), 0);
    }

    #[test]
    #[should_panic(expected = "bit tiles require nt of 32 or 64")]
    fn invalid_nt_rejected() {
        BitFrontier::new(10, 16);
    }

    #[test]
    fn set_words_validates_length() {
        let mut f = BitFrontier::new(64, 32);
        f.set_words(vec![1, 2]);
        assert_eq!(f.word(0), 1);
    }

    #[test]
    fn load_words_copies_without_moving() {
        let mut f = BitFrontier::new(64, 32);
        f.load_words(&[4, 8]);
        assert_eq!(f.word(0), 4);
        assert_eq!(f.word(1), 8);
    }

    #[test]
    fn complement_into_matches_complement() {
        let mut f = BitFrontier::new(70, 64);
        f.set(0);
        f.set(69);
        let mut out = BitFrontier::new(70, 64);
        f.complement_into(&mut out);
        assert_eq!(out, f.complement());
    }
}
