//! Quickstart: build a tiled matrix, multiply it by a sparse vector, and
//! inspect what the kernel did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tilespmspv::prelude::*;
use tilespmspv::sparse::gen::{banded, random_sparse_vector};
use tilespmspv::sparse::reference::spmspv_row;

fn main() {
    // A 4096x4096 FEM-like banded matrix with ~60 nonzeros per row.
    let a = banded(4096, 30, 0.8, 42).to_csr();
    println!("matrix: {}x{}, {} nonzeros", a.nrows(), a.ncols(), a.nnz());

    // Convert to the tiled format (16x16 tiles, very sparse tiles with at
    // most 2 entries extracted into the COO side matrix).
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    println!(
        "tiled: {} stored tiles ({} entries) + {} extracted entries, {} KiB",
        tiled.num_tiles(),
        tiled.tiled_nnz(),
        tiled.extra().nnz(),
        tiled.storage_bytes() / 1024
    );

    // A sparse input vector: 1% of positions nonzero.
    let x = random_sparse_vector(a.ncols(), 0.01, 1);
    println!("x: {} nonzeros ({}% dense)", x.nnz(), 100.0 * x.sparsity());

    // y = A x, with an execution report.
    let (y, report) = tile_spmspv_with(&tiled, &x, SpMSpVOptions::default()).unwrap();
    println!(
        "y: {} nonzeros; kernel = {}; {} flops, {} bytes of global traffic",
        y.nnz(),
        report.kernel,
        report.stats.flops,
        report.stats.gmem_bytes()
    );

    // The tiled kernels agree with the serial reference to rounding error.
    let expect = spmspv_row(&a, &x).unwrap();
    let err = y.max_abs_diff(&expect);
    println!("max |y - reference| = {err:.3e}");
    assert!(err < 1e-9);

    // The same physical vector layout the kernel used (Fig. 3's x_ptr /
    // x_tile pair) is available directly:
    let xt = TiledVector::from_sparse(&x, tiled.nt());
    println!(
        "x tiled: {}/{} vector tiles non-empty ({:.2}% tile occupancy)",
        xt.stored_tiles(),
        xt.n_tiles(),
        100.0 * xt.tile_occupancy()
    );
}
