//! Cross-layer telemetry tests: recorded BFS policy decisions, Chrome
//! trace export from real engine runs, and the cost of disabled tracing.

use std::sync::Arc;
use tsv_core::bfs::{policy, KernelKind, KernelSet, PolicyThresholds};
use tsv_core::exec::{BfsEngine, SpMSpVEngine};
use tsv_core::semiring::PlusTimes;
use tsv_core::telemetry::{BoundKind, RunSummary};
use tsv_core::tile::TileConfig;
use tsv_simt::device::RTX_3060;
use tsv_simt::json::JsonValue;
use tsv_simt::sanitize::{Sanitizer, SanitizerSummary};
use tsv_simt::trace::{chrome_trace_json, validate_chrome_trace, Tracer, CAT_KERNEL};
use tsv_sparse::gen::random_sparse_vector;
use tsv_sparse::{CooMatrix, CsrMatrix};

/// A symmetric 4-layer graph sized so the default policy must sweep all
/// three kernels: levels of 1, 4, 100 and 895 vertices (n = 1000).
///
/// * iteration 1: frontier 1/1000 = 0.001 < 0.01          → K1 Push-CSC
/// * iteration 2: frontier 4/1000 = 0.004 < 0.01          → K1 Push-CSC
/// * iteration 3: frontier 100/1000 = 0.1 ≥ 0.01,
///   unvisited 895/1000 ≥ 0.05                            → K2 Push-CSR
/// * iteration 4: unvisited 0/1000 < 0.05 (symmetric)     → K3 Pull-CSC
fn layered_graph() -> CsrMatrix<f64> {
    let n = 1000;
    let mut coo = CooMatrix::new(n, n);
    let edge = |coo: &mut CooMatrix<f64>, u: usize, v: usize| {
        coo.push(u, v, 1.0);
        coo.push(v, u, 1.0);
    };
    for v in 1..5 {
        edge(&mut coo, 0, v);
    }
    for (i, v) in (5..105).enumerate() {
        edge(&mut coo, 1 + i % 4, v);
    }
    for (i, v) in (105..1000).enumerate() {
        edge(&mut coo, 5 + i % 100, v);
    }
    coo.to_csr()
}

#[test]
fn recorded_policy_decisions_sweep_k1_k2_k3() {
    let a = layered_graph();
    let n = a.nrows();
    let mut engine = BfsEngine::from_csr(&a).unwrap();
    let r = engine.run(0).unwrap();

    let kernels: Vec<KernelKind> = r.iterations.iter().map(|it| it.kernel).collect();
    assert_eq!(
        kernels,
        vec![
            KernelKind::PushCsc,
            KernelKind::PushCsc,
            KernelKind::PushCsr,
            KernelKind::PullCsc,
        ],
        "layer sizes 1/4/100/895 must force the K1→K1→K2→K3 sweep"
    );

    // Every recorded iteration must agree with re-running the policy on
    // the frontier/unvisited pair it recorded — the telemetry is an exact
    // account of what the selector saw.
    for it in &r.iterations {
        let expect = policy::choose(
            it.frontier as f64 / n as f64,
            it.unvisited as f64 / n as f64,
            KernelSet::All,
            true,
            PolicyThresholds::default(),
        );
        assert_eq!(
            it.kernel, expect,
            "iteration {}: frontier {} unvisited {}",
            it.level, it.frontier, it.unvisited
        );
    }

    // The unvisited counts telescope: each iteration's count drops by the
    // previous iteration's discoveries.
    for w in r.iterations.windows(2) {
        assert_eq!(w[1].unvisited, w[0].unvisited - w[0].discovered);
    }
    assert_eq!(r.iterations[0].unvisited, n - 1);
}

#[test]
fn engine_chrome_trace_validates_and_matches_profiler() {
    let a = layered_graph();
    let tracer = Arc::new(Tracer::new());
    let mut bfs = BfsEngine::from_csr_traced(&a, Some(Arc::clone(&tracer))).unwrap();
    bfs.run(0).unwrap();

    let mut spmspv = SpMSpVEngine::<PlusTimes>::from_csr_traced(
        &a,
        TileConfig::default(),
        Some(Arc::clone(&tracer)),
    )
    .unwrap();
    for seed in 0..3 {
        let x = random_sparse_vector(a.ncols(), 0.02, seed);
        spmspv.multiply(&x).unwrap();
    }

    let doc = chrome_trace_json(&tracer.events(), &RTX_3060);
    let check = validate_chrome_trace(&doc).expect("structurally valid");
    assert!(check.events > 0);
    assert!(check.tracks >= 2, "worker track plus modeled-device track");

    // One kernel-category begin event per profiler launch, label for label:
    // the trace and the profiler are two views of the same run.
    let v = tsv_simt::json::parse(&doc).unwrap();
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    let count_spans = |label: &str| {
        events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("B")
                    && e.get("cat").and_then(JsonValue::as_str) == Some(CAT_KERNEL)
                    && e.get("name").and_then(JsonValue::as_str) == Some(label)
            })
            .count()
    };
    for (label, entry) in spmspv.profiler().entries() {
        assert_eq!(
            count_spans(&label),
            entry.launches,
            "kernel spans for {label}"
        );
    }

    // The run summary built from the same profilers reproduces the
    // aggregate totals exactly.
    let mut summary = RunSummary::new("test", RTX_3060);
    summary.record_profiler(bfs.profiler());
    summary.record_profiler(spmspv.profiler());
    let total_launches: usize = summary.kernels().iter().map(|k| k.launches).sum();
    let profiler_launches: usize = bfs
        .profiler()
        .entries()
        .iter()
        .chain(spmspv.profiler().entries().iter())
        .map(|(_, e)| e.launches)
        .sum();
    assert_eq!(total_launches, profiler_launches);
    for k in summary.kernels() {
        let entry = bfs
            .profiler()
            .entries()
            .into_iter()
            .chain(spmspv.profiler().entries())
            .find(|(l, _)| *l == k.label)
            .map(|(_, e)| e)
            .unwrap();
        assert_eq!(
            k.modeled_ms,
            entry.modeled_secs(&RTX_3060) * 1e3,
            "{}",
            k.label
        );
        assert_eq!(k.gmem_bytes, entry.stats.gmem_bytes(), "{}", k.label);
    }
}

#[test]
fn disabled_tracing_is_free_on_the_reuse_path() {
    let a = layered_graph();
    let xs: Vec<_> = (0..20)
        .map(|s| random_sparse_vector(a.ncols(), 0.05, s))
        .collect();

    // Reference: engine with no tracer attached at all.
    let mut bare = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
    let mut bare_results = Vec::new();
    for x in &xs {
        bare_results.push(bare.multiply(x).unwrap().0);
    }

    // Same engine shape with a tracer attached but switched off: the only
    // cost allowed is the enabled-flag branch per launch, and nothing may
    // reach the ring.
    let tracer = Arc::new(Tracer::new());
    tracer.set_enabled(false);
    let mut traced = SpMSpVEngine::<PlusTimes>::from_csr_traced(
        &a,
        TileConfig::default(),
        Some(Arc::clone(&tracer)),
    )
    .unwrap();
    for (x, expect) in xs.iter().zip(&bare_results) {
        let (y, _) = traced.multiply(x).unwrap();
        assert_eq!(y.nnz(), expect.nnz());
        assert!(y.max_abs_diff(expect) == 0.0, "results must be identical");
    }

    assert!(tracer.is_empty(), "disabled tracer must record nothing");
    assert_eq!(tracer.dropped(), 0);
    // Re-enabling later works without rebuilding the engine.
    tracer.set_enabled(true);
    traced.multiply(&xs[0]).unwrap();
    assert!(!tracer.is_empty());
}

#[test]
fn disabled_sanitizer_is_free_on_the_reuse_path() {
    let a = layered_graph();
    let xs: Vec<_> = (0..20)
        .map(|s| random_sparse_vector(a.ncols(), 0.05, s))
        .collect();

    // Reference: engine with no sanitizer attached at all.
    let mut bare = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
    let mut bare_results = Vec::new();
    for x in &xs {
        bare_results.push(bare.multiply(x).unwrap().0);
    }

    // Same engine shape with a sanitizer attached but switched off: the
    // only cost allowed is the enabled-flag branch per access, and nothing
    // may reach the shadow log.
    let san = Arc::new(Sanitizer::new());
    san.set_enabled(false);
    let mut checked = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
    checked.set_sanitizer(Some(Arc::clone(&san)));
    for (x, expect) in xs.iter().zip(&bare_results) {
        let (y, _) = checked.multiply(x).unwrap();
        assert_eq!(y.nnz(), expect.nnz());
        assert!(y.max_abs_diff(expect) == 0.0, "results must be identical");
    }
    assert!(san.is_empty(), "disabled sanitizer must record nothing");
    assert_eq!(san.summary(), SanitizerSummary::default());

    // Re-enabling later works without rebuilding the engine, and the
    // engine's kernels come back clean.
    san.set_enabled(true);
    let (y, _) = checked.multiply(&xs[0]).unwrap();
    assert!(y.max_abs_diff(&bare_results[0]) == 0.0);
    let s = san.summary();
    assert!(s.launches > 0 && s.accesses > 0);
    assert_eq!(s.violations, 0, "{:?}", san.violations());
}

#[test]
fn sanitized_bfs_is_race_free_and_feeds_the_run_summary() {
    let a = layered_graph();
    let mut bare = BfsEngine::from_csr(&a).unwrap();
    let expect = bare.run(0).unwrap();

    let san = Arc::new(Sanitizer::new());
    let mut engine = BfsEngine::from_csr(&a).unwrap();
    engine.set_sanitizer(Some(Arc::clone(&san)));
    let r = engine.run(0).unwrap();
    assert_eq!(r.levels, expect.levels, "sanitized run must agree");

    let s = san.summary();
    assert!(
        s.launches as usize >= r.iterations.len(),
        "at least one epoch per iteration"
    );
    assert!(s.accesses > 0);
    assert_eq!(s.violations, 0, "{:?}", san.violations());

    let mut summary = RunSummary::new("bfs-sanitized", RTX_3060);
    summary.record_sanitizer(s);
    let v = tsv_simt::json::parse(&summary.to_json()).unwrap();
    let obj = v.get("sanitizer").unwrap();
    assert_eq!(
        obj.get("violations").and_then(JsonValue::as_u64),
        Some(0),
        "clean run must export zero violations"
    );
    assert_eq!(
        obj.get("launches").and_then(JsonValue::as_u64),
        Some(s.launches)
    );
}

#[test]
fn engine_utilization_is_bounded_and_consistent_with_profiler() {
    let a = layered_graph();
    let mut bfs = BfsEngine::from_csr(&a).unwrap();
    bfs.run(0).unwrap();
    let mut spmspv = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
    for seed in 0..3 {
        let x = random_sparse_vector(a.ncols(), 0.02, seed);
        spmspv.multiply(&x).unwrap();
    }

    let mut summary = RunSummary::new("utilization", RTX_3060);
    summary.record_profiler(bfs.profiler());
    summary.record_profiler(spmspv.profiler());

    let rows = summary.utilization();
    assert_eq!(rows.len(), summary.kernels().len());
    for (u, k) in rows.iter().zip(summary.kernels()) {
        assert_eq!(u.label, k.label);
        // Roofline fractions are time shares of the modeled launch time,
        // which is at least the max of the component terms — so every
        // fraction is a true utilization in [0, 1].
        for (f, what) in [
            (u.bw_fraction, "bw"),
            (u.flop_fraction, "flop"),
            (u.atomic_fraction, "atomic"),
        ] {
            assert!((0.0..=1.0).contains(&f), "{}: {what} fraction {f}", k.label);
        }
        // Achieved bandwidth reconstructs the profiler's byte counter.
        let modeled_secs = k.modeled_ms * 1e-3;
        assert!(modeled_secs > 0.0, "{}", k.label);
        let expect_gbps = k.gmem_bytes as f64 / modeled_secs / 1e9;
        assert!(
            (u.achieved_gbps - expect_gbps).abs() <= 1e-9 * expect_gbps.max(1.0),
            "{}: {} vs {}",
            k.label,
            u.achieved_gbps,
            expect_gbps
        );
        assert!(matches!(
            u.bound,
            BoundKind::Memory | BoundKind::Compute | BoundKind::Atomic | BoundKind::Overhead
        ));
    }

    // The JSON export carries one utilization row per kernel row, and the
    // human table names every kernel.
    let v = tsv_simt::json::parse(&summary.to_json()).unwrap();
    let util = v.get("utilization").unwrap().as_array().unwrap();
    assert_eq!(util.len(), rows.len());
    let table = summary.utilization_table();
    for k in summary.kernels() {
        assert!(table.contains(&k.label), "{} missing from table", k.label);
    }
}

#[test]
fn disabled_metrics_registry_records_nothing_during_engine_runs() {
    // The global registry is shared by every test in this binary; other
    // tests only increment (they never toggle enablement), so flipping it
    // off here and snapshotting inside the disabled window is race-free.
    let reg = tsv_simt::metrics::global();
    let a = layered_graph();
    let xs: Vec<_> = (0..5)
        .map(|s| random_sparse_vector(a.ncols(), 0.05, s))
        .collect();

    let mut engine = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
    engine.multiply(&xs[0]).unwrap();

    let multiplies = |text: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix("tsv_engine_multiplies_total "))
            .and_then(|v| v.trim().parse::<f64>().ok())
            .map(|v| v as u64)
            .expect("multiplies counter exported")
    };

    reg.set_enabled(false);
    let before = multiplies(&reg.prometheus_text());
    let mut bare_results = Vec::new();
    for x in &xs {
        bare_results.push(engine.multiply(x).unwrap().0);
    }
    let after = multiplies(&reg.prometheus_text());
    reg.set_enabled(true);

    // None of our five multiplies reached the counter: the only cost a
    // disabled registry may impose is the enabled-flag branch per event.
    // (< xs.len() rather than == before: other tests in this binary share
    // the global registry and an increment that passed its enabled check
    // just before we flipped the flag may still land inside our window.)
    assert!(
        after - before < xs.len() as u64,
        "disabled registry recorded: {before} -> {after}"
    );

    // Re-enabled, the same engine immediately records again, and the
    // results were unaffected either way.
    let (y, _) = engine.multiply(&xs[0]).unwrap();
    assert!(y.max_abs_diff(&bare_results[0]) == 0.0);
    assert!(
        multiplies(&reg.prometheus_text()) > after,
        "re-enabled registry records"
    );
}

#[test]
fn ring_overflow_is_accounted_in_the_run_summary() {
    let a = layered_graph();
    // A 4-slot ring under a full BFS (a dozen-plus spans) must overflow.
    let tracer = Arc::new(Tracer::with_capacity(4));
    let mut bfs = BfsEngine::from_csr_traced(&a, Some(Arc::clone(&tracer))).unwrap();
    bfs.run(0).unwrap();

    assert_eq!(tracer.len(), 4, "ring keeps only the newest spans");
    assert!(tracer.dropped() > 0, "older spans must have been evicted");

    let mut summary = RunSummary::new("overflow", RTX_3060);
    summary.record_trace(&tracer);
    let v = tsv_simt::json::parse(&summary.to_json()).unwrap();
    let trace = v.get("trace").unwrap();
    assert_eq!(trace.get("events").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(
        trace.get("events_dropped").and_then(JsonValue::as_u64),
        Some(tracer.dropped())
    );
}
