//! The CombBLAS SpMSpV-bucket algorithm (Azad & Buluç, IPDPS '17).
//!
//! Two phases over the CSC matrix:
//!
//! 1. **Scatter** — for every nonzero `x_j`, the entries of column `j` are
//!    scaled and appended to *buckets* that partition the row space, so
//!    that the merge phase has locality.
//! 2. **Merge** — each bucket accumulates its `(row, value)` pairs into a
//!    dense accumulator slice and emits the nonzero rows.
//!
//! This is the strongest published SpMSpV comparator in the paper (they
//! ported it to the GPU). Its weakness versus tiles is structural: the
//! scattered triples are written to and re-read from global memory, and
//! the merge revisits them — roughly 3× the traffic of the tile kernels
//! per useful flop, with no O(1) empty-region skipping.

use rayon::prelude::*;
use tsv_simt::stats::KernelStats;
use tsv_sparse::{CscMatrix, SparseError, SparseVector};

/// Number of row-space buckets per hardware thread (the CombBLAS heuristic
/// of a few buckets per core keeps the merge balanced).
const BUCKETS_PER_THREAD: usize = 4;

/// Computes `y = A x` with the bucket algorithm; returns the result and
/// counted work.
pub fn bucket_spmspv(
    a: &CscMatrix<f64>,
    x: &SparseVector<f64>,
) -> Result<(SparseVector<f64>, KernelStats), SparseError> {
    if a.ncols() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "bucket_spmspv",
            expected: a.ncols(),
            found: x.len(),
        });
    }
    let n = a.nrows();
    if n == 0 || x.nnz() == 0 {
        return Ok((SparseVector::zeros(n), KernelStats::default()));
    }

    let n_buckets = (rayon::current_num_threads() * BUCKETS_PER_THREAD).max(1);
    let bucket_len = n.div_ceil(n_buckets);

    // Phase 1: scatter. Parallel over frontier chunks; each task fills its
    // private bucket lists which are then concatenated per bucket.
    let chunk = x.nnz().div_ceil(rayon::current_num_threads().max(1)).max(1);
    let entries: Vec<(usize, f64)> = x.iter().collect();
    type ScatterPartial = (Vec<Vec<(u32, f64)>>, KernelStats);
    let partials: Vec<ScatterPartial> = entries
        .par_chunks(chunk)
        .map(|part| {
            let mut stats = KernelStats::default();
            stats.warps += 1;
            let mut local: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_buckets];
            for &(j, xj) in part {
                let (rows, vals) = a.col(j);
                stats.read_scattered(8); // col_ptr lookup
                stats.read(rows.len() * 12);
                for (&i, &aij) in rows.iter().zip(vals) {
                    let b = i as usize / bucket_len;
                    local[b].push((i, aij * xj));
                    stats.flop(1);
                    stats.write_scattered(12); // the scattered triple hits memory
                    stats.atomic(1); // the GPU port bumps the bucket tail pointer
                }
            }
            (local, stats)
        })
        .collect();

    let mut stats = KernelStats::default();
    let mut buckets: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_buckets];
    for (local, s) in partials {
        stats += s;
        for (b, mut list) in local.into_iter().enumerate() {
            buckets[b].append(&mut list);
        }
    }

    // Phase 2: merge each bucket through a dense accumulator slice.
    let merged: Vec<(Vec<(u32, f64)>, KernelStats)> = buckets
        .par_iter()
        .enumerate()
        .map(|(b, list)| {
            let mut s = KernelStats::default();
            if list.is_empty() {
                return (Vec::new(), s);
            }
            s.warps += 1;
            let lo = b * bucket_len;
            let hi = ((b + 1) * bucket_len).min(n);
            let mut acc = vec![0.0f64; hi - lo];
            let mut touched: Vec<u32> = Vec::new();
            for &(i, v) in list {
                let k = i as usize - lo;
                if acc[k] == 0.0 {
                    touched.push(i);
                }
                acc[k] += v;
                s.read(12); // re-read the scattered triple
                s.write_scattered(8); // random accumulator update within the bucket
                s.flop(1);
            }
            touched.sort_unstable();
            let out: Vec<(u32, f64)> = touched
                .into_iter()
                .filter(|&i| acc[i as usize - lo] != 0.0)
                .map(|i| (i, acc[i as usize - lo]))
                .collect();
            s.write(out.len() * 12);
            (out, s)
        })
        .collect();

    let mut indices = Vec::new();
    let mut vals = Vec::new();
    for (list, s) in merged {
        stats += s;
        for (i, v) in list {
            indices.push(i);
            vals.push(v);
        }
    }
    let y = SparseVector::from_parts(n, indices, vals)
        .expect("buckets emit sorted disjoint row ranges");
    Ok((y, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{random_sparse_vector, rmat, uniform_random, RmatConfig};
    use tsv_sparse::reference::spmspv_col;

    #[test]
    fn matches_reference() {
        let a = uniform_random(500, 500, 5000, 11).to_csr().to_csc();
        for sp in [0.001, 0.01, 0.2] {
            let x = random_sparse_vector(500, sp, 1);
            let (y, stats) = bucket_spmspv(&a, &x).unwrap();
            let expect = spmspv_col(&a, &x).unwrap();
            assert!(y.max_abs_diff(&expect) < 1e-9, "sparsity {sp}");
            assert!(stats.flops > 0);
        }
    }

    #[test]
    fn matches_reference_on_powerlaw() {
        let a = rmat(RmatConfig::new(9, 8), 5).to_csr().to_csc();
        let x = random_sparse_vector(a.ncols(), 0.05, 2);
        let (y, _) = bucket_spmspv(&a, &x).unwrap();
        let expect = spmspv_col(&a, &x).unwrap();
        assert!(y.max_abs_diff(&expect) < 1e-9);
    }

    #[test]
    fn empty_inputs() {
        let a = uniform_random(50, 50, 100, 1).to_csr().to_csc();
        let x = SparseVector::<f64>::zeros(50);
        let (y, stats) = bucket_spmspv(&a, &x).unwrap();
        assert_eq!(y.nnz(), 0);
        assert_eq!(stats, KernelStats::default());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = uniform_random(50, 50, 100, 1).to_csr().to_csc();
        let x = SparseVector::<f64>::zeros(51);
        assert!(bucket_spmspv(&a, &x).is_err());
    }

    #[test]
    fn traffic_exceeds_tiled_kernel_per_flop() {
        // The structural cost: scatter+merge touches each product at least
        // twice (write + re-read) beyond the column read.
        let a = uniform_random(400, 400, 4000, 3).to_csr().to_csc();
        let x = random_sparse_vector(400, 0.1, 1);
        let (_, stats) = bucket_spmspv(&a, &x).unwrap();
        let products = stats.flops / 2; // scatter + merge each count 1
        assert!(stats.gmem_write_bytes >= products * 12);
    }
}
