//! Systematic error-path coverage: every `SparseError` variant is
//! triggered through the public API, malformed inputs never panic, and
//! numeric edge values flow through the kernels unharmed.

use tilespmspv::baselines::{bucket_spmspv, gunrock_bfs};
use tilespmspv::prelude::*;
use tilespmspv::sparse::io::{read_edge_list, read_matrix_market_from};
use tilespmspv::sparse::reference::{bfs_levels, spmspv_col, spmspv_row};
use tilespmspv::sparse::{CooMatrix, CscMatrix, CsrMatrix, SparseError, SparseVector};

#[test]
fn every_error_variant_is_reachable() {
    // IndexOutOfBounds
    let e = CooMatrix::from_triplets(2, 2, vec![5], vec![0], vec![1.0]).unwrap_err();
    assert!(matches!(e, SparseError::IndexOutOfBounds { .. }));

    // LengthMismatch
    let e = CooMatrix::from_triplets(2, 2, vec![0], vec![0, 1], vec![1.0]).unwrap_err();
    assert!(matches!(e, SparseError::LengthMismatch { .. }));

    // MalformedPointers
    let e = CsrMatrix::<f64>::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]).unwrap_err();
    assert!(matches!(e, SparseError::MalformedPointers { .. }));

    // DimensionMismatch
    let a = tilespmspv::sparse::gen::banded(8, 2, 1.0, 1).to_csr();
    let x = SparseVector::<f64>::zeros(9);
    let e = spmspv_row(&a, &x).unwrap_err();
    assert!(matches!(e, SparseError::DimensionMismatch { .. }));

    // NotSquare
    let mut rect = CooMatrix::new(2, 3);
    rect.push(0, 2, 1.0);
    let e = bfs_levels(&rect.to_csr(), 0).unwrap_err();
    assert!(matches!(e, SparseError::NotSquare { .. }));

    // Io
    let e = tilespmspv::sparse::io::read_matrix_market(std::path::Path::new("/no/such/file"))
        .unwrap_err();
    assert!(matches!(e, SparseError::Io(_)));

    // Parse
    let e = read_matrix_market_from(b"garbage".as_slice()).unwrap_err();
    assert!(matches!(e, SparseError::Parse { .. }));

    // Every variant Displays without panicking.
    for err in [
        CooMatrix::from_triplets(1, 1, vec![9], vec![0], vec![1.0]).unwrap_err(),
        read_edge_list(b"x y".as_slice(), None, false).unwrap_err(),
    ] {
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn malformed_matrix_market_never_panics() {
    // A grab-bag of broken inputs: all must return Err, none may panic.
    let cases = [
        "",
        "\n\n\n",
        "%%MatrixMarket",
        "%%MatrixMarket matrix coordinate real general",
        "%%MatrixMarket matrix coordinate real general\n2 2",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc",
        "%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1",
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 3 1.0",
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0",
        "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1",
        "%%MatrixMarket vector coordinate real general\n2 2 1\n1 1 1",
    ];
    for (i, case) in cases.iter().enumerate() {
        assert!(
            read_matrix_market_from(case.as_bytes()).is_err(),
            "case {i} should fail: {case:?}"
        );
    }
}

#[test]
fn malformed_edge_lists_never_panic() {
    for case in ["0", "a b", "0 -1", "1.5 2", "0 1 extra_is_ok\n"] {
        // The last case has trailing tokens — accepted (weights ignored);
        // the rest must error.
        let r = read_edge_list(case.as_bytes(), None, false);
        if case.starts_with("0 1") {
            assert!(r.is_ok());
        } else {
            assert!(r.is_err(), "case {case:?}");
        }
    }
}

#[test]
fn extreme_values_flow_through_kernels() {
    // Huge, tiny and negative magnitudes survive the tiled round trip and
    // the kernels (relative comparison).
    let mut coo = CooMatrix::new(40, 40);
    coo.push(0, 0, 1e300);
    coo.push(1, 2, 1e-300);
    coo.push(17, 33, -1e150);
    coo.push(33, 17, 4.9e-324); // subnormal
    let a = coo.to_csr();
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    assert_eq!(tiled.to_csr(), a);

    let x =
        SparseVector::from_entries(40, vec![(0, 1e5), (2, -2.0), (17, 1.0), (33, 3.0)]).unwrap();
    let y = tile_spmspv(&tiled, &x).unwrap();
    let expect = spmspv_row(&a, &x).unwrap();
    for (i, v) in expect.iter() {
        let got = y.get(i).unwrap_or(0.0);
        let rel = if v == 0.0 {
            got.abs()
        } else {
            ((got - v) / v).abs()
        };
        assert!(rel < 1e-12, "row {i}: {got} vs {v}");
    }
}

#[test]
fn all_zero_rows_and_columns_everywhere() {
    // A matrix whose only entry sits in the last tile corner.
    let n = 100;
    let mut coo = CooMatrix::new(n, n);
    coo.push(n - 1, n - 1, 2.5);
    let a = coo.to_csr();
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    let x = SparseVector::from_entries(n, vec![(n as u32 - 1, 4.0)]).unwrap();
    let y = tile_spmspv(&tiled, &x).unwrap();
    assert_eq!(y.nnz(), 1);
    assert_eq!(y.get(n - 1), Some(10.0));

    let (yb, _) = bucket_spmspv(&a.to_csc(), &x).unwrap();
    assert_eq!(yb.get(n - 1), Some(10.0));
}

#[test]
fn one_by_one_matrices() {
    let mut coo = CooMatrix::new(1, 1);
    coo.push(0, 0, 3.0);
    let a = coo.to_csr();

    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    let x = SparseVector::from_entries(1, vec![(0, 2.0)]).unwrap();
    assert_eq!(tile_spmspv(&tiled, &x).unwrap().get(0), Some(6.0));

    let g = TileBfsGraph::from_csr(&a).unwrap();
    let r = tile_bfs(&g, 0, BfsOptions::default()).unwrap();
    assert_eq!(r.levels, vec![0]);
    assert_eq!(gunrock_bfs(&a, 0).unwrap().levels, vec![0]);
}

#[test]
fn csc_and_csr_validation_reject_cross_contamination() {
    // Column indices valid for one shape, invalid for another.
    let e = CscMatrix::<f64>::from_parts(3, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]);
    assert!(e.is_err());
    let e = CsrMatrix::<f64>::from_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]);
    assert!(e.is_err(), "duplicate column indices in a row");
}

#[test]
fn reference_kernels_reject_bad_dimensions_consistently() {
    let a = tilespmspv::sparse::gen::banded(10, 2, 1.0, 1).to_csr();
    let csc = a.to_csc();
    let bad = SparseVector::<f64>::zeros(11);
    assert!(spmspv_row(&a, &bad).is_err());
    assert!(spmspv_col(&csc, &bad).is_err());
    assert!(bucket_spmspv(&csc, &bad).is_err());
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    assert!(tile_spmspv(&tiled, &bad).is_err());
}
