//! Per-iteration kernel selection (§3.4's three rules).

/// The three direction-optimized kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// K1 — vector-driven push over column bitmask tiles.
    PushCsc,
    /// K2 — matrix-driven push over row bitmask tiles.
    PushCsr,
    /// K3 — pull from unvisited vertices.
    PullCsc,
}

impl KernelKind {
    /// Short label for profiler aggregation.
    pub fn label(&self) -> &'static str {
        match self {
            Self::PushCsc => "push-csc",
            Self::PushCsr => "push-csr",
            Self::PullCsc => "pull-csc",
        }
    }

    /// Namespaced `'static` label for trace events — allocation-free on
    /// the per-iteration hot path, and identical to the profiler label the
    /// engines record (`"bfs/" + label`), so trace and profiler views join.
    pub fn trace_label(&self) -> &'static str {
        match self {
            Self::PushCsc => "bfs/push-csc",
            Self::PushCsr => "bfs/push-csr",
            Self::PullCsc => "bfs/pull-csc",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PushCsc => write!(f, "Push-CSC"),
            Self::PushCsr => write!(f, "Push-CSR"),
            Self::PullCsc => write!(f, "Pull-CSC"),
        }
    }
}

/// Which kernels the policy may choose — the step-wise stacking of the
/// Figure 9 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelSet {
    /// K1 only.
    PushCscOnly,
    /// K1 + K2.
    PushOnly,
    /// K1 + K2 + K3 (the full TileBFS).
    All,
}

/// Tunable thresholds of the selection rules.
#[derive(Debug, Clone, Copy)]
pub struct PolicyThresholds {
    /// Frontier density below which Push-CSC is chosen (paper: 0.01).
    pub push_csc_density: f64,
    /// Unvisited fraction below which Pull-CSC is chosen ("the number of
    /// unvisited vertices is small").
    pub pull_unvisited_frac: f64,
}

impl Default for PolicyThresholds {
    fn default() -> Self {
        Self {
            push_csc_density: 0.01,
            pull_unvisited_frac: 0.05,
        }
    }
}

/// Selects the kernel for one iteration.
///
/// `frontier_density` is `nnz(x)/n`; `unvisited_frac` is
/// `(n - |visited|)/n`; `symmetric` gates the pull kernel (its
/// column-check is only an in-neighbor check on symmetric patterns).
pub fn choose(
    frontier_density: f64,
    unvisited_frac: f64,
    set: KernelSet,
    symmetric: bool,
    th: PolicyThresholds,
) -> KernelKind {
    match set {
        KernelSet::PushCscOnly => KernelKind::PushCsc,
        KernelSet::PushOnly => push_rule(frontier_density, th),
        KernelSet::All => {
            if symmetric && unvisited_frac < th.pull_unvisited_frac {
                KernelKind::PullCsc
            } else {
                push_rule(frontier_density, th)
            }
        }
    }
}

fn push_rule(frontier_density: f64, th: PolicyThresholds) -> KernelKind {
    if frontier_density < th.push_csc_density {
        KernelKind::PushCsc
    } else {
        KernelKind::PushCsr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TH: PolicyThresholds = PolicyThresholds {
        push_csc_density: 0.01,
        pull_unvisited_frac: 0.05,
    };

    #[test]
    fn sparse_frontier_pushes_csc() {
        assert_eq!(
            choose(0.001, 0.9, KernelSet::All, true, TH),
            KernelKind::PushCsc
        );
    }

    #[test]
    fn dense_frontier_pushes_csr() {
        assert_eq!(
            choose(0.2, 0.5, KernelSet::All, true, TH),
            KernelKind::PushCsr
        );
        // Boundary: exactly 0.01 is "greater than or equal" → Push-CSR.
        assert_eq!(
            choose(0.01, 0.5, KernelSet::All, true, TH),
            KernelKind::PushCsr
        );
    }

    #[test]
    fn few_unvisited_pulls() {
        assert_eq!(
            choose(0.2, 0.01, KernelSet::All, true, TH),
            KernelKind::PullCsc
        );
    }

    #[test]
    fn pull_disabled_for_directed_graphs() {
        assert_eq!(
            choose(0.2, 0.01, KernelSet::All, false, TH),
            KernelKind::PushCsr
        );
    }

    #[test]
    fn restricted_sets_honored() {
        assert_eq!(
            choose(0.5, 0.01, KernelSet::PushCscOnly, true, TH),
            KernelKind::PushCsc
        );
        assert_eq!(
            choose(0.5, 0.01, KernelSet::PushOnly, true, TH),
            KernelKind::PushCsr
        );
    }

    #[test]
    fn kernel_names_display() {
        assert_eq!(KernelKind::PushCsc.to_string(), "Push-CSC");
        assert_eq!(KernelKind::PushCsr.to_string(), "Push-CSR");
        assert_eq!(KernelKind::PullCsc.to_string(), "Pull-CSC");
    }
}
