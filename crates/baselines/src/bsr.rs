//! Block Sparse Row SpMV — the cuSPARSE `bsrmv` stand-in.
//!
//! cuSPARSE's BSR format stores every non-empty `b × b` block *densely*.
//! On matrices with scattered sparsity the zero-fill dominates: a block
//! holding 3 nonzeros still pays `b²` values of storage and multiply work.
//! This is the structural reason the paper measures cuSPARSE at 17×
//! slower on average, and this implementation reproduces it faithfully.

use tsv_simt::grid::launch_over_chunks;
use tsv_simt::stats::KernelStats;
use tsv_sparse::{CsrMatrix, SparseError};

/// A sparse matrix in BSR form: block-level CSR with dense blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct BsrMatrix {
    nrows: usize,
    ncols: usize,
    block: usize,
    mb: usize,
    nb: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    /// Dense block payloads, `block * block` values each, row-major.
    blocks: Vec<f64>,
}

impl BsrMatrix {
    /// Converts a CSR matrix into BSR with `block × block` dense blocks.
    pub fn from_csr(a: &CsrMatrix<f64>, block: usize) -> Result<Self, SparseError> {
        assert!(block > 0, "block size must be positive");
        let nrows = a.nrows();
        let ncols = a.ncols();
        let mb = nrows.div_ceil(block);
        let nb = ncols.div_ceil(block);

        let mut row_ptr = vec![0usize; mb + 1];
        let mut col_idx = Vec::new();
        let mut blocks = Vec::new();

        for br in 0..mb {
            let row_start = br * block;
            let row_end = (row_start + block).min(nrows);
            // Which block columns are present in this block row?
            let mut bcols: Vec<u32> = Vec::new();
            for r in row_start..row_end {
                let (cols, _) = a.row(r);
                for &c in cols {
                    bcols.push(c / block as u32);
                }
            }
            bcols.sort_unstable();
            bcols.dedup();

            // Scatter entries into the dense blocks.
            let base = blocks.len();
            blocks.resize(base + bcols.len() * block * block, 0.0);
            for r in row_start..row_end {
                let (cols, vals) = a.row(r);
                let lr = r - row_start;
                for (&c, &v) in cols.iter().zip(vals) {
                    let bc = c / block as u32;
                    let slot = bcols.binary_search(&bc).expect("collected above");
                    let lc = c as usize % block;
                    blocks[base + slot * block * block + lr * block + lc] = v;
                }
            }
            col_idx.extend_from_slice(&bcols);
            row_ptr[br + 1] = col_idx.len();
        }

        Ok(Self {
            nrows,
            ncols,
            block,
            mb,
            nb,
            row_ptr,
            col_idx,
            blocks,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Block edge length.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Number of stored blocks.
    pub fn num_blocks(&self) -> usize {
        self.col_idx.len()
    }

    /// Stored values including zero-fill (`num_blocks * block²`).
    pub fn stored_values(&self) -> usize {
        self.blocks.len()
    }

    /// Bytes of storage (the zero-fill penalty made visible).
    pub fn storage_bytes(&self) -> usize {
        self.row_ptr.len() * 8 + self.col_idx.len() * 4 + self.blocks.len() * 8
    }

    /// `y = A x` with dense `x`, one warp per block row (the structure of
    /// `cusparseDbsrmv`). Every stored block performs its full dense
    /// `block × block` multiply.
    pub fn bsrmv(&self, x: &[f64]) -> (Vec<f64>, KernelStats) {
        assert_eq!(x.len(), self.ncols, "dense vector length mismatch");
        let b = self.block;
        let mut y_padded = vec![0.0f64; self.mb * b];
        if self.mb == 0 {
            return (Vec::new(), KernelStats::default());
        }

        let stats = launch_over_chunks("baseline/bsrmv", &mut y_padded, b, |warp, y_blk| {
            let br = warp.warp_id;
            for s in self.row_ptr[br]..self.row_ptr[br + 1] {
                let bc = self.col_idx[s] as usize;
                let base_c = bc * b;
                let blk = &self.blocks[s * b * b..(s + 1) * b * b];
                warp.stats.read(4 + b * b * 8 + b * 8);
                // Dense block multiply — zeros included, as on the GPU.
                for lr in 0..b {
                    let mut sum = 0.0;
                    for lc in 0..b {
                        let c = base_c + lc;
                        let xv = if c < self.ncols { x[c] } else { 0.0 };
                        sum += blk[lr * b + lc] * xv;
                    }
                    y_blk[lr] += sum;
                }
                warp.stats.flop(2 * b * b);
                warp.stats.lane_steps += (b * b / 32).max(1) as u64 * 32;
            }
            warp.stats.write(b * 8);
        });

        y_padded.truncate(self.nrows);
        (y_padded, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{banded, random_sparse_vector, uniform_random};
    use tsv_sparse::reference::spmv;

    #[test]
    fn bsrmv_matches_reference() {
        let a = banded(100, 6, 0.7, 4).to_csr();
        let bsr = BsrMatrix::from_csr(&a, 16).unwrap();
        let x = random_sparse_vector(100, 0.3, 1).to_dense();
        let (y, _) = bsr.bsrmv(&x);
        let expect = spmv(&a, &x).unwrap();
        for i in 0..100 {
            assert!((y[i] - expect[i]).abs() < 1e-9, "row {i}");
        }
    }

    #[test]
    fn ragged_blocks_handled() {
        let a = uniform_random(70, 45, 400, 3).to_csr();
        let bsr = BsrMatrix::from_csr(&a, 16).unwrap();
        let x: Vec<f64> = (0..45).map(|i| f64::from(i) * 0.1).collect();
        let (y, _) = bsr.bsrmv(&x);
        let expect = spmv(&a, &x).unwrap();
        for i in 0..70 {
            assert!((y[i] - expect[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_fill_penalty_is_visible() {
        // Scattered matrix: blocks mostly hold one entry, so BSR stores
        // block² values per entry.
        let a = uniform_random(320, 320, 300, 9).to_csr();
        let bsr = BsrMatrix::from_csr(&a, 16).unwrap();
        assert!(
            bsr.stored_values() >= a.nnz() * 50,
            "expected massive zero-fill: {} stored for {} nnz",
            bsr.stored_values(),
            a.nnz()
        );

        // And the flop count reflects the padding, unlike the tiled kernel.
        let x = vec![1.0; 320];
        let (_, stats) = bsr.bsrmv(&x);
        assert_eq!(stats.flops as usize, 2 * bsr.stored_values());
    }

    #[test]
    fn dense_band_has_little_padding() {
        let a = banded(128, 16, 1.0, 1).to_csr();
        let bsr = BsrMatrix::from_csr(&a, 16).unwrap();
        // A dense band fills its blocks well: < 4x padding.
        assert!(bsr.stored_values() < a.nnz() * 4);
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::<f64>::zeros(32, 32);
        let bsr = BsrMatrix::from_csr(&a, 16).unwrap();
        assert_eq!(bsr.num_blocks(), 0);
        let (y, _) = bsr.bsrmv(&vec![1.0; 32]);
        assert!(y.iter().all(|&v| v == 0.0));
    }
}
