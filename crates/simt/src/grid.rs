//! Kernel launches: a grid of warps over a rayon thread pool.

use crate::stats::KernelStats;
use crate::warp::WarpCtx;
use rayon::prelude::*;

/// Launches `n_warps` warps, each running `body`. Returns the summed work
/// counters.
///
/// This is the CPU analog of `kernel<<<grid, block>>>`: every warp is an
/// independent parallel task (rayon work-stealing plays the role of the GPU
/// warp scheduler, including the load-balancing behaviour the paper's long
/// row tiles stress). The body communicates results through the atomic
/// views in [`crate::atomic`] or through pre-partitioned output — see
/// [`launch_over_chunks`] for the common row-tile-owns-output pattern.
pub fn launch<F>(n_warps: usize, body: F) -> KernelStats
where
    F: Fn(&mut WarpCtx) + Sync,
{
    (0..n_warps)
        .into_par_iter()
        .map(|warp_id| {
            let mut ctx = WarpCtx::new(warp_id);
            body(&mut ctx);
            ctx.stats
        })
        .sum()
}

/// Launches one warp per output chunk: `output` is split into disjoint
/// `chunk_len`-sized pieces and warp `i` gets exclusive mutable access to
/// piece `i`.
///
/// This matches the paper's row-tile kernels, where a warp owns the `nt`
/// output rows of its row tile and therefore needs no atomics on y.
///
/// `output.len()` must be a multiple of `chunk_len`: every caller owns a
/// padded buffer (`m_tiles * nt` for the tile kernels), and a short tail
/// chunk would mean a mis-sized buffer silently corrupting the last tile.
pub fn launch_over_chunks<T, F>(output: &mut [T], chunk_len: usize, body: F) -> KernelStats
where
    T: Send,
    F: Fn(&mut WarpCtx, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert_eq!(
        output.len() % chunk_len,
        0,
        "output length {} is not a multiple of chunk_len {}; pad the buffer",
        output.len(),
        chunk_len
    );
    output
        .par_chunks_mut(chunk_len)
        .enumerate()
        .map(|(warp_id, chunk)| {
            let mut ctx = WarpCtx::new(warp_id);
            body(&mut ctx, chunk);
            ctx.stats
        })
        .sum()
}

/// Launches one warp per *listed* unit: `output` is conceptually split into
/// `chunk_len`-sized chunks as in [`launch_over_chunks`], but only the units
/// named in `worklist` get a warp. Warp `i` runs `body(ctx, worklist[i],
/// chunk_of(worklist[i]))` with exclusive mutable access to its chunk.
///
/// This is the frontier-compacted form of the row-tile launch: the grid size
/// is the work-list length, not the number of chunks, so launched work is
/// proportional to active units. Skipped chunks are left untouched.
///
/// `worklist` must be strictly increasing and in range — the compaction
/// passes that build it produce sorted unit ids, and enforcing the order
/// here keeps warp ids (and therefore any warp-ordered merge downstream)
/// a pure function of the list.
pub fn launch_over_worklist<T, F>(
    output: &mut [T],
    chunk_len: usize,
    worklist: &[u32],
    body: F,
) -> KernelStats
where
    T: Send,
    F: Fn(&mut WarpCtx, u32, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert_eq!(
        output.len() % chunk_len,
        0,
        "output length {} is not a multiple of chunk_len {}; pad the buffer",
        output.len(),
        chunk_len
    );
    let n_units = output.len() / chunk_len;
    // Carve the listed chunks out of `output` as disjoint mutable slices;
    // the strictly-increasing check makes the split walk sound.
    let mut chunks: Vec<(u32, &mut [T])> = Vec::with_capacity(worklist.len());
    let mut rest = output;
    let mut consumed = 0usize;
    let mut prev: Option<u32> = None;
    for &u in worklist {
        assert!(
            prev.is_none_or(|p| u > p),
            "worklist must be strictly increasing (saw {u} after {prev:?})"
        );
        prev = Some(u);
        let u = u as usize;
        assert!(
            u < n_units,
            "worklist unit {u} out of range ({n_units} units)"
        );
        let (_, tail) = rest.split_at_mut((u - consumed) * chunk_len);
        let (chunk, tail) = tail.split_at_mut(chunk_len);
        chunks.push((u as u32, chunk));
        rest = tail;
        consumed = u + 1;
    }
    chunks
        .into_par_iter()
        .enumerate()
        .map(|(warp_id, (unit, chunk))| {
            let mut ctx = WarpCtx::new(warp_id);
            body(&mut ctx, unit, chunk);
            ctx.stats
        })
        .sum()
}

/// One entry of a warp's work in a binned launch: a unit, or a slice of one.
///
/// `parts == 1` means the warp handles the whole unit; otherwise the unit's
/// work was split into `parts` contiguous pieces and this warp owns piece
/// `part` (0-based). How a "piece" maps onto the unit's work items is the
/// kernel's business — [`Assignment::part_range`] gives the canonical even
/// split of an item count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Unit id, in the caller's numbering (e.g. row-tile index).
    pub unit: u32,
    /// Which piece of the unit this warp owns (0-based, `< parts`).
    pub part: u32,
    /// How many pieces the unit was split into (1 = whole unit).
    pub parts: u32,
}

impl Assignment {
    /// Splits `n_items` work items of the unit evenly across its parts and
    /// returns the half-open item range this assignment owns. Earlier parts
    /// get the remainder items, so ranges are contiguous, cover `0..n_items`
    /// exactly, and depend only on `(part, parts, n_items)`.
    pub fn part_range(&self, n_items: usize) -> std::ops::Range<usize> {
        let parts = self.parts as usize;
        let part = self.part as usize;
        let base = n_items / parts;
        let extra = n_items % parts;
        let start = part * base + part.min(extra);
        let len = base + usize::from(part < extra);
        start..start + len
    }
}

/// A deterministic warp schedule over weighted units: light units are packed
/// together until a warp holds roughly `target_weight` of work, heavy units
/// (≥ 2× target) are split across several warps.
///
/// The plan is a pure function of `(units, weights, target_weight,
/// max_parts)` — no timing, no thread ids — so two runs over the same
/// frontier produce the same warp numbering, and a merge of per-warp partial
/// results in warp order is reproducible. This is the CMRS-style schedule:
/// the packing bounds scheduling overhead on power-law-light tiles and the
/// splitting bounds the critical path on power-law-heavy ones.
#[derive(Debug, Clone, Default)]
pub struct BinPlan {
    /// CSR offsets: warp `w` executes `assignments[warp_ptr[w]..warp_ptr[w+1]]`.
    warp_ptr: Vec<u32>,
    assignments: Vec<Assignment>,
    /// Scheduled weight per warp (split units contribute `weight/parts`,
    /// remainder to earlier parts), kept for imbalance telemetry.
    warp_weight: Vec<u64>,
    /// The packing threshold the plan was built with.
    target_weight: u64,
}

impl BinPlan {
    /// Creates an empty plan; [`BinPlan::rebuild`] fills it in place so the
    /// buffers can live in a reusable workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the plan over `units` (strictly increasing ids) with
    /// per-unit work `weight`, packing light units until a warp reaches
    /// `target_weight` and splitting any unit of at least twice the target
    /// into `ceil(weight / target)` parts, capped at `max_parts`.
    ///
    /// Deterministic: one pass over `units` in order, no data-dependent
    /// tie-breaks.
    pub fn rebuild<W>(&mut self, units: &[u32], weight: W, target_weight: u64, max_parts: u32)
    where
        W: Fn(u32) -> u64,
    {
        assert!(target_weight > 0, "target_weight must be positive");
        assert!(max_parts > 0, "max_parts must be positive");
        self.warp_ptr.clear();
        self.assignments.clear();
        self.warp_weight.clear();
        self.warp_ptr.push(0);
        self.target_weight = target_weight;
        let mut acc = 0u64;
        let mut open = false; // current warp has at least one assignment
        let mut prev: Option<u32> = None;
        for &u in units {
            assert!(
                prev.is_none_or(|p| u > p),
                "units must be strictly increasing (saw {u} after {prev:?})"
            );
            prev = Some(u);
            let w = weight(u);
            if w >= 2 * target_weight {
                // Heavy unit: close the open packing warp, then one warp
                // per part.
                if open {
                    self.close_warp(&mut acc, &mut open);
                }
                let parts = w.div_ceil(target_weight).min(max_parts as u64).max(1) as u32;
                for part in 0..parts {
                    self.assignments.push(Assignment {
                        unit: u,
                        part,
                        parts,
                    });
                    let base = w / parts as u64;
                    let extra = w % parts as u64;
                    acc = base + u64::from((part as u64) < extra);
                    open = true;
                    self.close_warp(&mut acc, &mut open);
                }
            } else {
                // Light unit: pack into the current warp.
                self.assignments.push(Assignment {
                    unit: u,
                    part: 0,
                    parts: 1,
                });
                acc += w;
                open = true;
                if acc >= target_weight {
                    self.close_warp(&mut acc, &mut open);
                }
            }
        }
        if open {
            self.close_warp(&mut acc, &mut open);
        }
    }

    fn close_warp(&mut self, acc: &mut u64, open: &mut bool) {
        self.warp_ptr.push(self.assignments.len() as u32);
        self.warp_weight.push(*acc);
        *acc = 0;
        *open = false;
    }

    /// Number of warps the plan launches.
    pub fn n_warps(&self) -> usize {
        self.warp_ptr.len() - 1
    }

    /// Total number of assignments across all warps.
    pub fn n_assignments(&self) -> usize {
        self.assignments.len()
    }

    /// The assignments of warp `w`, in execution order.
    pub fn warp(&self, w: usize) -> &[Assignment] {
        &self.assignments[self.warp_ptr[w] as usize..self.warp_ptr[w + 1] as usize]
    }

    /// Scheduled weight per warp — the imbalance-histogram input.
    pub fn warp_weights(&self) -> &[u64] {
        &self.warp_weight
    }

    /// The packing threshold the plan was last built with.
    pub fn target_weight(&self) -> u64 {
        self.target_weight
    }
}

/// Launches one warp per [`BinPlan`] bin; warp `w` receives its assignment
/// slice and exclusive mutable access to `scratch[w]` — its partial-result
/// buffer. Split units make exclusive output slicing impossible (two warps
/// share one unit's output range), so results must go through the per-warp
/// buffers and be merged in warp order afterwards, the same determinism
/// contract as the scatter kernels.
///
/// `scratch` must hold at least [`BinPlan::n_warps`] slots.
pub fn launch_binned<T, F>(plan: &BinPlan, scratch: &mut [T], body: F) -> KernelStats
where
    T: Send,
    F: Fn(&mut WarpCtx, &[Assignment], &mut T) + Sync,
{
    let n = plan.n_warps();
    assert!(
        scratch.len() >= n,
        "scratch holds {} slots for {} warps",
        scratch.len(),
        n
    );
    scratch[..n]
        .par_iter_mut()
        .enumerate()
        .map(|(warp_id, slot)| {
            let mut ctx = WarpCtx::new(warp_id);
            body(&mut ctx, plan.warp(warp_id), slot);
            ctx.stats
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicWords;

    #[test]
    fn launch_runs_every_warp_once() {
        let hits = AtomicWords::zeroed(2);
        let stats = launch(128, |w| {
            hits.fetch_or(w.warp_id / 64, 1 << (w.warp_id % 64));
        });
        assert_eq!(stats.warps, 128);
        assert_eq!(hits.load(0), u64::MAX);
        assert_eq!(hits.load(1), u64::MAX);
    }

    #[test]
    fn launch_zero_warps_is_empty() {
        let stats = launch(0, |_| panic!("no warp should run"));
        assert_eq!(stats.warps, 0);
    }

    #[test]
    fn launch_sums_stats() {
        let stats = launch(10, |w| {
            w.stats.read(8);
            w.stats.flop(2);
        });
        assert_eq!(stats.gmem_read_bytes, 80);
        assert_eq!(stats.flops, 20);
    }

    #[test]
    fn chunks_partition_output_disjointly() {
        let mut out = vec![0u32; 100];
        let stats = launch_over_chunks(&mut out, 10, |w, chunk| {
            for v in chunk.iter_mut() {
                *v = w.warp_id as u32 + 1;
            }
        });
        assert_eq!(stats.warps, 10);
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 10);
        assert!(out.iter().all(|&v| v != 0));
    }

    #[test]
    #[should_panic(expected = "not a multiple of chunk_len")]
    fn chunks_reject_ragged_tail() {
        // A short tail chunk means the caller mis-sized its padded buffer;
        // fail loudly instead of corrupting the last tile.
        let mut out = vec![0u8; 25];
        launch_over_chunks(&mut out, 10, |_, _| {});
    }

    #[test]
    fn worklist_launches_only_listed_units() {
        let mut out = vec![0u32; 80];
        let worklist = [1u32, 3, 6];
        let stats = launch_over_worklist(&mut out, 10, &worklist, |w, unit, chunk| {
            assert_eq!(worklist[w.warp_id], unit);
            for v in chunk.iter_mut() {
                *v = unit + 1;
            }
        });
        assert_eq!(stats.warps, 3, "grid size is the work-list length");
        for (i, &v) in out.iter().enumerate() {
            let unit = (i / 10) as u32;
            let expect = if worklist.contains(&unit) {
                unit + 1
            } else {
                0
            };
            assert_eq!(v, expect, "element {i}");
        }
    }

    #[test]
    fn worklist_empty_launches_nothing() {
        let mut out = vec![7u8; 30];
        let stats = launch_over_worklist(&mut out, 10, &[], |_, _, _| panic!("no warp"));
        assert_eq!(stats.warps, 0);
        assert!(out.iter().all(|&v| v == 7));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn worklist_rejects_unsorted_units() {
        let mut out = vec![0u8; 30];
        launch_over_worklist(&mut out, 10, &[2, 1], |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn worklist_rejects_out_of_range_units() {
        let mut out = vec![0u8; 30];
        launch_over_worklist(&mut out, 10, &[3], |_, _, _| {});
    }

    #[test]
    fn bin_plan_packs_light_units() {
        let mut plan = BinPlan::new();
        // Four units of weight 3 against a target of 10: the first three
        // pack into one warp (3+3+3 < 10 closes only at ≥ target... 9 < 10,
        // so the fourth joins and closes it at 12).
        plan.rebuild(&[0, 1, 2, 3], |_| 3, 10, 8);
        assert_eq!(plan.n_warps(), 1);
        assert_eq!(plan.warp(0).len(), 4);
        assert!(plan.warp(0).iter().all(|a| a.parts == 1));
        assert_eq!(plan.warp_weights(), &[12]);
    }

    #[test]
    fn bin_plan_splits_heavy_units() {
        let mut plan = BinPlan::new();
        // Weight 35 at target 10 → ceil(35/10) = 4 part-warps.
        plan.rebuild(&[5], |_| 35, 10, 8);
        assert_eq!(plan.n_warps(), 4);
        for (p, w) in (0..4).zip([9u64, 9, 9, 8]) {
            let a = plan.warp(p);
            assert_eq!(
                a,
                &[Assignment {
                    unit: 5,
                    part: p as u32,
                    parts: 4
                }]
            );
            assert_eq!(plan.warp_weights()[p], w);
        }
        // The part ranges tile the unit's items exactly.
        let mut covered = Vec::new();
        for p in 0..4 {
            covered.extend(plan.warp(p)[0].part_range(35));
        }
        assert_eq!(covered, (0..35).collect::<Vec<_>>());
    }

    #[test]
    fn bin_plan_caps_split_width() {
        let mut plan = BinPlan::new();
        plan.rebuild(&[0], |_| 1000, 10, 4);
        assert_eq!(plan.n_warps(), 4, "max_parts caps the split");
    }

    #[test]
    fn bin_plan_mixes_pack_and_split_deterministically() {
        let weights = [2u64, 2, 50, 1, 1, 1, 30];
        let units: Vec<u32> = (0..weights.len() as u32).collect();
        let mut a = BinPlan::new();
        a.rebuild(&units, |u| weights[u as usize], 10, 8);
        let mut b = BinPlan::new();
        b.rebuild(&units, |u| weights[u as usize], 10, 8);
        assert_eq!(a.n_warps(), b.n_warps());
        for w in 0..a.n_warps() {
            assert_eq!(a.warp(w), b.warp(w), "plan must be reproducible");
        }
        // Unit 2 (weight 50) splits; its parts appear after the packed warp
        // holding units 0-1 and before the warp packing units 3-5.
        assert!(a.warp(0).iter().all(|x| x.parts == 1 && x.unit <= 1));
        assert!(a.warp(1).iter().all(|x| x.unit == 2 && x.parts == 5));
    }

    #[test]
    fn launch_binned_runs_every_assignment_once() {
        let weights = [2u64, 2, 50, 1, 1, 1, 30];
        let units: Vec<u32> = (0..weights.len() as u32).collect();
        let mut plan = BinPlan::new();
        plan.rebuild(&units, |u| weights[u as usize], 10, 8);
        let seen = AtomicWords::zeroed(1);
        let mut scratch = vec![0u32; plan.n_warps()];
        let stats = launch_binned(&plan, &mut scratch, |w, assignments, slot| {
            assert_eq!(assignments, plan.warp(w.warp_id));
            for a in assignments {
                *slot += 1;
                if a.parts == 1 {
                    seen.fetch_or(0, 1 << a.unit);
                }
            }
        });
        assert_eq!(stats.warps as usize, plan.n_warps());
        // Every whole (unsplit) unit was visited.
        assert_eq!(seen.load(0), 0b0111011);
        // Each warp wrote its own scratch slot: totals match assignments.
        assert_eq!(scratch.iter().sum::<u32>() as usize, plan.n_assignments());
    }

    #[test]
    fn part_range_is_an_exact_even_partition() {
        for parts in 1..7u32 {
            for n in [0usize, 1, 5, 31, 64] {
                let mut covered = Vec::new();
                for part in 0..parts {
                    let a = Assignment {
                        unit: 0,
                        part,
                        parts,
                    };
                    let r = a.part_range(n);
                    assert!(r.len() <= n / parts as usize + 1);
                    covered.extend(r);
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "parts={parts} n={n}");
            }
        }
    }
}
