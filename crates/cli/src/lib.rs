//! Library half of the `tsv` command-line tool: matrix-source parsing and
//! the subcommand implementations, kept out of `main.rs` so they are unit
//! testable.

pub mod source;

pub use source::{load_matrix, MatrixSource};

use std::time::Instant;
use tsv_baselines::{enterprise_bfs, gswitch_bfs, gunrock_bfs};
use tsv_core::exec::{BfsEngine, SpMSpVEngine};
use tsv_core::semiring::PlusTimes;
use tsv_core::spmspv::{KernelChoice, SpMSpVOptions};
use tsv_core::tile::{TileConfig, TileMatrix, TileStats};
use tsv_sparse::gen::random_sparse_vector;
use tsv_sparse::reference::bfs_edges_traversed;
use tsv_sparse::CsrMatrix;

/// Error type of the CLI: either a sparse-layer error or a usage problem.
#[derive(Debug)]
pub enum CliError {
    /// Underlying matrix error.
    Sparse(tsv_sparse::SparseError),
    /// Bad arguments or spec.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Sparse(e) => write!(f, "{e}"),
            CliError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<tsv_sparse::SparseError> for CliError {
    fn from(e: tsv_sparse::SparseError) -> Self {
        CliError::Sparse(e)
    }
}

/// `tsv info <matrix>`: shape, nnz, symmetry, tile statistics.
pub fn cmd_info(a: &CsrMatrix<f64>) -> String {
    let stats = TileStats::for_matrix(a);
    let sym = if a.nrows() == a.ncols() {
        let t = a.transpose();
        if t.row_ptr() == a.row_ptr() && t.col_idx() == a.col_idx() {
            "symmetric pattern"
        } else {
            "asymmetric pattern"
        }
    } else {
        "rectangular"
    };
    let mut out = String::new();
    out.push_str(&format!(
        "shape       {} x {} ({sym})\nnnz         {}  ({:.3} per row)\n",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.nnz() as f64 / a.nrows().max(1) as f64
    ));
    out.push_str(&format!(
        "tiles 16    {} ({:.4}% of grid)\ntiles 32    {} ({:.4}% of grid)\ntiles 64    {} ({:.4}% of grid)\n",
        stats.tiles16,
        100.0 * stats.occupancy(tsv_core::tile::TileSize::S16),
        stats.tiles32,
        100.0 * stats.occupancy(tsv_core::tile::TileSize::S32),
        stats.tiles64,
        100.0 * stats.occupancy(tsv_core::tile::TileSize::S64),
    ));
    out
}

/// `tsv spmspv <matrix> --sparsity S`: one product with timing and report.
pub fn cmd_spmspv(
    a: &CsrMatrix<f64>,
    sparsity: f64,
    seed: u64,
    kernel: KernelChoice,
) -> Result<String, CliError> {
    let tiled = TileMatrix::from_csr(a, TileConfig::default())?;
    let x = random_sparse_vector(a.ncols(), sparsity, seed);
    let opts = SpMSpVOptions {
        kernel,
        ..Default::default()
    };
    let mut engine = SpMSpVEngine::<PlusTimes>::with_options(tiled, opts);
    let t = Instant::now();
    let (y, report) = engine.multiply(&x)?;
    let dt = t.elapsed();
    Ok(format!(
        "x: {} nonzeros ({:.4}% dense)\ny: {} nonzeros\nkernel: {}\ntime: {:.3} ms   flops: {}   gmem: {} bytes\n",
        x.nnz(),
        100.0 * x.sparsity(),
        y.nnz(),
        report.kernel,
        dt.as_secs_f64() * 1e3,
        report.stats.flops,
        report.stats.gmem_bytes(),
    ))
}

/// `tsv bfs <matrix> --source V --algo A`: one traversal with summary.
pub fn cmd_bfs(a: &CsrMatrix<f64>, source: usize, algo: &str) -> Result<String, CliError> {
    let t = Instant::now();
    let levels = match algo {
        "tile" => {
            let mut engine = BfsEngine::from_csr(a)?;
            engine.run(source)?.levels
        }
        "gunrock" => gunrock_bfs(a, source)?.levels,
        "gswitch" => gswitch_bfs(a, source)?.levels,
        "enterprise" => enterprise_bfs(a, source)?.levels,
        other => {
            return Err(CliError::Usage(format!(
                "unknown algorithm {other:?} (tile|gunrock|gswitch|enterprise)"
            )))
        }
    };
    let dt = t.elapsed();
    let reached = levels.iter().filter(|&&l| l >= 0).count();
    let depth = *levels.iter().max().unwrap_or(&0);
    let edges = bfs_edges_traversed(a, &levels);
    Ok(format!(
        "algorithm: {algo}\nreached: {reached}/{} vertices, depth {depth}\nedges traversed: {edges}\ntime (incl. format build): {:.3} ms\n",
        a.nrows(),
        dt.as_secs_f64() * 1e3,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::banded;

    #[test]
    fn info_reports_shape_and_tiles() {
        let a = banded(100, 4, 0.8, 1).to_csr();
        let s = cmd_info(&a);
        assert!(s.contains("100 x 100"));
        assert!(s.contains("symmetric pattern"));
        assert!(s.contains("tiles 16"));
    }

    #[test]
    fn spmspv_runs_and_reports() {
        let a = banded(200, 5, 0.8, 1).to_csr();
        let s = cmd_spmspv(&a, 0.05, 1, KernelChoice::Auto).unwrap();
        assert!(s.contains("kernel:"));
        assert!(s.contains("nonzeros"));
    }

    #[test]
    fn bfs_all_algorithms_run() {
        let a = banded(150, 4, 0.9, 2).to_csr();
        for algo in ["tile", "gunrock", "gswitch", "enterprise"] {
            let s = cmd_bfs(&a, 0, algo).unwrap();
            assert!(s.contains("reached: 150/150"), "{algo}: {s}");
        }
        assert!(cmd_bfs(&a, 0, "nope").is_err());
    }
}
