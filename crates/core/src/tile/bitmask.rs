//! Bitmask tile storage for TileBFS (§3.2.3).
//!
//! BFS only needs the *pattern* of the adjacency matrix, so each non-empty
//! tile is compressed to `nt` machine words: in the CSR orientation (the
//! paper's `A2`) word `r` holds the columns of intra-tile row `r`; in the
//! CSC orientation (`A1`) word `c` holds the rows of intra-tile column `c`.
//! Both orientations are materialized — Push-CSR walks `A2`, Push-CSC and
//! Pull-CSC walk `A1`. For an undirected graph the two word arrays hold the
//! same information (the paper's "save about half of the storage" remark);
//! they are kept separate here because their tile orderings differ.
//!
//! Tiles with at most `extract_threshold` entries are diverted to a plain
//! edge list traversed by a separate per-iteration pass (the hybrid scheme
//! that the paper delegates to GSwitch).

use rayon::prelude::*;
use tsv_sparse::{CsrMatrix, SparseError};

/// Which traversal orientation of the bit tiles to read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `A2`: row-compressed words, tile-level CSR.
    RowMajor,
    /// `A1`: column-compressed words, tile-level CSC.
    ColMajor,
}

/// The adjacency pattern of a square matrix in bitmask tiles, in both
/// orientations, plus the extracted very-sparse edge list.
#[derive(Debug, Clone)]
pub struct BitTileMatrix {
    n: usize,
    nt: usize,
    n_tiles: usize,
    // CSR orientation (A2).
    csr_ptr: Vec<usize>,
    csr_coltile: Vec<u32>,
    csr_words: Vec<u64>,
    // CSC orientation (A1).
    csc_ptr: Vec<usize>,
    csc_rowtile: Vec<u32>,
    csc_words: Vec<u64>,
    /// Extracted entries indexed by source: `extra_src_ptr[c]..[c+1]`
    /// slices `extra_dst`, the rows reached from vertex `c` (matrix
    /// convention `y = A x`). Source-indexed so the per-iteration hybrid
    /// pass is frontier-driven, like the GSwitch traversal it stands for.
    extra_src_ptr: Vec<usize>,
    extra_dst: Vec<u32>,
    /// Entries held in tiles.
    tiled_nnz: usize,
}

struct TileRec {
    rt: u32,
    ct: u32,
    row_words: Vec<u64>,
    col_words: Vec<u64>,
}

impl BitTileMatrix {
    /// Builds the bitmask structure from the pattern of a square matrix.
    ///
    /// `nt` must be 32 or 64 (one tile row/column per machine word); the
    /// paper picks 64 for orders above 10 000 and 32 otherwise
    /// ([`crate::tile::TileSize::for_bfs`]).
    pub fn from_csr<T: Copy + Sync>(
        a: &CsrMatrix<T>,
        nt: usize,
        extract_threshold: usize,
    ) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare {
                nrows: a.nrows(),
                ncols: a.ncols(),
            });
        }
        assert!(nt == 32 || nt == 64, "bit tiles require nt of 32 or 64");
        let n = a.nrows();
        let n_tiles = n.div_ceil(nt);

        // Per row tile: bucket entries by column tile and build both word
        // orientations of each surviving tile.
        let per_rt: Vec<RowTileParts> = (0..n_tiles)
            .into_par_iter()
            .map(|rt| build_row_tile(a, rt, nt, extract_threshold))
            .collect();

        let num_tiles: usize = per_rt.iter().map(|(t, _)| t.len()).sum();
        let mut tiles: Vec<TileRec> = Vec::with_capacity(num_tiles);
        let mut extra_edges: Vec<(u32, u32)> = Vec::new();
        for (t, e) in per_rt {
            tiles.extend(t);
            extra_edges.extend(e);
        }
        // Index the extracted edges by source vertex (the column).
        extra_edges.sort_unstable_by_key(|&(r, c)| (c, r));
        let mut extra_src_ptr = vec![0usize; n + 1];
        for &(_, c) in &extra_edges {
            extra_src_ptr[c as usize + 1] += 1;
        }
        for i in 0..n {
            extra_src_ptr[i + 1] += extra_src_ptr[i];
        }
        let extra_dst: Vec<u32> = extra_edges.iter().map(|&(r, _)| r).collect();
        let tiled_nnz = tiles
            .iter()
            .map(|t| {
                t.row_words
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>()
            })
            .sum();

        // CSR arrays: tiles are already in (rt, ct) order.
        let mut csr_ptr = vec![0usize; n_tiles + 1];
        let mut csr_coltile = Vec::with_capacity(num_tiles);
        let mut csr_words = Vec::with_capacity(num_tiles * nt);
        for t in &tiles {
            csr_ptr[t.rt as usize + 1] += 1;
            csr_coltile.push(t.ct);
            csr_words.extend_from_slice(&t.row_words);
        }
        for i in 0..n_tiles {
            csr_ptr[i + 1] += csr_ptr[i];
        }

        // CSC arrays: stable re-sort by (ct, rt).
        let mut order: Vec<u32> = (0..num_tiles as u32).collect();
        order.sort_by_key(|&i| (tiles[i as usize].ct, tiles[i as usize].rt));
        let mut csc_ptr = vec![0usize; n_tiles + 1];
        let mut csc_rowtile = Vec::with_capacity(num_tiles);
        let mut csc_words = Vec::with_capacity(num_tiles * nt);
        for &i in &order {
            let t = &tiles[i as usize];
            csc_ptr[t.ct as usize + 1] += 1;
            csc_rowtile.push(t.rt);
            csc_words.extend_from_slice(&t.col_words);
        }
        for i in 0..n_tiles {
            csc_ptr[i + 1] += csc_ptr[i];
        }

        Ok(Self {
            n,
            nt,
            n_tiles,
            csr_ptr,
            csr_coltile,
            csr_words,
            csc_ptr,
            csc_rowtile,
            csc_words,
            extra_src_ptr,
            extra_dst,
            tiled_nnz,
        })
    }

    /// Matrix order (vertex count).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tile edge length (32 or 64).
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Number of tile rows/columns.
    pub fn n_tiles(&self) -> usize {
        self.n_tiles
    }

    /// Number of stored (non-extracted) tiles.
    pub fn num_tiles(&self) -> usize {
        self.csr_coltile.len()
    }

    /// Entries stored in tiles.
    pub fn tiled_nnz(&self) -> usize {
        self.tiled_nnz
    }

    /// Number of extracted entries.
    pub fn extra_nnz(&self) -> usize {
        self.extra_dst.len()
    }

    /// Rows reachable from vertex `c` through extracted entries.
    #[inline]
    pub fn extra_out(&self, c: usize) -> &[u32] {
        &self.extra_dst[self.extra_src_ptr[c]..self.extra_src_ptr[c + 1]]
    }

    /// Iterates the extracted entries as `(row, col)` pairs.
    pub fn extra_edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.n).flat_map(move |c| self.extra_out(c).iter().map(move |&r| (r, c as u32)))
    }

    /// Total entries (tiled + extracted).
    pub fn nnz(&self) -> usize {
        self.tiled_nnz + self.extra_dst.len()
    }

    /// Stored-tile index range of row tile `rt` (CSR orientation).
    #[inline]
    pub fn row_tile_range(&self, rt: usize) -> std::ops::Range<usize> {
        self.csr_ptr[rt]..self.csr_ptr[rt + 1]
    }

    /// Column-tile index of CSR-orientation tile `t`.
    #[inline]
    pub fn csr_col_tile(&self, t: usize) -> usize {
        self.csr_coltile[t] as usize
    }

    /// Row words of CSR-orientation tile `t`: word `r` has bit `c` set when
    /// entry `(r, c)` exists in the tile.
    #[inline]
    pub fn csr_tile_words(&self, t: usize) -> &[u64] {
        &self.csr_words[t * self.nt..(t + 1) * self.nt]
    }

    /// Stored-tile index range of column tile `ct` (CSC orientation).
    #[inline]
    pub fn col_tile_range(&self, ct: usize) -> std::ops::Range<usize> {
        self.csc_ptr[ct]..self.csc_ptr[ct + 1]
    }

    /// Row-tile index of CSC-orientation tile `t`.
    #[inline]
    pub fn csc_row_tile(&self, t: usize) -> usize {
        self.csc_rowtile[t] as usize
    }

    /// Column words of CSC-orientation tile `t`: word `c` has bit `r` set
    /// when entry `(r, c)` exists in the tile.
    #[inline]
    pub fn csc_tile_words(&self, t: usize) -> &[u64] {
        &self.csc_words[t * self.nt..(t + 1) * self.nt]
    }

    /// Bytes the format occupies, counting words at their physical width
    /// (`nt / 8` bytes per word, since `nt = 32` tiles store `u32`s).
    pub fn storage_bytes(&self) -> usize {
        let word_bytes = self.nt / 8;
        (self.csr_ptr.len() + self.csc_ptr.len()) * 8
            + (self.csr_coltile.len() + self.csc_rowtile.len()) * 4
            + (self.csr_words.len() + self.csc_words.len()) * word_bytes
            + self.extra_src_ptr.len() * 8
            + self.extra_dst.len() * 4
    }
}

/// One row tile's build output: its surviving tile records plus the
/// `(global row, global col)` pairs extracted to the side COO part.
type RowTileParts = (Vec<TileRec>, Vec<(u32, u32)>);

fn build_row_tile<T: Copy>(
    a: &CsrMatrix<T>,
    rt: usize,
    nt: usize,
    extract_threshold: usize,
) -> RowTileParts {
    let row_start = rt * nt;
    let row_end = (row_start + nt).min(a.nrows());

    let mut entries: Vec<(u32, u8, u8)> = Vec::new();
    for r in row_start..row_end {
        let (cols, _) = a.row(r);
        let lr = (r - row_start) as u8;
        for &c in cols {
            entries.push(((c as usize / nt) as u32, lr, (c as usize % nt) as u8));
        }
    }
    entries.sort_unstable();

    let mut tiles = Vec::new();
    let mut extra = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        let ct = entries[i].0;
        let mut j = i;
        while j < entries.len() && entries[j].0 == ct {
            j += 1;
        }
        let group = &entries[i..j];
        if group.len() <= extract_threshold {
            for &(_, lr, lc) in group {
                extra.push((
                    (row_start + lr as usize) as u32,
                    (ct as usize * nt + lc as usize) as u32,
                ));
            }
        } else {
            let mut row_words = vec![0u64; nt];
            let mut col_words = vec![0u64; nt];
            for &(_, lr, lc) in group {
                row_words[lr as usize] |= 1u64 << lc;
                col_words[lc as usize] |= 1u64 << lr;
            }
            tiles.push(TileRec {
                rt: rt as u32,
                ct,
                row_words,
                col_words,
            });
        }
        i = j;
    }
    (tiles, extra)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{banded, rmat, RmatConfig};
    use tsv_sparse::CooMatrix;

    fn pattern_from_bit(m: &BitTileMatrix) -> Vec<(usize, usize)> {
        let nt = m.nt();
        let mut out = Vec::new();
        for rt in 0..m.n_tiles() {
            for t in m.row_tile_range(rt) {
                let ct = m.csr_col_tile(t);
                let words = m.csr_tile_words(t);
                for (lr, &w) in words.iter().enumerate() {
                    for lc in crate::tile::bitvec::iter_bits(w) {
                        out.push((rt * nt + lr, ct * nt + lc));
                    }
                }
            }
        }
        for (r, c) in m.extra_edges() {
            out.push((r as usize, c as usize));
        }
        out.sort_unstable();
        out
    }

    fn pattern_from_csc(m: &BitTileMatrix) -> Vec<(usize, usize)> {
        let nt = m.nt();
        let mut out = Vec::new();
        for ct in 0..m.n_tiles() {
            for t in m.col_tile_range(ct) {
                let rt = m.csc_row_tile(t);
                let words = m.csc_tile_words(t);
                for (lc, &w) in words.iter().enumerate() {
                    for lr in crate::tile::bitvec::iter_bits(w) {
                        out.push((rt * nt + lr, ct * nt + lc));
                    }
                }
            }
        }
        for (r, c) in m.extra_edges() {
            out.push((r as usize, c as usize));
        }
        out.sort_unstable();
        out
    }

    fn pattern_from_csr(a: &CsrMatrix<f64>) -> Vec<(usize, usize)> {
        let mut out: Vec<_> = a.iter().map(|(r, c, _)| (r, c)).collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn both_orientations_reproduce_the_pattern() {
        let a = banded(90, 5, 0.7, 3).to_csr();
        for nt in [32, 64] {
            let m = BitTileMatrix::from_csr(&a, nt, 0).unwrap();
            assert_eq!(pattern_from_bit(&m), pattern_from_csr(&a), "csr nt={nt}");
            assert_eq!(pattern_from_csc(&m), pattern_from_csr(&a), "csc nt={nt}");
            assert_eq!(m.nnz(), a.nnz());
        }
    }

    #[test]
    fn extraction_shared_between_orientations() {
        let cfg = RmatConfig::new(9, 3);
        let a = rmat(cfg, 4).to_csr();
        let m = BitTileMatrix::from_csr(&a, 32, 2).unwrap();
        assert!(m.extra_nnz() > 0, "rmat should produce sparse tiles");
        assert_eq!(pattern_from_bit(&m), pattern_from_csr(&a));
        assert_eq!(pattern_from_csc(&m), pattern_from_csr(&a));
        assert_eq!(m.tiled_nnz() + m.extra_nnz(), a.nnz());
    }

    #[test]
    fn rejects_non_square() {
        let mut coo = CooMatrix::new(4, 6);
        coo.push(1, 5, 1.0);
        let a = coo.to_csr();
        assert!(matches!(
            BitTileMatrix::from_csr(&a, 32, 0),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn word_semantics_match_figure_5() {
        // The 16-vertex example of Fig. 5 uses 4x4 tiles; we use 32 here,
        // so build a small two-tile case instead: edge (0, 33) lands in
        // tile (0, 1) with lr=0, lc=1.
        let mut coo = CooMatrix::new(64, 64);
        coo.push(0, 33, 1.0);
        coo.push(0, 34, 1.0);
        coo.push(5, 33, 1.0);
        coo.push(40, 2, 1.0);
        let a = coo.to_csr();
        let m = BitTileMatrix::from_csr(&a, 32, 0).unwrap();
        assert_eq!(m.num_tiles(), 2);

        // CSR orientation, tile (0, 1): row word 0 has bits 1 and 2.
        let t01 = m.row_tile_range(0).next().unwrap();
        assert_eq!(m.csr_col_tile(t01), 1);
        let words = m.csr_tile_words(t01);
        assert_eq!(words[0], 0b110);
        assert_eq!(words[5], 0b010);

        // CSC orientation of the same tile: column word 1 has bits 0 and 5.
        let t = m.col_tile_range(1).next().unwrap();
        assert_eq!(m.csc_row_tile(t), 0);
        let cwords = m.csc_tile_words(t);
        assert_eq!(cwords[1], 0b100001);
        assert_eq!(cwords[2], 0b000001);
    }

    #[test]
    fn ragged_order_handled() {
        let a = banded(70, 3, 1.0, 1).to_csr();
        let m = BitTileMatrix::from_csr(&a, 64, 0).unwrap();
        assert_eq!(m.n_tiles(), 2);
        assert_eq!(pattern_from_bit(&m), pattern_from_csr(&a));
    }

    #[test]
    fn storage_accounts_word_width() {
        let a = banded(128, 4, 1.0, 1).to_csr();
        let m32 = BitTileMatrix::from_csr(&a, 32, 0).unwrap();
        let m64 = BitTileMatrix::from_csr(&a, 64, 0).unwrap();
        assert!(m32.storage_bytes() > 0);
        assert!(m64.storage_bytes() > 0);
    }

    #[test]
    fn undirected_graph_words_coincide_per_tile() {
        // For a symmetric matrix, the diagonal tile's row words equal its
        // column words — the storage-sharing observation of §3.2.3.
        let a = banded(32, 4, 0.8, 6).to_csr();
        let m = BitTileMatrix::from_csr(&a, 32, 0).unwrap();
        assert_eq!(m.num_tiles(), 1);
        assert_eq!(m.csr_tile_words(0), m.csc_tile_words(0));
    }
}
