//! Reverse Cuthill-McKee ordering built on TileBFS level sets.
//!
//! RCM is one of the SpMSpV applications the paper's introduction motivates
//! (via Azad et al., IPDPS '17): reordering concentrates a sparse matrix's
//! entries near the diagonal, which directly improves the tiled format
//! (fewer, denser tiles). The algorithm lives in `tilespmspv::apps::rcm`;
//! this example scrambles a road-network graph and measures what the
//! reordering buys back.
//!
//! ```text
//! cargo run --release --example rcm_ordering
//! ```

use tilespmspv::apps::rcm::{bandwidth, permute_symmetric, rcm_order};
use tilespmspv::core::tile::tile_count;
use tilespmspv::sparse::gen::geometric_graph;
use tilespmspv::sparse::{CooMatrix, CsrMatrix};

/// Destroys index locality by relabeling vertices pseudo-randomly — the
/// state a matrix arrives in before fill-reducing reordering.
fn shuffle_labels(a: &CsrMatrix<f64>) -> CsrMatrix<f64> {
    let n = a.nrows();
    let mut relabel: Vec<usize> = (0..n).collect();
    let mut state = 0x9E3779B97F4A7C15u64;
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (state >> 33) as usize % (i + 1);
        relabel.swap(i, j);
    }
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
    for (r, c, v) in a.iter() {
        coo.push(relabel[r], relabel[c], v);
    }
    coo.to_csr()
}

fn main() {
    // A road-network-like graph with its spatial locality scrambled away.
    let a = shuffle_labels(&geometric_graph(20_000, 6.0, 3).to_csr());

    let before = bandwidth(&a);
    let tiles_before = tile_count(&a, 16);

    let perm = rcm_order(&a).expect("square symmetric input");
    let reordered = permute_symmetric(&a, &perm);

    let after = bandwidth(&reordered);
    let tiles_after = tile_count(&reordered, 16);

    println!("graph: {} vertices, {} edges", a.nrows(), a.nnz());
    println!("bandwidth:       {before:>8} -> {after:>8}");
    println!("16x16 tiles:     {tiles_before:>8} -> {tiles_after:>8}");
    println!(
        "tile count reduced {:.1}x — fewer, denser tiles for TileSpMSpV",
        tiles_before as f64 / tiles_after as f64
    );
    assert!(
        tiles_after * 2 < tiles_before,
        "RCM should substantially densify a scrambled spatial graph"
    );
}
