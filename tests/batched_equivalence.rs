//! Differential suite for the batched multi-frontier engine: over the
//! conformance corpus, one batched multiply of `B` frontiers must
//! reproduce `B` sequential row-tile multiplies of the same frontiers —
//! bitwise for PlusTimes (the batched slab folds each lane in the
//! sequential kernel's order), semantically for MinPlus and OrAnd —
//! across backend × format × balance × B ∈ {1, 2, 7, 32}.
//!
//! `TSV_NATIVE_THREADS` sizes the native pool (CI certifies 1 and 4).

mod common;

use common::{backends, batch_bits, conformance_zoo, formats, frontier_batch};
use tilespmspv::core::exec::{BatchedSpMSpVEngine, SpMSpVEngine};
use tilespmspv::core::semiring::{MinPlus, OrAnd, PlusTimes, Semiring};
use tilespmspv::core::spmspv::{Balance, KernelChoice, SpMSpVOptions};
use tilespmspv::core::tile::TileConfig;
use tilespmspv::simt::ExecBackend;
use tilespmspv::sparse::{CsrMatrix, SparseVector};

const WIDTHS: [usize; 4] = [1, 2, 7, 32];

/// `B` sequential multiplies through the ordinary engine: the reference
/// the batched pass must reproduce.
fn sequential<S: Semiring>(
    a: &CsrMatrix<S::T>,
    xs: &[SparseVector<S::T>],
    opts: SpMSpVOptions,
    backend: &ExecBackend,
) -> Vec<SparseVector<S::T>>
where
    S::T: Default,
{
    let mut engine = SpMSpVEngine::<S>::from_csr_with(a, TileConfig::default(), opts).unwrap();
    engine.set_backend(backend.clone());
    xs.iter().map(|x| engine.multiply(x).unwrap().0).collect()
}

/// One batched multiply of the whole frontier batch.
fn batched<S: Semiring>(
    a: &CsrMatrix<S::T>,
    xs: &[SparseVector<S::T>],
    opts: SpMSpVOptions,
    backend: &ExecBackend,
) -> Vec<SparseVector<S::T>>
where
    S::T: Default,
{
    let mut engine =
        BatchedSpMSpVEngine::<S>::from_csr_with(a, TileConfig::default(), opts).unwrap();
    engine.set_backend(backend.clone());
    engine.multiply(xs).unwrap().0
}

/// Sweeps backend × format × balance × width for one matrix, handing each
/// (opts, backend, frontier batch) combination to `check`.
fn sweep(
    name: &str,
    ncols: usize,
    mut check: impl FnMut(&str, SpMSpVOptions, &ExecBackend, &[SparseVector<f64>]),
) {
    for backend in &backends() {
        for &format in &formats() {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let opts = SpMSpVOptions {
                    kernel: KernelChoice::RowTile,
                    balance,
                    format,
                    ..Default::default()
                };
                for width in WIDTHS {
                    let xs = frontier_batch(ncols, width, 31 + width as u64);
                    let ctx = format!(
                        "{name} {balance:?} {format} backend {} B={width}",
                        backend.describe()
                    );
                    check(&ctx, opts, backend, &xs);
                }
            }
        }
    }
}

#[test]
fn batched_plus_times_is_bitwise_identical_to_sequential() {
    for (name, a) in conformance_zoo() {
        sweep(&name, a.ncols(), |ctx, opts, backend, xs| {
            let want = sequential::<PlusTimes>(&a, xs, opts, backend);
            let got = batched::<PlusTimes>(&a, xs, opts, backend);
            assert_eq!(got.len(), xs.len(), "{ctx}: lane count");
            assert_eq!(
                batch_bits(&got),
                batch_bits(&want),
                "{ctx}: batched must be bit-identical to sequential"
            );
        });
    }
}

#[test]
fn batched_min_plus_is_semantically_equal_to_sequential() {
    // min is selective and each product a single addition, so fold-order
    // permutations cannot move a value: the agreement is exact.
    for (name, a) in conformance_zoo() {
        sweep(&name, a.ncols(), |ctx, opts, backend, xs| {
            let want = sequential::<MinPlus>(&a, xs, opts, backend);
            let got = batched::<MinPlus>(&a, xs, opts, backend);
            for (q, (g, w)) in got.iter().zip(&want).enumerate() {
                assert_eq!(g.indices(), w.indices(), "{ctx} lane {q}: support");
                for ((i, gv), (_, wv)) in g.iter().zip(w.iter()) {
                    assert_eq!(gv, wv, "{ctx} lane {q} row {i}");
                }
            }
        });
    }
}

#[test]
fn batched_or_and_is_semantically_equal_to_sequential() {
    for (name, a) in conformance_zoo() {
        let b: CsrMatrix<bool> = CsrMatrix::from_parts(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            vec![true; a.nnz()],
        )
        .unwrap();
        sweep(&name, a.ncols(), |ctx, opts, backend, xs| {
            let xbs: Vec<SparseVector<bool>> = xs
                .iter()
                .map(|x| {
                    SparseVector::from_parts(x.len(), x.indices().to_vec(), vec![true; x.nnz()])
                        .unwrap()
                })
                .collect();
            let want = sequential::<OrAnd>(&b, &xbs, opts, backend);
            let got = batched::<OrAnd>(&b, &xbs, opts, backend);
            assert_eq!(got, want, "{ctx}: batched OrAnd diverged");
        });
    }
}

/// Width 1 is the degenerate batch: it must match the sequential engine
/// exactly AND report a single per-query row — a cheap sanity anchor for
/// the wider sweeps above.
#[test]
fn width_one_batches_degenerate_to_single_multiplies() {
    let zoo = conformance_zoo();
    let (_, a) = zoo
        .iter()
        .find(|(name, _)| name == "banded")
        .expect("the zoo names a banded matrix");
    let xs = vec![tilespmspv::sparse::gen::random_sparse_vector(
        a.ncols(),
        0.1,
        77,
    )];
    let opts = SpMSpVOptions {
        kernel: KernelChoice::RowTile,
        ..Default::default()
    };
    let mut engine =
        BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(a, TileConfig::default(), opts).unwrap();
    let (ys, report) = engine.multiply(&xs).unwrap();
    assert_eq!(report.batch, 1);
    assert_eq!(report.per_query.len(), 1);
    let want = sequential::<PlusTimes>(a, &xs, opts, &ExecBackend::model());
    assert_eq!(batch_bits(&ys), batch_bits(&want));
}
