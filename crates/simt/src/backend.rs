//! Execution backends: the substrate a tile kernel launches on.
//!
//! The paper's kernels are written against four launch shapes — a plain
//! grid, a grid over exclusive output chunks, a frontier-compacted work
//! list, and a binned plan with per-warp scratch — plus the atomic views
//! in [`crate::atomic`]. [`Backend`] abstracts exactly that surface, so
//! the *same* kernel bodies run on two substrates:
//!
//! * [`ModelBackend`] — the modeled SIMT device: warps are rayon tasks on
//!   the global pool, work counters feed the roofline time model, and the
//!   [`crate::grid::SchedulePolicy`] permutation plus the
//!   [`crate::sanitize`] shadow log are available for race and
//!   determinism certification.
//! * [`NativeBackend`] — the same kernels as real parallel CPU code:
//!   warps are rayon tasks on a backend-owned pool of a configurable
//!   size, `std::sync::atomic` carries the semiring atomics, and wall
//!   time is honest. No schedule permutation, no sanitizer — the modeled
//!   backend certifies the kernels, the native backend runs them fast.
//!
//! Determinism carries over structurally: chunk and work-list launches
//! hand each warp an exclusive `&mut` slice, scatter kernels buffer
//! `(index, value)` pairs per warp and merge them *after* the launch in
//! logical warp order, and warp ids are logical (chunk index, work-list
//! position, bin number) on both substrates. PlusTimes output is
//! therefore bit-identical across backends and across native thread
//! counts.
//!
//! The trait's launch methods are generic (each takes the kernel body as
//! a closure), so `Backend` is not object-safe; code that must choose a
//! backend at runtime holds the [`ExecBackend`] enum, which implements
//! the trait by delegation.

use crate::grid::{self, Assignment, BinPlan};
use crate::stats::KernelStats;
use crate::warp::WarpCtx;
use rayon::prelude::*;
use std::sync::Arc;

/// Which substrate a backend runs on — the runtime-queryable identity
/// behind the generic trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The modeled SIMT device (counted work, modeled time).
    Model,
    /// Native parallel CPU execution (real threads, honest wall time).
    Native,
}

/// An execution substrate for the tile kernels.
///
/// The four launch methods mirror the free functions in [`crate::grid`]
/// and share their contracts: logical warp ids, exclusive chunk
/// ownership, strictly-increasing work lists, per-warp scratch under a
/// [`BinPlan`]. Atomics are not part of the trait — both substrates use
/// the `std::sync::atomic` views in [`crate::atomic`] directly, which on
/// the model stand in for the device's global-memory atomics.
pub trait Backend: Send + Sync {
    /// Which substrate this is.
    fn kind(&self) -> BackendKind;

    /// Short name for telemetry and reports (`"model"` / `"native"`).
    fn name(&self) -> &'static str;

    /// Worker threads the backend fans out over.
    fn threads(&self) -> usize;

    /// Launches `n_warps` warps, each running `body`; returns the summed
    /// work counters. See [`grid::launch`].
    fn launch<F>(&self, n_warps: usize, body: F) -> KernelStats
    where
        F: Fn(&mut WarpCtx) + Sync;

    /// Launches one warp per `chunk_len`-sized piece of `output` with
    /// exclusive mutable access. See [`grid::launch_over_chunks`].
    fn launch_over_chunks<T, F>(
        &self,
        label: &str,
        output: &mut [T],
        chunk_len: usize,
        body: F,
    ) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, &mut [T]) + Sync;

    /// Launches one warp per listed unit with exclusive access to that
    /// unit's chunk. See [`grid::launch_over_worklist`].
    fn launch_over_worklist<T, F>(
        &self,
        label: &str,
        output: &mut [T],
        chunk_len: usize,
        worklist: &[u32],
        body: F,
    ) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, u32, &mut [T]) + Sync;

    /// Launches one warp per [`BinPlan`] bin with its assignment slice
    /// and exclusive scratch slot. See [`grid::launch_binned`].
    fn launch_binned<T, F>(&self, plan: &BinPlan, scratch: &mut [T], body: F) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, &[Assignment], &mut T) + Sync;
}

/// The modeled SIMT device: delegates to the [`crate::grid`] launch
/// primitives, preserving the schedule-permutation machinery
/// ([`crate::grid::with_schedule`]) and sanitizer compatibility.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModelBackend;

impl Backend for ModelBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Model
    }

    fn name(&self) -> &'static str {
        "model"
    }

    fn threads(&self) -> usize {
        rayon::current_num_threads()
    }

    fn launch<F>(&self, n_warps: usize, body: F) -> KernelStats
    where
        F: Fn(&mut WarpCtx) + Sync,
    {
        grid::launch(n_warps, body)
    }

    fn launch_over_chunks<T, F>(
        &self,
        label: &str,
        output: &mut [T],
        chunk_len: usize,
        body: F,
    ) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, &mut [T]) + Sync,
    {
        grid::launch_over_chunks(label, output, chunk_len, body)
    }

    fn launch_over_worklist<T, F>(
        &self,
        label: &str,
        output: &mut [T],
        chunk_len: usize,
        worklist: &[u32],
        body: F,
    ) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, u32, &mut [T]) + Sync,
    {
        grid::launch_over_worklist(label, output, chunk_len, worklist, body)
    }

    fn launch_binned<T, F>(&self, plan: &BinPlan, scratch: &mut [T], body: F) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, &[Assignment], &mut T) + Sync,
    {
        grid::launch_binned(plan, scratch, body)
    }
}

/// Native parallel CPU execution of the same tile kernels.
///
/// Owns its rayon pool so `--backend native:N` pins the parallelism
/// without touching the global pool the model (and the rest of the
/// process) uses. Warps map to rayon tasks in logical order; the u64
/// bitmask words of the BFS kernels are the vector lane; the semiring
/// atomics go through [`crate::atomic`]'s `std::sync::atomic` views.
/// [`crate::grid::SchedulePolicy`] is ignored — submission-order
/// permutation is a certification tool for the model, and the native
/// kernels' determinism does not depend on execution order.
#[derive(Clone)]
pub struct NativeBackend {
    pool: Arc<rayon::ThreadPool>,
    threads: usize,
}

impl std::fmt::Debug for NativeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeBackend")
            .field("threads", &self.threads)
            .finish()
    }
}

impl NativeBackend {
    /// Builds a native backend over `threads` worker threads (`None` =
    /// one per logical CPU, rayon's default).
    pub fn new(threads: Option<usize>) -> Self {
        let mut builder = rayon::ThreadPoolBuilder::new();
        if let Some(t) = threads {
            builder = builder.num_threads(t);
        }
        let pool = builder
            .build()
            .expect("native backend: failed to build thread pool");
        let threads = pool.current_num_threads();
        crate::metrics::global()
            .gauge("tsv_simt_pool_threads{backend=\"native\"}")
            .set(threads as f64);
        Self {
            pool: Arc::new(pool),
            threads,
        }
    }

    /// Folds one launch's counters into the process-lifetime registry.
    #[inline]
    fn record(stats: &KernelStats) {
        crate::metrics::native_launch_metrics().record(stats);
    }
}

impl Default for NativeBackend {
    fn default() -> Self {
        Self::new(None)
    }
}

impl Backend for NativeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Native
    }

    fn name(&self) -> &'static str {
        "native"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn launch<F>(&self, n_warps: usize, body: F) -> KernelStats
    where
        F: Fn(&mut WarpCtx) + Sync,
    {
        let stats: KernelStats = self.pool.install(|| {
            (0..n_warps)
                .into_par_iter()
                .map(|warp_id| {
                    let mut ctx = WarpCtx::new(warp_id);
                    body(&mut ctx);
                    ctx.stats
                })
                .sum()
        });
        Self::record(&stats);
        stats
    }

    fn launch_over_chunks<T, F>(
        &self,
        label: &str,
        output: &mut [T],
        chunk_len: usize,
        body: F,
    ) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, &mut [T]) + Sync,
    {
        grid::check_chunked(label, output.len(), chunk_len);
        let stats: KernelStats = self.pool.install(|| {
            output
                .par_chunks_mut(chunk_len)
                .enumerate()
                .map(|(warp_id, chunk)| {
                    let mut ctx = WarpCtx::new(warp_id);
                    body(&mut ctx, chunk);
                    ctx.stats
                })
                .sum()
        });
        Self::record(&stats);
        stats
    }

    fn launch_over_worklist<T, F>(
        &self,
        label: &str,
        output: &mut [T],
        chunk_len: usize,
        worklist: &[u32],
        body: F,
    ) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, u32, &mut [T]) + Sync,
    {
        let chunks = grid::carve_worklist(label, output, chunk_len, worklist);
        let stats: KernelStats = self.pool.install(|| {
            chunks
                .into_par_iter()
                .map(|(warp_id, unit, chunk)| {
                    let mut ctx = WarpCtx::new(warp_id);
                    body(&mut ctx, unit, chunk);
                    ctx.stats
                })
                .sum()
        });
        Self::record(&stats);
        stats
    }

    fn launch_binned<T, F>(&self, plan: &BinPlan, scratch: &mut [T], body: F) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, &[Assignment], &mut T) + Sync,
    {
        let n = plan.n_warps();
        assert!(
            scratch.len() >= n,
            "scratch holds {} slots for {} warps",
            scratch.len(),
            n
        );
        let stats: KernelStats = self.pool.install(|| {
            scratch[..n]
                .par_iter_mut()
                .enumerate()
                .map(|(warp_id, slot)| {
                    let mut ctx = WarpCtx::new(warp_id);
                    body(&mut ctx, plan.warp(warp_id), slot);
                    ctx.stats
                })
                .sum()
        });
        Self::record(&stats);
        stats
    }
}

/// Runtime backend choice. The [`Backend`] trait is not object-safe (its
/// launch methods are generic over the kernel body), so engines and the
/// CLI hold this enum and dispatch per call.
#[derive(Debug, Clone)]
pub enum ExecBackend {
    /// The modeled SIMT device.
    Model(ModelBackend),
    /// Native parallel CPU execution.
    Native(NativeBackend),
}

impl ExecBackend {
    /// The modeled backend — the default substrate everywhere.
    pub fn model() -> Self {
        Self::Model(ModelBackend)
    }

    /// A native backend over `threads` workers (`None` = all CPUs).
    pub fn native(threads: Option<usize>) -> Self {
        Self::Native(NativeBackend::new(threads))
    }

    /// `"model"`, `"native"`, or `"native:N"` — the CLI spelling that
    /// reproduces this backend, used in reports and telemetry.
    pub fn describe(&self) -> String {
        match self {
            Self::Model(_) => "model".to_string(),
            Self::Native(b) => format!("native:{}", b.threads()),
        }
    }
}

impl Default for ExecBackend {
    fn default() -> Self {
        Self::model()
    }
}

macro_rules! delegate {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            ExecBackend::Model($b) => $e,
            ExecBackend::Native($b) => $e,
        }
    };
}

impl Backend for ExecBackend {
    fn kind(&self) -> BackendKind {
        delegate!(self, b => b.kind())
    }

    fn name(&self) -> &'static str {
        delegate!(self, b => b.name())
    }

    fn threads(&self) -> usize {
        delegate!(self, b => b.threads())
    }

    fn launch<F>(&self, n_warps: usize, body: F) -> KernelStats
    where
        F: Fn(&mut WarpCtx) + Sync,
    {
        delegate!(self, b => b.launch(n_warps, body))
    }

    fn launch_over_chunks<T, F>(
        &self,
        label: &str,
        output: &mut [T],
        chunk_len: usize,
        body: F,
    ) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, &mut [T]) + Sync,
    {
        delegate!(self, b => b.launch_over_chunks(label, output, chunk_len, body))
    }

    fn launch_over_worklist<T, F>(
        &self,
        label: &str,
        output: &mut [T],
        chunk_len: usize,
        worklist: &[u32],
        body: F,
    ) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, u32, &mut [T]) + Sync,
    {
        delegate!(self, b => b.launch_over_worklist(label, output, chunk_len, worklist, body))
    }

    fn launch_binned<T, F>(&self, plan: &BinPlan, scratch: &mut [T], body: F) -> KernelStats
    where
        T: Send,
        F: Fn(&mut WarpCtx, &[Assignment], &mut T) + Sync,
    {
        delegate!(self, b => b.launch_binned(plan, scratch, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicWords;

    fn backends() -> Vec<(String, ExecBackend)> {
        vec![
            ("model".into(), ExecBackend::model()),
            ("native:1".into(), ExecBackend::native(Some(1))),
            ("native:4".into(), ExecBackend::native(Some(4))),
        ]
    }

    #[test]
    fn identity_reports_kind_name_and_threads() {
        let m = ExecBackend::model();
        assert_eq!(m.kind(), BackendKind::Model);
        assert_eq!(m.name(), "model");
        assert_eq!(m.describe(), "model");
        let n = ExecBackend::native(Some(3));
        assert_eq!(n.kind(), BackendKind::Native);
        assert_eq!(n.name(), "native");
        assert_eq!(n.threads(), 3);
        assert_eq!(n.describe(), "native:3");
    }

    #[test]
    fn every_backend_runs_every_warp_once() {
        for (name, b) in backends() {
            let hits = AtomicWords::zeroed(2);
            let stats = b.launch(128, |w| {
                hits.fetch_or(w.warp_id / 64, 1 << (w.warp_id % 64));
            });
            assert_eq!(stats.warps, 128, "{name}");
            assert_eq!(hits.load(0), u64::MAX, "{name}");
            assert_eq!(hits.load(1), u64::MAX, "{name}");
        }
    }

    #[test]
    fn every_backend_keeps_chunk_ownership_bit_identical() {
        let mut reference: Option<Vec<u32>> = None;
        for (name, b) in backends() {
            let mut out = vec![0u32; 100];
            b.launch_over_chunks("test/backend-chunks", &mut out, 10, |w, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (w.warp_id * 100 + i) as u32;
                }
            });
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "{name}"),
            }
        }
    }

    #[test]
    fn every_backend_honors_worklists_and_bin_plans() {
        let worklist = [1u32, 3, 6, 7];
        let weights = [2u64, 2, 50, 1, 1, 1, 30];
        let units: Vec<u32> = (0..weights.len() as u32).collect();
        let mut plan = BinPlan::new();
        plan.rebuild(&units, |u| weights[u as usize], 10, 8);
        for (name, b) in backends() {
            let mut out = vec![0u32; 80];
            b.launch_over_worklist("test/backend-wl", &mut out, 10, &worklist, |w, unit, c| {
                assert_eq!(worklist[w.warp_id], unit, "{name}");
                c[0] = unit + 1;
            });
            for &u in &worklist {
                assert_eq!(out[u as usize * 10], u + 1, "{name}");
            }

            let mut scratch = vec![u32::MAX; plan.n_warps()];
            b.launch_binned(&plan, &mut scratch, |w, assignments, slot| {
                assert_eq!(assignments, plan.warp(w.warp_id), "{name}");
                *slot = w.warp_id as u32;
            });
            let expect: Vec<u32> = (0..plan.n_warps() as u32).collect();
            assert_eq!(scratch, expect, "{name}: slot i belongs to warp i");
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn native_worklist_rejects_unsorted_units() {
        let mut out = vec![0u8; 30];
        ExecBackend::native(Some(1)).launch_over_worklist(
            "test/native-unsorted",
            &mut out,
            10,
            &[2, 1],
            |_, _, _| {},
        );
    }

    #[test]
    #[should_panic(expected = "not a multiple of chunk_len")]
    fn native_chunks_reject_ragged_tail() {
        let mut out = vec![0u8; 25];
        ExecBackend::native(Some(1)).launch_over_chunks(
            "test/native-ragged",
            &mut out,
            10,
            |_, _| {},
        );
    }

    #[test]
    fn native_stats_sum_across_threads() {
        let b = NativeBackend::new(Some(4));
        let stats = b.launch(37, |w| {
            w.stats.read(8);
            w.stats.flop(2);
        });
        assert_eq!(stats.warps, 37);
        assert_eq!(stats.gmem_read_bytes, 37 * 8);
        assert_eq!(stats.flops, 37 * 2);
    }
}
