//! Uniform (Erdős–Rényi style) random sparse matrices.

use crate::coo::CooMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a matrix with approximately `nnz_target` entries placed
/// uniformly at random with values in `(0, 1]`.
///
/// Duplicate coordinates are resolved by keeping a single entry, so the
/// realized nnz can fall slightly below the target on dense shapes. The
/// result is deterministic in `seed`.
pub fn uniform_random(nrows: usize, ncols: usize, nnz_target: usize, seed: u64) -> CooMatrix<f64> {
    assert!(nrows > 0 && ncols > 0, "matrix shape must be non-empty");
    let cells = nrows.saturating_mul(ncols);
    let nnz_target = nnz_target.min(cells);
    let mut rng = StdRng::seed_from_u64(seed);

    // Dense-ish request: flip a coin per cell to avoid rejection loops.
    if nnz_target * 4 >= cells {
        let p = nnz_target as f64 / cells as f64;
        let mut m = CooMatrix::with_capacity(nrows, ncols, nnz_target + nnz_target / 8);
        for r in 0..nrows {
            for c in 0..ncols {
                if rng.random::<f64>() < p {
                    m.push(r, c, nonzero_value(&mut rng));
                }
            }
        }
        return m;
    }

    // Sparse request: sample coordinates and dedup.
    let mut seen = std::collections::HashSet::with_capacity(nnz_target * 2);
    let mut m = CooMatrix::with_capacity(nrows, ncols, nnz_target);
    let mut attempts = 0usize;
    let max_attempts = nnz_target.saturating_mul(20).max(1024);
    while m.nnz() < nnz_target && attempts < max_attempts {
        attempts += 1;
        let r = rng.random_range(0..nrows);
        let c = rng.random_range(0..ncols);
        if seen.insert((r as u64) << 32 | c as u64) {
            m.push(r, c, nonzero_value(&mut rng));
        }
    }
    m
}

/// Value in (0, 1] so generated matrices never contain explicit zeros.
fn nonzero_value(rng: &mut StdRng) -> f64 {
    1.0 - rng.random::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_target_nnz_when_sparse() {
        let m = uniform_random(1000, 1000, 5000, 7);
        assert_eq!(m.nnz(), 5000);
        assert_eq!(m.nrows(), 1000);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = uniform_random(100, 100, 500, 42);
        let b = uniform_random(100, 100, 500, 42);
        assert_eq!(a, b);
        let c = uniform_random(100, 100, 500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn no_duplicate_coordinates() {
        let m = uniform_random(50, 50, 400, 3);
        let mut csr = m.clone();
        csr.sum_duplicates();
        assert_eq!(csr.nnz(), m.nnz());
    }

    #[test]
    fn dense_request_clamps_to_cells() {
        let m = uniform_random(10, 10, 1_000_000, 1);
        assert!(m.nnz() <= 100);
        assert!(m.nnz() > 50, "expected a mostly-full matrix");
    }

    #[test]
    fn values_are_nonzero() {
        let m = uniform_random(30, 30, 200, 9);
        assert!(m.values().iter().all(|&v| v != 0.0));
    }
}
