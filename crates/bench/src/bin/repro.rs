//! `repro` — regenerates every table and figure of the TileSpMSpV paper.
//!
//! ```text
//! repro <experiment> [--scale tiny|small|medium] [--out DIR] [--check DIR]
//!
//! experiments: table1 table2 fig6 fig7 fig8 fig9 fig10 fig11 fig12 all
//!              profile trace bench report sanitize analyze
//! ```
//!
//! `trace` runs one instrumented SpMSpV sweep plus one instrumented BFS,
//! writing a Chrome Trace document and a run-summary JSON under `--out`
//! and self-validating both. `bench` writes machine-readable benchmark
//! tables (`BENCH_spmspv.json`, `BENCH_bfs.json`) including a skewed
//! R-MAT row pair comparing direct vs nnz-binned dispatch; with
//! `--check DIR` it then diffs every row's modeled device time against
//! the committed baselines in `DIR` and exits non-zero when a row
//! regresses by more than 25%. It also writes native-backend wall-clock
//! tables (`BENCH_spmspv_native.json`, `BENCH_bfs_native.json`) over a
//! thread-count sweep × both tile storage formats (tile-CSR and SELL-C-σ
//! slabs, each row carrying a `format` field and SELL rows their padding
//! ratio); those are host-dependent and never gated. `report` regenerates
//! fresh bench rows, diffs them against the committed baselines
//! (`--check DIR`, default `results/baselines`) and renders a markdown
//! perf-trajectory report — per-case modeled-time deltas, roofline
//! utilization, regression flags and a tile-CSR vs SELL native
//! comparison — to `<out>/REPORT.md`.
//! `sanitize` runs every SpMSpV kernel ×
//! balance mode × semiring (and a full BFS) over the representative
//! corpus under the race sanitizer, then certifies schedule independence
//! with seeded warp-order permutations; any detected conflict or
//! permutation-dependent output exits non-zero. `analyze` sweeps the
//! conformance corpus (kernel × balance × format × both backends, plus
//! BFS) through the plan-time static race verifier and cross-checks it
//! against the dynamic sanitizer: every default-path plan must prove, a
//! `Proved` verdict must see zero dynamic conflicts, and a non-`Proved`
//! verdict must be justified by observed atomic claims; any disagreement
//! exits non-zero.
//!
//! Each experiment prints the paper's rows/series to stdout and writes a
//! CSV under `--out` (default `results/`). Absolute numbers come from the
//! CPU SIMT substrate — the *shape* (who wins, by what factor, where the
//! crossovers fall) is the reproduction target; `EXPERIMENTS.md` records
//! both sides.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

use tsv_baselines::{
    bucket_spmspv, enterprise_bfs, gswitch_bfs, gunrock_bfs, tile_spmv, BsrMatrix,
};
use tsv_bench::measure::{geomean, gflops, gteps, median_secs, useful_products};
use tsv_bench::workloads::{bfs_source, fig6_sparsities, fig7_sweep};
use tsv_core::bfs::{tile_bfs, BfsOptions, KernelSet, TileBfsGraph};
use tsv_core::spmspv::tile_spmspv;
use tsv_core::tile::{TileConfig, TileMatrix, TileStats};
use tsv_simt::model::total_time;
use tsv_simt::{DeviceConfig, KernelStats, RTX_3060, RTX_3090};
use tsv_sparse::gen::random_sparse_vector;
use tsv_sparse::reference::bfs_edges_traversed;
use tsv_sparse::suite::{enterprise_set, representative, SuiteScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let experiment = args[0].clone();
    let mut scale = SuiteScale::Small;
    let mut out = PathBuf::from("results");
    let mut check: Option<PathBuf> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(std::string::String::as_str) {
                    Some("tiny") => SuiteScale::Tiny,
                    Some("small") => SuiteScale::Small,
                    Some("medium") => SuiteScale::Medium,
                    other => {
                        eprintln!("unknown scale {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => {
                i += 1;
                if let Some(dir) = args.get(i) {
                    out = PathBuf::from(dir);
                } else {
                    eprintln!("--out needs a directory");
                    std::process::exit(2);
                }
            }
            "--check" => {
                i += 1;
                if let Some(dir) = args.get(i) {
                    check = Some(PathBuf::from(dir));
                } else {
                    eprintln!("--check needs a baseline directory");
                    std::process::exit(2);
                }
            }
            other => {
                eprintln!("unknown flag {other:?}");
                usage_and_exit();
            }
        }
        i += 1;
    }
    std::fs::create_dir_all(&out).expect("create output directory");

    match experiment.as_str() {
        "table1" => table1(),
        "table2" => table2(scale, &out),
        "fig6" => fig6(scale, &out),
        "fig7" => fig7(scale, &out),
        "fig8" => fig8(scale, &out),
        "fig9" => fig9(scale, &out),
        "fig10" => fig10(scale, &out),
        "fig11" => fig11(scale, &out),
        "fig12" => fig12(scale, &out),
        "profile" => profile(scale),
        "trace" => trace_cmd(scale, &out),
        "bench" => bench_cmd(scale, &out, check.as_deref()),
        "report" => report_cmd(scale, &out, check.as_deref()),
        "sanitize" => sanitize_cmd(scale),
        "analyze" => analyze_cmd(scale),
        "all" => {
            table1();
            table2(scale, &out);
            fig6(scale, &out);
            fig7(scale, &out);
            fig8(scale, &out);
            fig9(scale, &out);
            fig10(scale, &out);
            fig11(scale, &out);
            fig12(scale, &out);
        }
        _ => usage_and_exit(),
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: repro <table1|table2|fig6|fig7|fig8|fig9|fig10|fig11|fig12|profile|trace|bench|report|sanitize|analyze|all> \
         [--scale tiny|small|medium] [--out DIR] [--check BASELINE_DIR]"
    );
    std::process::exit(2);
}

fn write_csv(path: &Path, contents: &str) {
    std::fs::write(path, contents).expect("write CSV");
    println!("  -> wrote {}", path.display());
}

fn device_line(d: &DeviceConfig) -> String {
    format!(
        "{}: {} CUDA cores @ {:.2} GHz, {:.1} GB/s",
        d.name, d.cuda_cores, d.clock_ghz, d.mem_bandwidth_gbps
    )
}

// ---------------------------------------------------------------- Table 1

fn table1() {
    println!("== Table 1: machine specification and algorithms ==");
    println!("Simulated devices (analytic roofline model):");
    println!("  (1) {}", device_line(&RTX_3060));
    println!("  (2) {}", device_line(&RTX_3090));
    println!("SpMSpV algorithms: TileSpMV, cuSPARSE BSR (stand-in), CombBLAS bucket, TileSpMSpV (this work)");
    println!(
        "BFS algorithms:    Gunrock-style, GSwitch-style, Enterprise-style, TileBFS (this work)"
    );
    println!(
        "Substrate: CPU SIMT emulation over {} threads\n",
        rayon::current_num_threads()
    );
}

// ---------------------------------------------------------------- Table 2

fn table2(scale: SuiteScale, out: &Path) {
    println!("== Table 2: representative matrices and tile counts ==");
    println!(
        "{:<18} {:>10} {:>10} {:>9} {:>9} {:>9}   (paper: rows / nnz)",
        "matrix", "rows", "nnz", "#t(16)", "#t(32)", "#t(64)"
    );
    let mut csv = String::from("matrix,rows,nnz,tiles16,tiles32,tiles64,paper_rows,paper_nnz\n");
    for e in representative(scale) {
        let s = TileStats::for_matrix(&e.matrix);
        println!(
            "{:<18} {:>10} {:>10} {:>9} {:>9} {:>9}   ({} / {})",
            e.name, s.nrows, s.nnz, s.tiles16, s.tiles32, s.tiles64, e.paper.rows, e.paper.nnz
        );
        writeln!(
            csv,
            "{},{},{},{},{},{},{},{}",
            e.name, s.nrows, s.nnz, s.tiles16, s.tiles32, s.tiles64, e.paper.rows, e.paper.nnz
        )
        .unwrap();
    }
    write_csv(&out.join("table2.csv"), &csv);
    println!();
}

// ---------------------------------------------------------------- Figure 6

fn fig6(scale: SuiteScale, out: &Path) {
    // The figure's y-axis is GFlops on the RTX 3090; the modeled device
    // time of each kernel's counted work provides that. CPU wall times of
    // the same runs go to the CSV for reference.
    println!("== Figure 6: SpMSpV performance at four vector sparsities (modeled RTX 3090) ==");
    let suite = representative(scale);
    let mut csv = String::from(
        "sparsity,matrix,n,nnz,useful_products,\
         gflops_tilespmspv,gflops_tilespmv,gflops_bsr,gflops_combblas,\
         wall_tilespmspv_ms,wall_tilespmv_ms,wall_bsr_ms,wall_combblas_ms\n",
    );

    for &sp in &fig6_sparsities() {
        let mut vs_spmv = Vec::new();
        let mut vs_bsr = Vec::new();
        let mut vs_cb = Vec::new();

        for e in &suite {
            let a = &e.matrix;
            let n = a.ncols();
            let x = random_sparse_vector(n, sp, 1);
            let csc = a.to_csc();
            let useful = useful_products(&csc, &x);
            if useful == 0 {
                continue;
            }

            let tiled = TileMatrix::from_csr(a, TileConfig::default()).unwrap();
            let xd = x.to_dense();
            let bsr = BsrMatrix::from_csr(a, 4).unwrap();

            // One run per algorithm collects the (deterministic) work
            // counters; the median wall time comes from repeated runs.
            let (_, tile_report) =
                tsv_core::spmspv::tile_spmspv_with(&tiled, &x, Default::default()).unwrap();
            let (_, spmv_stats) = tile_spmv(&tiled, &xd);
            let (_, bsr_stats) = bsr.bsrmv(&xd);
            let (_, cb_stats) = bucket_spmspv(&csc, &x).unwrap();

            let m_tile = modeled_secs([tile_report.stats], &RTX_3090);
            let m_spmv = modeled_secs([spmv_stats], &RTX_3090);
            let m_bsr = modeled_secs([bsr_stats], &RTX_3090);
            let m_cb = modeled_secs([cb_stats], &RTX_3090);

            let w_tile = median_secs(
                || {
                    std::hint::black_box(tile_spmspv(&tiled, &x).unwrap());
                },
                3,
                0.01,
            );
            let w_spmv = median_secs(
                || {
                    std::hint::black_box(tile_spmv(&tiled, &xd));
                },
                3,
                0.01,
            );
            let w_bsr = median_secs(
                || {
                    std::hint::black_box(bsr.bsrmv(&xd));
                },
                3,
                0.01,
            );
            let w_cb = median_secs(
                || {
                    std::hint::black_box(bucket_spmspv(&csc, &x).unwrap());
                },
                3,
                0.01,
            );

            vs_spmv.push(m_spmv / m_tile);
            vs_bsr.push(m_bsr / m_tile);
            vs_cb.push(m_cb / m_tile);
            writeln!(
                csv,
                "{sp},{},{n},{},{useful},{:.4},{:.4},{:.4},{:.4},{:.5},{:.5},{:.5},{:.5}",
                e.name,
                a.nnz(),
                gflops(useful, m_tile),
                gflops(useful, m_spmv),
                gflops(useful, m_bsr),
                gflops(useful, m_cb),
                w_tile * 1e3,
                w_spmv * 1e3,
                w_bsr * 1e3,
                w_cb * 1e3,
            )
            .unwrap();
        }

        println!(
            "sparsity {:>7}: speedup vs TileSpMV geo {:>6.2}x (max {:>7.2}x) | vs cuSPARSE-BSR geo {:>6.2}x (max {:>7.2}x) | vs CombBLAS geo {:>6.2}x (max {:>7.2}x)",
            sp,
            geomean(&vs_spmv),
            vs_spmv.iter().copied().fold(0.0, f64::max),
            geomean(&vs_bsr),
            vs_bsr.iter().copied().fold(0.0, f64::max),
            geomean(&vs_cb),
            vs_cb.iter().copied().fold(0.0, f64::max),
        );
    }
    write_csv(&out.join("fig6_spmspv.csv"), &csv);
    println!();
}

// ---------------------------------------------------------------- Figure 7

fn fig7(scale: SuiteScale, out: &Path) {
    println!("== Figure 7: BFS time and speedups vs matrix size, two devices ==");
    let max_scale = match scale {
        SuiteScale::Tiny => 11,
        SuiteScale::Small => 14,
        SuiteScale::Medium => 16,
    };
    let sweep = fig7_sweep(max_scale);
    let mut csv = String::from(
        "family,n,nnz,wall_tile_ms,wall_gunrock_ms,wall_gswitch_ms,\
         m3060_tile_ms,m3060_gunrock_ms,m3060_gswitch_ms,\
         m3090_tile_ms,m3090_gunrock_ms,m3090_gswitch_ms\n",
    );
    let mut sp_gun = Vec::new();
    let mut sp_gsw = Vec::new();
    let mut msp_gun = Vec::new();
    let mut msp_gsw = Vec::new();

    for p in &sweep {
        let a = &p.matrix;
        let src = bfs_source(a);
        let g = TileBfsGraph::from_csr(a).unwrap();

        let tile_run = tile_bfs(&g, src, BfsOptions::default()).unwrap();
        let gun_run = gunrock_bfs(a, src).unwrap();
        let gsw_run = gswitch_bfs(a, src).unwrap();
        assert_eq!(tile_run.levels, gun_run.levels, "level mismatch vs gunrock");
        assert_eq!(tile_run.levels, gsw_run.levels, "level mismatch vs gswitch");

        let w_tile = median_secs(
            || {
                std::hint::black_box(tile_bfs(&g, src, BfsOptions::default()).unwrap());
            },
            3,
            0.02,
        );
        let w_gun = median_secs(
            || {
                std::hint::black_box(gunrock_bfs(a, src).unwrap());
            },
            3,
            0.02,
        );
        let w_gsw = median_secs(
            || {
                std::hint::black_box(gswitch_bfs(a, src).unwrap());
            },
            3,
            0.02,
        );

        let t_stats: Vec<KernelStats> = tile_run.iterations.iter().map(|i| i.stats).collect();
        let g_stats: Vec<KernelStats> = gun_run.iterations.iter().map(|i| i.stats).collect();
        let s_stats: Vec<KernelStats> = gsw_run.iterations.iter().map(|i| i.stats).collect();
        let m = |stats: &[KernelStats], d: &DeviceConfig| total_time(stats.iter(), d) * 1e3;

        sp_gun.push(w_gun / w_tile);
        sp_gsw.push(w_gsw / w_tile);
        msp_gun.push(m(&g_stats, &RTX_3090) / m(&t_stats, &RTX_3090));
        msp_gsw.push(m(&s_stats, &RTX_3090) / m(&t_stats, &RTX_3090));
        writeln!(
            csv,
            "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            p.family,
            a.nrows(),
            a.nnz(),
            w_tile * 1e3,
            w_gun * 1e3,
            w_gsw * 1e3,
            m(&t_stats, &RTX_3060),
            m(&g_stats, &RTX_3060),
            m(&s_stats, &RTX_3060),
            m(&t_stats, &RTX_3090),
            m(&g_stats, &RTX_3090),
            m(&s_stats, &RTX_3090),
        )
        .unwrap();
        println!(
            "  {:<10} n={:>7} nnz={:>9}  tile {:>8.3} ms | gunrock {:>8.3} ms | gswitch {:>8.3} ms",
            p.family,
            a.nrows(),
            a.nnz(),
            w_tile * 1e3,
            w_gun * 1e3,
            w_gsw * 1e3
        );
    }
    println!(
        "speedup of TileBFS (CPU wall):      vs Gunrock geo {:.2}x (max {:.2}x), vs GSwitch geo {:.2}x (max {:.2}x)",
        geomean(&sp_gun),
        sp_gun.iter().copied().fold(0.0, f64::max),
        geomean(&sp_gsw),
        sp_gsw.iter().copied().fold(0.0, f64::max),
    );
    println!(
        "speedup of TileBFS (modeled 3090):  vs Gunrock geo {:.2}x (max {:.2}x), vs GSwitch geo {:.2}x (max {:.2}x)",
        geomean(&msp_gun),
        msp_gun.iter().copied().fold(0.0, f64::max),
        geomean(&msp_gsw),
        msp_gsw.iter().copied().fold(0.0, f64::max),
    );
    write_csv(&out.join("fig7_bfs.csv"), &csv);
    println!();
}

// ---------------------------------------------------------------- Figure 8

fn fig8(scale: SuiteScale, out: &Path) {
    // The paper's y-axis is GTEPS *on the RTX 3090*; the modeled device
    // time provides that, while the CSV also records the CPU wall times.
    println!("== Figure 8: BFS GTEPS on the representative matrices (modeled RTX 3090) ==");
    let mut csv = String::from(
        "matrix,gteps_gswitch,gteps_gunrock,gteps_tilebfs,wall_gswitch_ms,wall_gunrock_ms,wall_tilebfs_ms\n",
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "matrix", "GSwitch", "Gunrock", "TileBFS"
    );
    for e in representative(scale) {
        let a = &e.matrix;
        let src = bfs_source(a);
        let g = TileBfsGraph::from_csr(a).unwrap();
        let tile_run = tile_bfs(&g, src, BfsOptions::default()).unwrap();
        let gun_run = gunrock_bfs(a, src).unwrap();
        let gsw_run = gswitch_bfs(a, src).unwrap();
        let edges = bfs_edges_traversed(a, &tile_run.levels);

        let m_tile = modeled_secs(tile_run.iterations.iter().map(|i| i.stats), &RTX_3090);
        let m_gun = modeled_secs(gun_run.iterations.iter().map(|i| i.stats), &RTX_3090);
        let m_gsw = modeled_secs(gsw_run.iterations.iter().map(|i| i.stats), &RTX_3090);

        let (gt, gg, gs) = (
            gteps(edges, m_tile),
            gteps(edges, m_gun),
            gteps(edges, m_gsw),
        );
        println!("{:<18} {:>10.4} {:>10.4} {:>10.4}", e.name, gs, gg, gt);
        writeln!(
            csv,
            "{},{gs:.5},{gg:.5},{gt:.5},{:.4},{:.4},{:.4}",
            e.name,
            gsw_run.wall().as_secs_f64() * 1e3,
            gun_run.wall().as_secs_f64() * 1e3,
            tile_run.wall().as_secs_f64() * 1e3,
        )
        .unwrap();
    }
    write_csv(&out.join("fig8_representative.csv"), &csv);
    println!();
}

/// Modeled device time of a launch sequence.
fn modeled_secs<I: IntoIterator<Item = KernelStats>>(stats: I, d: &DeviceConfig) -> f64 {
    let list: Vec<KernelStats> = stats.into_iter().collect();
    total_time(list.iter(), d)
}

// ---------------------------------------------------------------- Figure 9

fn fig9(scale: SuiteScale, out: &Path) {
    println!(
        "== Figure 9: directional-optimization ablation (K1, K1+K2, K1+K2+K3; modeled RTX 3090) =="
    );
    let mut csv = String::from("matrix,gteps_k1,gteps_k1k2,gteps_all\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "matrix", "K1", "K1+K2", "K1+K2+K3"
    );
    for e in representative(scale) {
        let a = &e.matrix;
        let src = bfs_source(a);
        let g = TileBfsGraph::from_csr(a).unwrap();
        let levels = tile_bfs(&g, src, BfsOptions::default()).unwrap().levels;
        let edges = bfs_edges_traversed(a, &levels);

        // Modeled RTX 3090 time, like the figure's y-axis; the traversal is
        // deterministic so one run yields the exact work counters.
        let run = |set: KernelSet| {
            let opts = BfsOptions {
                kernels: set,
                ..Default::default()
            };
            let r = tile_bfs(&g, src, opts).unwrap();
            modeled_secs(r.iterations.iter().map(|i| i.stats), &RTX_3090)
        };
        let g1 = gteps(edges, run(KernelSet::PushCscOnly));
        let g2 = gteps(edges, run(KernelSet::PushOnly));
        let g3 = gteps(edges, run(KernelSet::All));
        println!("{:<18} {:>10.4} {:>10.4} {:>10.4}", e.name, g1, g2, g3);
        writeln!(csv, "{},{g1:.5},{g2:.5},{g3:.5}", e.name).unwrap();
    }
    write_csv(&out.join("fig9_ablation.csv"), &csv);
    println!();
}

// --------------------------------------------------------------- Figure 10

fn fig10(scale: SuiteScale, out: &Path) {
    println!("== Figure 10: per-iteration time traces (modeled RTX 3090 ms; wall ms in CSV) ==");
    let mut csv = String::from("matrix,algorithm,iteration,model_ms,wall_ms,strategy\n");
    for name in ["cant", "in-2004", "msdoor", "roadNet-TX"] {
        let e = tsv_sparse::suite::by_name(name, scale).expect("known matrix");
        let a = &e.matrix;
        let src = bfs_source(a);
        let g = TileBfsGraph::from_csr(a).unwrap();

        let tile_run = tile_bfs(&g, src, BfsOptions::default()).unwrap();
        for (k, it) in tile_run.iterations.iter().enumerate() {
            writeln!(
                csv,
                "{name},TileBFS,{k},{:.5},{:.5},{}",
                modeled_secs([it.stats], &RTX_3090) * 1e3,
                it.wall.as_secs_f64() * 1e3,
                it.kernel
            )
            .unwrap();
        }
        let gun = gunrock_bfs(a, src).unwrap();
        for (k, it) in gun.iterations.iter().enumerate() {
            writeln!(
                csv,
                "{name},Gunrock,{k},{:.5},{:.5},{}",
                modeled_secs([it.stats], &RTX_3090) * 1e3,
                it.wall.as_secs_f64() * 1e3,
                it.strategy
            )
            .unwrap();
        }
        let gsw = gswitch_bfs(a, src).unwrap();
        for (k, it) in gsw.iterations.iter().enumerate() {
            writeln!(
                csv,
                "{name},GSwitch,{k},{:.5},{:.5},{}",
                modeled_secs([it.stats], &RTX_3090) * 1e3,
                it.wall.as_secs_f64() * 1e3,
                it.strategy
            )
            .unwrap();
        }
        println!(
            "  {name}: {} TileBFS iterations (kernels: {}), gunrock {}, gswitch {}",
            tile_run.iterations.len(),
            summarize_kernels(&tile_run),
            gun.iterations.len(),
            gsw.iterations.len()
        );
    }
    write_csv(&out.join("fig10_iterations.csv"), &csv);
    println!();
}

fn summarize_kernels(r: &tsv_core::bfs::BfsResult) -> String {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    for it in &r.iterations {
        *counts.entry(it.kernel.to_string()).or_default() += 1;
    }
    counts
        .into_iter()
        .map(|(k, c)| format!("{k}x{c}"))
        .collect::<Vec<_>>()
        .join(", ")
}

// --------------------------------------------------------------- Figure 11

fn fig11(scale: SuiteScale, out: &Path) {
    println!("== Figure 11: format conversion time vs one BFS run ==");
    let mut csv = String::from("matrix,convert_ms,bfs_ms,ratio\n");
    println!(
        "{:<18} {:>12} {:>12} {:>8}",
        "matrix", "convert(ms)", "bfs(ms)", "ratio"
    );
    for e in representative(scale) {
        let a = &e.matrix;
        let src = bfs_source(a);
        let t0 = Instant::now();
        let g = TileBfsGraph::from_csr(a).unwrap();
        let conv = t0.elapsed().as_secs_f64();
        let bfs = median_secs(
            || {
                std::hint::black_box(tile_bfs(&g, src, BfsOptions::default()).unwrap());
            },
            3,
            0.02,
        );
        let ratio = conv / bfs;
        println!(
            "{:<18} {:>12.3} {:>12.3} {:>8.2}",
            e.name,
            conv * 1e3,
            bfs * 1e3,
            ratio
        );
        writeln!(
            csv,
            "{},{:.5},{:.5},{:.3}",
            e.name,
            conv * 1e3,
            bfs * 1e3,
            ratio
        )
        .unwrap();
    }
    write_csv(&out.join("fig11_conversion.csv"), &csv);
    println!();
}

// --------------------------------------------------------------- Figure 12

fn fig12(scale: SuiteScale, out: &Path) {
    println!("== Figure 12: TileBFS vs Enterprise (modeled RTX 3090) ==");
    let mut csv =
        String::from("matrix,gteps_enterprise,gteps_tilebfs,wall_enterprise_ms,wall_tilebfs_ms\n");
    println!("{:<14} {:>12} {:>12}", "matrix", "Enterprise", "TileBFS");
    let mut speedups = Vec::new();
    for e in enterprise_set(scale) {
        let a = &e.matrix;
        let src = bfs_source(a);
        let g = TileBfsGraph::from_csr(a).unwrap();
        let tile_run = tile_bfs(&g, src, BfsOptions::default()).unwrap();
        let ent_run = enterprise_bfs(a, src).unwrap();
        assert_eq!(
            tile_run.levels, ent_run.levels,
            "level mismatch vs enterprise"
        );
        let edges = bfs_edges_traversed(a, &tile_run.levels);

        let m_tile = modeled_secs(tile_run.iterations.iter().map(|i| i.stats), &RTX_3090);
        let m_ent = modeled_secs(ent_run.iterations.iter().map(|i| i.stats), &RTX_3090);
        let (gt, ge) = (gteps(edges, m_tile), gteps(edges, m_ent));
        speedups.push(m_ent / m_tile);
        println!("{:<14} {:>12.4} {:>12.4}", e.name, ge, gt);
        writeln!(
            csv,
            "{},{ge:.5},{gt:.5},{:.4},{:.4}",
            e.name,
            ent_run.wall().as_secs_f64() * 1e3,
            tile_run.wall().as_secs_f64() * 1e3,
        )
        .unwrap();
    }
    println!(
        "speedup of TileBFS vs Enterprise: geo {:.2}x (max {:.2}x)",
        geomean(&speedups),
        speedups.iter().copied().fold(0.0, f64::max)
    );
    write_csv(&out.join("fig12_enterprise.csv"), &csv);
    println!();
}

// ----------------------------------------------------------------- profile

/// Per-kernel breakdown of one SpMSpV sweep and one BFS per suite matrix —
/// the diagnostic view behind the paper's iteration analysis (§4.5). Each
/// matrix runs through an engine, whose cumulative profiler is merged into
/// the run-level report; the engine-vs-one-shot amortization comparison
/// follows.
fn profile(scale: SuiteScale) {
    use tsv_core::exec::{spmspv_with_workspace, BfsEngine, SpMSpVEngine, SpMSpVWorkspace};
    use tsv_core::semiring::PlusTimes;
    use tsv_simt::Profiler;
    println!("== per-kernel profile over the representative suite ==");
    let profiler = Profiler::new();
    for e in representative(scale) {
        let a = &e.matrix;

        let mut engine = SpMSpVEngine::<PlusTimes>::from_csr(a, TileConfig::default()).unwrap();
        for sp in fig6_sparsities() {
            let x = random_sparse_vector(a.ncols(), sp, 1);
            engine.multiply(&x).unwrap();
        }
        profiler.merge(engine.profiler());

        let mut bfs_engine = BfsEngine::from_csr(a).unwrap();
        bfs_engine.run(bfs_source(a)).unwrap();
        profiler.merge(bfs_engine.profiler());
    }
    print!("{}", profiler.report(&RTX_3090));
    println!();

    // Amortization: the same iterative workload once through a shared
    // engine workspace and once through a fresh workspace per call. The
    // per-kernel work (slots scanned/reset) is identical; only the scratch
    // builds differ.
    let suite = representative(scale);
    let e = &suite[0];
    let a = &e.matrix;
    let rounds = 8;
    let xs: Vec<_> = (0..rounds)
        .map(|s| random_sparse_vector(a.ncols(), 0.02, s as u64))
        .collect();

    let mut engine = SpMSpVEngine::<PlusTimes>::from_csr(a, TileConfig::default()).unwrap();
    for x in &xs {
        engine.multiply(x).unwrap();
    }
    let shared = engine.metrics();

    let tiled = TileMatrix::from_csr(a, TileConfig::default()).unwrap();
    let mut fresh_reshapes = 0u64;
    let mut fresh_scanned = 0u64;
    let mut fresh_reset = 0u64;
    for x in &xs {
        let mut ws = SpMSpVWorkspace::new();
        spmspv_with_workspace::<PlusTimes>(&tiled, x, Default::default(), &mut ws).unwrap();
        let m = ws.metrics();
        fresh_reshapes += m.scratch_reshapes;
        fresh_scanned += m.slots_scanned;
        fresh_reset += m.slots_reset;
    }
    println!(
        "== engine amortization ({} rounds of SpMSpV on {}) ==",
        rounds, e.name
    );
    println!(
        "engine (shared workspace): {} scratch builds, {} slots scanned, {} slots reset",
        shared.scratch_reshapes, shared.slots_scanned, shared.slots_reset
    );
    println!(
        "one-shot (fresh per call): {fresh_reshapes} scratch builds, {fresh_scanned} slots scanned, {fresh_reset} slots reset"
    );
    println!();
}

// ------------------------------------------------------------------- trace

/// `repro trace`: one instrumented SpMSpV sweep and one instrumented BFS
/// sharing a tracer, then Chrome Trace + run-summary export with a
/// self-validation pass over both documents.
fn trace_cmd(scale: SuiteScale, out: &Path) {
    use std::sync::Arc;
    use tsv_core::exec::{BfsEngine, SpMSpVEngine};
    use tsv_core::semiring::PlusTimes;
    use tsv_core::telemetry::RunSummary;
    use tsv_simt::trace::{chrome_trace_json, validate_chrome_trace, Tracer};
    use tsv_simt::Profiler;
    use tsv_sparse::gen::{grid2d, rmat, RmatConfig};

    println!("== instrumented run: span trace + machine-readable summary ==");
    let (exp, side) = match scale {
        SuiteScale::Tiny => (9, 48),
        SuiteScale::Small => (11, 96),
        SuiteScale::Medium => (13, 160),
    };
    let tracer = Arc::new(Tracer::new());
    let profiler = Profiler::new();
    let mut summary = RunSummary::new("repro-trace", RTX_3090);

    // SpMSpV sweep over the Fig. 6 sparsities on a power-law matrix.
    let a = rmat(RmatConfig::new(exp, 8), 5).to_csr();
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    summary.record_tile_nnz(&tiled);
    let mut engine = SpMSpVEngine::<PlusTimes>::with_options(tiled, Default::default());
    engine.set_tracer(Some(Arc::clone(&tracer)));
    for sp in fig6_sparsities() {
        let x = random_sparse_vector(a.ncols(), sp, 1);
        engine.multiply(&x).unwrap();
    }
    profiler.merge(engine.profiler());

    // One full traversal of a diameter-heavy grid: exercises the policy
    // through its sparse and dense regimes.
    let b = grid2d(side, side).to_csr().without_diagonal();
    let mut bfs_engine = BfsEngine::from_csr_traced(&b, Some(Arc::clone(&tracer))).unwrap();
    let r = bfs_engine.run(bfs_source(&b)).unwrap();
    profiler.merge(bfs_engine.profiler());
    summary.record_bfs(&r, b.nrows());
    summary.record_profiler(&profiler);

    let chrome = chrome_trace_json(&tracer.events(), &RTX_3090);
    let check = validate_chrome_trace(&chrome).expect("chrome trace must validate");
    let summary_doc = summary.to_json();
    tsv_simt::json::parse(&summary_doc).expect("run summary must parse");

    let trace_path = out.join("trace.json");
    std::fs::write(&trace_path, &chrome).expect("write trace");
    println!("  -> wrote {}", trace_path.display());
    let summary_path = out.join("trace.summary.json");
    std::fs::write(&summary_path, &summary_doc).expect("write summary");
    println!("  -> wrote {}", summary_path.display());
    println!(
        "validated: {} events ({} kernel spans) across {} tracks; {} dropped",
        check.events,
        check.kernel_spans,
        check.tracks,
        tracer.dropped(),
    );
    println!(
        "summary: {} kernel labels, {} bfs iterations, {} histograms",
        summary.kernels().len(),
        summary.bfs_iterations().len(),
        summary.histograms().len(),
    );
    println!();
}

// ---------------------------------------------------------------- sanitize

/// `repro sanitize`: the race-sanitized conformance sweep. Every SpMSpV
/// kernel (forced row-tile and col-tile) × balance mode (direct and
/// nnz-binned) × semiring (PlusTimes, MinPlus, OrAnd) runs over the
/// representative corpus with a shared [`tsv_simt::Sanitizer`] attached,
/// plus one full sanitized BFS per matrix. A schedule-permutation replay
/// then certifies determinism: PlusTimes must be bit-identical across
/// seeded warp-order permutations for both balance modes, MinPlus and
/// OrAnd must agree semantically. Any conflict or permutation-dependent
/// output exits non-zero.
fn sanitize_cmd(scale: SuiteScale) {
    use std::sync::Arc;
    use tsv_core::exec::{BfsEngine, SpMSpVEngine};
    use tsv_core::semiring::{MinPlus, OrAnd, PlusTimes};
    use tsv_core::spmspv::{Balance, KernelChoice, SpMSpVOptions};
    use tsv_core::telemetry::RunSummary;
    use tsv_simt::{replay_check, Sanitizer};
    use tsv_sparse::{CsrMatrix, SparseVector};

    println!("== race sanitizer: kernel x balance x semiring sweep ==");
    let suite = representative(scale);
    let san = Arc::new(Sanitizer::new());
    let mut failed = false;

    let kernels = [
        (KernelChoice::RowTile, "row"),
        (KernelChoice::ColTile, "col"),
    ];
    let balances = [
        (Balance::OneWarpPerRowTile, "direct"),
        (Balance::binned(), "binned"),
    ];

    for e in &suite {
        let a = &e.matrix;
        // Boolean mirror with the same pattern, for the OrAnd semiring.
        let b: CsrMatrix<bool> = CsrMatrix::from_parts(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            vec![true; a.nnz()],
        )
        .expect("bool mirror of a valid CSR is valid");
        let x = random_sparse_vector(a.ncols(), 0.02, 7);
        let xb = SparseVector::from_parts(x.len(), x.indices().to_vec(), vec![true; x.nnz()])
            .expect("bool mirror of a valid vector is valid");

        let before = san.violation_count();
        for (kernel, _) in kernels {
            for (balance, _) in balances {
                let opts = SpMSpVOptions {
                    kernel,
                    balance,
                    ..Default::default()
                };
                let mut plus =
                    SpMSpVEngine::<PlusTimes>::from_csr_with(a, TileConfig::default(), opts)
                        .expect("tile PlusTimes");
                plus.set_sanitizer(Some(Arc::clone(&san)));
                plus.multiply(&x).expect("PlusTimes multiply");

                let mut tropical =
                    SpMSpVEngine::<MinPlus>::from_csr_with(a, TileConfig::default(), opts)
                        .expect("tile MinPlus");
                tropical.set_sanitizer(Some(Arc::clone(&san)));
                tropical.multiply(&x).expect("MinPlus multiply");

                let mut boolean =
                    SpMSpVEngine::<OrAnd>::from_csr_with(&b, TileConfig::default(), opts)
                        .expect("tile OrAnd");
                boolean.set_sanitizer(Some(Arc::clone(&san)));
                boolean.multiply(&xb).expect("OrAnd multiply");
            }
        }

        // The batched engine's slab writes run under the same dynamic
        // scrutiny: one pass over 4 frontiers per balance.
        let xs: Vec<SparseVector<f64>> = (0..4)
            .map(|q| random_sparse_vector(a.ncols(), 0.02, 7 + q))
            .collect();
        for (balance, _) in balances {
            let opts = SpMSpVOptions {
                kernel: KernelChoice::RowTile,
                balance,
                ..Default::default()
            };
            let mut batched = tsv_core::exec::BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(
                a,
                TileConfig::default(),
                opts,
            )
            .expect("tile batched PlusTimes");
            batched.set_sanitizer(Some(Arc::clone(&san)));
            batched.multiply(&xs).expect("batched PlusTimes multiply");
        }

        let mut bfs = BfsEngine::from_csr(a).expect("build BFS graph");
        bfs.set_sanitizer(Some(Arc::clone(&san)));
        bfs.run(bfs_source(a)).expect("sanitized BFS");

        let new = san.violation_count() - before;
        println!(
            "  {:<16} {:>8} rows {:>9} nnz: {} violation(s)",
            e.name,
            a.nrows(),
            a.nnz(),
            new
        );
    }

    println!("== schedule-permutation replay certification ==");
    let cert = &suite[0].matrix;
    let x = random_sparse_vector(cert.ncols(), 0.05, 11);
    let n_seeded = 8;
    for (kernel, kname) in kernels {
        for (balance, bname) in balances {
            let opts = SpMSpVOptions {
                kernel,
                balance,
                ..Default::default()
            };
            let mut engine =
                SpMSpVEngine::<PlusTimes>::from_csr_with(cert, TileConfig::default(), opts)
                    .expect("tile PlusTimes");
            let report = replay_check(
                n_seeded,
                0xC0FF_EE00,
                || engine.multiply(&x).expect("replayed multiply").0,
                |a, b| {
                    a.indices() == b.indices()
                        && a.values()
                            .iter()
                            .zip(b.values())
                            .all(|(p, q)| p.to_bits() == q.to_bits())
                },
            );
            println!(
                "  plus-times {kname}/{bname}: {} runs, {} mismatched (bitwise)",
                report.runs,
                report.mismatched.len()
            );
            if !report.all_match() {
                eprintln!("  schedule-dependent output: {:?}", report.mismatched);
                failed = true;
            }
        }
    }
    // The batched engine carries the strong contract too: every query
    // lane's output is bitwise schedule-independent.
    for (balance, bname) in balances {
        let opts = SpMSpVOptions {
            kernel: KernelChoice::RowTile,
            balance,
            ..Default::default()
        };
        let xs: Vec<SparseVector<f64>> = (0..4)
            .map(|q| random_sparse_vector(cert.ncols(), 0.05, 11 + q))
            .collect();
        let mut batched = tsv_core::exec::BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(
            cert,
            TileConfig::default(),
            opts,
        )
        .expect("tile batched PlusTimes");
        let report = replay_check(
            n_seeded,
            0xBA7C_4ED0,
            || batched.multiply(&xs).expect("replayed batched multiply").0,
            |a, b| {
                a.len() == b.len()
                    && a.iter().zip(b).all(|(p, q)| {
                        p.indices() == q.indices()
                            && p.values()
                                .iter()
                                .zip(q.values())
                                .all(|(v, w)| v.to_bits() == w.to_bits())
                    })
            },
        );
        println!(
            "  batched    row/{bname}: {} runs, {} mismatched (bitwise, 4 lanes)",
            report.runs,
            report.mismatched.len()
        );
        if !report.all_match() {
            eprintln!(
                "  schedule-dependent batched output: {:?}",
                report.mismatched
            );
            failed = true;
        }
    }

    // MinPlus and OrAnd carry the weaker semantic contract: same support,
    // values equal under the semiring's own comparison.
    for (balance, bname) in balances {
        let opts = SpMSpVOptions {
            kernel: KernelChoice::RowTile,
            balance,
            ..Default::default()
        };
        let mut tropical =
            SpMSpVEngine::<MinPlus>::from_csr_with(cert, TileConfig::default(), opts)
                .expect("tile MinPlus");
        let report = replay_check(
            n_seeded,
            0xBEEF_0000,
            || tropical.multiply(&x).expect("replayed multiply").0,
            |a, b| {
                a.indices() == b.indices()
                    && a.values()
                        .iter()
                        .zip(b.values())
                        .all(|(p, q)| (p - q).abs() < 1e-9)
            },
        );
        println!(
            "  min-plus   row/{bname}: {} runs, {} mismatched (semantic)",
            report.runs,
            report.mismatched.len()
        );
        if !report.all_match() {
            failed = true;
        }

        let cb: CsrMatrix<bool> = CsrMatrix::from_parts(
            cert.nrows(),
            cert.ncols(),
            cert.row_ptr().to_vec(),
            cert.col_idx().to_vec(),
            vec![true; cert.nnz()],
        )
        .expect("bool mirror");
        let xb = SparseVector::from_parts(x.len(), x.indices().to_vec(), vec![true; x.nnz()])
            .expect("bool mirror");
        let mut boolean = SpMSpVEngine::<OrAnd>::from_csr_with(&cb, TileConfig::default(), opts)
            .expect("tile OrAnd");
        let report = replay_check(
            n_seeded,
            0xB001_0000,
            || boolean.multiply(&xb).expect("replayed multiply").0,
            |a, b| a == b,
        );
        println!(
            "  or-and     row/{bname}: {} runs, {} mismatched (semantic)",
            report.runs,
            report.mismatched.len()
        );
        if !report.all_match() {
            failed = true;
        }
    }

    let s = san.summary();
    let mut summary = RunSummary::new("repro-sanitize", RTX_3090);
    summary.record_sanitizer(s);
    tsv_simt::json::parse(&summary.to_json()).expect("run summary must parse");
    println!(
        "sanitizer: {} launches, {} accesses, {} violations",
        s.launches, s.accesses, s.violations
    );
    if s.violations > 0 {
        for v in san.violations() {
            eprintln!("  {v}");
        }
        failed = true;
    }
    if failed {
        eprintln!("sanitize: FAILED");
        std::process::exit(1);
    }
    println!("sanitize: clean");
    println!();
}

// ----------------------------------------------------------------- analyze

/// `repro analyze`: sweeps the conformance corpus through the plan-time
/// static race verifier — every SpMSpV kernel × balance × tile format on
/// both execution backends, the batched multi-frontier engine (balance ×
/// format × backend, whose plans must prove write-disjointness across
/// query lanes), plus a TileBFS traversal — and cross-checks
/// the analyzer against the dynamic sanitizer. The differential contract:
/// a `Proved` plan must show zero dynamic conflicts, and any non-`Proved`
/// verdict must be justified by observed atomic claims. Every default-path
/// plan is expected to prove outright; a non-proved plan, a sanitizer
/// conflict under a proof, or an unjustified verdict exits non-zero.
fn analyze_cmd(scale: SuiteScale) {
    use std::sync::Arc;
    use tsv_core::exec::{BfsEngine, SpMSpVEngine};
    use tsv_core::semiring::PlusTimes;
    use tsv_core::spmspv::{Balance, KernelChoice, SpMSpVOptions, SpvFormat};
    use tsv_core::telemetry::RunSummary;
    use tsv_simt::{ExecBackend, Sanitizer};

    println!("== static race verifier: kernel x balance x format x backend sweep ==");
    let suite = representative(scale);
    let mut failed = false;
    let mut plans = 0usize;
    let mut proved = 0usize;
    let mut summary = RunSummary::new("repro-analyze", RTX_3090);

    let kernels = [
        (KernelChoice::RowTile, "row"),
        (KernelChoice::ColTile, "col"),
    ];
    let balances = [
        (Balance::OneWarpPerRowTile, "direct"),
        (Balance::binned(), "binned"),
    ];
    let formats = [
        (SpvFormat::TileCsr, "tilecsr"),
        (SpvFormat::Sell(Default::default()), "sell"),
    ];
    let backends = [
        (ExecBackend::model(), "model"),
        (ExecBackend::native(Some(2)), "native:2"),
    ];

    for e in &suite {
        let a = &e.matrix;
        let x = random_sparse_vector(a.ncols(), 0.02, 7);
        let mut corpus_bad = 0usize;
        for (kernel, kname) in kernels {
            for (balance, bname) in balances {
                for (format, fname) in formats {
                    for (backend, bk) in &backends {
                        let opts = SpMSpVOptions {
                            kernel,
                            balance,
                            format,
                            verify: true,
                            ..Default::default()
                        };
                        let mut engine = SpMSpVEngine::<PlusTimes>::from_csr_with(
                            a,
                            TileConfig::default(),
                            opts,
                        )
                        .expect("tile PlusTimes");
                        engine.set_backend(backend.clone());
                        // The sanitizer replays modeled warp schedules, so
                        // the dynamic side of the cross-check runs on the
                        // model backend only; native runs still verify.
                        let san = (*bk == "model").then(|| Arc::new(Sanitizer::new()));
                        engine.set_sanitizer(san.clone());
                        engine.multiply(&x).expect("verified multiply");
                        let report = engine
                            .last_analysis()
                            .expect("verify option must produce a report")
                            .clone();
                        summary.record_static_analysis(&report);
                        plans += 1;
                        let mut bad: Option<String> = None;
                        if let Some(san) = &san {
                            let conflicts = san.violation_count();
                            let atomics = san.summary().atomics;
                            if report.is_proved() && conflicts > 0 {
                                bad = Some(format!(
                                    "proved, but the sanitizer found {conflicts} conflict(s)"
                                ));
                            } else if !report.is_proved() && atomics == 0 {
                                bad = Some(
                                    "non-proved verdict with no atomic claims observed".into(),
                                );
                            }
                        }
                        if report.is_proved() {
                            proved += 1;
                        } else if bad.is_none() {
                            bad = Some(format!("default-path plan not proved: {report}"));
                        }
                        if let Some(why) = bad {
                            eprintln!("  {} {kname}/{bname}/{fname}/{bk}: {why}", e.name);
                            corpus_bad += 1;
                            failed = true;
                        }
                    }
                }
            }
        }

        // Batched launches get their own access-footprint shapes: the
        // verifier must prove write-disjointness across query lanes, and
        // a proved batched plan must show zero dynamic conflicts.
        let xs: Vec<_> = (0..5)
            .map(|q| random_sparse_vector(a.ncols(), 0.02, 7 + q))
            .collect();
        for (balance, bname) in balances {
            for (format, fname) in formats {
                for (backend, bk) in &backends {
                    let opts = SpMSpVOptions {
                        kernel: KernelChoice::RowTile,
                        balance,
                        format,
                        verify: true,
                        ..Default::default()
                    };
                    let mut engine =
                        tsv_core::exec::BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(
                            a,
                            TileConfig::default(),
                            opts,
                        )
                        .expect("tile batched PlusTimes");
                    engine.set_backend(backend.clone());
                    let san = (*bk == "model").then(|| Arc::new(Sanitizer::new()));
                    engine.set_sanitizer(san.clone());
                    engine.multiply(&xs).expect("verified batched multiply");
                    let report = engine
                        .last_analysis()
                        .expect("verify option must produce a report")
                        .clone();
                    summary.record_static_analysis(&report);
                    plans += 1;
                    let mut bad: Option<String> = None;
                    if let Some(san) = &san {
                        let conflicts = san.violation_count();
                        let atomics = san.summary().atomics;
                        if report.is_proved() && conflicts > 0 {
                            bad = Some(format!(
                                "proved, but the sanitizer found {conflicts} conflict(s)"
                            ));
                        } else if !report.is_proved() && atomics == 0 {
                            bad = Some("non-proved verdict with no atomic claims observed".into());
                        }
                    }
                    if report.is_proved() {
                        proved += 1;
                    } else if bad.is_none() {
                        bad = Some(format!("default-path plan not proved: {report}"));
                    }
                    if let Some(why) = bad {
                        eprintln!("  {} batched/{bname}/{fname}/{bk}: {why}", e.name);
                        corpus_bad += 1;
                        failed = true;
                    }
                }
            }
        }

        for (backend, bk) in &backends {
            let mut bfs = BfsEngine::from_csr(a).expect("build BFS graph");
            let mut opts = bfs.options();
            opts.verify = true;
            bfs.set_options(opts);
            bfs.set_backend(backend.clone());
            let san = (*bk == "model").then(|| Arc::new(Sanitizer::new()));
            bfs.set_sanitizer(san.clone());
            let r = bfs.run(bfs_source(a)).expect("verified BFS");
            let report = r.analysis.expect("verify option must produce a report");
            summary.record_static_analysis(&report);
            plans += 1;
            let conflicts = san.as_ref().map_or(0, |s| s.violation_count());
            if report.is_proved() {
                proved += 1;
                if conflicts > 0 {
                    eprintln!(
                        "  {} bfs/{bk}: proved, but the sanitizer found {conflicts} conflict(s)",
                        e.name
                    );
                    corpus_bad += 1;
                    failed = true;
                }
            } else {
                eprintln!(
                    "  {} bfs/{bk}: default-path plan not proved: {report}",
                    e.name
                );
                corpus_bad += 1;
                failed = true;
            }
        }

        println!(
            "  {:<16} {:>8} rows {:>9} nnz: {} disagreement(s)",
            e.name,
            a.nrows(),
            a.nnz(),
            corpus_bad
        );
    }

    // The summary document must carry the verdicts and stay parseable.
    let doc = summary.to_json();
    tsv_simt::json::parse(&doc).expect("run summary must parse");
    println!("analyze: {plans} plans, {proved} proved");
    if failed {
        eprintln!("analyze: FAILED");
        std::process::exit(1);
    }
    println!("analyze: clean");
    println!();
}

// ------------------------------------------------------------------- bench

fn scale_name(scale: SuiteScale) -> &'static str {
    match scale {
        SuiteScale::Tiny => "tiny",
        SuiteScale::Small => "small",
        SuiteScale::Medium => "medium",
    }
}

/// Renders the roofline-utilization fields appended to each modeled bench
/// row: memory/compute time fractions and the bound classification, all
/// restated from the cost model via [`tsv_core::telemetry::KernelUtilization`].
fn utilization_fields(stats: &KernelStats, launches: usize, modeled_ms: f64) -> String {
    use tsv_core::telemetry::KernelUtilization;
    use tsv_simt::json;
    let u = KernelUtilization::from_launches("", stats, launches, modeled_ms, &RTX_3090);
    format!(
        ",\"bw_fraction\":{},\"flop_fraction\":{},\"bound\":\"{}\"",
        json::number(u.bw_fraction),
        json::number(u.flop_fraction),
        u.bound.as_str(),
    )
}

/// Builds the two gated bench tables (`BENCH_spmspv.json`, `BENCH_bfs.json`)
/// as JSON documents. Row schema v2: v1's fields plus the roofline
/// utilization triple (`bw_fraction`, `flop_fraction`, `bound`).
fn build_bench_docs(scale: SuiteScale, scale_name: &str) -> (String, String) {
    use tsv_simt::json;

    let suite = representative(scale);
    let mut spmspv_rows = String::new();
    let mut bfs_rows = String::new();
    for (i, e) in suite.iter().enumerate() {
        let a = &e.matrix;
        let tiled = TileMatrix::from_csr(a, TileConfig::default()).unwrap();
        let x = random_sparse_vector(a.ncols(), 0.01, 1);
        let (_, report) =
            tsv_core::spmspv::tile_spmspv_with(&tiled, &x, Default::default()).unwrap();
        let wall = median_secs(
            || {
                std::hint::black_box(tile_spmspv(&tiled, &x).unwrap());
            },
            3,
            0.01,
        );
        let modeled = modeled_secs([report.stats], &RTX_3090);
        if i > 0 {
            spmspv_rows.push(',');
        }
        spmspv_rows.push_str(&format!(
            "{{\"matrix\":\"{}\",\"n\":{},\"nnz\":{},\"kernel\":\"{}\",\
             \"wall_ms\":{},\"modeled_ms\":{}{}}}",
            json::escape(e.name),
            a.nrows(),
            a.nnz(),
            report.kernel.trace_label(),
            json::number(wall * 1e3),
            json::number(modeled * 1e3),
            utilization_fields(&report.stats, 1, modeled * 1e3),
        ));

        let src = bfs_source(a);
        let g = TileBfsGraph::from_csr(a).unwrap();
        let run = tile_bfs(&g, src, BfsOptions::default()).unwrap();
        let bfs_wall = median_secs(
            || {
                std::hint::black_box(tile_bfs(&g, src, BfsOptions::default()).unwrap());
            },
            3,
            0.01,
        );
        let bfs_modeled = modeled_secs(run.iterations.iter().map(|it| it.stats), &RTX_3090);
        let mut bfs_stats = KernelStats::default();
        for it in &run.iterations {
            bfs_stats.merge(&it.stats);
        }
        if i > 0 {
            bfs_rows.push(',');
        }
        bfs_rows.push_str(&format!(
            "{{\"matrix\":\"{}\",\"n\":{},\"nnz\":{},\"iterations\":{},\"reached\":{},\
             \"wall_ms\":{},\"modeled_ms\":{}{}}}",
            json::escape(e.name),
            a.nrows(),
            a.nnz(),
            run.iterations.len(),
            run.reached(),
            json::number(bfs_wall * 1e3),
            json::number(bfs_modeled * 1e3),
            utilization_fields(&bfs_stats, run.iterations.len(), bfs_modeled * 1e3),
        ));
        println!("  {:<18} spmspv + bfs measured", e.name);
    }

    spmspv_rows.push(',');
    spmspv_rows.push_str(&balance_rows(scale));

    let doc = |rows: &str| {
        format!(
            "{{\"schema_version\":2,\"scale\":\"{scale_name}\",\"device\":\"{}\",\"rows\":[{rows}]}}",
            json::escape(RTX_3090.name),
        )
    };
    (doc(&spmspv_rows), doc(&bfs_rows))
}

/// `repro bench`: machine-readable benchmark tables. Each row pairs the
/// median CPU wall time with the modeled RTX 3090 device time plus its
/// roofline utilization so CI can diff runs without scraping stdout. A
/// skewed R-MAT row pair compares one-warp-per-row-tile dispatch with
/// nnz-binned dispatch on the same product; with a baseline directory,
/// every row's modeled time is gated against the committed tables.
fn bench_cmd(scale: SuiteScale, out: &Path, check: Option<&Path>) {
    println!("== machine-readable benchmark tables ==");
    let scale_name = scale_name(scale);
    let (spmspv_doc, bfs_doc) = build_bench_docs(scale, scale_name);

    let mut failures = 0usize;
    for (file, doc) in [
        ("BENCH_spmspv.json", &spmspv_doc),
        ("BENCH_bfs.json", &bfs_doc),
    ] {
        tsv_simt::json::parse(doc).expect("bench table must parse");
        let path = out.join(file);
        std::fs::write(&path, doc).expect("write bench table");
        println!("  -> wrote {}", path.display());
        if let Some(dir) = check {
            failures += check_against_baseline(file, doc, dir);
        }
    }
    if failures > 0 {
        eprintln!("bench check: {failures} row(s) regressed by more than 25% vs baseline");
        std::process::exit(1);
    }

    println!("== batched traversal amortization (informational, not gated) ==");
    let batched_doc = format!(
        "{{\"schema_version\":1,\"scale\":\"{scale_name}\",\"device\":\"{}\",\"rows\":[{}]}}",
        tsv_simt::json::escape(RTX_3090.name),
        batched_rows(scale),
    );
    tsv_simt::json::parse(&batched_doc).expect("batched bench table must parse");
    let batched_path = out.join("BENCH_batched.json");
    std::fs::write(&batched_path, &batched_doc).expect("write batched bench table");
    println!("  -> wrote {} (not gated)", batched_path.display());

    println!("== native-backend wall clock (informational, not gated) ==");
    let (spmspv_native, bfs_native) = build_native_docs(scale, scale_name);
    for (file, doc) in [
        ("BENCH_spmspv_native.json", &spmspv_native),
        ("BENCH_bfs_native.json", &bfs_native),
    ] {
        tsv_simt::json::parse(doc).expect("native bench table must parse");
        let path = out.join(file);
        std::fs::write(&path, doc).expect("write native bench table");
        println!("  -> wrote {} (not gated)", path.display());
    }
    println!();
}

/// Wall-clock tables for the native CPU backend at a sweep of thread
/// counts (`BENCH_spmspv_native.json`, `BENCH_bfs_native.json`). Host
/// wall time is machine-dependent, so these tables are informational
/// only — they are never diffed against a committed baseline. Each matrix
/// is tiled and warmed ONCE per tile storage format and only the backend
/// is re-pointed per thread count, so the sweep measures the kernels, not
/// repeated preparation. Each SpMSpV row also re-checks the substrate
/// contract: the native output — in *either* format — must be
/// bit-identical to the modeled backend's tile-CSR product. Schema v2:
/// v1's fields plus `format` on every row and `sell_padding` on SELL
/// SpMSpV rows.
fn build_native_docs(scale: SuiteScale, scale_name: &str) -> (String, String) {
    use tsv_core::bfs::BfsOptions;
    use tsv_core::exec::{BfsEngine, SpMSpVEngine};
    use tsv_core::semiring::PlusTimes;
    use tsv_core::spmspv::{SpMSpVOptions, SpvFormat};
    use tsv_core::tile::SellConfig;
    use tsv_simt::json;
    use tsv_simt::ExecBackend;

    let suite = representative(scale);
    let threads = [1usize, 2, 4];
    let formats = [SpvFormat::TileCsr, SpvFormat::Sell(SellConfig::default())];

    let mut spmspv_rows = String::new();
    let mut bfs_rows = String::new();
    for e in &suite {
        let a = &e.matrix;
        let x = random_sparse_vector(a.ncols(), 0.01, 1);
        let src = bfs_source(a);

        let mut model_engine =
            SpMSpVEngine::<PlusTimes>::from_csr(a, TileConfig::default()).unwrap();
        let (model_y, _) = model_engine.multiply(&x).unwrap();
        let model_bits: Vec<u64> = model_y.values().iter().map(|v| v.to_bits()).collect();

        for &format in &formats {
            // One tiled engine (and, for SELL, one slab build) per format;
            // the thread sweep only swaps the backend, reusing the warmed
            // preparation.
            let opts = SpMSpVOptions {
                format,
                ..Default::default()
            };
            let mut engine =
                SpMSpVEngine::<PlusTimes>::from_csr_with(a, TileConfig::default(), opts).unwrap();
            let padding = engine.sell_stats().map(|s| s.padding_ratio());
            let mut bfs_engine = BfsEngine::from_csr(a).unwrap();
            bfs_engine.set_options(BfsOptions {
                pull_lanes: match format {
                    SpvFormat::TileCsr => 0,
                    SpvFormat::Sell(cfg) => cfg.c,
                },
                ..Default::default()
            });

            for &t in &threads {
                engine.set_backend(ExecBackend::native(Some(t)));
                let (y, _) = engine.multiply(&x).unwrap();
                assert_eq!(y.indices(), model_y.indices(), "native support mismatch");
                let bits: Vec<u64> = y.values().iter().map(|v| v.to_bits()).collect();
                assert_eq!(
                    bits, model_bits,
                    "native {format} must be bit-identical to the model's tile-CSR"
                );
                let wall = median_secs(
                    || {
                        std::hint::black_box(engine.multiply(&x).unwrap());
                    },
                    3,
                    0.01,
                );
                if !spmspv_rows.is_empty() {
                    spmspv_rows.push(',');
                }
                let sell_field = match padding {
                    Some(p) => format!(",\"sell_padding\":{}", json::number(p)),
                    None => String::new(),
                };
                spmspv_rows.push_str(&format!(
                    "{{\"matrix\":\"{}\",\"n\":{},\"nnz\":{},\"backend\":\"native:{t}\",\
                     \"threads\":{t},\"format\":\"{}\",\"wall_ms\":{}{sell_field}}}",
                    json::escape(e.name),
                    a.nrows(),
                    a.nnz(),
                    format.short(),
                    json::number(wall * 1e3),
                ));

                bfs_engine.set_backend(ExecBackend::native(Some(t)));
                let run = bfs_engine.run(src).unwrap();
                let bfs_wall = median_secs(
                    || {
                        std::hint::black_box(bfs_engine.run(src).unwrap());
                    },
                    3,
                    0.01,
                );
                if !bfs_rows.is_empty() {
                    bfs_rows.push(',');
                }
                bfs_rows.push_str(&format!(
                    "{{\"matrix\":\"{}\",\"n\":{},\"nnz\":{},\"backend\":\"native:{t}\",\
                     \"threads\":{t},\"format\":\"{}\",\"iterations\":{},\"reached\":{},\
                     \"wall_ms\":{}}}",
                    json::escape(e.name),
                    a.nrows(),
                    a.nnz(),
                    format.short(),
                    run.iterations.len(),
                    run.reached(),
                    json::number(bfs_wall * 1e3),
                ));
            }
        }
        println!(
            "  {:<18} spmspv + bfs measured at {:?} thread(s) x {:?}",
            e.name,
            threads,
            ["tilecsr", "sell"]
        );
    }

    let doc = |rows: &str| {
        format!(
            "{{\"schema_version\":2,\"scale\":\"{scale_name}\",\"device\":\"native-cpu\",\
             \"rows\":[{rows}]}}",
        )
    };
    (doc(&spmspv_rows), doc(&bfs_rows))
}

/// The work-balance showcase: one SpMSpV on a skewed R-MAT with a dense
/// frontier, dispatched once with one warp per active row tile and once
/// with nnz-binned scheduling. Outputs must be bit-identical; the binned
/// plan wins on modeled device time by spreading the power-law tiles over
/// many short warps. Returns the two JSON rows (comma-joined).
fn balance_rows(scale: SuiteScale) -> String {
    use tsv_core::spmspv::{tile_spmspv_with, Balance, KernelChoice, SpMSpVOptions};
    use tsv_simt::json;
    use tsv_sparse::gen::{rmat, RmatConfig};

    let (exp, ef) = match scale {
        SuiteScale::Tiny => (10, 16),
        SuiteScale::Small => (12, 16),
        SuiteScale::Medium => (14, 32),
    };
    let a = rmat(RmatConfig::new(exp, ef), 11).to_csr();
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    let x = random_sparse_vector(a.ncols(), 0.3, 5);
    let name = format!("rmat-skew-s{exp}");

    let mut rows = Vec::new();
    let mut outputs = Vec::new();
    let mut modeled_ms = Vec::new();
    let mut wall_ms = Vec::new();
    for (label, balance) in [
        ("direct", Balance::OneWarpPerRowTile),
        ("binned", Balance::binned()),
    ] {
        let opts = SpMSpVOptions {
            kernel: KernelChoice::RowTile,
            balance,
            ..Default::default()
        };
        let (y, report) = tile_spmspv_with(&tiled, &x, opts).unwrap();
        let wall = median_secs(
            || {
                std::hint::black_box(tile_spmspv_with(&tiled, &x, opts).unwrap());
            },
            3,
            0.01,
        );
        let modeled = modeled_secs([report.stats], &RTX_3090);
        let mut row = format!(
            "{{\"matrix\":\"{}\",\"n\":{},\"nnz\":{},\"kernel\":\"{}\",\
             \"balance\":\"{label}\",\"wall_ms\":{},\"modeled_ms\":{}{}",
            json::escape(&format!("{name}/{label}")),
            a.nrows(),
            a.nnz(),
            report.kernel.trace_label(),
            json::number(wall * 1e3),
            json::number(modeled * 1e3),
            utilization_fields(&report.stats, 1, modeled * 1e3),
        );
        if let Some(d) = &report.dispatch {
            let _ = write!(
                row,
                ",\"units\":{},\"warps\":{},\"max_warp_work\":{},\"imbalance\":{}",
                d.units,
                d.warps,
                d.max_warp_work,
                json::number(d.imbalance()),
            );
        }
        row.push('}');
        rows.push(row);
        outputs.push(y);
        modeled_ms.push(modeled * 1e3);
        wall_ms.push(wall * 1e3);
    }

    let bits = |y: &tsv_sparse::SparseVector<f64>| -> Vec<u64> {
        y.values().iter().map(|v| v.to_bits()).collect()
    };
    assert_eq!(outputs[0].indices(), outputs[1].indices());
    assert_eq!(
        bits(&outputs[0]),
        bits(&outputs[1]),
        "binned dispatch must be bit-identical to direct"
    );
    println!(
        "  {:<18} direct {:.3} ms vs binned {:.3} ms modeled ({:.2}x); wall {:.3} vs {:.3} ms ({:.2}x)",
        name,
        modeled_ms[0],
        modeled_ms[1],
        modeled_ms[0] / modeled_ms[1],
        wall_ms[0],
        wall_ms[1],
        wall_ms[0] / wall_ms[1],
    );
    rows.join(",")
}

/// The traversal-amortization showcase: `B` frontiers multiplied once
/// through the batched multi-frontier engine versus `B` sequential
/// row-tile multiplies over the same frontiers. The batched pass reads
/// each touched tile body once for all query lanes, so its modeled
/// device time must amortize — the geomean speedup over the
/// representative corpus is asserted to reach 1.5x at `B = 8`. Every
/// lane is also certified bit-identical to its sequential product on
/// both backends (native at 1 and 4 threads) and both tile formats.
/// Returns the `BENCH_batched.json` rows (comma-joined).
fn batched_rows(scale: SuiteScale) -> String {
    use tsv_core::exec::{BatchedSpMSpVEngine, SpMSpVEngine};
    use tsv_core::semiring::PlusTimes;
    use tsv_core::spmspv::{KernelChoice, SpMSpVOptions, SpvFormat};
    use tsv_core::tile::SellConfig;
    use tsv_simt::json;
    use tsv_simt::ExecBackend;

    const B: usize = 8;
    let suite = representative(scale);
    let mut rows = Vec::new();
    let mut amortizations = Vec::new();
    for e in &suite {
        let a = &e.matrix;
        let xs: Vec<_> = (0..B)
            .map(|q| random_sparse_vector(a.ncols(), 0.3, 21 + q as u64))
            .collect();
        let opts = SpMSpVOptions {
            kernel: KernelChoice::RowTile,
            ..Default::default()
        };

        // The baseline: B sequential multiplies on the modeled device.
        let mut seq =
            SpMSpVEngine::<PlusTimes>::from_csr_with(a, TileConfig::default(), opts).unwrap();
        let mut seq_ys = Vec::new();
        let mut seq_stats = Vec::new();
        for x in &xs {
            let (y, report) = seq.multiply(x).unwrap();
            seq_stats.push(report.stats);
            seq_ys.push(y);
        }
        let seq_modeled = modeled_secs(seq_stats, &RTX_3090);
        let seq_wall = median_secs(
            || {
                for x in &xs {
                    std::hint::black_box(seq.multiply(x).unwrap());
                }
            },
            3,
            0.01,
        );

        // One batched pass over the same frontiers.
        let mut batched =
            BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(a, TileConfig::default(), opts)
                .unwrap();
        let (ys, report) = batched.multiply(&xs).unwrap();
        let batched_modeled = modeled_secs([report.stats], &RTX_3090);
        let batched_wall = median_secs(
            || {
                std::hint::black_box(batched.multiply(&xs).unwrap());
            },
            3,
            0.01,
        );

        // Lane-by-lane bitwise certification against the sequential
        // reference, across backend x format x thread count.
        let bits = |y: &tsv_sparse::SparseVector<f64>| -> Vec<u64> {
            y.values().iter().map(|v| v.to_bits()).collect()
        };
        let check = |label: &str, got: &[tsv_sparse::SparseVector<f64>]| {
            for (q, (y, want)) in got.iter().zip(&seq_ys).enumerate() {
                assert_eq!(
                    y.indices(),
                    want.indices(),
                    "{}/{label} lane {q}: support mismatch",
                    e.name
                );
                assert_eq!(
                    bits(y),
                    bits(want),
                    "{}/{label} lane {q}: batched must be bit-identical to sequential",
                    e.name
                );
            }
        };
        check("model/tilecsr", &ys);
        for format in [SpvFormat::TileCsr, SpvFormat::Sell(SellConfig::default())] {
            let opts = SpMSpVOptions {
                kernel: KernelChoice::RowTile,
                format,
                ..Default::default()
            };
            let mut engine =
                BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(a, TileConfig::default(), opts)
                    .unwrap();
            for threads in [1usize, 4] {
                engine.set_backend(ExecBackend::native(Some(threads)));
                let (native_ys, _) = engine.multiply(&xs).unwrap();
                check(&format!("native:{threads}/{}", format.short()), &native_ys);
            }
        }

        let amortization = seq_modeled / batched_modeled;
        amortizations.push(amortization);
        println!(
            "  {:<18} B={B} sequential {:.3} ms vs batched {:.3} ms modeled ({:.2}x); \
             wall {:.3} vs {:.3} ms",
            e.name,
            seq_modeled * 1e3,
            batched_modeled * 1e3,
            amortization,
            seq_wall * 1e3,
            batched_wall * 1e3,
        );
        rows.push(format!(
            "{{\"matrix\":\"{}\",\"n\":{},\"nnz\":{},\"batch\":{B},\
             \"kernel\":\"spmspv/row-tile-batched\",\
             \"sequential_modeled_ms\":{},\"batched_modeled_ms\":{},\"amortization\":{},\
             \"sequential_wall_ms\":{},\"batched_wall_ms\":{}{}}}",
            json::escape(e.name),
            a.nrows(),
            a.nnz(),
            json::number(seq_modeled * 1e3),
            json::number(batched_modeled * 1e3),
            json::number(amortization),
            json::number(seq_wall * 1e3),
            json::number(batched_wall * 1e3),
            utilization_fields(&report.stats, 1, batched_modeled * 1e3),
        ));
    }

    let g = geomean(&amortizations);
    println!("  geomean traversal amortization at B={B}: {g:.2}x");
    assert!(
        g >= 1.5,
        "batched traversal amortization regressed: geomean {g:.2}x < 1.5x at B={B}"
    );
    rows.join(",")
}

// ------------------------------------------------------------------ report

/// One parsed bench row as the report renders it.
struct ReportRow {
    name: String,
    modeled_ms: f64,
    bound: Option<String>,
    bw_fraction: Option<f64>,
    flop_fraction: Option<f64>,
}

/// Extracts the rows of a bench table document.
fn report_rows(doc: &str, what: &str) -> Vec<ReportRow> {
    let v = tsv_simt::json::parse(doc).unwrap_or_else(|e| {
        eprintln!("report: {what} does not parse: {e}");
        std::process::exit(1);
    });
    v.get("rows")
        .and_then(|r| r.as_array().map(<[tsv_simt::json::JsonValue]>::to_vec))
        .unwrap_or_default()
        .iter()
        .filter_map(|row| {
            Some(ReportRow {
                name: row.get("matrix")?.as_str()?.to_string(),
                modeled_ms: row.get("modeled_ms")?.as_f64()?,
                bound: row
                    .get("bound")
                    .and_then(|b| b.as_str())
                    .map(str::to_string),
                bw_fraction: row
                    .get("bw_fraction")
                    .and_then(tsv_simt::json::JsonValue::as_f64),
                flop_fraction: row
                    .get("flop_fraction")
                    .and_then(tsv_simt::json::JsonValue::as_f64),
            })
        })
        .collect()
}

/// `repro report`: the perf-trajectory view. Regenerates fresh bench rows
/// (modeled tables plus the native wall-clock sweep), reads the committed
/// baselines, and renders a markdown report to `<out>/REPORT.md` — one
/// table per workload with per-case modeled-time deltas, roofline
/// utilization and regression flags (the same +25% threshold the bench
/// gate enforces), plus the informational native tables.
fn report_cmd(scale: SuiteScale, out: &Path, baseline: Option<&Path>) {
    let baseline_dir = baseline.unwrap_or_else(|| Path::new("results/baselines"));
    let scale_name = scale_name(scale);
    println!(
        "== perf-trajectory report (baselines: {}) ==",
        baseline_dir.display()
    );

    let (spmspv_doc, bfs_doc) = build_bench_docs(scale, scale_name);
    println!("== native-backend wall clock (informational, not gated) ==");
    let (spmspv_native, bfs_native) = build_native_docs(scale, scale_name);
    for (file, doc) in [
        ("BENCH_spmspv_native.json", &spmspv_native),
        ("BENCH_bfs_native.json", &bfs_native),
    ] {
        tsv_simt::json::parse(doc).expect("native bench table must parse");
        let path = out.join(file);
        std::fs::write(&path, doc).expect("write native bench table");
        println!("  -> wrote {} (not gated)", path.display());
    }

    let mut md = String::new();
    let _ = writeln!(md, "# Performance trajectory report\n");
    let _ = writeln!(
        md,
        "Generated by `repro report --scale {scale_name}`. Modeled device: {}.",
        RTX_3090.name
    );
    let _ = writeln!(
        md,
        "Baselines: `{}` (committed). A case is flagged **REGRESSION** when its modeled\n\
         device time grew by more than 25% over the baseline — the same threshold\n\
         `repro bench --check` gates on. Utilization columns restate the cost model:\n\
         the memory/compute roofline terms as fractions of the kernel's modeled time,\n\
         and which term (memory, compute, atomic or launch overhead) bounds it.\n",
        baseline_dir.display()
    );

    let mut regressions = 0usize;
    for (title, file, doc) in [
        ("SpMSpV", "BENCH_spmspv.json", &spmspv_doc),
        ("BFS", "BENCH_bfs.json", &bfs_doc),
    ] {
        let fresh = report_rows(doc, file);
        let base = match std::fs::read_to_string(baseline_dir.join(file)) {
            Ok(doc) => report_rows(&doc, "baseline"),
            Err(e) => {
                eprintln!(
                    "report: no baseline {} ({e}); marking every case new",
                    baseline_dir.join(file).display()
                );
                Vec::new()
            }
        };
        let _ = writeln!(md, "## {title} (modeled device time, ms)\n");
        let _ = writeln!(
            md,
            "| case | baseline | current | delta | bound | mem util | alu util | status |"
        );
        let _ = writeln!(md, "|---|---:|---:|---:|---|---:|---:|---|");
        for row in &fresh {
            let pct = |f: Option<f64>| match f {
                Some(f) => format!("{:.1}%", f * 100.0),
                None => "—".to_string(),
            };
            let bound = row.bound.as_deref().unwrap_or("—");
            let (base_col, delta_col, status) = match base.iter().find(|b| b.name == row.name) {
                None => ("—".to_string(), "—".to_string(), "new".to_string()),
                Some(b) => {
                    let delta = 100.0 * (row.modeled_ms / b.modeled_ms - 1.0);
                    let status = if row.modeled_ms > 1.25 * b.modeled_ms {
                        regressions += 1;
                        "**REGRESSION**".to_string()
                    } else {
                        "ok".to_string()
                    };
                    (
                        format!("{:.4}", b.modeled_ms),
                        format!("{delta:+.1}%"),
                        status,
                    )
                }
            };
            let _ = writeln!(
                md,
                "| {} | {} | {:.4} | {} | {} | {} | {} | {} |",
                row.name,
                base_col,
                row.modeled_ms,
                delta_col,
                bound,
                pct(row.bw_fraction),
                pct(row.flop_fraction),
                status,
            );
        }
        // Baseline rows that vanished from the fresh table are regressions
        // too — a silently dropped case must not read as a clean report.
        for b in &base {
            if !fresh.iter().any(|r| r.name == b.name) {
                regressions += 1;
                let _ = writeln!(
                    md,
                    "| {} | {:.4} | — | — | — | — | — | **REGRESSION** (row disappeared) |",
                    b.name, b.modeled_ms
                );
            }
        }
        let _ = writeln!(md);
    }

    let _ = writeln!(
        md,
        "## Native backend wall clock (informational, host-dependent)\n"
    );
    let _ = writeln!(md, "| case | format | threads | wall ms |");
    let _ = writeln!(md, "|---|---|---:|---:|");
    for doc in [&spmspv_native, &bfs_native] {
        let v = tsv_simt::json::parse(doc).expect("native table must parse");
        for row in v
            .get("rows")
            .and_then(|r| r.as_array().map(<[tsv_simt::json::JsonValue]>::to_vec))
            .unwrap_or_default()
        {
            let name = row.get("matrix").and_then(|m| m.as_str()).unwrap_or("?");
            let format = row.get("format").and_then(|f| f.as_str()).unwrap_or("?");
            let threads = row
                .get("threads")
                .and_then(tsv_simt::json::JsonValue::as_u64)
                .unwrap_or(0);
            let wall = row
                .get("wall_ms")
                .and_then(tsv_simt::json::JsonValue::as_f64)
                .unwrap_or(0.0);
            let kind = if row.get("iterations").is_some() {
                "bfs"
            } else {
                "spmspv"
            };
            let _ = writeln!(md, "| {name} ({kind}) | {format} | {threads} | {wall:.4} |");
        }
    }
    let _ = writeln!(md);

    md.push_str(&format_comparison_md(&spmspv_native));
    let _ = writeln!(
        md,
        "{regressions} case(s) regressed beyond the 25% threshold."
    );

    let path = out.join("REPORT.md");
    std::fs::write(&path, &md).expect("write report");
    println!("  -> wrote {}", path.display());
    if regressions > 0 {
        println!("report: {regressions} case(s) flagged as regressions");
    } else {
        println!("report: no regressions vs baseline");
    }
    println!();
}

/// Renders the tile-CSR vs SELL-C-σ native comparison section: for each
/// matrix, the best wall time of each format across the thread sweep, the
/// resulting speedup, and the slab padding ratio that explains it (low
/// padding → the lane-blocked loops help; high padding → the slabs carry
/// dead lanes and parity or a slowdown is expected, which is why the
/// per-tile fallback exists). Informational, like everything wall-clock.
fn format_comparison_md(spmspv_native: &str) -> String {
    use std::collections::BTreeMap;
    let v = tsv_simt::json::parse(spmspv_native).expect("native table must parse");
    // matrix -> (best tilecsr wall, best sell wall, sell padding ratio)
    let mut per: BTreeMap<String, (f64, f64, f64)> = BTreeMap::new();
    for row in v
        .get("rows")
        .and_then(|r| r.as_array().map(<[tsv_simt::json::JsonValue]>::to_vec))
        .unwrap_or_default()
    {
        let (Some(name), Some(format), Some(wall)) = (
            row.get("matrix").and_then(|m| m.as_str()),
            row.get("format").and_then(|f| f.as_str()),
            row.get("wall_ms")
                .and_then(tsv_simt::json::JsonValue::as_f64),
        ) else {
            continue;
        };
        let e = per
            .entry(name.to_string())
            .or_insert((f64::INFINITY, f64::INFINITY, f64::NAN));
        match format {
            "tilecsr" => e.0 = e.0.min(wall),
            "sell" => {
                e.1 = e.1.min(wall);
                if let Some(p) = row
                    .get("sell_padding")
                    .and_then(tsv_simt::json::JsonValue::as_f64)
                {
                    e.2 = p;
                }
            }
            _ => {}
        }
    }
    let mut md = String::new();
    let _ = writeln!(md, "## Tile-CSR vs SELL-C-σ slabs (native wall clock)\n");
    let _ = writeln!(
        md,
        "Best wall time per format across the thread sweep. The padding ratio is\n\
         `padded / real` entries of the slab build (1.0 = perfectly rectangular\n\
         chunks); tiles whose padding would exceed the threshold fall back to\n\
         tile-CSR, so a ratio near 1 marks the matrices where the lane-blocked\n\
         inner loops get full SIMD lanes and a win is expected, while ragged\n\
         matrices should show parity rather than a regression.\n"
    );
    let _ = writeln!(
        md,
        "| matrix | tilecsr ms | sell ms | sell speedup | padding |"
    );
    let _ = writeln!(md, "|---|---:|---:|---:|---:|");
    for (name, (csr, sell, padding)) in &per {
        if !csr.is_finite() || !sell.is_finite() {
            continue;
        }
        let _ = writeln!(
            md,
            "| {name} | {csr:.4} | {sell:.4} | {:.2}x | {} |",
            csr / sell,
            if padding.is_nan() {
                "—".to_string()
            } else {
                format!("{padding:.3}x")
            }
        );
    }
    let _ = writeln!(md);
    md
}

/// Compares a freshly generated bench table against the committed
/// baseline of the same name: any row whose modeled device time grew by
/// more than 25%, or that vanished from the new table, counts as a
/// regression. Rows new in this run (no baseline yet) pass. Returns the
/// number of regressed rows; a missing or unreadable baseline file is a
/// hard error so CI cannot silently skip the gate.
fn check_against_baseline(file: &str, new_doc: &str, baseline_dir: &Path) -> usize {
    let path = baseline_dir.join(file);
    let baseline = match std::fs::read_to_string(&path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("bench check: cannot read baseline {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    let rows_of = |doc: &str, which: &str| -> Vec<(String, f64)> {
        let v = tsv_simt::json::parse(doc).unwrap_or_else(|e| {
            eprintln!("bench check: {which} {file} does not parse: {e}");
            std::process::exit(1);
        });
        v.get("rows")
            .and_then(|r| r.as_array().map(<[tsv_simt::json::JsonValue]>::to_vec))
            .unwrap_or_default()
            .iter()
            .filter_map(|row| {
                let name = row.get("matrix")?.as_str()?.to_string();
                let modeled = row.get("modeled_ms")?.as_f64()?;
                Some((name, modeled))
            })
            .collect()
    };
    let base_rows = rows_of(&baseline, "baseline");
    let new_rows = rows_of(new_doc, "new");

    let mut failures = 0;
    for (name, base_ms) in &base_rows {
        match new_rows.iter().find(|(n, _)| n == name) {
            None => {
                eprintln!("  REGRESSION {file}: row {name:?} disappeared");
                failures += 1;
            }
            Some((_, new_ms)) if *new_ms > 1.25 * base_ms => {
                eprintln!(
                    "  REGRESSION {file}: {name} modeled {:.4} ms -> {:.4} ms (+{:.0}%)",
                    base_ms,
                    new_ms,
                    100.0 * (new_ms / base_ms - 1.0)
                );
                failures += 1;
            }
            Some((_, new_ms)) => {
                println!("  ok {file}: {name} modeled {new_ms:.4} ms vs baseline {base_ms:.4} ms");
            }
        }
    }
    failures
}
