//! Gunrock-style BFS (Wang et al., PPoPP '16).
//!
//! Gunrock expresses BFS as advance/filter operators over a frontier
//! worklist, with Beamer direction optimization: top-down expands the
//! frontier queue edge by edge; once the frontier's edge count approaches
//! the remaining work it switches to bottom-up, scanning unvisited
//! vertices for frontier parents; it switches back when the frontier
//! shrinks. The α/β hysteresis below uses the canonical constants.
//!
//! Compared to TileBFS, the frontier is an explicit vertex queue (4 bytes
//! per vertex, atomically deduplicated) rather than bitmask tiles — more
//! traffic and more atomics per discovered vertex on dense frontiers.

use crate::bfs_common::{
    validate_bfs_input, BaselineBfsResult, BaselineIteration, Bitmap, VisitedSet,
};
use rayon::prelude::*;
use std::time::Instant;
use tsv_simt::stats::KernelStats;
use tsv_sparse::{CsrMatrix, SparseError};

/// Switch to bottom-up when `frontier_edges * ALPHA > unexplored_edges`.
const ALPHA: usize = 15;
/// Switch back to top-down when `frontier_size * BETA < n`.
const BETA: usize = 18;

/// Runs Gunrock-style BFS from `source`. For asymmetric patterns the
/// bottom-up direction is disabled (its parent scan requires in-edges).
pub fn gunrock_bfs(a: &CsrMatrix<f64>, source: usize) -> Result<BaselineBfsResult, SparseError> {
    validate_bfs_input(a, source)?;
    let n = a.nrows();
    let symmetric = {
        let t = a.transpose();
        t.row_ptr() == a.row_ptr() && t.col_idx() == a.col_idx()
    };

    let mut levels = vec![-1i32; n];
    levels[source] = 0;
    let visited = VisitedSet::new(n);
    visited.try_visit(source);

    let mut frontier: Vec<u32> = vec![source as u32];
    let mut iterations = Vec::new();
    let mut total_stats = KernelStats::default();
    let mut level = 0i32;
    let total_edges = a.nnz();
    let mut explored_edges = a.row_nnz(source);
    let mut bottom_up = false;

    while !frontier.is_empty() {
        let start = Instant::now();
        let frontier_edges: usize = frontier.iter().map(|&v| a.row_nnz(v as usize)).sum();

        // Beamer direction heuristic.
        if symmetric {
            if !bottom_up && frontier_edges * ALPHA > total_edges.saturating_sub(explored_edges) {
                bottom_up = true;
            } else if bottom_up && frontier.len() * BETA < n {
                bottom_up = false;
            }
        }

        let (next, stats, strategy) = if bottom_up {
            let bitmap = Bitmap::from_list(n, &frontier);
            bottom_up_step(a, &bitmap, &visited)
        } else {
            top_down_step(a, &frontier, &visited)
        };

        let wall = start.elapsed();
        iterations.push(BaselineIteration {
            frontier: frontier.len(),
            strategy,
            stats,
            wall,
        });
        total_stats += stats;

        level += 1;
        for &v in &next {
            levels[v as usize] = level;
            explored_edges += a.row_nnz(v as usize);
        }
        frontier = next;
    }

    Ok(BaselineBfsResult {
        levels,
        iterations,
        total_stats,
    })
}

/// Advance + filter: expand every frontier vertex's adjacency, claiming
/// unvisited neighbors atomically.
fn top_down_step(
    a: &CsrMatrix<f64>,
    frontier: &[u32],
    visited: &VisitedSet,
) -> (Vec<u32>, KernelStats, &'static str) {
    let chunk = frontier
        .len()
        .div_ceil(rayon::current_num_threads().max(1))
        .max(16);
    let parts: Vec<(Vec<u32>, KernelStats)> = frontier
        .par_chunks(chunk)
        .map(|part| {
            let mut stats = KernelStats::default();
            stats.warps += 1;
            let mut local = Vec::new();
            for &u in part {
                let (cols, _) = a.row(u as usize);
                stats.read_scattered(8); // row_ptr lookup of a queued vertex
                stats.read(cols.len() * 4);
                for &v in cols {
                    stats.atomic(1);
                    if visited.try_visit(v as usize) {
                        local.push(v);
                        stats.write(4);
                    }
                }
                stats.lane_steps += cols.len().div_ceil(32) as u64 * 32;
            }
            (local, stats)
        })
        .collect();

    let mut next = Vec::new();
    let mut stats = KernelStats::default();
    for (local, s) in parts {
        next.extend(local);
        stats += s;
    }
    (next, stats, "top-down")
}

/// Bottom-up: every unvisited vertex scans its (in-)neighbors for a
/// frontier member.
fn bottom_up_step(
    a: &CsrMatrix<f64>,
    frontier: &Bitmap,
    visited: &VisitedSet,
) -> (Vec<u32>, KernelStats, &'static str) {
    let n = a.nrows();
    let chunk = (n / (rayon::current_num_threads().max(1) * 8)).max(64);
    let parts: Vec<(Vec<u32>, KernelStats)> = (0..n)
        .into_par_iter()
        .chunks(chunk)
        .map(|part| {
            let mut stats = KernelStats::default();
            stats.warps += 1;
            let mut local = Vec::new();
            for v in part {
                if visited.contains(v) {
                    continue;
                }
                let (cols, _) = a.row(v);
                stats.read(8 + 4); // row header + streamed neighbor ids
                for (k, &u) in cols.iter().enumerate() {
                    stats.read_scattered(4); // frontier bitmap probe
                    if frontier.get(u as usize) {
                        if visited.try_visit(v) {
                            local.push(v as u32);
                            stats.atomic(1);
                            stats.write(4);
                        }
                        stats.lane_steps += (k + 1) as u64;
                        break; // first parent suffices
                    }
                }
            }
            (local, stats)
        })
        .collect();

    let mut next = Vec::new();
    let mut stats = KernelStats::default();
    for (local, s) in parts {
        next.extend(local);
        stats += s;
    }
    (next, stats, "bottom-up")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{geometric_graph, grid2d, rmat, RmatConfig};
    use tsv_sparse::reference::bfs_levels;
    use tsv_sparse::CooMatrix;

    #[test]
    fn matches_serial_on_grid() {
        let a = grid2d(25, 18).to_csr().without_diagonal();
        let r = gunrock_bfs(&a, 0).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, 0).unwrap());
        assert!(r.total_stats.warps > 0);
    }

    #[test]
    fn matches_serial_on_powerlaw_and_uses_bottom_up() {
        let a = rmat(RmatConfig::new(10, 16), 8).to_csr();
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let r = gunrock_bfs(&a, source).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, source).unwrap());
        // A dense RMAT explosion should trigger the direction switch.
        assert!(
            r.iterations.iter().any(|it| it.strategy == "bottom-up"),
            "expected a bottom-up iteration on a power-law graph"
        );
    }

    #[test]
    fn matches_serial_on_road_like() {
        let a = geometric_graph(800, 4.0, 3).to_csr();
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let r = gunrock_bfs(&a, source).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, source).unwrap());
    }

    #[test]
    fn directed_graph_stays_top_down_and_correct() {
        let n = 60;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
        }
        let a = coo.to_csr();
        let r = gunrock_bfs(&a, 0).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, 0).unwrap());
        assert!(r.iterations.iter().all(|it| it.strategy == "top-down"));
    }

    #[test]
    fn rejects_bad_inputs() {
        let a = grid2d(4, 4).to_csr();
        assert!(gunrock_bfs(&a, 99).is_err());
    }

    #[test]
    fn iteration_trace_covers_all_levels() {
        let a = grid2d(12, 12).to_csr().without_diagonal();
        let r = gunrock_bfs(&a, 0).unwrap();
        let max_level = *r.levels.iter().max().unwrap() as usize;
        assert!(r.iterations.len() >= max_level);
        assert!(r.wall().as_nanos() > 0);
    }
}
