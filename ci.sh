#!/usr/bin/env bash
# Local CI: the same gate the GitHub workflow runs.
# Requires a reachable crates.io registry to resolve the (few) external
# dependencies (rand, rayon, proptest, criterion).
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace

# Telemetry smoke: an instrumented run must emit a Chrome trace and a run
# summary that parse back with at least one kernel span. `repro trace`
# validates both documents itself and exits nonzero on any failure; the
# grep double-checks the kernel-span count from the outside.
trace_dir="$(mktemp -d)"
trap 'rm -rf "$trace_dir"' EXIT
./target/release/repro trace --scale tiny --out "$trace_dir" | tee "$trace_dir/log"
grep -E 'validated: [0-9]+ events \([1-9][0-9]* kernel spans\)' "$trace_dir/log" >/dev/null
test -s "$trace_dir/trace.json" && test -s "$trace_dir/trace.summary.json"

# Bench regression gate: regenerate the machine-readable tables at tiny
# scale and diff every row's modeled device time against the committed
# baselines. The modeled times are deterministic functions of the kernels'
# work counters, so a >25% drift is a real change in counted work, not
# measurement noise (wall_ms is recorded but never compared). Exits
# nonzero on any regressed row. The batched traversal-amortization table
# must be emitted alongside (its 1.5x geomean floor and lane-by-lane
# bit-identity are asserted inside the binary; the table itself is
# informational and never diffed against a baseline).
./target/release/repro bench --scale tiny --out "$trace_dir" --check results/baselines
test -s "$trace_dir/BENCH_batched.json"

# Metrics smoke: a run with --metrics-out must emit a valid Prometheus
# exposition covering both the backend and engine instrumentation, and
# --report must print the roofline utilization table. Then the
# perf-trajectory report: regenerate the bench rows and render the
# baseline diff to REPORT.md (informational — the bench gate above is
# the enforcer).
./target/release/tsv spmspv gen:rmat:10 --sparsity 0.05 \
    --metrics-out "$trace_dir/metrics.prom" --report | tee "$trace_dir/mlog"
grep 'utilization:' "$trace_dir/mlog" >/dev/null
grep 'tsv_simt_launches_total' "$trace_dir/metrics.prom" >/dev/null
grep 'tsv_engine_phase_ns' "$trace_dir/metrics.prom" >/dev/null
./target/release/repro report --scale tiny --out "$trace_dir" --check results/baselines
test -s "$trace_dir/REPORT.md"

# Race-sanitizer gate. First the sanitizer's own test surface in release
# mode (the shadow log makes sanitized runs slow in debug): the detector
# unit tests, the schedule-permutation harness, and the engine-level
# sanitizer integration. Then the full sweep: every SpMSpV kernel ×
# balance mode × semiring plus a complete BFS per matrix runs under the
# sanitizer over the tiny corpus, and schedule-permutation replay
# certifies bitwise (PlusTimes) / semantic (MinPlus, OrAnd) determinism.
# `repro sanitize` exits nonzero on any conflict or permutation-dependent
# output.
cargo test --release -q -p tsv-simt -p tsv-core
./target/release/repro sanitize --scale tiny

# Plan-time static race verifier. `repro analyze` sweeps the corpus
# (kernel × balance × format × both backends, plus BFS) through the
# analyzer and cross-checks every verdict against the dynamic sanitizer:
# each default-path plan must prove, a Proved verdict must show zero
# dynamic conflicts, and a non-Proved verdict must be justified by
# observed atomic claims. The CLI smoke drives --verify-plan end to end.
./target/release/repro analyze --scale tiny
./target/release/tsv spmspv gen:rmat:10 --verify-plan | grep 'proved' >/dev/null
./target/release/tsv spmspv gen:banded:2000:8 --balance binned --verify-plan | grep 'merge-determinism' >/dev/null
./target/release/tsv bfs gen:grid:40:40 --verify-plan | grep 'plan bfs/' >/dev/null

# loom model checking: exhaustive interleaving exploration of the atomic
# merge primitives (frontier fetch_or, PlusTimes CAS-add bit-identity,
# workspace pool handoff) with `--cfg loom` swapping the atomic views
# onto loom's model-checked types.
RUSTFLAGS="--cfg loom" cargo test --release -q -p tsv-simt --test loom_model

# Native-backend gate: the conformance suite (every kernel × semiring ×
# balance mode against the dense oracle) and the backend-equivalence
# property tests, with the native rayon pool at one thread and at four.
# PlusTimes must be bit-identical to the modeled grid at every width.
# Then the same equivalence suites pinned to the SELL-C-σ slab format
# (TSV_FORMAT selects the tile storage the conformance cases run with) at
# both widths — the lane-blocked bodies must hold the same bit-identity.
TSV_NATIVE_THREADS=1 cargo test --release -q --test conformance_dense --test proptest_backend
TSV_NATIVE_THREADS=4 cargo test --release -q --test conformance_dense --test proptest_backend
TSV_FORMAT=sell TSV_NATIVE_THREADS=1 cargo test --release -q --test conformance_dense --test proptest_backend
TSV_FORMAT=sell TSV_NATIVE_THREADS=4 cargo test --release -q --test conformance_dense --test proptest_backend
./target/release/tsv spmspv gen:rmat:12 --backend native:4 | grep 'backend: native:4' >/dev/null
./target/release/tsv bfs gen:grid:64 --backend native:2 | grep 'backend: native:2' >/dev/null
./target/release/tsv spmspv gen:rmat:12 --format sell --backend native:4 | grep 'format: sell' >/dev/null
./target/release/tsv bfs gen:grid:64 --format sell:8 | grep 'format: sell' >/dev/null

# Batched multi-frontier gate: the batched ≡ sequential differential
# suite (backend × format × balance × B ∈ {1, 2, 7, 32} over the
# conformance corpus) at one and at four native threads, the batched
# analyzer/sanitizer cross-check proptests, and a --batch CLI smoke
# covering the batched kernel label and the per-width plan proof.
TSV_NATIVE_THREADS=1 cargo test --release -q --test batched_equivalence
TSV_NATIVE_THREADS=4 cargo test --release -q --test batched_equivalence
cargo test --release -q --test proptest_analyze
./target/release/tsv spmspv gen:rmat:12 --batch 4 --backend native:4 | grep 'batch: 4 lanes' >/dev/null
./target/release/tsv spmspv gen:rmat:12 --batch 4 --verify-plan | grep '/b4' >/dev/null
