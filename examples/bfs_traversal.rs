//! TileBFS on a power-law graph, with the per-iteration kernel trace and a
//! comparison against the Gunrock/GSwitch/Enterprise-style baselines.
//!
//! ```text
//! cargo run --release --example bfs_traversal
//! ```

use tilespmspv::baselines::{enterprise_bfs, gswitch_bfs, gunrock_bfs};
use tilespmspv::prelude::*;
use tilespmspv::sparse::gen::{rmat, RmatConfig};
use tilespmspv::sparse::reference::{bfs_edges_traversed, bfs_levels};

fn main() {
    // A Graph500-style R-MAT graph: 2^14 vertices, ~16 edges per vertex.
    let a = rmat(RmatConfig::new(14, 16), 7).to_csr();
    let source = (0..a.nrows())
        .find(|&v| a.row_nnz(v) > 0)
        .expect("graph has edges");
    println!(
        "graph: {} vertices, {} edges; BFS from {}",
        a.nrows(),
        a.nnz(),
        source
    );

    // Build the bitmask tile structure (nt chosen by the paper's rule).
    let g = TileBfsGraph::from_csr(&a).unwrap();
    println!(
        "bit tiles: nt = {}, {} stored tiles, {} extracted edges",
        g.bit().nt(),
        g.bit().num_tiles(),
        g.bit().extra_nnz()
    );

    // Run TileBFS and show the direction decisions the policy made.
    let result = tile_bfs(&g, source, BfsOptions::default()).unwrap();
    println!("\niter  kernel     frontier  discovered      time");
    for it in &result.iterations {
        println!(
            "{:>4}  {:<9} {:>9} {:>11} {:>9.3?}",
            it.level,
            it.kernel.to_string(),
            it.frontier,
            it.discovered,
            it.wall
        );
    }
    println!(
        "\nreached {} vertices in {} levels",
        result.reached(),
        result.iterations.len()
    );

    // Correctness against the serial oracle.
    assert_eq!(result.levels, bfs_levels(&a, source).unwrap());

    // Compare all four BFS implementations on the same traversal.
    let edges = bfs_edges_traversed(&a, &result.levels);
    let gteps = |secs: f64| edges as f64 / secs / 1e9;
    let gun = gunrock_bfs(&a, source).unwrap();
    let gsw = gswitch_bfs(&a, source).unwrap();
    let ent = enterprise_bfs(&a, source).unwrap();
    assert_eq!(gun.levels, result.levels);
    assert_eq!(gsw.levels, result.levels);
    assert_eq!(ent.levels, result.levels);

    println!("\nalgorithm     wall        GTEPS (CPU substrate)");
    for (name, secs) in [
        ("TileBFS", result.wall().as_secs_f64()),
        ("Gunrock", gun.wall().as_secs_f64()),
        ("GSwitch", gsw.wall().as_secs_f64()),
        ("Enterprise", ent.wall().as_secs_f64()),
    ] {
        println!("{name:<12} {:>8.3} ms  {:>8.4}", secs * 1e3, gteps(secs));
    }
}
