//! GraphBLAS-style semirings.
//!
//! The paper frames SpMSpV in the GraphBLAS setting: BFS is SpMSpV over the
//! boolean (OR, AND) semiring, numeric products use (+, ×), shortest paths
//! use (min, +). The tiled numeric kernels in [`crate::spmspv`] are
//! specialized to (+, ×) `f64` for speed; this module provides the generic
//! algebra plus a reference column-driven SpMSpV over any semiring, used
//! both as an oracle and as the general-purpose API.

use tsv_sparse::{CscMatrix, SparseError, SparseVector};

/// A semiring `(add, mul, zero)` over element type `T`.
///
/// `zero` must be the identity of `add` and annihilate `mul`
/// (`mul(zero, x) = zero`); implementations rely on both to skip implicit
/// zeros.
pub trait Semiring: Copy + Send + Sync {
    /// Element type.
    type T: Copy + PartialEq + Send + Sync;

    /// The additive identity / multiplicative annihilator.
    fn zero() -> Self::T;

    /// Semiring addition (the merge operator).
    fn add(a: Self::T, b: Self::T) -> Self::T;

    /// Semiring multiplication (the scale operator).
    fn mul(a: Self::T, b: Self::T) -> Self::T;
}

/// The arithmetic semiring `(+, ×)` over `f64` — numeric SpMSpV.
#[derive(Debug, Clone, Copy)]
pub struct PlusTimes;

impl Semiring for PlusTimes {
    type T = f64;

    fn zero() -> f64 {
        0.0
    }

    fn add(a: f64, b: f64) -> f64 {
        a + b
    }

    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// The boolean semiring `(OR, AND)` — reachability / BFS frontier
/// expansion, the algebra of the paper's bitmask kernels.
#[derive(Debug, Clone, Copy)]
pub struct OrAnd;

impl Semiring for OrAnd {
    type T = bool;

    fn zero() -> bool {
        false
    }

    fn add(a: bool, b: bool) -> bool {
        a | b
    }

    fn mul(a: bool, b: bool) -> bool {
        a & b
    }
}

/// The tropical semiring `(min, +)` over `f64` — single-source shortest
/// path relaxation. `zero` is `+∞`.
#[derive(Debug, Clone, Copy)]
pub struct MinPlus;

impl Semiring for MinPlus {
    type T = f64;

    fn zero() -> f64 {
        f64::INFINITY
    }

    fn add(a: f64, b: f64) -> f64 {
        a.min(b)
    }

    fn mul(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// `(max, ×)` over non-negative `f64` — maximum-reliability paths.
#[derive(Debug, Clone, Copy)]
pub struct MaxTimes;

impl Semiring for MaxTimes {
    type T = f64;

    fn zero() -> f64 {
        0.0
    }

    fn add(a: f64, b: f64) -> f64 {
        a.max(b)
    }

    fn mul(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// Column-driven SpMSpV `y = A ⊕.⊗ x` over an arbitrary semiring
/// (Algorithm 2 generalized). Entries equal to `S::zero()` are dropped
/// from the output.
///
/// ```
/// use tsv_core::semiring::{spmspv_semiring, MinPlus};
/// use tsv_sparse::{CooMatrix, SparseVector};
///
/// // One (min, +) step relaxes the source's out-edges.
/// let mut coo = CooMatrix::new(3, 3);
/// coo.push(1, 0, 2.0); // edge 0 -> 1 of weight 2
/// coo.push(2, 1, 1.0); // edge 1 -> 2 of weight 1
/// let a = coo.to_csc();
/// let x = SparseVector::from_entries(3, vec![(0, 0.0)]).unwrap();
/// let y = spmspv_semiring::<MinPlus>(&a, &x).unwrap();
/// assert_eq!(y.get(1), Some(2.0));
/// ```
pub fn spmspv_semiring<S: Semiring>(
    a: &CscMatrix<S::T>,
    x: &SparseVector<S::T>,
) -> Result<SparseVector<S::T>, SparseError> {
    if a.ncols() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "spmspv_semiring",
            expected: a.ncols(),
            found: x.len(),
        });
    }
    let mut acc = vec![S::zero(); a.nrows()];
    let mut touched = vec![false; a.nrows()];
    for (j, xj) in x.iter() {
        if xj == S::zero() {
            continue;
        }
        let (rows, vals) = a.col(j);
        for (&i, &aij) in rows.iter().zip(vals) {
            let i = i as usize;
            acc[i] = S::add(acc[i], S::mul(aij, xj));
            touched[i] = true;
        }
    }
    let mut indices = Vec::new();
    let mut out_vals = Vec::new();
    for i in 0..a.nrows() {
        if touched[i] && acc[i] != S::zero() {
            indices.push(i as u32);
            out_vals.push(acc[i]);
        }
    }
    SparseVector::from_parts(a.nrows(), indices, out_vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::CooMatrix;

    fn graph() -> CooMatrix<f64> {
        // 0 -> 1 (w 2), 0 -> 2 (w 5), 1 -> 2 (w 1): stored as A[dst][src].
        let mut coo = CooMatrix::new(3, 3);
        coo.push(1, 0, 2.0);
        coo.push(2, 0, 5.0);
        coo.push(2, 1, 1.0);
        coo
    }

    #[test]
    fn plus_times_matches_reference() {
        let a = graph().to_csc();
        let x = SparseVector::from_entries(3, vec![(0, 3.0)]).unwrap();
        let y = spmspv_semiring::<PlusTimes>(&a, &x).unwrap();
        assert_eq!(y.get(1), Some(6.0));
        assert_eq!(y.get(2), Some(15.0));
        let oracle = tsv_sparse::reference::spmspv_col(&a, &x).unwrap();
        assert_eq!(y, oracle);
    }

    #[test]
    fn or_and_expands_frontier() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(1, 0, true);
        coo.push(2, 1, true);
        let a = coo.to_csc_bool();
        let x = SparseVector::from_entries(3, vec![(0, true)]).unwrap();
        let y = spmspv_semiring::<OrAnd>(&a, &x).unwrap();
        assert_eq!(y.indices(), &[1]);
    }

    #[test]
    fn min_plus_relaxes_distances() {
        let a = graph().to_csc();
        // Distance 0 at the source; min-plus multiply gives edge-relaxed
        // distances of the out-neighbors.
        let x = SparseVector::from_entries(3, vec![(0, 0.0)]).unwrap();
        let y = spmspv_semiring::<MinPlus>(&a, &x).unwrap();
        assert_eq!(y.get(1), Some(2.0));
        assert_eq!(y.get(2), Some(5.0));

        // Two frontier entries: vertex 2 takes the min over paths.
        let x2 = SparseVector::from_entries(3, vec![(0, 0.0), (1, 2.0)]).unwrap();
        let y2 = spmspv_semiring::<MinPlus>(&a, &x2).unwrap();
        assert_eq!(y2.get(2), Some(3.0), "min(0+5, 2+1)");
    }

    #[test]
    fn max_times_takes_best_product() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 0.5);
        let a = coo.to_csc();
        let x = SparseVector::from_entries(2, vec![(0, 0.8)]).unwrap();
        let y = spmspv_semiring::<MaxTimes>(&a, &x).unwrap();
        assert!((y.get(1).unwrap() - 0.4).abs() < 1e-15);
    }

    #[test]
    fn zero_inputs_are_skipped() {
        let a = graph().to_csc();
        let x = SparseVector::<f64>::zeros(3);
        let y = spmspv_semiring::<PlusTimes>(&a, &x).unwrap();
        assert_eq!(y.nnz(), 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = graph().to_csc();
        let x = SparseVector::<f64>::zeros(5);
        assert!(spmspv_semiring::<PlusTimes>(&a, &x).is_err());
    }

    /// Helper: convert an f64 COO into a bool CSC.
    trait ToBool {
        fn to_csc_bool(&self) -> CscMatrix<bool>;
    }

    impl ToBool for CooMatrix<bool> {
        fn to_csc_bool(&self) -> CscMatrix<bool> {
            // bool lacks Add; route through u8.
            let mut coo = CooMatrix::new(self.nrows(), self.ncols());
            for (r, c, v) in self.iter() {
                if v {
                    coo.push(r, c, 1u8);
                }
            }
            let csr = coo.to_csr();
            let csc = csr.to_csc();
            CscMatrix::from_parts(
                csc.nrows(),
                csc.ncols(),
                csc.col_ptr().to_vec(),
                csc.row_idx().to_vec(),
                csc.values().iter().map(|&v| v != 0).collect(),
            )
            .unwrap()
        }
    }
}
