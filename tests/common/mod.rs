//! Shared fixtures for the integration-test suites: the conformance
//! matrix zoo, the backend/format sweeps driven by `TSV_NATIVE_THREADS`
//! and `TSV_FORMAT`, and the shrinking-friendly batch-of-frontiers
//! proptest generator the batched differential suites draw from.
#![allow(dead_code)]

use proptest::prelude::*;
use tilespmspv::core::spmspv::SpvFormat;
use tilespmspv::core::tile::SellConfig;
use tilespmspv::simt::ExecBackend;
use tilespmspv::sparse::gen::{
    banded, geometric_graph, grid2d, random_sparse_vector, rmat, uniform_random, RmatConfig,
};
use tilespmspv::sparse::{CooMatrix, CsrMatrix, SparseVector};

/// The substrates every conformance case runs on: the modeled SIMT grid
/// and the native rayon backend. `TSV_NATIVE_THREADS` picks the native
/// pool size (CI runs the suite at 1 and at N), defaulting to 2 so a
/// plain `cargo test` still exercises real cross-thread merging.
pub fn backends() -> Vec<ExecBackend> {
    let threads = std::env::var("TSV_NATIVE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or(2);
    vec![ExecBackend::model(), ExecBackend::native(Some(threads))]
}

/// The tile storage formats every conformance case runs with. `TSV_FORMAT`
/// pins one (`tilecsr`, `sell`, `sell:C:sigma`, … — CI runs the suite once
/// per format); unset runs both the tile-CSR baseline and SELL slabs with
/// a small σ-window so sorting, padding and fallback all engage on the
/// zoo's tile shapes.
pub fn formats() -> Vec<SpvFormat> {
    match std::env::var("TSV_FORMAT") {
        Ok(spec) => vec![SpvFormat::parse(&spec).expect("TSV_FORMAT must parse")],
        Err(_) => vec![
            SpvFormat::TileCsr,
            SpvFormat::Sell(SellConfig {
                c: 8,
                sigma: 16,
                ..SellConfig::default()
            }),
        ],
    }
}

/// ~30 matrices: tile-edge straddlers, the structure classes, rectangular
/// shapes, and the degenerate cases tiled layouts get wrong first.
pub fn conformance_zoo() -> Vec<(String, CsrMatrix<f64>)> {
    let mut zoo: Vec<(String, CsrMatrix<f64>)> = Vec::new();

    // Orders one below, at, and above one, two and four tile widths.
    for n in [1usize, 2, 31, 32, 33, 63, 64, 65, 96, 127, 128, 129] {
        let nnz = (n * n / 4).clamp(1, 6 * n);
        zoo.push((
            format!("uniform-{n}"),
            uniform_random(n, n, nnz, n as u64).to_csr(),
        ));
    }

    // Structure classes.
    zoo.push(("banded".into(), banded(300, 9, 0.7, 1).to_csr()));
    zoo.push(("banded-dense".into(), banded(128, 16, 1.0, 2).to_csr()));
    zoo.push(("grid".into(), grid2d(18, 17).to_csr()));
    zoo.push(("grid-square".into(), grid2d(16, 16).to_csr()));
    zoo.push(("geometric".into(), geometric_graph(350, 5.0, 3).to_csr()));
    zoo.push(("rmat".into(), rmat(RmatConfig::new(8, 6), 4).to_csr()));
    zoo.push((
        "rmat-skewed".into(),
        rmat(RmatConfig::new(7, 10), 9).to_csr(),
    ));
    zoo.push(("dense-64".into(), uniform_random(64, 64, 2048, 10).to_csr()));

    // Rectangular, including tile-edge straddling shapes.
    zoo.push((
        "rect-wide".into(),
        uniform_random(64, 320, 1800, 5).to_csr(),
    ));
    zoo.push((
        "rect-tall".into(),
        uniform_random(320, 60, 1800, 6).to_csr(),
    ));
    zoo.push((
        "rect-wide-edge".into(),
        uniform_random(33, 65, 400, 7).to_csr(),
    ));
    zoo.push((
        "rect-tall-edge".into(),
        uniform_random(65, 33, 400, 8).to_csr(),
    ));

    // Degenerate shapes.
    zoo.push(("empty".into(), CsrMatrix::zeros(64, 64)));
    zoo.push(("empty-offsize".into(), CsrMatrix::zeros(65, 33)));
    let mut single = CooMatrix::new(1, 1);
    single.push(0, 0, 2.5);
    zoo.push(("single".into(), single.to_csr()));
    let mut corner = CooMatrix::new(97, 97);
    corner.push(96, 96, -1.5);
    zoo.push(("lonely-corner".into(), corner.to_csr()));
    // One entry every 32nd diagonal position: every populated tile holds a
    // single element, everything else is empty — the all-empty-tile case.
    let mut sparse_diag = CooMatrix::new(256, 256);
    for k in (0..256).step_by(32) {
        sparse_diag.push(k, k, 1.0 + k as f64);
    }
    zoo.push(("sparse-diag".into(), sparse_diag.to_csr()));
    // All entries inside the first tile of a much larger grid: every
    // other row/column tile is structurally empty.
    let mut first_tile = CooMatrix::new(160, 160);
    for r in 0..16 {
        for c in 0..8 {
            first_tile.push(r, (c * 3) % 32, (r * 32 + c) as f64 * 0.25 + 1.0);
        }
    }
    zoo.push(("first-tile-only".into(), first_tile.to_csr()));

    zoo
}

/// Inputs for one matrix: the empty vector, a sparse and a dense random
/// vector, and a single mid-vector entry.
pub fn vector_zoo(ncols: usize) -> Vec<SparseVector<f64>> {
    vec![
        random_sparse_vector(ncols, 0.0, 1),
        random_sparse_vector(ncols, 0.03, 2),
        random_sparse_vector(ncols, 0.25, 3),
        SparseVector::from_entries(ncols, vec![(ncols as u32 / 2, 1.5)]).unwrap(),
    ]
}

/// A batch of frontiers for one matrix: the per-width seeded sweep the
/// differential suites multiply both batched and sequentially. Sparsity
/// varies per lane so dense, sparse and empty frontiers coexist in one
/// batch.
pub fn frontier_batch(ncols: usize, width: usize, seed: u64) -> Vec<SparseVector<f64>> {
    (0..width)
        .map(|q| {
            let sparsity = [0.0, 0.02, 0.1, 0.35][q % 4];
            random_sparse_vector(ncols, sparsity, seed + q as u64)
        })
        .collect()
}

/// The lane-by-lane bit pattern of a batch of products, for exact
/// comparisons.
pub fn batch_bits(ys: &[SparseVector<f64>]) -> Vec<(Vec<u32>, Vec<u64>)> {
    ys.iter()
        .map(|y| {
            (
                y.indices().to_vec(),
                y.values().iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

/// A shrinking-friendly proptest strategy for a batch of frontiers over
/// `ncols` columns: up to 8 query lanes, each an arbitrary sparse vector
/// (including empty ones). Both the lane count and every lane's entry
/// list shrink independently, so failures minimize toward one lane with
/// one entry. Shared by the batched proptest suites.
pub fn arb_frontier_batch(ncols: usize) -> impl Strategy<Value = Vec<SparseVector<f64>>> {
    let n = ncols.max(1) as u32;
    let frontier =
        proptest::collection::vec((0..n, -4.0f64..4.0), 0..40).prop_map(move |mut entries| {
            entries.sort_by_key(|&(i, _)| i);
            entries.dedup_by_key(|e| e.0);
            SparseVector::from_entries(ncols.max(1), entries).unwrap()
        });
    proptest::collection::vec(frontier, 0..8)
}
