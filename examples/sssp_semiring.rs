//! Single-source shortest paths as iterated SpMSpV over the (min, +)
//! semiring — the GraphBLAS framing the paper positions TileSpMSpV in.
//!
//! `tilespmspv::apps::sssp` runs sparse-frontier Bellman-Ford: each round
//! relaxes the frontier's neighbors with one tropical-semiring SpMSpV.
//! The example cross-checks against Dijkstra.
//!
//! ```text
//! cargo run --release --example sssp_semiring
//! ```

use std::collections::BinaryHeap;
use tilespmspv::apps::sssp;
use tilespmspv::sparse::gen::geometric_graph;
use tilespmspv::sparse::CsrMatrix;

/// Dijkstra oracle.
fn dijkstra(a: &CsrMatrix<f64>, source: usize) -> Vec<f64> {
    let n = a.nrows();
    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push((std::cmp::Reverse(Ordered(0.0)), source));
    while let Some((std::cmp::Reverse(Ordered(d)), u)) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        let (cols, vals) = a.row(u);
        for (&v, &w) in cols.iter().zip(vals) {
            let nd = d + w;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                heap.push((std::cmp::Reverse(Ordered(nd)), v as usize));
            }
        }
    }
    dist
}

#[derive(PartialEq, PartialOrd)]
struct Ordered(f64);
impl Eq for Ordered {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

fn main() {
    // A road-like graph, re-weighted with varied positive edge weights.
    let pattern = geometric_graph(5_000, 5.0, 21);
    let mut coo = tilespmspv::sparse::CooMatrix::new(pattern.nrows(), pattern.ncols());
    for (i, (r, c, _)) in pattern.iter().enumerate() {
        let w = 0.1 + ((i.wrapping_mul(2654435761)) % 1000) as f64 / 1000.0;
        coo.push(r, c, w);
    }
    let csr = coo.to_csr();

    let source = (0..csr.nrows()).find(|&v| csr.row_nnz(v) > 0).unwrap();
    let dist = sssp(&csr, source).expect("square non-negative input");
    let oracle = dijkstra(&csr, source);

    let reached = dist.iter().filter(|d| d.is_finite()).count();
    let max_err = dist
        .iter()
        .zip(&oracle)
        .filter(|(d, o)| d.is_finite() || o.is_finite())
        .map(|(d, o)| (d - o).abs())
        .fold(0.0f64, f64::max);
    println!(
        "SSSP from {source}: reached {reached}/{} vertices; max |spmspv - dijkstra| = {max_err:.3e}",
        csr.nrows()
    );
    assert!(max_err < 1e-9, "semiring SSSP must match Dijkstra");

    let mut finite: Vec<f64> = dist.iter().copied().filter(|d| d.is_finite()).collect();
    finite.sort_by(f64::total_cmp);
    println!(
        "distance quartiles: {:.3} / {:.3} / {:.3}",
        finite[finite.len() / 4],
        finite[finite.len() / 2],
        finite[3 * finite.len() / 4]
    );
}
