//! Matrix-source parsing: MatrixMarket files, named suite analogs, or
//! inline generator specs.
//!
//! Accepted forms:
//!
//! * `path/to/file.mtx` — MatrixMarket coordinate file;
//! * `edges:path[:sym]` — SNAP-style edge list (`u v` per line, `#`
//!   comments); `:sym` mirrors every edge;
//! * `suite:<name>[:tiny|small|medium]` — a named analog from
//!   [`tsv_sparse::suite`] (e.g. `suite:cant:small`);
//! * `gen:<family>:<n>[:<param>[:<seed>]]` — a generator:
//!   `gen:banded:5000:8`, `gen:geometric:10000:4.0`, `gen:rmat:12:8`,
//!   `gen:web:20000:14`, `gen:grid:100` (100×100), `gen:uniform:1000:8000`.

use crate::CliError;
use std::path::Path;
use tsv_sparse::gen;
use tsv_sparse::suite::{by_name, SuiteScale};
use tsv_sparse::CsrMatrix;

/// A parsed matrix source.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixSource {
    /// MatrixMarket file path.
    File(String),
    /// SNAP-style edge list path; the flag mirrors edges.
    EdgeList(String, bool),
    /// Suite analog by SuiteSparse name and scale.
    Suite(String, SuiteScale),
    /// Generator family with numeric arguments.
    Gen {
        /// Family name (`banded`, `grid`, `geometric`, `rmat`, `web`,
        /// `uniform`).
        family: String,
        /// Primary size argument.
        n: usize,
        /// Family-specific parameter.
        param: f64,
        /// Seed.
        seed: u64,
    },
}

impl MatrixSource {
    /// Parses a source spec string.
    pub fn parse(spec: &str) -> Result<Self, CliError> {
        if let Some(rest) = spec.strip_prefix("suite:") {
            let mut parts = rest.split(':');
            let name = parts
                .next()
                .filter(|s| !s.is_empty())
                .ok_or_else(|| CliError::Usage("suite: needs a matrix name".into()))?;
            let scale = match parts.next() {
                None | Some("small") => SuiteScale::Small,
                Some("tiny") => SuiteScale::Tiny,
                Some("medium") => SuiteScale::Medium,
                Some(other) => {
                    return Err(CliError::Usage(format!("unknown scale {other:?}")));
                }
            };
            return Ok(Self::Suite(name.to_string(), scale));
        }
        if let Some(rest) = spec.strip_prefix("edges:") {
            let (path, sym) = match rest.strip_suffix(":sym") {
                Some(p) => (p, true),
                None => (rest, false),
            };
            if path.is_empty() {
                return Err(CliError::Usage("edges: needs a file path".into()));
            }
            return Ok(Self::EdgeList(path.to_string(), sym));
        }
        if let Some(rest) = spec.strip_prefix("gen:") {
            let parts: Vec<&str> = rest.split(':').collect();
            if parts.len() < 2 {
                return Err(CliError::Usage(
                    "gen: needs at least family and size, e.g. gen:banded:5000".into(),
                ));
            }
            let family = parts[0].to_string();
            let n: usize = parts[1]
                .parse()
                .map_err(|_| CliError::Usage(format!("bad size {:?}", parts[1])))?;
            let param: f64 = match parts.get(2) {
                Some(p) => p
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad parameter {p:?}")))?,
                None => default_param(&family),
            };
            let seed: u64 = match parts.get(3) {
                Some(s) => s
                    .parse()
                    .map_err(|_| CliError::Usage(format!("bad seed {s:?}")))?,
                None => 1,
            };
            return Ok(Self::Gen {
                family,
                n,
                param,
                seed,
            });
        }
        Ok(Self::File(spec.to_string()))
    }
}

fn default_param(family: &str) -> f64 {
    match family {
        "banded" => 8.0,
        "geometric" => 4.0,
        "rmat" => 8.0,
        "web" => 14.0,
        "uniform" => 10.0,
        _ => 0.0,
    }
}

/// Loads the matrix a spec describes.
pub fn load_matrix(spec: &str) -> Result<CsrMatrix<f64>, CliError> {
    match MatrixSource::parse(spec)? {
        MatrixSource::File(path) => {
            let coo = tsv_sparse::io::read_matrix_market(Path::new(&path))?;
            Ok(coo.to_csr())
        }
        MatrixSource::EdgeList(path, sym) => {
            let file =
                std::fs::File::open(Path::new(&path)).map_err(tsv_sparse::SparseError::Io)?;
            let coo = tsv_sparse::io::read_edge_list(file, None, sym)?;
            Ok(coo.to_csr())
        }
        MatrixSource::Suite(name, scale) => by_name(&name, scale)
            .map(|e| e.matrix)
            .ok_or_else(|| CliError::Usage(format!("unknown suite matrix {name:?}"))),
        MatrixSource::Gen {
            family,
            n,
            param,
            seed,
        } => match family.as_str() {
            "banded" => Ok(gen::banded(n, param as usize, 0.8, seed).to_csr()),
            "grid" => Ok(gen::grid2d(n, n).to_csr().without_diagonal()),
            "geometric" => Ok(gen::geometric_graph(n, param, seed).to_csr()),
            "rmat" => Ok(gen::rmat(gen::RmatConfig::new(n as u32, param as usize), seed).to_csr()),
            "web" => Ok(gen::webgraph(n, param, 0.8, 50, seed).to_csr()),
            "uniform" => Ok(gen::uniform_random(n, n, param as usize * n, seed).to_csr()),
            other => Err(CliError::Usage(format!(
                "unknown generator family {other:?} (banded|grid|geometric|rmat|web|uniform)"
            ))),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_forms() {
        assert_eq!(
            MatrixSource::parse("foo.mtx").unwrap(),
            MatrixSource::File("foo.mtx".into())
        );
        assert_eq!(
            MatrixSource::parse("suite:cant:tiny").unwrap(),
            MatrixSource::Suite("cant".into(), SuiteScale::Tiny)
        );
        assert_eq!(
            MatrixSource::parse("gen:banded:500:6:9").unwrap(),
            MatrixSource::Gen {
                family: "banded".into(),
                n: 500,
                param: 6.0,
                seed: 9
            }
        );
    }

    #[test]
    fn defaults_fill_in() {
        let s = MatrixSource::parse("gen:geometric:1000").unwrap();
        assert_eq!(
            s,
            MatrixSource::Gen {
                family: "geometric".into(),
                n: 1000,
                param: 4.0,
                seed: 1
            }
        );
        assert!(matches!(
            MatrixSource::parse("suite:cant").unwrap(),
            MatrixSource::Suite(_, SuiteScale::Small)
        ));
    }

    #[test]
    fn parses_edge_list_specs() {
        assert_eq!(
            MatrixSource::parse("edges:graph.txt").unwrap(),
            MatrixSource::EdgeList("graph.txt".into(), false)
        );
        assert_eq!(
            MatrixSource::parse("edges:graph.txt:sym").unwrap(),
            MatrixSource::EdgeList("graph.txt".into(), true)
        );
        assert!(MatrixSource::parse("edges:").is_err());
    }

    #[test]
    fn loads_edge_list_file() {
        let dir = std::env::temp_dir().join("tsv_src_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("g.txt");
        std::fs::write(&p, "# demo\n0 1\n1 2\n").unwrap();
        let spec = format!("edges:{}:sym", p.to_str().unwrap());
        let a = load_matrix(&spec).unwrap();
        assert_eq!(a.nrows(), 3);
        assert!(a.is_symmetric());
        std::fs::remove_file(p).ok();
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(MatrixSource::parse("gen:banded").is_err());
        assert!(MatrixSource::parse("gen:banded:abc").is_err());
        assert!(MatrixSource::parse("suite:").is_err());
        assert!(MatrixSource::parse("suite:cant:huge").is_err());
    }

    #[test]
    fn loads_generated_matrices() {
        let a = load_matrix("gen:banded:200:4").unwrap();
        assert_eq!(a.nrows(), 200);
        let g = load_matrix("gen:grid:12").unwrap();
        assert_eq!(g.nrows(), 144);
        assert!(load_matrix("gen:nope:10").is_err());
        assert!(load_matrix("suite:doesnotexist").is_err());
        assert!(load_matrix("/no/such/file.mtx").is_err());
    }
}
