//! Multi-source BFS: up to 64 sources sharing one traversal.
//!
//! The paper stores frontiers as machine words of vertex bits; MS-BFS
//! (Then et al., VLDB '14) transposes that idea — one word *per vertex*,
//! bit `i` meaning "reached from source `i`". All 64 traversals then share
//! every adjacency read, which is exactly the batched regime (per-source
//! BFS from many roots) that betweenness centrality and all-pairs
//! estimators run. A natural extension of the paper's bitmask machinery.

use rayon::prelude::*;
use std::sync::Arc;
use tsv_simt::trace::{self, IterationInfo, Tracer};
use tsv_sparse::{CsrMatrix, SparseError};

/// Runs up to 64 concurrent BFS traversals. Returns `levels[s][v]`: the
/// level of vertex `v` from `sources[s]` (`-1` when unreachable).
pub fn multi_source_bfs(
    a: &CsrMatrix<f64>,
    sources: &[usize],
) -> Result<Vec<Vec<i32>>, SparseError> {
    multi_source_bfs_traced(a, sources, None)
}

/// [`multi_source_bfs`] with run telemetry: each shared level records one
/// iteration event whose `frontier`/`discovered`/`unvisited` count
/// (vertex, source) *pairs* across all concurrent traversals.
pub fn multi_source_bfs_traced(
    a: &CsrMatrix<f64>,
    sources: &[usize],
    tracer: Option<Arc<Tracer>>,
) -> Result<Vec<Vec<i32>>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    assert!(sources.len() <= 64, "at most 64 concurrent sources");
    let n = a.nrows();
    for &s in sources {
        if s >= n {
            return Err(SparseError::IndexOutOfBounds {
                row: s,
                col: 0,
                nrows: n,
                ncols: 1,
            });
        }
    }

    let k = sources.len();
    let mut levels = vec![vec![-1i32; n]; k];
    if k == 0 {
        return Ok(levels);
    }

    // seen[v] bit i: v reached from source i. front[v]: reached last round.
    let mut seen = vec![0u64; n];
    let mut front = vec![0u64; n];
    for (i, &s) in sources.iter().enumerate() {
        seen[s] |= 1 << i;
        front[s] |= 1 << i;
        levels[i][s] = 0;
    }

    let mut level = 0i32;
    let mut active: Vec<u32> = sources.iter().map(|&s| s as u32).collect();
    active.sort_unstable();
    active.dedup();

    // Round-to-round scratch, allocated once: the expand target and the
    // next frontier list are reused every level instead of reallocated.
    let mut next = vec![0u64; n];
    let mut new_active: Vec<u32> = Vec::new();

    // Telemetry counts (vertex, source) pairs: each of the k traversals
    // contributes its own frontier/visited set.
    let tr = tracer.as_deref();
    let mut frontier_pairs = k;
    let mut reached_pairs = k;

    while !active.is_empty() {
        level += 1;
        let t0 = trace::start(tr);
        // Expand: next[v] = OR of front[u] over in-neighbors u, minus seen.
        // Sharing is the point: each adjacency row is read once for all 64
        // traversals.
        let chunk = active
            .len()
            .div_ceil(rayon::current_num_threads().max(1))
            .max(32);
        let contributions: Vec<Vec<(u32, u64)>> = active
            .par_chunks(chunk)
            .map(|part| {
                let mut local = Vec::new();
                for &u in part {
                    let fu = front[u as usize];
                    let (nbrs, _) = a.row(u as usize);
                    for &v in nbrs {
                        let fresh = fu & !seen[v as usize];
                        if fresh != 0 {
                            local.push((v, fu));
                        }
                    }
                }
                local
            })
            .collect();

        next.fill(0);
        for local in contributions {
            for (v, bits) in local {
                next[v as usize] |= bits;
            }
        }

        // Retire the old frontier word-by-word (it is nonzero only at the
        // active vertices) rather than rebuilding the whole vector.
        for &u in &active {
            front[u as usize] = 0;
        }

        // Filter to freshly-discovered (vertex, source) pairs; those form
        // the next frontier and get this level.
        new_active.clear();
        let mut discovered = 0usize;
        for v in 0..n {
            let fresh = next[v] & !seen[v];
            if fresh != 0 {
                seen[v] |= fresh;
                front[v] = fresh;
                discovered += fresh.count_ones() as usize;
                for (i, lv) in levels.iter_mut().enumerate().take(k) {
                    if fresh >> i & 1 == 1 {
                        lv[v] = level;
                    }
                }
                new_active.push(v as u32);
            }
        }
        reached_pairs += discovered;
        trace::iteration(
            tr,
            "msbfs/level",
            None,
            IterationInfo {
                level: level as u32,
                frontier: frontier_pairs,
                discovered,
                unvisited: n * k - reached_pairs,
                density: frontier_pairs as f64 / (n * k) as f64,
            },
            t0,
        );
        frontier_pairs = discovered;
        std::mem::swap(&mut active, &mut new_active);
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{geometric_graph, grid2d, rmat, RmatConfig};
    use tsv_sparse::reference::bfs_levels;

    #[test]
    fn matches_single_source_bfs_for_every_source() {
        let a = grid2d(14, 11).to_csr().without_diagonal();
        let sources: Vec<usize> = (0..10).map(|i| i * 15).collect();
        let all = multi_source_bfs(&a, &sources).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(all[i], bfs_levels(&a, s).unwrap(), "source {s}");
        }
    }

    #[test]
    fn sixty_four_sources_on_a_road_graph() {
        let a = geometric_graph(800, 4.0, 4).to_csr();
        let sources: Vec<usize> = (0..64).map(|i| (i * 12) % 800).collect();
        let all = multi_source_bfs(&a, &sources).unwrap();
        for (i, &s) in sources.iter().enumerate().step_by(13) {
            assert_eq!(all[i], bfs_levels(&a, s).unwrap(), "source {s}");
        }
    }

    #[test]
    fn duplicate_sources_yield_identical_rows() {
        let a = rmat(RmatConfig::new(7, 6), 2).to_csr();
        let s = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let all = multi_source_bfs(&a, &[s, s, s]).unwrap();
        assert_eq!(all[0], all[1]);
        assert_eq!(all[1], all[2]);
    }

    #[test]
    fn empty_source_list() {
        let a = grid2d(4, 4).to_csr();
        assert!(multi_source_bfs(&a, &[]).unwrap().is_empty());
    }

    #[test]
    fn validates_inputs() {
        let a = grid2d(4, 4).to_csr();
        assert!(multi_source_bfs(&a, &[99]).is_err());
    }

    #[test]
    #[should_panic(expected = "64")]
    fn too_many_sources_panics() {
        let a = grid2d(4, 4).to_csr();
        let sources: Vec<usize> = (0..65).map(|i| i % 16).collect();
        let _ = multi_source_bfs(&a, &sources);
    }
}
