//! Properties of the evaluation suite itself: determinism, metadata
//! sanity, and the structural signature each matrix class is chosen for.

use tilespmspv::sparse::suite::{
    by_name, enterprise_set, representative, representative_names, MatrixClass, SuiteScale,
};

#[test]
fn suite_is_deterministic() {
    let a = representative(SuiteScale::Tiny);
    let b = representative(SuiteScale::Tiny);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.matrix, y.matrix, "{} not deterministic", x.name);
    }
}

#[test]
fn scales_order_sizes() {
    for name in representative_names() {
        let tiny = by_name(name, SuiteScale::Tiny).unwrap().matrix;
        let small = by_name(name, SuiteScale::Small).unwrap().matrix;
        assert!(
            tiny.nrows() < small.nrows(),
            "{name}: tiny {} !< small {}",
            tiny.nrows(),
            small.nrows()
        );
    }
}

#[test]
fn metadata_matches_table_2() {
    let suite = representative(SuiteScale::Tiny);
    let find = |n: &str| suite.iter().find(|e| e.name == n).unwrap();
    // Spot checks against the paper's Table 2.
    assert_eq!(find("cant").paper.rows, 62_000);
    assert_eq!(find("ML_Geer").paper.nnz, 110_000_000);
    assert_eq!(find("333SP").paper.rows, 3_000_000);
    // Paper ordering of analog sizes is preserved.
    assert!(find("333SP").matrix.nrows() > find("cavity23").matrix.nrows());
}

#[test]
fn classes_have_their_structural_signatures() {
    for e in representative(SuiteScale::Tiny)
        .into_iter()
        .chain(enterprise_set(SuiteScale::Tiny))
    {
        let m = &e.matrix;
        let n = m.nrows();
        let avg_deg = m.nnz() as f64 / n as f64;
        match e.class {
            MatrixClass::Banded => {
                // All entries inside a band.
                let max_off = m.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap();
                assert!(max_off * 8 < n, "{}: band too wide ({max_off})", e.name);
            }
            MatrixClass::Road => {
                assert!(avg_deg < 7.0, "{}: road degree {avg_deg}", e.name);
                let levels = tilespmspv::sparse::reference::bfs_levels(m, 0).unwrap();
                let diam = *levels.iter().max().unwrap();
                assert!(diam > 15, "{}: diameter {diam} too short", e.name);
            }
            MatrixClass::PowerLaw => {
                let max_deg = (0..n).map(|v| m.row_nnz(v)).max().unwrap();
                assert!(max_deg as f64 > avg_deg * 4.0, "{}: no degree skew", e.name);
            }
            MatrixClass::Web => {
                let near = m.iter().filter(|&(r, c, _)| r.abs_diff(c) < 128).count();
                assert!(near * 2 > m.nnz(), "{}: no host locality", e.name);
            }
            MatrixClass::Mesh => {
                let max_deg = (0..n).map(|v| m.row_nnz(v)).max().unwrap();
                assert!(max_deg <= 4, "{}: mesh degree {max_deg}", e.name);
            }
        }
        // Everything used for BFS must be square.
        assert_eq!(m.nrows(), m.ncols(), "{}", e.name);
    }
}

#[test]
fn all_names_resolve_and_unknown_does_not() {
    for name in representative_names() {
        assert!(by_name(name, SuiteScale::Tiny).is_some(), "{name}");
    }
    for name in ["FB", "KR-21-128", "TW", "audikw_1", "roadCA", "europe.osm"] {
        assert!(by_name(name, SuiteScale::Tiny).is_some(), "{name}");
    }
    assert!(by_name("not-a-matrix", SuiteScale::Tiny).is_none());
}
