//! Tile geometry: sizes, index math, and the packed 16×16 index encoding.

/// Supported tile edge lengths (§3.2.1: "nt is usually 16, 32 or 64").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileSize {
    /// 16×16 tiles; intra-tile coordinates pack into one byte.
    S16,
    /// 32×32 tiles; one `u32` bitmask word per tile row/column.
    S32,
    /// 64×64 tiles; one `u64` bitmask word per tile row/column.
    S64,
}

impl TileSize {
    /// Edge length `nt`.
    #[inline]
    pub fn nt(self) -> usize {
        match self {
            Self::S16 => 16,
            Self::S32 => 32,
            Self::S64 => 64,
        }
    }

    /// The paper's TileBFS rule (§3.4): matrices of order greater than
    /// 10 000 use 64×64 tiles, smaller ones 32×32.
    pub fn for_bfs(order: usize) -> Self {
        if order > 10_000 {
            Self::S64
        } else {
            Self::S32
        }
    }

    /// All supported sizes, in increasing order (Table 2 reports tile
    /// counts for each).
    pub fn all() -> [Self; 3] {
        [Self::S16, Self::S32, Self::S64]
    }
}

impl std::fmt::Display for TileSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.nt(), self.nt())
    }
}

/// Construction parameters for the tiled formats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TileConfig {
    /// Tile edge length.
    pub tile_size: TileSize,
    /// Tiles with at most this many nonzeros are *extracted*: their entries
    /// move to a side COO matrix instead of paying per-tile metadata
    /// (§3.2.1). `0` disables extraction.
    pub extract_threshold: usize,
    /// Tiles whose fill fraction reaches this store their payload *dense*
    /// (`nt²` values, no intra-tile indices) — the adaptive per-tile format
    /// of the TileSpMV substrate the paper extends. Values above 1.0
    /// disable dense tiles. The default 0.75 sits near the byte-cost
    /// break-even between indexed and dense payloads.
    pub dense_threshold: f64,
}

impl Default for TileConfig {
    fn default() -> Self {
        Self {
            tile_size: TileSize::S16,
            extract_threshold: 2,
            dense_threshold: 0.75,
        }
    }
}

impl TileConfig {
    /// Config with a given tile size and the default thresholds.
    pub fn with_size(tile_size: TileSize) -> Self {
        Self {
            tile_size,
            ..Default::default()
        }
    }
}

/// Physical layout of one stored tile's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileFormat {
    /// Intra-tile CSR: `u16` row pointers, `u8` column indices, packed
    /// values.
    Csr,
    /// Dense `nt × nt` payload in row-major order, zeros included; no
    /// index decode on the read path.
    Dense,
}

/// Number of tiles needed to cover `len` elements with tiles of `nt`.
#[inline]
pub fn tiles_for(len: usize, nt: usize) -> usize {
    len.div_ceil(nt)
}

/// Packs an intra-tile coordinate of a 16×16 tile into one byte: the high
/// nibble is the row, the low nibble the column (§3.2.1: "a single unsigned
/// char can store indices").
#[inline]
pub fn pack16(row: usize, col: usize) -> u8 {
    debug_assert!(row < 16 && col < 16);
    ((row as u8) << 4) | col as u8
}

/// Unpacks a [`pack16`] byte into `(row, col)`.
#[inline]
pub fn unpack16(packed: u8) -> (usize, usize) {
    ((packed >> 4) as usize, (packed & 0xF) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nt_values() {
        assert_eq!(TileSize::S16.nt(), 16);
        assert_eq!(TileSize::S32.nt(), 32);
        assert_eq!(TileSize::S64.nt(), 64);
    }

    #[test]
    fn bfs_size_rule_matches_paper() {
        assert_eq!(TileSize::for_bfs(10_000), TileSize::S32);
        assert_eq!(TileSize::for_bfs(10_001), TileSize::S64);
        assert_eq!(TileSize::for_bfs(100), TileSize::S32);
    }

    #[test]
    fn tiles_for_rounds_up() {
        assert_eq!(tiles_for(0, 16), 0);
        assert_eq!(tiles_for(1, 16), 1);
        assert_eq!(tiles_for(16, 16), 1);
        assert_eq!(tiles_for(17, 16), 2);
    }

    #[test]
    fn pack16_roundtrips_every_coordinate() {
        for r in 0..16 {
            for c in 0..16 {
                assert_eq!(unpack16(pack16(r, c)), (r, c));
            }
        }
    }

    #[test]
    fn display_prints_dimensions() {
        assert_eq!(TileSize::S32.to_string(), "32x32");
    }

    #[test]
    fn default_config() {
        let c = TileConfig::default();
        assert_eq!(c.tile_size, TileSize::S16);
        assert_eq!(c.extract_threshold, 2);
        let c = TileConfig::with_size(TileSize::S64);
        assert_eq!(c.tile_size, TileSize::S64);
    }
}
