//! GSwitch-style BFS (Meng et al., PPoPP '19).
//!
//! GSwitch autotunes, per iteration, over a space of execution patterns.
//! For BFS the decisive axes are the frontier representation (sparse queue
//! vs. dense bitmap) and the traversal direction (push vs. pull). This
//! implementation models that behaviour with a per-iteration cost estimate
//! over three strategies:
//!
//! * `queue-push` — expand a sparse frontier queue (cost ≈ frontier edges
//!   plus queue maintenance),
//! * `dense-push` — scan a frontier bitmap and expand set vertices (cost ≈
//!   `n/64` word scans plus frontier edges; wins on dense frontiers by
//!   skipping queue construction and its atomics),
//! * `pull` — scan unvisited vertices for frontier parents (cost ≈
//!   unvisited edge stubs until first hit; wins when few vertices remain).
//!
//! The published system samples and fits these costs online; here the cost
//! model is fixed (documented constants), which preserves its
//! characteristic behaviour — including the rapid strategy oscillation on
//! road networks the paper observes in Fig. 10.

use crate::bfs_common::{
    validate_bfs_input, BaselineBfsResult, BaselineIteration, Bitmap, VisitedSet,
};
use rayon::prelude::*;
use std::time::Instant;
use tsv_simt::stats::KernelStats;
use tsv_sparse::{CsrMatrix, SparseError};

/// Relative cost of touching one queue slot vs. one edge.
const QUEUE_OVERHEAD: f64 = 4.0;
/// Relative cost of scanning one bitmap word.
const SCAN_WORD_COST: f64 = 1.0;
/// Fraction of unvisited edges a pull scan is expected to touch.
const PULL_HIT_FACTOR: f64 = 0.35;

/// Runs GSwitch-style BFS from `source`.
pub fn gswitch_bfs(a: &CsrMatrix<f64>, source: usize) -> Result<BaselineBfsResult, SparseError> {
    validate_bfs_input(a, source)?;
    let n = a.nrows();
    let symmetric = {
        let t = a.transpose();
        t.row_ptr() == a.row_ptr() && t.col_idx() == a.col_idx()
    };

    let mut levels = vec![-1i32; n];
    levels[source] = 0;
    let visited = VisitedSet::new(n);
    visited.try_visit(source);

    let mut frontier: Vec<u32> = vec![source as u32];
    let mut iterations = Vec::new();
    let mut total_stats = KernelStats::default();
    let mut level = 0i32;
    let mut explored_edges = a.row_nnz(source);
    let total_edges = a.nnz();

    while !frontier.is_empty() {
        let start = Instant::now();
        let frontier_edges: usize = frontier.iter().map(|&v| a.row_nnz(v as usize)).sum();
        let unexplored = total_edges.saturating_sub(explored_edges);

        // Cost model over the three patterns.
        let cost_queue = frontier_edges as f64 + QUEUE_OVERHEAD * frontier.len() as f64;
        let cost_dense = SCAN_WORD_COST * (n as f64 / 64.0) + frontier_edges as f64;
        let cost_pull = PULL_HIT_FACTOR * unexplored as f64 + n as f64 / 64.0;

        let strategy = if symmetric && cost_pull < cost_queue.min(cost_dense) {
            "pull"
        } else if cost_dense < cost_queue {
            "dense-push"
        } else {
            "queue-push"
        };

        let (next, stats) = match strategy {
            "pull" => {
                let bitmap = Bitmap::from_list(n, &frontier);
                pull_step(a, &bitmap, &visited)
            }
            "dense-push" => {
                let bitmap = Bitmap::from_list(n, &frontier);
                dense_push_step(a, &bitmap, &visited)
            }
            _ => queue_push_step(a, &frontier, &visited),
        };

        let wall = start.elapsed();
        iterations.push(BaselineIteration {
            frontier: frontier.len(),
            strategy,
            stats,
            wall,
        });
        total_stats += stats;

        level += 1;
        for &v in &next {
            levels[v as usize] = level;
            explored_edges += a.row_nnz(v as usize);
        }
        frontier = next;
    }

    Ok(BaselineBfsResult {
        levels,
        iterations,
        total_stats,
    })
}

fn queue_push_step(
    a: &CsrMatrix<f64>,
    frontier: &[u32],
    visited: &VisitedSet,
) -> (Vec<u32>, KernelStats) {
    let chunk = frontier
        .len()
        .div_ceil(rayon::current_num_threads().max(1))
        .max(16);
    collect_parallel(frontier.par_chunks(chunk).map(|part| {
        let mut stats = KernelStats::default();
        stats.warps += 1;
        let mut local = Vec::new();
        for &u in part {
            let (cols, _) = a.row(u as usize);
            stats.read(4 + cols.len() * 4); // queue slot + edge list
            stats.read_scattered(8); // row_ptr lookup
            for &v in cols {
                stats.atomic(1);
                if visited.try_visit(v as usize) {
                    local.push(v);
                    stats.write(4);
                }
            }
            stats.lane_steps += cols.len().div_ceil(32) as u64 * 32;
        }
        (local, stats)
    }))
}

fn dense_push_step(
    a: &CsrMatrix<f64>,
    frontier: &Bitmap,
    visited: &VisitedSet,
) -> (Vec<u32>, KernelStats) {
    let n = a.nrows();
    let chunk = (n / (rayon::current_num_threads().max(1) * 8)).max(64);
    collect_parallel((0..n).into_par_iter().chunks(chunk).map(|part| {
        let mut stats = KernelStats::default();
        stats.warps += 1;
        let mut local = Vec::new();
        stats.read(part.len().div_ceil(64) * 8); // bitmap scan
        for u in part {
            if !frontier.get(u) {
                continue;
            }
            let (cols, _) = a.row(u);
            stats.read_scattered(8);
            stats.read(cols.len() * 4);
            for &v in cols {
                stats.atomic(1);
                if visited.try_visit(v as usize) {
                    local.push(v);
                    stats.write(4);
                }
            }
            stats.lane_steps += cols.len().div_ceil(32) as u64 * 32;
        }
        (local, stats)
    }))
}

fn pull_step(
    a: &CsrMatrix<f64>,
    frontier: &Bitmap,
    visited: &VisitedSet,
) -> (Vec<u32>, KernelStats) {
    let n = a.nrows();
    let chunk = (n / (rayon::current_num_threads().max(1) * 8)).max(64);
    collect_parallel((0..n).into_par_iter().chunks(chunk).map(|part| {
        let mut stats = KernelStats::default();
        stats.warps += 1;
        let mut local = Vec::new();
        for v in part {
            if visited.contains(v) {
                continue;
            }
            let (cols, _) = a.row(v);
            stats.read(8 + 4);
            for (k, &u) in cols.iter().enumerate() {
                stats.read_scattered(4); // frontier bitmap probe
                if frontier.get(u as usize) {
                    if visited.try_visit(v) {
                        local.push(v as u32);
                        stats.atomic(1);
                        stats.write(4);
                    }
                    stats.lane_steps += (k + 1) as u64;
                    break;
                }
            }
        }
        (local, stats)
    }))
}

fn collect_parallel<I>(iter: I) -> (Vec<u32>, KernelStats)
where
    I: ParallelIterator<Item = (Vec<u32>, KernelStats)>,
{
    let parts: Vec<(Vec<u32>, KernelStats)> = iter.collect();
    let mut next = Vec::new();
    let mut stats = KernelStats::default();
    for (local, s) in parts {
        next.extend(local);
        stats += s;
    }
    (next, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{geometric_graph, grid2d, rmat, RmatConfig};
    use tsv_sparse::reference::bfs_levels;

    #[test]
    fn matches_serial_on_grid() {
        let a = grid2d(20, 20).to_csr().without_diagonal();
        let r = gswitch_bfs(&a, 0).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, 0).unwrap());
    }

    #[test]
    fn matches_serial_on_powerlaw() {
        let a = rmat(RmatConfig::new(10, 16), 2).to_csr();
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let r = gswitch_bfs(&a, source).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, source).unwrap());
    }

    #[test]
    fn matches_serial_on_road_like() {
        let a = geometric_graph(700, 4.0, 5).to_csr();
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let r = gswitch_bfs(&a, source).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, source).unwrap());
    }

    #[test]
    fn switches_strategies_on_powerlaw() {
        let a = rmat(RmatConfig::new(11, 16), 9).to_csr();
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let r = gswitch_bfs(&a, source).unwrap();
        let strategies: std::collections::HashSet<_> =
            r.iterations.iter().map(|i| i.strategy).collect();
        assert!(
            strategies.len() >= 2,
            "expected multiple strategies, got {strategies:?}"
        );
    }

    #[test]
    fn rejects_bad_source() {
        let a = grid2d(4, 4).to_csr();
        assert!(gswitch_bfs(&a, 16).is_err());
    }
}
