//! The CSR-form TileSpMSpV kernel (Algorithm 4).
//!
//! One warp per row tile. For each stored tile of the row tile the warp
//! reads the tile's column-tile id, resolves the matching vector tile in
//! O(1) via `x_ptr`, and — only when that vector tile is non-empty — loads
//! it (the paper stages it in shared memory) and accumulates the tile-local
//! products into the row tile's private slice of `y`. Because a row tile
//! owns its `nt` output rows, no atomics are needed.

use crate::tile::{TileMatrix, TiledVector};
use tsv_simt::grid::launch_over_chunks;
use tsv_simt::stats::KernelStats;

/// Runs the row-tile kernel; returns `y` padded to `m_tiles * nt` and the
/// work counters.
pub fn row_kernel(a: &TileMatrix, x: &TiledVector) -> (Vec<f64>, KernelStats) {
    let nt = a.nt();
    debug_assert_eq!(x.nt(), nt, "vector tiled with a different nt");
    let mut y = vec![0.0f64; a.m_tiles() * nt];
    if a.m_tiles() == 0 {
        return (y, KernelStats::default());
    }

    let stats = launch_over_chunks(&mut y, nt, |warp, y_tile| {
        let rt = warp.warp_id;
        // Tile-level CSR walk of this row tile.
        for t in a.row_tile_range(rt) {
            let view = a.tile(t);
            warp.stats.read(4); // A_tile_colid[tile_id] (streamed)
            warp.stats.read_scattered(4); // x_ptr[tile_colid]
            let Some(x_tile) = x.tile(view.col_tile) else {
                continue; // x_offset == -1: skip the whole tile
            };
            // Load the vector tile and the tile body ("into shared memory").
            warp.stats.read(nt * 8);
            match view.dense {
                Some(d) => {
                    // Dense payload: full nt×nt FMA sweep, no index decode.
                    warp.stats.read(nt * nt * 8);
                    for lr in 0..nt {
                        let row = &d[lr * nt..(lr + 1) * nt];
                        let mut sum = 0.0;
                        for (v, xv) in row.iter().zip(x_tile) {
                            sum += v * xv;
                        }
                        y_tile[lr] += sum;
                    }
                    warp.stats.flop(2 * nt * nt);
                    warp.stats.lane_steps += ((nt * nt) / 32) as u64 * 32;
                }
                None => {
                    warp.stats.read((nt + 1) * 2 + view.nnz() * (1 + 8));
                    // Lanes are striped over the tile rows (two lanes per
                    // row at nt = 16); on the CPU the warp walks its rows
                    // in order, each row reducing its partial sums exactly
                    // as the __shfl_down_sync pair of Algorithm 4 would.
                    for lr in 0..nt {
                        let (cols, vals) = view.row(lr);
                        if cols.is_empty() {
                            continue;
                        }
                        let mut sum = 0.0;
                        for (&lc, &v) in cols.iter().zip(vals) {
                            sum += v * x_tile[lc as usize];
                        }
                        warp.stats.flop(2 * cols.len());
                        y_tile[lr] += sum;
                    }
                    warp.stats.lane_steps += view.nnz().div_ceil(2) as u64;
                }
            }
        }
        // Row tile writes its outputs once.
        warp.stats.write(nt * 8);
    });

    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{TileConfig, TileSize};
    use tsv_sparse::gen::{banded, random_sparse_vector};
    use tsv_sparse::reference::spmspv_row;
    use tsv_sparse::SparseVector;

    #[test]
    fn kernel_matches_reference_padded() {
        let a = banded(100, 5, 0.8, 1).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let x = random_sparse_vector(100, 0.2, 1);
        let xt = TiledVector::from_sparse(&x, 16);
        let (y, stats) = row_kernel(&tm, &xt);
        assert_eq!(y.len(), tm.m_tiles() * 16);
        let expect = spmspv_row(&a, &x).unwrap().to_dense();
        for i in 0..100 {
            assert!((y[i] - expect[i]).abs() < 1e-9, "row {i}");
        }
        // Padding stays zero.
        assert!(y[100..].iter().all(|&v| v == 0.0));
        assert_eq!(stats.warps as usize, tm.m_tiles());
    }

    #[test]
    fn empty_x_tiles_are_skipped() {
        // x empty → every tile skipped → only header reads counted.
        let a = banded(160, 5, 0.8, 2).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let empty = TiledVector::from_sparse(&SparseVector::zeros(160), 16);
        let (y, stats) = row_kernel(&tm, &empty);
        assert!(y.iter().all(|&v| v == 0.0));
        assert_eq!(stats.flops, 0);
        // 8 bytes of header per stored tile.
        assert_eq!(stats.gmem_read_bytes, 8 * tm.num_tiles() as u64);
    }

    #[test]
    fn zero_sized_matrix() {
        let a = tsv_sparse::CsrMatrix::<f64>::zeros(0, 0);
        let tm = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let xt = TiledVector::zeros(0, 16);
        let (y, stats) = row_kernel(&tm, &xt);
        assert!(y.is_empty());
        assert_eq!(stats.warps, 0);
    }
}
