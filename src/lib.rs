//! # tilespmspv
//!
//! A Rust reproduction of **"TileSpMSpV: A Tiled Algorithm for Sparse
//! Matrix-Sparse Vector Multiplication on GPUs"** (Ji et al., ICPP '22).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`sparse`] — substrate formats (COO/CSR/CSC), sparse vectors,
//!   MatrixMarket I/O, synthetic generators, serial references.
//! * [`simt`] — the SIMT execution substrate standing in for CUDA: warps,
//!   shuffles, atomics, kernel statistics and the analytic device model.
//! * [`core`] — the paper's contribution: tiled storage, semirings,
//!   TileSpMSpV and TileBFS.
//! * [`baselines`] — the comparators evaluated in the paper: TileSpMV,
//!   BSR SpMV (cuSPARSE stand-in), CombBLAS-style bucket SpMSpV, and
//!   Gunrock/GSwitch/Enterprise-style BFS.
//! * [`apps`] — graph algorithms on the primitives: RCM ordering,
//!   betweenness centrality, connected components, PageRank, SSSP, and
//!   multi-source BFS.
//!
//! ## Quick start
//!
//! ```
//! use tilespmspv::prelude::*;
//!
//! // A small banded matrix and a sparse input vector.
//! let a = tilespmspv::sparse::gen::banded(256, 4, 0.8, 1).to_csr();
//! let x = tilespmspv::sparse::gen::random_sparse_vector(256, 0.05, 1);
//!
//! // Build the tiled representation and run TileSpMSpV.
//! let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
//! let y = tile_spmspv(&tiled, &x).unwrap();
//!
//! // Matches the serial reference.
//! let expect = tilespmspv::sparse::reference::spmspv_row(&a, &x).unwrap();
//! assert!(y.max_abs_diff(&expect) < 1e-9);
//! ```

#![forbid(unsafe_code)]

pub use tsv_apps as apps;
pub use tsv_baselines as baselines;
pub use tsv_core as core;
pub use tsv_simt as simt;
pub use tsv_sparse as sparse;

/// Convenient glob-import of the most used types and entry points.
pub mod prelude {
    pub use tsv_core::bfs::{tile_bfs, BfsOptions, TileBfsGraph};
    pub use tsv_core::exec::{BfsEngine, SpMSpVEngine};
    pub use tsv_core::semiring::{MinPlus, OrAnd, PlusTimes, Semiring};
    pub use tsv_core::spmspv::{tile_spmspv, tile_spmspv_with, SpMSpVOptions};
    pub use tsv_core::tile::{TileConfig, TileMatrix, TileSize, TiledVector};
    pub use tsv_sparse::{CooMatrix, CscMatrix, CsrMatrix, SparseVector};
}
