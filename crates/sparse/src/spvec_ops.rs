//! Element-wise sparse vector operations.
//!
//! GraphBLAS programs compose SpMSpV with vector-level eWiseAdd/eWiseMult
//! and masking (the BFS driver itself is `y = (A ⊕.⊗ x) ⊙ ¬m`). These are
//! the merge-based implementations over the sorted-index representation.

use crate::spvec::SparseVector;

/// `a + b` element-wise (union merge); exact zeros produced by
/// cancellation are dropped.
pub fn add(a: &SparseVector<f64>, b: &SparseVector<f64>) -> SparseVector<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut indices = Vec::with_capacity(a.nnz() + b.nnz());
    let mut vals = Vec::with_capacity(a.nnz() + b.nnz());
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ai.len() || j < bi.len() {
        let (idx, v) = match (ai.get(i), bi.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                let v = av[i] + bv[j];
                i += 1;
                j += 1;
                (x, v)
            }
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                (x, av[i - 1])
            }
            (Some(_), Some(&y)) => {
                j += 1;
                (y, bv[j - 1])
            }
            (Some(&x), None) => {
                i += 1;
                (x, av[i - 1])
            }
            (None, Some(&y)) => {
                j += 1;
                (y, bv[j - 1])
            }
            (None, None) => unreachable!("loop condition"),
        };
        if v != 0.0 {
            indices.push(idx);
            vals.push(v);
        }
    }
    SparseVector::from_parts(a.len(), indices, vals).expect("merge keeps order")
}

/// `a ⊙ b` element-wise multiply (intersection merge).
pub fn mul(a: &SparseVector<f64>, b: &SparseVector<f64>) -> SparseVector<f64> {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let mut indices = Vec::new();
    let mut vals = Vec::new();
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ai.len() && j < bi.len() {
        match ai[i].cmp(&bi[j]) {
            std::cmp::Ordering::Equal => {
                let v = av[i] * bv[j];
                if v != 0.0 {
                    indices.push(ai[i]);
                    vals.push(v);
                }
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    SparseVector::from_parts(a.len(), indices, vals).expect("merge keeps order")
}

/// `a · b` dot product.
pub fn dot(a: &SparseVector<f64>, b: &SparseVector<f64>) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    let (ai, av) = (a.indices(), a.values());
    let (bi, bv) = (b.indices(), b.values());
    let (mut i, mut j) = (0usize, 0usize);
    let mut acc = 0.0;
    while i < ai.len() && j < bi.len() {
        match ai[i].cmp(&bi[j]) {
            std::cmp::Ordering::Equal => {
                acc += av[i] * bv[j];
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    acc
}

/// `a` restricted to positions *not* in the mask (GraphBLAS complement
/// mask, the `y ⊙ ¬m` of the BFS driver).
pub fn mask_complement(a: &SparseVector<f64>, mask: &SparseVector<f64>) -> SparseVector<f64> {
    assert_eq!(a.len(), mask.len(), "vector length mismatch");
    let mut indices = Vec::new();
    let mut vals = Vec::new();
    let mi = mask.indices();
    let mut j = 0usize;
    for (i, v) in a.iter() {
        while j < mi.len() && (mi[j] as usize) < i {
            j += 1;
        }
        if j >= mi.len() || mi[j] as usize != i {
            indices.push(i as u32);
            vals.push(v);
        }
    }
    SparseVector::from_parts(a.len(), indices, vals).expect("subset keeps order")
}

/// `alpha * a` (zeros dropped when `alpha == 0`).
pub fn scale(a: &SparseVector<f64>, alpha: f64) -> SparseVector<f64> {
    if alpha == 0.0 {
        return SparseVector::zeros(a.len());
    }
    SparseVector::from_parts(
        a.len(),
        a.indices().to_vec(),
        a.values().iter().map(|&v| alpha * v).collect(),
    )
    .expect("same indices")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(n: usize, entries: &[(u32, f64)]) -> SparseVector<f64> {
        SparseVector::from_entries(n, entries.to_vec()).unwrap()
    }

    #[test]
    fn add_unions_and_cancels() {
        let a = sv(6, &[(0, 1.0), (2, 2.0), (4, -3.0)]);
        let b = sv(6, &[(1, 5.0), (2, -2.0), (4, 1.0)]);
        let c = add(&a, &b);
        // index 2 cancels exactly and is dropped.
        assert_eq!(c.indices(), &[0, 1, 4]);
        assert_eq!(c.values(), &[1.0, 5.0, -2.0]);
    }

    #[test]
    fn mul_intersects() {
        let a = sv(6, &[(0, 2.0), (3, 4.0), (5, 1.0)]);
        let b = sv(6, &[(3, 0.5), (4, 9.0), (5, 2.0)]);
        let c = mul(&a, &b);
        assert_eq!(c.indices(), &[3, 5]);
        assert_eq!(c.values(), &[2.0, 2.0]);
    }

    #[test]
    fn dot_matches_dense() {
        let a = sv(8, &[(1, 2.0), (4, 3.0), (7, -1.0)]);
        let b = sv(8, &[(1, 0.5), (5, 9.0), (7, 2.0)]);
        let dense: f64 = a
            .to_dense()
            .iter()
            .zip(b.to_dense())
            .map(|(x, y)| x * y)
            .sum();
        assert_eq!(dot(&a, &b), dense);
    }

    #[test]
    fn complement_mask_filters() {
        let a = sv(6, &[(0, 1.0), (2, 2.0), (4, 3.0)]);
        let m = sv(6, &[(2, 1.0), (5, 1.0)]);
        let c = mask_complement(&a, &m);
        assert_eq!(c.indices(), &[0, 4]);
    }

    #[test]
    fn scale_and_zero_scale() {
        let a = sv(4, &[(1, 2.0), (3, -4.0)]);
        let c = scale(&a, 0.5);
        assert_eq!(c.values(), &[1.0, -2.0]);
        assert_eq!(scale(&a, 0.0).nnz(), 0);
    }

    #[test]
    fn empty_operands() {
        let a = sv(5, &[(2, 1.0)]);
        let z = SparseVector::zeros(5);
        assert_eq!(add(&a, &z), a);
        assert_eq!(mul(&a, &z).nnz(), 0);
        assert_eq!(dot(&a, &z), 0.0);
        assert_eq!(mask_complement(&a, &z), a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let a = sv(5, &[]);
        let b = sv(6, &[]);
        add(&a, &b);
    }
}
