//! Semiring-generic forms of the three numeric kernels.
//!
//! These are the workspace-writing engines behind [`super::row_kernel`],
//! [`super::col_kernel`] and [`super::coo_kernel`]: identical traversal
//! order and identical work counting (value bytes scale with
//! `size_of::<S::T>()`, so the `f64` counts match the paper's accounting
//! byte for byte), but
//!
//! * the output is written into a caller-owned padded buffer instead of a
//!   freshly allocated one,
//! * every multiply-add goes through the [`Semiring`] operators, and
//! * each kernel marks the *row tiles* it wrote in a shared bitset, so the
//!   driver's compaction and reset can visit only written tiles (work
//!   proportional to `nnz(y)`, not `n`).
//!
//! The scatter kernels (column-push and the COO pass) buffer their
//! contributions per warp and merge them in warp order afterwards instead
//! of using atomic adds. The atomic/scattered-write counters are charged at
//! production time exactly as the seed kernels charged them, and the merge
//! order is deterministic — a strict refinement of the seed's
//! scheduling-dependent atomic ordering.

use crate::semiring::Semiring;
use crate::tile::matrix::TileView;
use crate::tile::{SellSlabView, SellSlabs, TileMatrix, TiledVector};
use tsv_simt::atomic::AtomicWords;
use tsv_simt::backend::Backend;
use tsv_simt::grid::BinPlan;
use tsv_simt::sanitize::{self, Sanitizer};
use tsv_simt::stats::KernelStats;
use tsv_simt::warp::WARP_SIZE;
use tsv_sparse::SparseVector;

/// Marks row tile `rt` in the shared touched bitset.
#[inline]
fn mark(touched: &AtomicWords, rt: usize) {
    touched.fetch_or(rt / 64, 1 << (rt % 64));
}

/// Shadow-logs the row-tile kernels' once-per-warp output-tile store:
/// `nt` plain writes to `y[base..base+nt]`. Guarded so a disabled
/// sanitizer costs one branch for the whole tile, not one per element.
#[inline]
fn log_tile_write(san: Option<&Sanitizer>, base: usize, nt: usize, warp_id: usize) {
    if let Some(s) = san {
        if s.is_enabled() {
            for lr in 0..nt {
                s.record(
                    sanitize::AccessKind::Write,
                    "y",
                    base + lr,
                    warp_id,
                    lr % WARP_SIZE,
                );
            }
        }
    }
}

/// Computes every intra-tile row's semiring product sum for one stored
/// tile and hands it to `emit(stats, local_row, sum)`: dense payloads sweep
/// all `nt` rows, tile-CSR rows skip empty ones, and SELL slabs run the
/// lane-blocked body (which also skips empty rows). Rows are emitted once
/// each — in ascending order for dense/CSR, in slab order for SELL — and
/// every per-row sum folds its entries in ascending-column CSR order, so
/// the multiset of `(row, sum)` pairs per tile is format-independent and
/// `PlusTimes` results stay bit-identical (each output slot receives
/// exactly one fold per tile, tiles visited in unchanged order).
///
/// `charge_reads` gates the tile-*body* traffic counters (payload, index
/// arrays, slab header) while flops and lane steps are always charged:
/// the batched kernels walk the same tile once per active query lane but
/// the body is resident after the first lane's pass, so only that first
/// pass pays the memory traffic. Single-vector callers pass `true`.
#[inline]
fn tile_rows_semiring<S: Semiring, F: FnMut(&mut KernelStats, usize, S::T)>(
    view: &TileView<'_, S::T>,
    slab: Option<SellSlabView<'_, S::T>>,
    x_tile: &[S::T],
    nt: usize,
    charge_reads: bool,
    stats: &mut KernelStats,
    mut emit: F,
) {
    let vb = std::mem::size_of::<S::T>();
    match view.dense {
        Some(d) => {
            if charge_reads {
                stats.read(nt * nt * vb);
            }
            for lr in 0..nt {
                let row = &d[lr * nt..(lr + 1) * nt];
                let mut sum = S::zero();
                for (&v, &xv) in row.iter().zip(x_tile) {
                    sum = S::add(sum, S::mul(v, xv));
                }
                emit(stats, lr, sum);
            }
            stats.flop(2 * nt * nt);
            stats.lane_steps += ((nt * nt) / 32) as u64 * 32;
        }
        None => match slab {
            Some(sl) => match sl.c {
                4 => sell_rows_semiring::<S, 4, F>(
                    &sl,
                    view.nnz(),
                    x_tile,
                    charge_reads,
                    stats,
                    emit,
                ),
                8 => sell_rows_semiring::<S, 8, F>(
                    &sl,
                    view.nnz(),
                    x_tile,
                    charge_reads,
                    stats,
                    emit,
                ),
                _ => csr_rows_semiring::<S, F>(view, x_tile, nt, charge_reads, stats, emit),
            },
            None => csr_rows_semiring::<S, F>(view, x_tile, nt, charge_reads, stats, emit),
        },
    }
}

/// The scalar tile-CSR walk (the seed kernels' body, work counting
/// unchanged byte for byte).
#[inline]
fn csr_rows_semiring<S: Semiring, F: FnMut(&mut KernelStats, usize, S::T)>(
    view: &TileView<'_, S::T>,
    x_tile: &[S::T],
    nt: usize,
    charge_reads: bool,
    stats: &mut KernelStats,
    mut emit: F,
) {
    let vb = std::mem::size_of::<S::T>();
    if charge_reads {
        stats.read((nt + 1) * 2 + view.nnz() * (1 + vb));
    }
    for lr in 0..nt {
        let (cols, vals) = view.row(lr);
        if cols.is_empty() {
            continue;
        }
        let mut sum = S::zero();
        for (&lc, &v) in cols.iter().zip(vals) {
            sum = S::add(sum, S::mul(v, x_tile[lc as usize]));
        }
        stats.flop(2 * cols.len());
        emit(stats, lr, sum);
    }
    stats.lane_steps += view.nnz().div_ceil(2) as u64;
}

/// The lane-blocked SELL slab walk: `C` rows per step over `chunks_exact`
/// fixed-width lane arrays, so the inner loop autovectorizes on stable
/// Rust. The select keeps padding slots out of the accumulators (their
/// baked values are never observed — MinPlus-safe), each lane folds its
/// row's entries in CSR order, and the permutation is undone at emission.
#[inline]
fn sell_rows_semiring<S: Semiring, const C: usize, F: FnMut(&mut KernelStats, usize, S::T)>(
    sl: &SellSlabView<'_, S::T>,
    nnz: usize,
    x_tile: &[S::T],
    charge_reads: bool,
    stats: &mut KernelStats,
    mut emit: F,
) {
    let vb = std::mem::size_of::<S::T>();
    // Slab header (permutation + lengths + widths) plus the padded lanes.
    if charge_reads {
        stats.read(sl.perm.len() * 3 + sl.widths.len() * 2 + sl.cols.len() * (1 + vb));
    }
    let mut off = 0usize;
    for (j, &w) in sl.widths.iter().enumerate() {
        let w = w as usize;
        if w == 0 {
            continue;
        }
        let lens: &[u16; C] = sl.lens[j * C..(j + 1) * C]
            .try_into()
            .expect("chunk height");
        let span = w * C;
        let mut acc = [S::zero(); C];
        for (k, (cols_k, vals_k)) in sl.cols[off..off + span]
            .chunks_exact(C)
            .zip(sl.vals[off..off + span].chunks_exact(C))
            .enumerate()
        {
            let cols_k: &[u8; C] = cols_k.try_into().expect("lane width");
            let vals_k: &[S::T; C] = vals_k.try_into().expect("lane width");
            let k = k as u16;
            for l in 0..C {
                let p = S::mul(vals_k[l], x_tile[cols_k[l] as usize]);
                acc[l] = if k < lens[l] {
                    S::add(acc[l], p)
                } else {
                    acc[l]
                };
            }
        }
        off += span;
        // One lock-step SIMT step per lane-block row of the chunk.
        stats.lane_steps += w as u64;
        let perm: &[u8; C] = sl.perm[j * C..(j + 1) * C]
            .try_into()
            .expect("chunk height");
        for l in 0..C {
            if lens[l] > 0 {
                emit(stats, perm[l] as usize, acc[l]);
            }
        }
    }
    stats.flop(2 * nnz);
}

/// CSR-form row-tile kernel over an arbitrary semiring (Algorithm 4),
/// launched on `backend`.
///
/// `y` must be `m_tiles * nt` long and hold `S::zero()` in every slot the
/// caller has not already accumulated into.
pub fn row_kernel_semiring<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    x: &TiledVector<S::T>,
    y: &mut [S::T],
    sell: Option<&SellSlabs<S::T>>,
    touched: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats
where
    S::T: Default,
{
    let nt = a.nt();
    debug_assert_eq!(x.nt(), nt, "vector tiled with a different nt");
    debug_assert_eq!(y.len(), a.m_tiles() * nt, "padded output sized wrong");
    if a.m_tiles() == 0 {
        return KernelStats::default();
    }
    let vb = std::mem::size_of::<S::T>();

    backend.launch_over_chunks("spmspv/row-tile", y, nt, |warp, y_tile| {
        let rt = warp.warp_id;
        let mut dirty = false;
        // Tile-level CSR walk of this row tile.
        for t in a.row_tile_range(rt) {
            let view = a.tile(t);
            warp.stats.read(4); // A_tile_colid[tile_id] (streamed)
            warp.stats.read_scattered(4); // x_ptr[tile_colid]
            let Some(x_tile) = x.tile(view.col_tile) else {
                continue; // x_offset == -1: skip the whole tile
            };
            // Load the vector tile and the tile body ("into shared memory").
            warp.stats.read(nt * vb);
            sanitize::read(san, "x-tiles", view.col_tile, rt, 0);
            dirty = true;
            // Lanes are striped over the tile rows (two lanes per row at
            // nt = 16); on the CPU the warp walks its rows in order, each
            // row reducing its partial sums exactly as the
            // __shfl_down_sync pair of Algorithm 4 would.
            tile_rows_semiring::<S, _>(
                &view,
                sell.and_then(|s| s.slab(t)),
                x_tile,
                nt,
                true,
                &mut warp.stats,
                |_, lr, sum| y_tile[lr] = S::add(y_tile[lr], sum),
            );
        }
        // Row tile writes its outputs once.
        warp.stats.write(nt * vb);
        log_tile_write(san, rt * nt, nt, rt);
        if dirty {
            mark(touched, rt);
            sanitize::rmw(san, "touched", rt / 64, rt, 0);
        }
    })
}

/// Builds the frontier-compacted row-tile work list: one pass over the
/// active vector tiles and their stored column tiles, so the cost is
/// proportional to active (row-tile, tile) pairs rather than `m_tiles`.
///
/// `worklist` receives the row tiles with at least one active tile, in
/// ascending order; `weights[rt]` receives the total stored nnz of `rt`'s
/// active tiles (the binning weight) and is left *set* — the caller resets
/// it by iterating `worklist` after planning. `weights` must be `m_tiles`
/// long and all-zero on entry. The traffic of the pass is charged to
/// `stats` (it is device work: the GPU form is a scan over the CSC tile
/// lists plus a compaction).
pub fn build_row_worklist<T: Copy + PartialEq + Default + Send + Sync>(
    a: &TileMatrix<T>,
    x: &TiledVector<T>,
    worklist: &mut Vec<u32>,
    weights: &mut [u64],
    stats: &mut KernelStats,
) {
    debug_assert!(weights.len() >= a.m_tiles(), "weights sized to m_tiles");
    worklist.clear();
    for &ct in x.active_tiles() {
        stats.read(4); // the active-tile id (streamed)
        for &t in a.col_tiles(ct as usize) {
            let t = t as usize;
            let rt = a.tile_row_of(t);
            // Tile id + its row-tile id + nnz, streamed from the CSC-side
            // tile lists.
            stats.read(4 + 4 + 4);
            if weights[rt] == 0 {
                worklist.push(rt as u32);
            }
            weights[rt] += (a.tile(t).nnz() as u64).max(1);
        }
    }
    worklist.sort_unstable();
    stats.write(worklist.len() * 4);
}

/// Builds the work list for the vector-driven kernel: the active vector
/// tiles themselves (already sorted), weighted by the stored nnz of each
/// one's column of tiles. `weights` must be `n_tiles` long and all-zero on
/// entry; the caller resets it by iterating `worklist` after planning.
pub fn build_col_worklist<T: Copy + PartialEq + Default + Send + Sync>(
    a: &TileMatrix<T>,
    x: &TiledVector<T>,
    worklist: &mut Vec<u32>,
    weights: &mut [u64],
    stats: &mut KernelStats,
) {
    debug_assert!(weights.len() >= a.n_tiles(), "weights sized to n_tiles");
    worklist.clear();
    for &ct in x.active_tiles() {
        stats.read(4);
        let mut w = 0u64;
        for &t in a.col_tiles(ct as usize) {
            stats.read(4 + 4);
            w += a.tile(t as usize).nnz() as u64;
        }
        // Empty columns still get a (light) unit: the direct kernel also
        // launches a warp for every active vector tile.
        weights[ct as usize] = w.max(1);
        worklist.push(ct);
    }
    stats.write(worklist.len() * 4);
}

/// CSR-form row-tile kernel over the frontier-compacted, nnz-binned
/// dispatch plan.
///
/// `plan` must have been built over the `worklist` of
/// [`build_row_worklist`]. Two dispatch shapes:
///
/// * When the plan degenerated to one whole unit per warp, the kernel runs
///   [`Backend::launch_over_worklist`] and writes `y` directly — each warp owns its
///   row tile exactly as in [`row_kernel_semiring`].
/// * Otherwise (packed or split warps share unit ranges) every warp buffers
///   `(row, partial)` contributions and they are merged in warp order.
///
/// Either way the per-row accumulation order is *identical* to
/// [`row_kernel_semiring`]: each listed row tile's stored tiles are visited
/// in tile order (split parts take contiguous sub-ranges, merged in part
/// order), and every tile-row partial is folded into `y` left-to-right. For
/// `PlusTimes` over `f64` this makes the result bit-for-bit equal to the
/// unbinned kernel; see DESIGN.md for the determinism argument.
#[allow(clippy::too_many_arguments)]
pub fn row_kernel_binned_semiring<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    x: &TiledVector<S::T>,
    y: &mut [S::T],
    sell: Option<&SellSlabs<S::T>>,
    worklist: &[u32],
    plan: &BinPlan,
    contribs: &mut Vec<Vec<(u32, S::T)>>,
    touched: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats
where
    S::T: Default,
{
    let nt = a.nt();
    debug_assert_eq!(x.nt(), nt, "vector tiled with a different nt");
    debug_assert_eq!(y.len(), a.m_tiles() * nt, "padded output sized wrong");
    let vb = std::mem::size_of::<S::T>();

    // Fast path: nothing was packed or split, so each warp exclusively owns
    // one listed row tile and can write y in place.
    if plan.n_warps() == worklist.len() && plan.n_assignments() == worklist.len() {
        return backend.launch_over_worklist(
            "spmspv/row-tile-binned",
            y,
            nt,
            worklist,
            |warp, rt, y_tile| {
                let rt = rt as usize;
                let mut dirty = false;
                for t in a.row_tile_range(rt) {
                    let view = a.tile(t);
                    warp.stats.read(4);
                    warp.stats.read_scattered(4);
                    let Some(x_tile) = x.tile(view.col_tile) else {
                        continue;
                    };
                    warp.stats.read(nt * vb);
                    sanitize::read(san, "x-tiles", view.col_tile, warp.warp_id, 0);
                    dirty = true;
                    tile_rows_semiring::<S, _>(
                        &view,
                        sell.and_then(|s| s.slab(t)),
                        x_tile,
                        nt,
                        true,
                        &mut warp.stats,
                        |_, lr, sum| y_tile[lr] = S::add(y_tile[lr], sum),
                    );
                }
                warp.stats.write(nt * vb);
                log_tile_write(san, rt * nt, nt, warp.warp_id);
                if dirty {
                    mark(touched, rt);
                    sanitize::rmw(san, "touched", rt / 64, warp.warp_id, 0);
                }
            },
        );
    }

    if contribs.len() < plan.n_warps() {
        contribs.resize_with(plan.n_warps(), Vec::new);
    }
    let stats = backend.launch_binned(plan, contribs, |warp, assignments, bucket| {
        for asg in assignments {
            let rt = asg.unit as usize;
            let tiles = a.row_tile_range(rt);
            let idx = if asg.parts == 1 {
                0..tiles.len()
            } else {
                asg.part_range(tiles.len())
            };
            let base = rt * nt;
            let mut dirty = false;
            for ti in idx {
                let t = tiles.start + ti;
                let view = a.tile(t);
                warp.stats.read(4);
                warp.stats.read_scattered(4);
                let Some(x_tile) = x.tile(view.col_tile) else {
                    continue;
                };
                warp.stats.read(nt * vb);
                // Partial sums go to this warp's private bucket (merged
                // sequentially after the barrier), so the only shared
                // global accesses in the split path are the x-tile loads.
                sanitize::read(san, "x-tiles", view.col_tile, warp.warp_id, 0);
                dirty = true;
                tile_rows_semiring::<S, _>(
                    &view,
                    sell.and_then(|s| s.slab(t)),
                    x_tile,
                    nt,
                    true,
                    &mut warp.stats,
                    |_, lr, sum| bucket.push(((base + lr) as u32, sum)),
                );
            }
            // One (partial) output-tile write per assignment; empty split
            // parts touched nothing and write nothing.
            if dirty {
                warp.stats.write(nt * vb);
            }
        }
    });
    merge_contribs::<S>(&mut contribs[..plan.n_warps()], y, nt, touched);
    stats
}

/// Vector-driven kernel over the nnz-binned dispatch plan: active vector
/// tiles packed/split per `plan`, contributions buffered per warp and
/// merged in warp order. The push order (and therefore the accumulation
/// order into `y`) is identical to [`col_kernel_semiring`]'s warp-ordered
/// merge, so results match it bitwise.
#[allow(clippy::too_many_arguments)]
pub fn col_kernel_binned_semiring<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    x: &TiledVector<S::T>,
    y: &mut [S::T],
    sell: Option<&SellSlabs<S::T>>,
    plan: &BinPlan,
    contribs: &mut Vec<Vec<(u32, S::T)>>,
    touched: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats
where
    S::T: Default,
{
    let nt = a.nt();
    debug_assert_eq!(x.nt(), nt, "vector tiled with a different nt");
    debug_assert_eq!(y.len(), a.m_tiles() * nt, "padded output sized wrong");
    let vb = std::mem::size_of::<S::T>();

    if contribs.len() < plan.n_warps() {
        contribs.resize_with(plan.n_warps(), Vec::new);
    }
    let stats = backend.launch_binned(plan, contribs, |warp, assignments, bucket| {
        let wid = warp.warp_id;
        for asg in assignments {
            let ct = asg.unit as usize;
            let x_tile = x.tile(ct).expect("work-list tiles are non-empty");
            warp.stats.read(nt * vb);
            sanitize::read(san, "x-tiles", ct, wid, 0);
            let tiles = a.col_tiles(ct);
            let idx = if asg.parts == 1 {
                0..tiles.len()
            } else {
                asg.part_range(tiles.len())
            };
            for &t in &tiles[idx] {
                let t = t as usize;
                let view = a.tile(t);
                let rt = a.tile_row_of(t);
                warp.stats.read(4 + 4);
                let base = rt * nt;
                tile_rows_semiring::<S, _>(
                    &view,
                    sell.and_then(|s| s.slab(t)),
                    x_tile,
                    nt,
                    true,
                    &mut warp.stats,
                    |st, lr, sum| {
                        if sum != S::zero() {
                            bucket.push(((base + lr) as u32, sum));
                            st.atomic(1);
                            st.write_scattered(vb);
                            sanitize::rmw(san, "y", base + lr, wid, lr % WARP_SIZE);
                        }
                    },
                );
            }
        }
    });
    merge_contribs::<S>(&mut contribs[..plan.n_warps()], y, nt, touched);
    stats
}

/// CSC-form (vector-driven) kernel over an arbitrary semiring.
///
/// One warp per non-empty vector tile, contributions buffered in
/// `contribs` (one bucket per warp, capacity kept across calls) and merged
/// into `y` in warp order after the launch.
#[allow(clippy::too_many_arguments)]
pub fn col_kernel_semiring<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    x: &TiledVector<S::T>,
    y: &mut [S::T],
    sell: Option<&SellSlabs<S::T>>,
    contribs: &mut Vec<Vec<(u32, S::T)>>,
    touched: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats
where
    S::T: Default,
{
    let nt = a.nt();
    debug_assert_eq!(x.nt(), nt, "vector tiled with a different nt");
    debug_assert_eq!(y.len(), a.m_tiles() * nt, "padded output sized wrong");
    let vb = std::mem::size_of::<S::T>();

    // The active column tiles: one warp each.
    let active = x.active_tiles();
    if contribs.len() < active.len() {
        contribs.resize_with(active.len(), Vec::new);
    }

    let stats = backend.launch_over_chunks(
        "spmspv/col-tile",
        &mut contribs[..active.len()],
        1,
        |warp, chunk| {
            let bucket = &mut chunk[0];
            let wid = warp.warp_id;
            let ct = active[wid] as usize;
            let x_tile = x.tile(ct).expect("active tiles are non-empty");
            warp.stats.read(nt * vb); // load the vector tile once
            sanitize::read(san, "x-tiles", ct, wid, 0);

            for &t in a.col_tiles(ct) {
                let t = t as usize;
                let view = a.tile(t);
                let rt = a.tile_row_of(t);
                warp.stats.read(4 + 4); // tile id + row-tile id
                let base = rt * nt;
                tile_rows_semiring::<S, _>(
                    &view,
                    sell.and_then(|s| s.slab(t)),
                    x_tile,
                    nt,
                    true,
                    &mut warp.stats,
                    |st, lr, sum| {
                        if sum != S::zero() {
                            bucket.push(((base + lr) as u32, sum));
                            st.atomic(1);
                            st.write_scattered(vb);
                            sanitize::rmw(san, "y", base + lr, wid, lr % WARP_SIZE);
                        }
                    },
                );
            }
        },
    );

    merge_contribs::<S>(&mut contribs[..active.len()], y, nt, touched);
    stats
}

/// Vector nonzeros per warp in the COO pass.
const CHUNK: usize = WARP_SIZE;

/// The hybrid pass over extracted very-sparse entries, over an arbitrary
/// semiring. Accumulates `extra ⊗ x` into `y`.
pub fn coo_kernel_semiring<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    x: &SparseVector<S::T>,
    y: &mut [S::T],
    contribs: &mut Vec<Vec<(u32, S::T)>>,
    touched: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats
where
    S::T: Default,
{
    if a.extra().nnz() == 0 || x.nnz() == 0 {
        return KernelStats::default();
    }
    let nt = a.nt();
    let vb = std::mem::size_of::<S::T>();
    let idx = x.indices();
    let vals = x.values();
    let n_warps = x.nnz().div_ceil(CHUNK);
    if contribs.len() < n_warps {
        contribs.resize_with(n_warps, Vec::new);
    }

    let stats = backend.launch_over_chunks(
        "spmspv/coo-pass",
        &mut contribs[..n_warps],
        1,
        |warp, chunk| {
            let bucket = &mut chunk[0];
            let start = warp.warp_id * CHUNK;
            let end = (start + CHUNK).min(x.nnz());
            for k in start..end {
                let j = idx[k] as usize;
                let xj = vals[k];
                warp.stats.read(4 + vb); // the x entry (streamed)
                warp.stats.read_scattered(8); // extra_col_ptr[j]
                sanitize::read(san, "x", j, warp.warp_id, k % WARP_SIZE);
                let (rows, evals) = a.extra_col(j);
                warp.stats.read(rows.len() * (4 + vb));
                for (&r, &v) in rows.iter().zip(evals) {
                    bucket.push((r, S::mul(v, xj)));
                    warp.stats.flop(2);
                    warp.stats.atomic(1);
                    warp.stats.write_scattered(vb);
                    sanitize::rmw(san, "y", r as usize, warp.warp_id, k % WARP_SIZE);
                }
                warp.stats.lane_steps += rows.len().div_ceil(WARP_SIZE) as u64 * WARP_SIZE as u64;
            }
        },
    );

    merge_contribs::<S>(&mut contribs[..n_warps], y, nt, touched);
    stats
}

/// Walks one stored tile for every active query lane of a batch,
/// accumulating into the warp's lane-major output slab. Shared body for
/// the batched direct and binned-fast row kernels.
///
/// `emit_base(lr)` maps an intra-tile row to the slab offset of lane 0;
/// lane `q`'s slot is `emit_base(lr) + q`. The tile body's memory traffic
/// is charged only for the first active lane (the tile is resident across
/// lanes — this is the traversal amortization batching buys), while each
/// lane pays its own vector-tile load, flops, and lane steps. Per lane the
/// fold order is exactly the single-vector kernel's, so `PlusTimes`
/// results stay bit-identical to `B` sequential multiplies.
#[inline]
#[allow(clippy::too_many_arguments)]
fn batched_tile_lanes<S: Semiring>(
    view: &TileView<'_, S::T>,
    slab: Option<SellSlabView<'_, S::T>>,
    xts: &[TiledVector<S::T>],
    nt: usize,
    b: usize,
    warp: &mut tsv_simt::warp::WarpCtx,
    san: Option<&Sanitizer>,
    y_slab: &mut [S::T],
) -> bool
where
    S::T: Default,
{
    let vb = std::mem::size_of::<S::T>();
    let mut body_charged = false;
    for (q, xt) in xts.iter().enumerate() {
        let Some(x_tile) = xt.tile(view.col_tile) else {
            continue;
        };
        // Each lane loads its own vector tile; the matrix tile body is
        // charged once per tile (first active lane) below.
        warp.stats.read(nt * vb);
        sanitize::read(san, "x-tiles", view.col_tile, warp.warp_id, q % WARP_SIZE);
        tile_rows_semiring::<S, _>(
            view,
            slab,
            x_tile,
            nt,
            !body_charged,
            &mut warp.stats,
            |_, lr, sum| {
                let i = lr * b + q;
                y_slab[i] = S::add(y_slab[i], sum);
            },
        );
        body_charged = true;
    }
    body_charged
}

/// Batched CSR-form row-tile kernel: one tile traversal shared by a
/// column-blocked batch of `xts.len()` sparse vectors.
///
/// `y` is the lane-major output slab, `m_tiles * nt * B` long with the
/// slot of (global row `r`, query lane `q`) at `r * B + q`; every slot the
/// caller has not already accumulated into must hold `S::zero()`. Each
/// warp owns the `nt * B` slab of one row tile, so write-disjointness
/// across query lanes is structural (lanes live inside the warp's
/// exclusive chunk) — the same argument the analyzer's chunked footprint
/// proves at plan time.
pub fn batched_row_kernel_semiring<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    xts: &[TiledVector<S::T>],
    y: &mut [S::T],
    sell: Option<&SellSlabs<S::T>>,
    touched: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats
where
    S::T: Default,
{
    let nt = a.nt();
    let b = xts.len();
    debug_assert!(xts.iter().all(|xt| xt.nt() == nt), "batch tiled with nt");
    debug_assert_eq!(y.len(), a.m_tiles() * nt * b, "lane-major slab sized");
    if a.m_tiles() == 0 || b == 0 {
        return KernelStats::default();
    }
    let vb = std::mem::size_of::<S::T>();

    backend.launch_over_chunks("spmspv/row-tile-batched", y, nt * b, |warp, y_slab| {
        let rt = warp.warp_id;
        let mut dirty = false;
        for t in a.row_tile_range(rt) {
            let view = a.tile(t);
            warp.stats.read(4);
            warp.stats.read_scattered(4);
            dirty |= batched_tile_lanes::<S>(
                &view,
                sell.and_then(|s| s.slab(t)),
                xts,
                nt,
                b,
                warp,
                san,
                y_slab,
            );
        }
        warp.stats.write(nt * b * vb);
        log_tile_write(san, rt * nt * b, nt * b, rt);
        if dirty {
            mark(touched, rt);
            sanitize::rmw(san, "touched", rt / 64, rt, 0);
        }
    })
}

/// Builds the union frontier-compacted row-tile work list of a batch: a
/// row tile is listed when at least one query lane has an active vector
/// tile in its column range. `weights[rt]` accumulates stored nnz over
/// every (lane, active tile) pair, so binning balances the *batch's* work,
/// not any single lane's. Same contract as [`build_row_worklist`]:
/// `weights` all-zero on entry, left set for the caller to reset.
pub fn build_batched_row_worklist<T: Copy + PartialEq + Default + Send + Sync>(
    a: &TileMatrix<T>,
    xts: &[TiledVector<T>],
    worklist: &mut Vec<u32>,
    weights: &mut [u64],
    stats: &mut KernelStats,
) {
    debug_assert!(weights.len() >= a.m_tiles(), "weights sized to m_tiles");
    worklist.clear();
    for xt in xts {
        for &ct in xt.active_tiles() {
            stats.read(4);
            for &t in a.col_tiles(ct as usize) {
                let t = t as usize;
                let rt = a.tile_row_of(t);
                stats.read(4 + 4 + 4);
                if weights[rt] == 0 {
                    worklist.push(rt as u32);
                }
                weights[rt] += (a.tile(t).nnz() as u64).max(1);
            }
        }
    }
    worklist.sort_unstable();
    stats.write(worklist.len() * 4);
}

/// Batched row-tile kernel over the union work list's nnz-binned plan.
///
/// Mirrors [`row_kernel_binned_semiring`] with lane-major slab outputs:
/// the fast path writes each listed row tile's `nt * B` slab in place, the
/// buffered path pushes `(slab_index, partial)` pairs (slab index
/// `r * B + q`) into per-warp buckets merged in warp order. Per lane and
/// per output slot the accumulation order is tile order within the row
/// tile — identical to the batched direct kernel and to `B` sequential
/// multiplies, so `PlusTimes` stays bit-identical across dispatch shapes.
#[allow(clippy::too_many_arguments)]
pub fn batched_row_kernel_binned_semiring<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    xts: &[TiledVector<S::T>],
    y: &mut [S::T],
    sell: Option<&SellSlabs<S::T>>,
    worklist: &[u32],
    plan: &BinPlan,
    contribs: &mut Vec<Vec<(u32, S::T)>>,
    touched: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats
where
    S::T: Default,
{
    let nt = a.nt();
    let b = xts.len();
    debug_assert!(xts.iter().all(|xt| xt.nt() == nt), "batch tiled with nt");
    debug_assert_eq!(y.len(), a.m_tiles() * nt * b, "lane-major slab sized");
    let vb = std::mem::size_of::<S::T>();

    if plan.n_warps() == worklist.len() && plan.n_assignments() == worklist.len() {
        return backend.launch_over_worklist(
            "spmspv/row-tile-batched-binned",
            y,
            nt * b,
            worklist,
            |warp, rt, y_slab| {
                let rt = rt as usize;
                let mut dirty = false;
                for t in a.row_tile_range(rt) {
                    let view = a.tile(t);
                    warp.stats.read(4);
                    warp.stats.read_scattered(4);
                    dirty |= batched_tile_lanes::<S>(
                        &view,
                        sell.and_then(|s| s.slab(t)),
                        xts,
                        nt,
                        b,
                        warp,
                        san,
                        y_slab,
                    );
                }
                warp.stats.write(nt * b * vb);
                log_tile_write(san, rt * nt * b, nt * b, warp.warp_id);
                if dirty {
                    mark(touched, rt);
                    sanitize::rmw(san, "touched", rt / 64, warp.warp_id, 0);
                }
            },
        );
    }

    if contribs.len() < plan.n_warps() {
        contribs.resize_with(plan.n_warps(), Vec::new);
    }
    let stats = backend.launch_binned(plan, contribs, |warp, assignments, bucket| {
        for asg in assignments {
            let rt = asg.unit as usize;
            let tiles = a.row_tile_range(rt);
            let idx = if asg.parts == 1 {
                0..tiles.len()
            } else {
                asg.part_range(tiles.len())
            };
            let base = rt * nt;
            let mut dirty = false;
            for ti in idx {
                let t = tiles.start + ti;
                let view = a.tile(t);
                warp.stats.read(4);
                warp.stats.read_scattered(4);
                let slab = sell.and_then(|s| s.slab(t));
                let mut body_charged = false;
                for (q, xt) in xts.iter().enumerate() {
                    let Some(x_tile) = xt.tile(view.col_tile) else {
                        continue;
                    };
                    warp.stats.read(nt * vb);
                    sanitize::read(san, "x-tiles", view.col_tile, warp.warp_id, q % WARP_SIZE);
                    dirty = true;
                    tile_rows_semiring::<S, _>(
                        &view,
                        slab,
                        x_tile,
                        nt,
                        !body_charged,
                        &mut warp.stats,
                        |_, lr, sum| bucket.push((((base + lr) * b + q) as u32, sum)),
                    );
                    body_charged = true;
                }
            }
            if dirty {
                warp.stats.write(nt * b * vb);
            }
        }
    });
    merge_contribs::<S>(&mut contribs[..plan.n_warps()], y, nt * b, touched);
    stats
}

/// The hybrid COO pass for one query lane of a batch: accumulates
/// `extra ⊗ x` into lane `q`'s slots of the lane-major slab (`r * B + q`).
/// The per-lane push and merge order matches [`coo_kernel_semiring`]
/// exactly, and lanes touch disjoint slab slots, so the driver launches
/// one pass per active lane without cross-lane interference. Extra-column
/// reads are per lane (each lane walks its own frontier) — the COO side
/// buffer is tiny by construction, so the unamortized traffic is noise.
#[allow(clippy::too_many_arguments)]
pub fn batched_coo_kernel_semiring<S: Semiring, B: Backend>(
    backend: &B,
    a: &TileMatrix<S::T>,
    x: &SparseVector<S::T>,
    lane: usize,
    b: usize,
    y: &mut [S::T],
    contribs: &mut Vec<Vec<(u32, S::T)>>,
    touched: &AtomicWords,
    san: Option<&Sanitizer>,
) -> KernelStats
where
    S::T: Default,
{
    if a.extra().nnz() == 0 || x.nnz() == 0 {
        return KernelStats::default();
    }
    let nt = a.nt();
    let vb = std::mem::size_of::<S::T>();
    let idx = x.indices();
    let vals = x.values();
    let n_warps = x.nnz().div_ceil(CHUNK);
    if contribs.len() < n_warps {
        contribs.resize_with(n_warps, Vec::new);
    }

    let stats = backend.launch_over_chunks(
        "spmspv/coo-batched",
        &mut contribs[..n_warps],
        1,
        |warp, chunk| {
            let bucket = &mut chunk[0];
            let start = warp.warp_id * CHUNK;
            let end = (start + CHUNK).min(x.nnz());
            for k in start..end {
                let j = idx[k] as usize;
                let xj = vals[k];
                warp.stats.read(4 + vb);
                warp.stats.read_scattered(8);
                sanitize::read(san, "x", j, warp.warp_id, k % WARP_SIZE);
                let (rows, evals) = a.extra_col(j);
                warp.stats.read(rows.len() * (4 + vb));
                for (&r, &v) in rows.iter().zip(evals) {
                    let slot = r as usize * b + lane;
                    bucket.push((slot as u32, S::mul(v, xj)));
                    warp.stats.flop(2);
                    warp.stats.atomic(1);
                    warp.stats.write_scattered(vb);
                    sanitize::rmw(san, "y", slot, warp.warp_id, k % WARP_SIZE);
                }
                warp.stats.lane_steps += rows.len().div_ceil(WARP_SIZE) as u64 * WARP_SIZE as u64;
            }
        },
    );

    merge_contribs::<S>(&mut contribs[..n_warps], y, nt * b, touched);
    stats
}

/// Applies the buffered contributions to `y` in warp order, marking each
/// written row tile, and clears the buckets (keeping their capacity).
fn merge_contribs<S: Semiring>(
    contribs: &mut [Vec<(u32, S::T)>],
    y: &mut [S::T],
    nt: usize,
    touched: &AtomicWords,
) {
    for bucket in contribs.iter_mut() {
        for &(i, v) in bucket.iter() {
            let i = i as usize;
            y[i] = S::add(y[i], v);
            mark(touched, i / nt);
        }
        bucket.clear();
    }
}

/// Collects the marked row tiles in ascending order into `out` and clears
/// the bitset.
pub fn drain_touched(touched: &mut AtomicWords, out: &mut Vec<u32>) {
    out.clear();
    for w in 0..touched.len() {
        let mut word = touched.load(w);
        while word != 0 {
            let b = word.trailing_zeros() as usize;
            word &= word - 1;
            out.push((w * 64 + b) as u32);
        }
    }
    touched.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::{MinPlus, PlusTimes};
    use crate::tile::{TileConfig, TileSize};
    use tsv_sparse::gen::{random_sparse_vector, uniform_random};
    use tsv_sparse::reference::spmspv_row;

    #[test]
    fn generic_row_kernel_matches_f64_kernel_bitwise() {
        let a = uniform_random(300, 300, 4000, 3).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let x = random_sparse_vector(300, 0.05, 1);
        let xt = TiledVector::from_sparse(&x, 16);

        let mut y = vec![0.0f64; tm.m_tiles() * 16];
        let touched = AtomicWords::zeroed(tm.m_tiles().div_ceil(64));
        let stats = row_kernel_semiring::<PlusTimes, _>(
            &tsv_simt::backend::ModelBackend,
            &tm,
            &xt,
            &mut y,
            None,
            &touched,
            None,
        );

        let expect = spmspv_row(&a, &x).unwrap().to_dense();
        for i in 0..300 {
            assert!((y[i] - expect[i]).abs() < 1e-9, "row {i}");
        }
        assert!(stats.flops > 0);
        // Touched tiles cover every nonzero output row.
        let mut list = Vec::new();
        let mut touched = touched;
        drain_touched(&mut touched, &mut list);
        for (i, &v) in y.iter().enumerate() {
            if v != 0.0 {
                assert!(
                    list.contains(&((i / 16) as u32)),
                    "row tile {} missed",
                    i / 16
                );
            }
        }
    }

    #[test]
    fn min_plus_col_kernel_relaxes() {
        // 0 -> 1 (w 2), 1 -> 2 (w 1) as A[dst][src]; one relaxation from
        // the source must reach vertex 1 with distance 2.
        let mut coo = tsv_sparse::CooMatrix::new(64, 64);
        coo.push(1, 0, 2.0);
        coo.push(2, 1, 1.0);
        let cfg = TileConfig {
            tile_size: TileSize::S16,
            extract_threshold: 0,
            dense_threshold: 2.0,
        };
        let tm = TileMatrix::from_csr(&coo.to_csr(), cfg).unwrap();
        let x = SparseVector::from_entries(64, vec![(0, 0.0)]).unwrap();
        let xt = TiledVector::from_sparse_filled(&x, 16, f64::INFINITY);

        let mut y = vec![f64::INFINITY; tm.m_tiles() * 16];
        let touched = AtomicWords::zeroed(1);
        let mut contribs = Vec::new();
        col_kernel_semiring::<MinPlus, _>(
            &tsv_simt::backend::ModelBackend,
            &tm,
            &xt,
            &mut y,
            None,
            &mut contribs,
            &touched,
            None,
        );
        assert_eq!(y[1], 2.0);
        assert_eq!(y[2], f64::INFINITY, "vertex 2 not reached in one hop");
    }

    #[test]
    fn row_and_col_kernels_are_race_free_under_the_sanitizer() {
        let a = uniform_random(200, 200, 3000, 7).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let x = random_sparse_vector(200, 0.1, 2);
        let xt = TiledVector::from_sparse(&x, 16);
        let san = Sanitizer::new();

        let mut y = vec![0.0f64; tm.m_tiles() * 16];
        let touched = AtomicWords::zeroed(tm.m_tiles().div_ceil(64));
        sanitize::begin(Some(&san), "spmspv/row-tile", 16);
        row_kernel_semiring::<PlusTimes, _>(
            &tsv_simt::backend::ModelBackend,
            &tm,
            &xt,
            &mut y,
            None,
            &touched,
            Some(&san),
        );
        assert_eq!(sanitize::barrier(Some(&san)), 0, "{:?}", san.violations());

        let mut y2 = vec![0.0f64; tm.m_tiles() * 16];
        let touched2 = AtomicWords::zeroed(tm.m_tiles().div_ceil(64));
        let mut contribs = Vec::new();
        sanitize::begin(Some(&san), "spmspv/col-tile", 16);
        col_kernel_semiring::<PlusTimes, _>(
            &tsv_simt::backend::ModelBackend,
            &tm,
            &xt,
            &mut y2,
            None,
            &mut contribs,
            &touched2,
            Some(&san),
        );
        assert_eq!(sanitize::barrier(Some(&san)), 0, "{:?}", san.violations());

        assert!(san.summary().accesses > 0, "the shadow log saw the launch");
        // Row- and column-driven kernels fold in different orders, so they
        // agree to rounding, not bitwise.
        for (i, (&a, &b)) in y.iter().zip(&y2).enumerate() {
            assert!((a - b).abs() < 1e-9, "row {i}: {a} vs {b}");
        }
    }

    #[test]
    fn drain_touched_sorts_and_clears() {
        let mut t = AtomicWords::zeroed(3);
        t.fetch_or(2, 1 << 5);
        t.fetch_or(0, 1 << 63);
        t.fetch_or(0, 1 << 0);
        let mut out = Vec::new();
        drain_touched(&mut t, &mut out);
        assert_eq!(out, vec![0, 63, 133]);
        assert_eq!(t.to_vec(), vec![0, 0, 0]);
    }
}
