//! The tiled sparse vector of Fig. 3: `x_ptr` + `x_tile`.
//!
//! The vector of length `n` is cut into `⌈n/nt⌉` tiles; empty tiles are
//! dropped and the surviving ones stored densely and contiguously.
//! `x_ptr[t]` is `-1` for an empty tile, otherwise the slot of tile `t` in
//! `x_tile`, so element `i` is found in O(1) as
//! `x_tile[x_ptr[i / nt] * nt + i % nt]`.

use tsv_sparse::SparseVector;

/// A sparse vector in the paper's tiled physical layout.
#[derive(Debug, Clone, PartialEq)]
pub struct TiledVector {
    n: usize,
    nt: usize,
    x_ptr: Vec<i32>,
    x_tile: Vec<f64>,
}

impl TiledVector {
    /// Builds the tiled layout from a logical sparse vector.
    pub fn from_sparse(x: &SparseVector<f64>, nt: usize) -> Self {
        assert!(nt > 0, "tile length must be positive");
        let n = x.len();
        let n_tiles = n.div_ceil(nt);
        let mut x_ptr = vec![-1i32; n_tiles];

        // First pass: mark and enumerate non-empty tiles in order (Fig. 3:
        // "the rest tiles are marked as 0, 1, 2, ...").
        let mut slots = 0i32;
        for &i in x.indices() {
            let t = i as usize / nt;
            if x_ptr[t] < 0 {
                x_ptr[t] = slots;
                slots += 1;
            }
        }

        // Second pass: scatter values into their dense tile payloads.
        let mut x_tile = vec![0.0f64; slots as usize * nt];
        for (i, v) in x.iter() {
            let slot = x_ptr[i / nt];
            debug_assert!(slot >= 0);
            x_tile[slot as usize * nt + i % nt] = v;
        }
        TiledVector {
            n,
            nt,
            x_ptr,
            x_tile,
        }
    }

    /// An empty tiled vector of logical length `n`.
    pub fn zeros(n: usize, nt: usize) -> Self {
        assert!(nt > 0);
        TiledVector {
            n,
            nt,
            x_ptr: vec![-1; n.div_ceil(nt)],
            x_tile: Vec::new(),
        }
    }

    /// Logical vector length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Tile edge length `nt`.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Number of vector tiles (`⌈n/nt⌉`).
    pub fn n_tiles(&self) -> usize {
        self.x_ptr.len()
    }

    /// Number of non-empty tiles actually stored.
    pub fn stored_tiles(&self) -> usize {
        self.x_tile.len() / self.nt
    }

    /// The tile index array (`-1` marks an empty tile).
    pub fn x_ptr(&self) -> &[i32] {
        &self.x_ptr
    }

    /// The dense payloads of the non-empty tiles, `nt` values each.
    pub fn x_tile(&self) -> &[f64] {
        &self.x_tile
    }

    /// The payload of vector tile `t`, or `None` when the tile is empty —
    /// the O(1) lookup the TileSpMSpV kernel performs per matrix tile.
    #[inline]
    pub fn tile(&self, t: usize) -> Option<&[f64]> {
        let slot = self.x_ptr[t];
        if slot < 0 {
            None
        } else {
            let s = slot as usize * self.nt;
            Some(&self.x_tile[s..s + self.nt])
        }
    }

    /// O(1) element access (implicit zeros included).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        assert!(i < self.n, "index {i} out of bounds for length {}", self.n);
        match self.x_ptr[i / self.nt] {
            s if s < 0 => 0.0,
            s => self.x_tile[s as usize * self.nt + i % self.nt],
        }
    }

    /// Converts back to the logical compressed form, dropping zeros.
    pub fn to_sparse(&self) -> SparseVector<f64> {
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for (t, &slot) in self.x_ptr.iter().enumerate() {
            if slot < 0 {
                continue;
            }
            let base = t * self.nt;
            let payload = &self.x_tile[slot as usize * self.nt..(slot as usize + 1) * self.nt];
            for (k, &v) in payload.iter().enumerate() {
                if v != 0.0 && base + k < self.n {
                    indices.push((base + k) as u32);
                    vals.push(v);
                }
            }
        }
        SparseVector::from_parts(self.n, indices, vals)
            .expect("tile order yields sorted unique indices")
    }

    /// Fraction of vector tiles that are non-empty — the quantity that
    /// bounds TileSpMSpV's work.
    pub fn tile_occupancy(&self) -> f64 {
        if self.x_ptr.is_empty() {
            0.0
        } else {
            self.stored_tiles() as f64 / self.n_tiles() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example of Fig. 3: length 16, nt = 4, five nonzeros placed so
    /// tiles 1 and 3 are empty.
    fn figure3_vector() -> SparseVector<f64> {
        SparseVector::from_entries(
            16,
            vec![(0, 1.0), (2, 2.0), (3, 3.0), (8, 4.0), (10, 5.0)],
        )
        .unwrap()
    }

    #[test]
    fn figure3_layout() {
        let t = TiledVector::from_sparse(&figure3_vector(), 4);
        assert_eq!(t.x_ptr(), &[0, -1, 1, -1]);
        assert_eq!(t.stored_tiles(), 2);
        assert_eq!(t.x_tile(), &[1.0, 0.0, 2.0, 3.0, 4.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn o1_lookup_formula() {
        let t = TiledVector::from_sparse(&figure3_vector(), 4);
        for i in 0..16 {
            let expect = figure3_vector().get(i).unwrap_or(0.0);
            assert_eq!(t.get(i), expect, "element {i}");
        }
    }

    #[test]
    fn tile_access() {
        let t = TiledVector::from_sparse(&figure3_vector(), 4);
        assert_eq!(t.tile(0), Some(&[1.0, 0.0, 2.0, 3.0][..]));
        assert_eq!(t.tile(1), None);
        assert_eq!(t.tile(2), Some(&[4.0, 0.0, 5.0, 0.0][..]));
    }

    #[test]
    fn roundtrip_to_sparse() {
        let x = figure3_vector();
        let t = TiledVector::from_sparse(&x, 4);
        assert_eq!(t.to_sparse(), x);
    }

    #[test]
    fn ragged_tail_tile() {
        // Length 10 with nt = 4: three tiles, last covers only 2 elements.
        let x = SparseVector::from_entries(10, vec![(9, 7.0)]).unwrap();
        let t = TiledVector::from_sparse(&x, 4);
        assert_eq!(t.n_tiles(), 3);
        assert_eq!(t.x_ptr(), &[-1, -1, 0]);
        assert_eq!(t.get(9), 7.0);
        assert_eq!(t.to_sparse(), x);
    }

    #[test]
    fn zeros_vector() {
        let t = TiledVector::zeros(20, 8);
        assert_eq!(t.n_tiles(), 3);
        assert_eq!(t.stored_tiles(), 0);
        assert_eq!(t.get(13), 0.0);
        assert_eq!(t.to_sparse().nnz(), 0);
        assert_eq!(t.tile_occupancy(), 0.0);
    }

    #[test]
    fn occupancy_fraction() {
        let t = TiledVector::from_sparse(&figure3_vector(), 4);
        assert!((t.tile_occupancy() - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let t = TiledVector::zeros(10, 4);
        t.get(10);
    }
}
