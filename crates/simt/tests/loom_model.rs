//! loom model checking for the atomic merge primitives the native
//! backend runs concurrently.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; the harness is empty in
//! ordinary builds. Each test wraps its body in [`loom::model`], which
//! exhaustively explores the thread interleavings of the loom-backed
//! atomics in [`tsv_simt::atomic`] — the same code paths the native
//! backend's semiring merges and the workspace pool handoff execute in
//! production. Thread counts stay at two and the data tiny: loom's state
//! space is exponential in both.
//!
//! Run with:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test --release -p tsv-simt --test loom_model
//! ```
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use tsv_simt::atomic::{AtomicF64s, AtomicWords};

/// The BFS frontier merge: two warps `atomicOr` different bits into the
/// same output word. Idempotent-or is the analyzer's `Proved` case for
/// overlapping atomics — every interleaving must land the full union.
#[test]
fn frontier_or_merge_is_complete_under_every_interleaving() {
    loom::model(|| {
        let w = Arc::new(AtomicWords::zeroed(1));
        let a = Arc::clone(&w);
        let b = Arc::clone(&w);
        let ta = thread::spawn(move || {
            a.fetch_or(0, 0b0011);
        });
        let tb = thread::spawn(move || {
            b.fetch_or(0, 0b1100);
        });
        ta.join().unwrap();
        tb.join().unwrap();
        assert_eq!(w.load(0), 0b1111);
    });
}

/// The PlusTimes semiring merge: two warps CAS-add partial products into
/// one slot. The addends sum exactly in either order, so every
/// interleaving must produce the bit-identical total — the property the
/// schedule-permutation replay checks statistically and loom proves.
#[test]
fn cas_add_merge_is_bit_identical_under_every_interleaving() {
    loom::model(|| {
        let v = Arc::new(AtomicF64s::zeroed(1));
        let a = Arc::clone(&v);
        let b = Arc::clone(&v);
        let ta = thread::spawn(move || a.add(0, 1.0));
        let tb = thread::spawn(move || b.add(0, 2.0));
        ta.join().unwrap();
        tb.join().unwrap();
        assert_eq!(v.load(0).to_bits(), 3.0f64.to_bits());
    });
}

/// The workspace pool handoff: the host thread stages a previous
/// frontier into a pooled accumulator with exclusive access
/// (`load_from`), hands it to two merging warps, then reads the result
/// back after join. Verifies the exclusive-phase stores are visible to
/// the spawned threads and the merged state is visible after join, for
/// every interleaving of the concurrent phase.
#[test]
fn pool_handoff_publishes_staged_state_and_merged_result() {
    loom::model(|| {
        let mut staged = AtomicWords::zeroed(2);
        staged.load_from(&[0b1, 0]);
        let w = Arc::new(staged);
        let a = Arc::clone(&w);
        let b = Arc::clone(&w);
        let ta = thread::spawn(move || {
            a.fetch_or(0, 0b10);
        });
        let tb = thread::spawn(move || {
            b.fetch_or(1, 0b1);
        });
        ta.join().unwrap();
        tb.join().unwrap();
        let mut out = vec![0u64; 2];
        w.copy_into(&mut out);
        assert_eq!(out, vec![0b11, 0b1]);
    });
}
