//! The CSR-form TileSpMSpV kernel (Algorithm 4).
//!
//! One warp per row tile. For each stored tile of the row tile the warp
//! reads the tile's column-tile id, resolves the matching vector tile in
//! O(1) via `x_ptr`, and — only when that vector tile is non-empty — loads
//! it (the paper stages it in shared memory) and accumulates the tile-local
//! products into the row tile's private slice of `y`. Because a row tile
//! owns its `nt` output rows, no atomics are needed.

use super::generic::row_kernel_semiring;
use crate::semiring::PlusTimes;
use crate::tile::{TileMatrix, TiledVector};
use tsv_simt::atomic::AtomicWords;
use tsv_simt::stats::KernelStats;

/// Runs the row-tile kernel; returns `y` padded to `m_tiles * nt` and the
/// work counters.
///
/// This is the one-shot `(+, ×)` form of
/// [`row_kernel_semiring`](super::generic::row_kernel_semiring); the
/// traversal, accumulation order and work counters are identical.
pub fn row_kernel(a: &TileMatrix, x: &TiledVector) -> (Vec<f64>, KernelStats) {
    let nt = a.nt();
    let mut y = vec![0.0f64; a.m_tiles() * nt];
    let touched = AtomicWords::zeroed(a.m_tiles().div_ceil(64));
    let stats = row_kernel_semiring::<PlusTimes, _>(
        &tsv_simt::backend::ModelBackend,
        a,
        x,
        &mut y,
        None,
        &touched,
        None,
    );
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{TileConfig, TileSize};
    use tsv_sparse::gen::{banded, random_sparse_vector};
    use tsv_sparse::reference::spmspv_row;
    use tsv_sparse::SparseVector;

    #[test]
    fn kernel_matches_reference_padded() {
        let a = banded(100, 5, 0.8, 1).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let x = random_sparse_vector(100, 0.2, 1);
        let xt = TiledVector::from_sparse(&x, 16);
        let (y, stats) = row_kernel(&tm, &xt);
        assert_eq!(y.len(), tm.m_tiles() * 16);
        let expect = spmspv_row(&a, &x).unwrap().to_dense();
        for i in 0..100 {
            assert!((y[i] - expect[i]).abs() < 1e-9, "row {i}");
        }
        // Padding stays zero.
        assert!(y[100..].iter().all(|&v| v == 0.0));
        assert_eq!(stats.warps as usize, tm.m_tiles());
    }

    #[test]
    fn empty_x_tiles_are_skipped() {
        // x empty → every tile skipped → only header reads counted.
        let a = banded(160, 5, 0.8, 2).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let empty = TiledVector::from_sparse(&SparseVector::zeros(160), 16);
        let (y, stats) = row_kernel(&tm, &empty);
        assert!(y.iter().all(|&v| v == 0.0));
        assert_eq!(stats.flops, 0);
        // 8 bytes of header per stored tile.
        assert_eq!(stats.gmem_read_bytes, 8 * tm.num_tiles() as u64);
    }

    #[test]
    fn zero_sized_matrix() {
        let a = tsv_sparse::CsrMatrix::<f64>::zeros(0, 0);
        let tm = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let xt = TiledVector::zeros(0, 16);
        let (y, stats) = row_kernel(&tm, &xt);
        assert!(y.is_empty());
        assert_eq!(stats.warps, 0);
    }
}
