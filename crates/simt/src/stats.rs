//! Work counters collected by every kernel.
//!
//! Each warp accumulates counts locally (no synchronization on the hot
//! path); [`crate::grid::launch`] sums them across the grid. The counters
//! feed the [`crate::model`] roofline and are also handy assertions in
//! tests ("the tiled kernel must touch fewer bytes than the dense one").

/// Aggregated work performed by one kernel launch (or one warp).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Bytes read from global memory.
    pub gmem_read_bytes: u64,
    /// Bytes written to global memory.
    pub gmem_write_bytes: u64,
    /// The subset of the traffic above that is *scattered* (random
    /// single-word accesses). GPUs move such bytes at a fraction of peak
    /// bandwidth (32-byte minimum sectors, no coalescing); the time model
    /// charges them at `bandwidth / 4`.
    pub gmem_scattered_bytes: u64,
    /// Atomic read-modify-write operations on global memory.
    pub atomics: u64,
    /// Floating-point operations (one fused multiply-add counts as two).
    pub flops: u64,
    /// Bitwise semiring operations (AND/OR words in the BFS kernels).
    pub bitops: u64,
    /// Warps that executed.
    pub warps: u64,
    /// Lane-iterations executed (a measure of occupancy/divergence).
    pub lane_steps: u64,
}

impl KernelStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total global memory traffic in bytes.
    pub fn gmem_bytes(&self) -> u64 {
        self.gmem_read_bytes + self.gmem_write_bytes
    }

    /// Records a global read of `n` bytes.
    #[inline]
    pub fn read(&mut self, n: usize) {
        self.gmem_read_bytes += n as u64;
    }

    /// Records a global write of `n` bytes.
    #[inline]
    pub fn write(&mut self, n: usize) {
        self.gmem_write_bytes += n as u64;
    }

    /// Records a scattered (uncoalesced) global read of `n` bytes.
    #[inline]
    pub fn read_scattered(&mut self, n: usize) {
        self.gmem_read_bytes += n as u64;
        self.gmem_scattered_bytes += n as u64;
    }

    /// Records a scattered (uncoalesced) global write of `n` bytes.
    #[inline]
    pub fn write_scattered(&mut self, n: usize) {
        self.gmem_write_bytes += n as u64;
        self.gmem_scattered_bytes += n as u64;
    }

    /// Records `n` atomic operations.
    #[inline]
    pub fn atomic(&mut self, n: usize) {
        self.atomics += n as u64;
    }

    /// Records `n` floating point operations.
    #[inline]
    pub fn flop(&mut self, n: usize) {
        self.flops += n as u64;
    }

    /// Records `n` bitwise semiring word operations.
    #[inline]
    pub fn bitop(&mut self, n: usize) {
        self.bitops += n as u64;
    }

    /// Merges another counter set into this one.
    #[inline]
    pub fn merge(&mut self, other: &Self) {
        self.gmem_read_bytes += other.gmem_read_bytes;
        self.gmem_write_bytes += other.gmem_write_bytes;
        self.gmem_scattered_bytes += other.gmem_scattered_bytes;
        self.atomics += other.atomics;
        self.flops += other.flops;
        self.bitops += other.bitops;
        self.warps += other.warps;
        self.lane_steps += other.lane_steps;
    }
}

impl std::ops::Add for KernelStats {
    type Output = Self;

    fn add(mut self, rhs: Self) -> Self {
        self.merge(&rhs);
        self
    }
}

impl std::ops::AddAssign for KernelStats {
    fn add_assign(&mut self, rhs: Self) {
        self.merge(&rhs);
    }
}

impl std::iter::Sum for KernelStats {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = KernelStats::new();
        s.read(100);
        s.write(24);
        s.atomic(3);
        s.flop(8);
        s.bitop(2);
        assert_eq!(s.gmem_bytes(), 124);
        assert_eq!(s.atomics, 3);
        assert_eq!(s.flops, 8);
        assert_eq!(s.bitops, 2);
        assert_eq!(s.gmem_scattered_bytes, 0);
    }

    #[test]
    fn scattered_traffic_counts_in_both_totals() {
        let mut s = KernelStats::new();
        s.read_scattered(8);
        s.write_scattered(4);
        s.read(100);
        assert_eq!(s.gmem_read_bytes, 108);
        assert_eq!(s.gmem_write_bytes, 4);
        assert_eq!(s.gmem_scattered_bytes, 12);

        let mut t = KernelStats::new();
        t.read_scattered(10);
        s.merge(&t);
        assert_eq!(s.gmem_scattered_bytes, 22);
    }

    #[test]
    fn add_and_sum_merge_fields() {
        let mut a = KernelStats::new();
        a.read(10);
        a.warps = 2;
        let mut b = KernelStats::new();
        b.write(5);
        b.warps = 3;
        let c = a + b;
        assert_eq!(c.gmem_read_bytes, 10);
        assert_eq!(c.gmem_write_bytes, 5);
        assert_eq!(c.warps, 5);

        let total: KernelStats = vec![a, b, c].into_iter().sum();
        assert_eq!(total.warps, 10);
        assert_eq!(total.gmem_bytes(), 30);
    }
}
