//! MatrixMarket coordinate-format I/O.
//!
//! The paper evaluates on the SuiteSparse Matrix Collection, which ships in
//! this format. The reproduction uses synthetic analogs by default, but all
//! harness binaries accept `.mtx` files so the real collection can be used
//! when it is on disk.
//!
//! Supported: `matrix coordinate (real|integer|pattern) (general|symmetric)`.
//! Pattern entries get value 1.0; symmetric files are expanded to general
//! storage on read.

use crate::coo::CooMatrix;
use crate::error::SparseError;
use crate::Result;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a MatrixMarket file from disk.
pub fn read_matrix_market(path: &Path) -> Result<CooMatrix<f64>> {
    let file = std::fs::File::open(path)?;
    read_matrix_market_from(BufReader::new(file))
}

/// Parses MatrixMarket data from any reader.
pub fn read_matrix_market_from<R: Read>(reader: R) -> Result<CooMatrix<f64>> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    let header = loop {
        match lines.next() {
            Some(line) => {
                lineno += 1;
                let line = line?;
                if !line.trim().is_empty() {
                    break line;
                }
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    msg: "empty file".to_string(),
                })
            }
        }
    };

    let (field, symmetry) = parse_header(&header, lineno)?;

    // Skip comments, find the size line.
    let size_line = loop {
        match lines.next() {
            Some(line) => {
                lineno += 1;
                let line = line?;
                let t = line.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break line;
            }
            None => {
                return Err(SparseError::Parse {
                    line: lineno,
                    msg: "missing size line".to_string(),
                })
            }
        }
    };

    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(SparseError::Parse {
            line: lineno,
            msg: format!("size line needs `rows cols nnz`, got {size_line:?}"),
        });
    }
    let nrows: usize = parse_num(dims[0], lineno)?;
    let ncols: usize = parse_num(dims[1], lineno)?;
    let nnz: usize = parse_num(dims[2], lineno)?;

    let cap = if symmetry == Symmetry::Symmetric {
        nnz * 2
    } else {
        nnz
    };
    let mut coo = CooMatrix::with_capacity(nrows, ncols, cap);
    let mut seen = 0usize;
    for line in lines {
        lineno += 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let r: usize = parse_num(
            parts.next().ok_or_else(|| SparseError::Parse {
                line: lineno,
                msg: "missing row index".to_string(),
            })?,
            lineno,
        )?;
        let c: usize = parse_num(
            parts.next().ok_or_else(|| SparseError::Parse {
                line: lineno,
                msg: "missing column index".to_string(),
            })?,
            lineno,
        )?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse {
                line: lineno,
                msg: "MatrixMarket indices are 1-based; found 0".to_string(),
            });
        }
        let v = match field {
            Field::Pattern => 1.0,
            Field::Real | Field::Integer => {
                let tok = parts.next().ok_or_else(|| SparseError::Parse {
                    line: lineno,
                    msg: "missing value".to_string(),
                })?;
                tok.parse::<f64>().map_err(|e| SparseError::Parse {
                    line: lineno,
                    msg: format!("bad value {tok:?}: {e}"),
                })?
            }
        };
        coo.try_push(r - 1, c - 1, v)?;
        if symmetry == Symmetry::Symmetric && r != c {
            coo.try_push(c - 1, r - 1, v)?;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(SparseError::Parse {
            line: lineno,
            msg: format!("header declared {nnz} entries but file contains {seen}"),
        });
    }
    Ok(coo)
}

fn parse_header(header: &str, lineno: usize) -> Result<(Field, Symmetry)> {
    let toks: Vec<String> = header.split_whitespace().map(str::to_lowercase).collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(SparseError::Parse {
            line: lineno,
            msg: format!("bad MatrixMarket banner: {header:?}"),
        });
    }
    if toks[2] != "coordinate" {
        return Err(SparseError::Parse {
            line: lineno,
            msg: format!("only coordinate format is supported, got {:?}", toks[2]),
        });
    }
    let field = match toks[3].as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                msg: format!("unsupported field type {other:?}"),
            })
        }
    };
    let symmetry = match toks[4].as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(SparseError::Parse {
                line: lineno,
                msg: format!("unsupported symmetry {other:?}"),
            })
        }
    };
    Ok((field, symmetry))
}

fn parse_num(tok: &str, lineno: usize) -> Result<usize> {
    // SuiteSparse files occasionally write integer fields as floats.
    if let Ok(v) = tok.parse::<usize>() {
        return Ok(v);
    }
    if let Ok(f) = tok.parse::<f64>() {
        if f >= 0.0 && f.fract() == 0.0 {
            return Ok(f as usize);
        }
    }
    Err(SparseError::Parse {
        line: lineno,
        msg: format!("expected a non-negative integer, got {tok:?}"),
    })
}

/// Reads a SNAP-style edge list: one `u v` pair of 0-based vertex ids per
/// line, `#` comments ignored. The graph order is `max id + 1` (or the
/// explicit `n` when given, which also validates ids). `symmetric` adds
/// the reverse of every edge; self-loops are kept as-is; edge values are
/// 1.0. This is the distribution format of the SNAP collection the road
/// and social matrices of the paper originate from.
pub fn read_edge_list<R: Read>(
    reader: R,
    n: Option<usize>,
    symmetric: bool,
) -> Result<CooMatrix<f64>> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    let mut lineno = 0usize;
    for line in BufReader::new(reader).lines() {
        lineno += 1;
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let u: u32 = parse_num(
            parts.next().ok_or_else(|| SparseError::Parse {
                line: lineno,
                msg: "missing source id".to_string(),
            })?,
            lineno,
        )? as u32;
        let v: u32 = parse_num(
            parts.next().ok_or_else(|| SparseError::Parse {
                line: lineno,
                msg: "missing target id".to_string(),
            })?,
            lineno,
        )? as u32;
        max_id = max_id.max(u).max(v);
        edges.push((u, v));
    }
    let order = match n {
        Some(n) => {
            if !edges.is_empty() && max_id as usize >= n {
                return Err(SparseError::IndexOutOfBounds {
                    row: max_id as usize,
                    col: max_id as usize,
                    nrows: n,
                    ncols: n,
                });
            }
            n
        }
        None => {
            if edges.is_empty() {
                0
            } else {
                max_id as usize + 1
            }
        }
    };
    let mut coo =
        CooMatrix::with_capacity(order, order, edges.len() * if symmetric { 2 } else { 1 });
    for (u, v) in edges {
        coo.push(u as usize, v as usize, 1.0);
        if symmetric && u != v {
            coo.push(v as usize, u as usize, 1.0);
        }
    }
    coo.sum_duplicates();
    Ok(coo)
}

/// Writes a matrix as `matrix coordinate real general`.
pub fn write_matrix_market(path: &Path, m: &CooMatrix<f64>) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_matrix_market_to(BufWriter::new(file), m)
}

/// Serializes into any writer.
pub fn write_matrix_market_to<W: Write>(mut w: W, m: &CooMatrix<f64>) -> Result<()> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {}", r + 1, c + 1, v)?;
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<CooMatrix<f64>> {
        read_matrix_market_from(s.as_bytes())
    }

    #[test]
    fn parses_general_real() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real general\n\
             % a comment\n\
             3 3 2\n\
             1 1 2.5\n\
             3 2 -1\n",
        )
        .unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 2);
        let t: Vec<_> = m.iter().collect();
        assert_eq!(t, vec![(0, 0, 2.5), (2, 1, -1.0)]);
    }

    #[test]
    fn expands_symmetric() {
        let m = parse(
            "%%MatrixMarket matrix coordinate real symmetric\n\
             2 2 2\n\
             1 1 1.0\n\
             2 1 3.0\n",
        )
        .unwrap();
        // Off-diagonal mirrored, diagonal not duplicated.
        assert_eq!(m.nnz(), 3);
        let d = m.to_dense();
        assert_eq!(d, vec![1.0, 3.0, 3.0, 0.0]);
    }

    #[test]
    fn pattern_entries_get_unit_value() {
        let m = parse(
            "%%MatrixMarket matrix coordinate pattern general\n\
             2 2 1\n\
             1 2\n",
        )
        .unwrap();
        assert_eq!(m.iter().next(), Some((0, 1, 1.0)));
    }

    #[test]
    fn rejects_bad_banner() {
        assert!(matches!(
            parse("%%NotMatrixMarket nope\n1 1 0\n"),
            Err(SparseError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_array_format() {
        assert!(parse("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n").is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 5\n").is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let e = parse("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 5\n");
        assert!(matches!(e, Err(SparseError::Parse { .. })));
    }

    #[test]
    fn rejects_out_of_bounds_entry() {
        let e = parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n9 1 5\n");
        assert!(e.is_err());
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = CooMatrix::new(3, 4);
        m.push(0, 3, 1.25);
        m.push(2, 0, -9.0);
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &m).unwrap();
        let back = read_matrix_market_from(&buf[..]).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn edge_list_basic_and_symmetric() {
        let data = "# SNAP-ish comment\n0 1\n1 2\n2 0\n";
        let m = read_edge_list(data.as_bytes(), None, false).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.nnz(), 3);

        let s = read_edge_list(data.as_bytes(), None, true).unwrap();
        assert_eq!(s.nnz(), 6);
        assert!(s.to_csr().is_symmetric());
    }

    #[test]
    fn edge_list_dedups_and_keeps_self_loops() {
        let data = "0 1\n0 1\n2 2\n";
        let m = read_edge_list(data.as_bytes(), None, true).unwrap();
        // (0,1) duplicated collapses; self-loop (2,2) stays single.
        let csr = m.to_csr();
        assert!(csr.get(0, 1).is_some());
        assert!(csr.get(2, 2).is_some());
        assert_eq!(csr.nnz(), 3);
    }

    #[test]
    fn edge_list_explicit_order_validates_ids() {
        let data = "0 9\n";
        assert!(read_edge_list(data.as_bytes(), Some(5), false).is_err());
        let ok = read_edge_list(data.as_bytes(), Some(20), false).unwrap();
        assert_eq!(ok.nrows(), 20);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list(b"0\n".as_slice(), None, false).is_err());
        assert!(read_edge_list(b"a b\n".as_slice(), None, false).is_err());
        let empty = read_edge_list(b"# only comments\n".as_slice(), None, false).unwrap();
        assert_eq!(empty.nnz(), 0);
    }

    #[test]
    fn integer_field_and_float_sizes_accepted() {
        let m = parse(
            "%%MatrixMarket matrix coordinate integer general\n\
             2 2 1\n\
             2 2 7\n",
        )
        .unwrap();
        assert_eq!(m.iter().next(), Some((1, 1, 7.0)));
    }
}
