//! `tsv` — inspect, convert, multiply and traverse sparse matrices with
//! the tiled algorithms.
//!
//! ```text
//! tsv info    <matrix>
//! tsv spmspv  <matrix> [--sparsity S] [--seed N] [--kernel auto|row|col]
//!             [--balance direct|binned[:target[:split]]]
//!             [--format tilecsr|sell[:C[:sigma]]]
//!             [--backend model|native[:threads]] [--batch K]
//!             [--sanitize] [--verify-plan]
//!             [--trace-out F] [--metrics-out F] [--report]
//! tsv bfs     <matrix> [--source V] [--algo tile|gunrock|gswitch|enterprise]
//!             [--format tilecsr|sell[:C]]
//!             [--backend model|native[:threads]] [--sanitize] [--verify-plan]
//!             [--trace-out F] [--metrics-out F] [--report]
//! tsv convert <in> <out.mtx>
//!
//! `--backend` selects the execution substrate: `model` (the default)
//! runs the kernels on the modeled SIMT grid with work counters;
//! `native[:threads]` runs the same tile kernels as real parallel code on
//! a rayon thread pool. PlusTimes results are bit-identical across
//! backends and thread counts.
//!
//! `--batch K` multiplies `K` random frontiers (seeds `seed..seed+K`)
//! through the batched multi-frontier engine in one shared tile
//! traversal, printing per-lane rows; the row-tile kernel only, so it
//! rejects `--kernel col`.
//!
//! `--sanitize` runs every kernel launch under the race sanitizer; any
//! write-write or read-write conflict between warps not mediated by an
//! atomic is reported and the command exits nonzero. The sanitizer
//! replays modeled warp schedules, so it requires `--backend model`.
//!
//! `--verify-plan` runs the plan-time static race verifier before any
//! kernel launches: it extracts symbolic read/write footprints for every
//! launch shape the plan may run and discharges write-disjointness,
//! merge-determinism and workspace-aliasing obligations, printing a
//! per-obligation verdict (`proved`, `needs-atomics` or `unknown`).
//! Malformed launch geometry is reported as an error instead of a
//! mid-kernel panic. Works on every backend — the proof is about the
//! plan, not the substrate.
//!
//! `--trace-out F` writes a Chrome Trace Format document to `F` (open in
//! Perfetto / chrome://tracing) and a machine-readable run summary to
//! `F` with extension `.summary.json`. If the trace ring overflowed, the
//! summary's `trace.events_dropped` counts the evicted spans and a
//! warning is printed on stderr.
//!
//! `--metrics-out F` dumps the process-wide metrics registry (kernel
//! launches, per-phase latency histograms, workspace high-water gauges,
//! dispatch occupancy) as Prometheus text exposition to `F`.
//!
//! `--report` appends a roofline utilization table: each kernel's
//! achieved memory bandwidth and flop rate as fractions of the device
//! peaks, and whether the cost model says it is memory-, compute-,
//! atomic- or overhead-bound.
//!
//! <matrix>: a .mtx file, `suite:<name>[:scale]`, or `gen:<family>:<n>[...]`
//! (see `tsv_cli::source`).
//! ```

use tsv_cli::{
    cmd_bfs, cmd_info, cmd_spmspv, load_matrix, parse_backend, parse_balance, parse_format,
    CliError,
};
use tsv_core::spmspv::{Balance, KernelChoice, SpvFormat};
use tsv_simt::ExecBackend;

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), CliError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return Err(CliError::Usage(USAGE.into()));
    };
    match cmd.as_str() {
        "info" => {
            let spec = args.get(1).ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let a = load_matrix(spec)?;
            print!("{}", cmd_info(&a));
        }
        "spmspv" => {
            let spec = args.get(1).ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let a = load_matrix(spec)?;
            let sparsity = flag_f64(&args, "--sparsity")?.unwrap_or(0.01);
            let seed = flag_f64(&args, "--seed")?.unwrap_or(1.0) as u64;
            let kernel = match flag_str(&args, "--kernel").as_deref() {
                None | Some("auto") => KernelChoice::Auto,
                Some("row") => KernelChoice::RowTile,
                Some("col") => KernelChoice::ColTile,
                Some(other) => {
                    return Err(CliError::Usage(format!(
                        "unknown kernel {other:?} (auto|row|col)"
                    )))
                }
            };
            let balance = match flag_str(&args, "--balance") {
                None => Balance::default(),
                Some(spec) => parse_balance(&spec)?,
            };
            let format = match flag_str(&args, "--format") {
                None => SpvFormat::default(),
                Some(spec) => parse_format(&spec)?,
            };
            let backend = match flag_str(&args, "--backend") {
                None => ExecBackend::default(),
                Some(spec) => parse_backend(&spec)?,
            };
            let batch = match flag_str(&args, "--batch") {
                None => 0,
                Some(v) => v.parse::<usize>().ok().filter(|&b| b > 0).ok_or_else(|| {
                    CliError::Usage(format!("--batch needs a positive integer, got {v:?}"))
                })?,
            };
            let sanitize = flag_set(&args, "--sanitize");
            let verify_plan = flag_set(&args, "--verify-plan");
            let trace_out = flag_str(&args, "--trace-out").map(std::path::PathBuf::from);
            let metrics_out = flag_str(&args, "--metrics-out").map(std::path::PathBuf::from);
            let report = flag_set(&args, "--report");
            print!(
                "{}",
                cmd_spmspv(
                    &a,
                    sparsity,
                    seed,
                    kernel,
                    balance,
                    format,
                    backend,
                    batch,
                    sanitize,
                    trace_out.as_deref(),
                    metrics_out.as_deref(),
                    report,
                    verify_plan,
                )?
            );
        }
        "bfs" => {
            let spec = args.get(1).ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let a = load_matrix(spec)?;
            let source = flag_f64(&args, "--source")?.unwrap_or(0.0) as usize;
            let algo = flag_str(&args, "--algo").unwrap_or_else(|| "tile".into());
            let format = match flag_str(&args, "--format") {
                None => SpvFormat::default(),
                Some(spec) => parse_format(&spec)?,
            };
            let backend = match flag_str(&args, "--backend") {
                None => ExecBackend::default(),
                Some(spec) => parse_backend(&spec)?,
            };
            let sanitize = flag_set(&args, "--sanitize");
            let verify_plan = flag_set(&args, "--verify-plan");
            let trace_out = flag_str(&args, "--trace-out").map(std::path::PathBuf::from);
            let metrics_out = flag_str(&args, "--metrics-out").map(std::path::PathBuf::from);
            let report = flag_set(&args, "--report");
            print!(
                "{}",
                cmd_bfs(
                    &a,
                    source,
                    &algo,
                    format,
                    backend,
                    sanitize,
                    trace_out.as_deref(),
                    metrics_out.as_deref(),
                    report,
                    verify_plan,
                )?
            );
        }
        "convert" => {
            let spec = args.get(1).ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let out = args.get(2).ok_or_else(|| CliError::Usage(USAGE.into()))?;
            let a = load_matrix(spec)?;
            tsv_sparse::io::write_matrix_market(std::path::Path::new(out), &a.to_coo())?;
            println!(
                "wrote {} ({} x {}, {} nnz)",
                out,
                a.nrows(),
                a.ncols(),
                a.nnz()
            );
        }
        "--help" | "-h" | "help" => println!("{USAGE}"),
        other => {
            return Err(CliError::Usage(format!(
                "unknown command {other:?}\n{USAGE}"
            )))
        }
    }
    Ok(())
}

const USAGE: &str = "usage:
  tsv info    <matrix>
  tsv spmspv  <matrix> [--sparsity S] [--seed N] [--kernel auto|row|col]
              [--balance direct|binned[:target[:split]]]
              [--format tilecsr|sell[:C[:sigma]]]
              [--backend model|native[:threads]] [--batch K]
              [--sanitize] [--verify-plan]
              [--trace-out F] [--metrics-out F] [--report]
  tsv bfs     <matrix> [--source V] [--algo tile|gunrock|gswitch|enterprise]
              [--format tilecsr|sell[:C]]
              [--backend model|native[:threads]] [--sanitize] [--verify-plan]
              [--trace-out F] [--metrics-out F] [--report]
  tsv convert <matrix> <out.mtx>

--format selects the tile storage the kernels read: tilecsr
(default) or sell[:C[:sigma]] — SELL-C-σ slabs with lane-blocked,
autovectorizable inner loops (C in {4, 8}; per-tile fallback to
tile-CSR when padding exceeds the threshold). PlusTimes results are
bit-identical across formats. For bfs, sell[:C] selects the
lane-blocked pull sweep.

--backend selects the execution substrate: model (default) is the
modeled SIMT grid; native[:threads] runs the same tile kernels on a
rayon thread pool (PlusTimes results are bit-identical across both).

--batch K multiplies K random frontiers (seeds seed..seed+K) in one
shared tile traversal via the batched multi-frontier engine, printing
one row per query lane. Row-tile kernel only (rejects --kernel col);
PlusTimes lanes are bit-identical to K sequential multiplies.

--sanitize runs every kernel launch under the race sanitizer; any
write-write or read-write conflict is reported and fails the command.
It replays modeled warp schedules, so it requires --backend model.

--verify-plan runs the plan-time static race verifier before launch:
symbolic footprints per launch shape, with write-disjointness,
merge-determinism and workspace-aliasing verdicts printed per plan.
Malformed launch geometry becomes an error instead of a panic. Works
on every backend.

--trace-out writes Chrome Trace JSON to F plus a run summary to
F.summary.json (load the trace in Perfetto or chrome://tracing).

--metrics-out dumps the process-wide metrics registry (launches,
phase latencies, workspace high-water marks, dispatch occupancy) as
Prometheus text exposition to F.

--report appends a per-kernel roofline utilization table (achieved
GB/s and GFLOP/s vs device peaks, bound classification).

<matrix>: a .mtx file, suite:<name>[:tiny|small|medium], or
          gen:<family>:<n>[:<param>[:<seed>]]
          families: banded grid geometric rmat web uniform";

fn flag_set(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn flag_str(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_f64(args: &[String], name: &str) -> Result<Option<f64>, CliError> {
    match flag_str(args, name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| CliError::Usage(format!("{name} needs a number, got {v:?}"))),
    }
}
