//! Differential conformance suite: every tiled SpMSpV kernel (forced
//! row-tile, forced col-tile, with and without the COO side pass) × every
//! semiring × both balance modes × both execution backends (modeled SIMT
//! grid and native rayon pool), checked against a naive dense oracle
//! that is too simple to be wrong.
//!
//! The zoo leans on the shapes that break tiled code: orders straddling
//! the tile edge (31/32/33, 63/64/65, 127/128/129), matrices whose tiles
//! are almost all empty, single-entry matrices, empty matrices, and the
//! empty input vector.

mod common;

use common::{backends, conformance_zoo, formats, vector_zoo};
use tilespmspv::core::exec::SpMSpVEngine;
use tilespmspv::core::semiring::{MinPlus, OrAnd, PlusTimes, Semiring};
use tilespmspv::core::spmspv::{Balance, KernelChoice, SpMSpVOptions, SpvFormat};
use tilespmspv::core::tile::{SellConfig, TileConfig, TileMatrix};
use tilespmspv::simt::ExecBackend;
use tilespmspv::sparse::gen::random_sparse_vector;
use tilespmspv::sparse::{CsrMatrix, SparseVector};

/// The naive oracle: a dense gather over the stored entries. `None`
/// marks rows no product ever touched — the support the compacted
/// output must reproduce exactly.
fn dense_oracle<S: Semiring>(a: &CsrMatrix<S::T>, x: &SparseVector<S::T>) -> Vec<Option<S::T>> {
    let mut xd: Vec<Option<S::T>> = vec![None; a.ncols()];
    for (i, v) in x.iter() {
        xd[i] = Some(v);
    }
    let mut y: Vec<Option<S::T>> = vec![None; a.nrows()];
    for (r, c, v) in a.iter() {
        if let Some(xv) = xd[c] {
            let prod = S::mul(v, xv);
            y[r] = Some(match y[r] {
                None => prod,
                Some(acc) => S::add(acc, prod),
            });
        }
    }
    y
}

/// Runs one (matrix, inputs) pair through every kernel × balance mode ×
/// tiling config and diffs support and values against the oracle.
fn check_matrix<S: Semiring>(
    name: &str,
    a: &CsrMatrix<S::T>,
    xs: &[SparseVector<S::T>],
    eq: impl Fn(S::T, S::T) -> bool + Copy,
) where
    S::T: Default + std::fmt::Debug,
{
    // extract_threshold 4 pushes near-empty tiles onto the COO side pass;
    // 0 keeps everything in tiles. Both paths must agree with the oracle
    // on every execution substrate.
    let backends = backends();
    let formats = formats();
    for extract in [0usize, 4] {
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for (balance, &format) in [Balance::OneWarpPerRowTile, Balance::binned()]
                .into_iter()
                .flat_map(|b| formats.iter().map(move |f| (b, f)))
            {
                let cfg = TileConfig {
                    extract_threshold: extract,
                    ..Default::default()
                };
                let opts = SpMSpVOptions {
                    kernel,
                    balance,
                    format,
                    ..Default::default()
                };
                let mut engine = SpMSpVEngine::<S>::from_csr_with(a, cfg, opts).unwrap();
                for backend in &backends {
                    engine.set_backend(backend.clone());
                    for (si, x) in xs.iter().enumerate() {
                        let (y, _) = engine.multiply(x).unwrap();
                        let oracle = dense_oracle::<S>(a, x);
                        let support: Vec<u32> = oracle
                            .iter()
                            .enumerate()
                            .filter_map(|(i, v)| v.map(|_| i as u32))
                            .collect();
                        let ctx = format!(
                            "{name} extract={extract} {kernel:?} {balance:?} {format} backend {} input {si}",
                            backend.describe()
                        );
                        assert_eq!(y.indices(), &support[..], "{ctx}: support diverged");
                        for (i, got) in y.iter() {
                            let want = oracle[i].unwrap();
                            assert!(eq(got, want), "{ctx} row {i}: got {got:?}, want {want:?}");
                        }
                    }
                }
            }
        }
    }
}

fn bool_mirror(a: &CsrMatrix<f64>) -> CsrMatrix<bool> {
    CsrMatrix::from_parts(
        a.nrows(),
        a.ncols(),
        a.row_ptr().to_vec(),
        a.col_idx().to_vec(),
        vec![true; a.nnz()],
    )
    .unwrap()
}

fn bool_vec(x: &SparseVector<f64>) -> SparseVector<bool> {
    SparseVector::from_parts(x.len(), x.indices().to_vec(), vec![true; x.nnz()]).unwrap()
}

#[test]
fn plus_times_matches_the_dense_oracle_everywhere() {
    let mut coo_side_seen = false;
    for (name, a) in conformance_zoo() {
        check_matrix::<PlusTimes>(&name, &a, &vector_zoo(a.ncols()), |g, w| {
            (g - w).abs() < 1e-9
        });
        let cfg = TileConfig {
            extract_threshold: 4,
            ..Default::default()
        };
        coo_side_seen |= TileMatrix::from_csr(&a, cfg).unwrap().extra().nnz() > 0;
    }
    assert!(
        coo_side_seen,
        "the zoo must exercise the COO extraction side at threshold 4"
    );
}

/// The acceptance bar for the SELL slabs: on the whole zoo, PlusTimes is
/// bit-identical across {tile-CSR, SELL} × {model, native} × {1, 2, 4}
/// threads. The slab bodies fold each row in the same ascending-column
/// order as the tile-CSR walk and the permutation is undone at emit time,
/// so not a single bit may move.
#[test]
fn plus_times_is_bit_identical_across_formats_and_substrates() {
    let sell = SpvFormat::Sell(SellConfig {
        c: 8,
        sigma: 16,
        ..SellConfig::default()
    });
    for (name, a) in conformance_zoo() {
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let x = random_sparse_vector(a.ncols(), 0.08, 7);
                let run = |format: SpvFormat, backend: ExecBackend| {
                    let opts = SpMSpVOptions {
                        kernel,
                        balance,
                        format,
                        ..Default::default()
                    };
                    let mut engine =
                        SpMSpVEngine::<PlusTimes>::from_csr_with(&a, TileConfig::default(), opts)
                            .unwrap();
                    engine.set_backend(backend);
                    let (y, _) = engine.multiply(&x).unwrap();
                    (
                        y.indices().to_vec(),
                        y.values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    )
                };
                let reference = run(SpvFormat::TileCsr, ExecBackend::model());
                for format in [SpvFormat::TileCsr, sell] {
                    for threads in [None, Some(1), Some(2), Some(4)] {
                        let backend = match threads {
                            None => ExecBackend::model(),
                            Some(t) => ExecBackend::native(Some(t)),
                        };
                        let got = run(format, backend.clone());
                        assert_eq!(
                            got,
                            reference,
                            "{name} {kernel:?} {balance:?} {format} backend {}",
                            backend.describe()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn min_plus_matches_the_dense_oracle_everywhere() {
    // min is selective and each product a single addition, so permuting
    // the fold order cannot change the value: the agreement is exact.
    for (name, a) in conformance_zoo() {
        check_matrix::<MinPlus>(&name, &a, &vector_zoo(a.ncols()), |g, w| g == w);
    }
}

#[test]
fn or_and_matches_the_dense_oracle_everywhere() {
    for (name, a) in conformance_zoo() {
        let b = bool_mirror(&a);
        let xs: Vec<SparseVector<bool>> = vector_zoo(a.ncols()).iter().map(bool_vec).collect();
        check_matrix::<OrAnd>(&name, &b, &xs, |g, w| g == w);
    }
}
