//! Symbolic footprints of the TileBFS kernel shapes, fed to the
//! plan-time verifier ([`tsv_simt::analyze`]).
//!
//! The traversal's per-iteration kernel choice is data-dependent, but the
//! *set* of shapes the policy may launch is a pure function of the plan
//! (graph structure + [`KernelSet`]), so all of them are verified once,
//! up front, before the first iteration:
//!
//! * **Push-CSC** — one warp per frontier vertex; all output-word updates
//!   go through `fetch_or` (idempotent, order-independent), so the
//!   all-to-all scatter proves outright.
//! * **Push-CSR** — one warp per `(row tile, segment)`. A row tile with a
//!   single segment is owned by exactly one warp (a plain store on the
//!   GPU); split row tiles share their word via `fetch_or`. The two
//!   extents partition the segment list, which is what the mixed launch's
//!   proof rests on.
//! * **Pull-CSC** — one warp per vertex tile, each exclusively
//!   overwriting its own output word.
//! * **Extra pass** — frontier-chunked walk of extracted edges, merging
//!   with `fetch_or`.
//!
//! Buffer names match the kernels' dynamic sanitizer labels
//! (`y-frontier`, `y-words`, `mask`, `unvisited`).

use super::policy::KernelSet;
use super::TileBfsGraph;
use tsv_simt::analyze::{
    self, chunked, scatter_units, shared, worklisted, AccessMode, AtomicKind, LaunchSummary,
    PlanError, PlanReport,
};

/// The push-CSC launch: idempotent atomic scatter over the frontier words.
fn push_csc_launch(n_tiles: usize) -> LaunchSummary {
    LaunchSummary {
        label: "bfs/push-csc".to_string(),
        uses: vec![
            shared("mask", AccessMode::Read, n_tiles),
            shared(
                "y-frontier",
                AccessMode::Atomic(AtomicKind::IdempotentOr),
                n_tiles,
            ),
        ],
        merge: None,
    }
}

/// The push-CSR launch: single-segment row tiles exclusively own their
/// output word (plain store), split row tiles share theirs atomically.
fn push_csr_launch(g: &TileBfsGraph) -> Result<LaunchSummary, PlanError> {
    let n_tiles = g.bit().n_tiles();
    let mut single = Vec::new();
    let mut split = Vec::new();
    let segments = g.csr_segments();
    let mut i = 0;
    while i < segments.len() {
        let rt = segments[i].0;
        let mut j = i + 1;
        while j < segments.len() && segments[j].0 == rt {
            j += 1;
        }
        if j - i == 1 {
            single.push(rt);
        } else {
            split.push(rt);
        }
        i = j;
    }
    Ok(LaunchSummary {
        label: "bfs/push-csr".to_string(),
        uses: vec![
            shared("mask", AccessMode::Read, n_tiles),
            worklisted(
                "bfs/push-csr",
                "y-frontier",
                AccessMode::Write,
                n_tiles,
                1,
                &single,
            )?,
            scatter_units(
                "y-frontier",
                AccessMode::Atomic(AtomicKind::IdempotentOr),
                1,
                &split,
            ),
        ],
        merge: None,
    })
}

/// The pull-CSC launch: each warp exclusively overwrites its own output
/// word — the shape `launch_over_chunks` runs with chunk width 1.
fn pull_csc_launch(n_tiles: usize) -> Result<LaunchSummary, PlanError> {
    Ok(LaunchSummary {
        label: "bfs/pull-csc".to_string(),
        uses: vec![
            chunked("bfs/pull-csc", "y-words", AccessMode::Write, n_tiles, 1)?,
            shared("unvisited", AccessMode::Read, n_tiles),
            shared("mask", AccessMode::Read, n_tiles),
        ],
        merge: None,
    })
}

/// The extracted-edge pass: frontier-chunked warps merging via `fetch_or`.
fn extra_pass_launch(n_tiles: usize) -> LaunchSummary {
    LaunchSummary {
        label: "bfs/extra-pass".to_string(),
        uses: vec![
            shared("mask", AccessMode::Read, n_tiles),
            shared(
                "y-frontier",
                AccessMode::Atomic(AtomicKind::IdempotentOr),
                n_tiles,
            ),
        ],
        merge: None,
    }
}

/// Verifies every kernel shape the policy may launch for this graph and
/// kernel set. Called once per traversal, before the first iteration.
pub(crate) fn verify_bfs_plan(
    g: &TileBfsGraph,
    kernels: KernelSet,
) -> Result<PlanReport, PlanError> {
    let n_tiles = g.bit().n_tiles();
    let mut launches = vec![push_csc_launch(n_tiles)];
    if matches!(kernels, KernelSet::PushOnly | KernelSet::All) {
        launches.push(push_csr_launch(g)?);
    }
    if matches!(kernels, KernelSet::All) && g.symmetric() {
        launches.push(pull_csc_launch(n_tiles)?);
    }
    if g.bit().extra_nnz() > 0 {
        launches.push(extra_pass_launch(n_tiles));
    }
    let label = format!(
        "bfs/{}",
        match kernels {
            KernelSet::PushCscOnly => "push-csc-only",
            KernelSet::PushOnly => "push-only",
            KernelSet::All => "all",
        }
    );
    Ok(analyze::verify(&label, &launches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{grid2d, rmat, RmatConfig};
    use tsv_sparse::CooMatrix;

    #[test]
    fn grid_graph_proves_all_kernel_sets() {
        let a = grid2d(20, 15).to_csr().without_diagonal();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        for set in [KernelSet::PushCscOnly, KernelSet::PushOnly, KernelSet::All] {
            let r = verify_bfs_plan(&g, set).unwrap();
            assert!(r.is_proved(), "{set:?}: {r}");
        }
    }

    #[test]
    fn split_segments_still_prove() {
        // One hub row tile connected to many column tiles: push-CSR splits
        // it across warps, whose atomic merges must prove apart from the
        // unsplit tiles' exclusive stores.
        let n = 32 * 110;
        let mut coo = CooMatrix::new(n, n);
        for ct in 1..110 {
            let v = ct * 32 + 5;
            coo.push(0, v, 1.0);
            coo.push(v, 0, 1.0);
        }
        let g = TileBfsGraph::with_params(&coo.to_csr(), 32, 0).unwrap();
        assert!(
            g.csr_segments().len() > g.bit().n_tiles(),
            "expected at least one split row tile"
        );
        let r = verify_bfs_plan(&g, KernelSet::All).unwrap();
        assert!(r.is_proved(), "{r}");
        assert!(r.launches.iter().any(|l| l == "bfs/push-csr"));
    }

    #[test]
    fn extraction_adds_the_extra_pass_launch() {
        let a = rmat(RmatConfig::new(8, 3), 7).to_csr();
        let g = TileBfsGraph::with_params(&a, 32, 3).unwrap();
        assert!(g.bit().extra_nnz() > 0);
        let r = verify_bfs_plan(&g, KernelSet::All).unwrap();
        assert!(r.is_proved(), "{r}");
        assert!(r.launches.iter().any(|l| l == "bfs/extra-pass"));
    }

    #[test]
    fn asymmetric_graph_skips_the_pull_launch() {
        let mut coo = CooMatrix::new(50, 50);
        for i in 0..50 {
            coo.push((i + 1) % 50, i, 1.0);
        }
        let g = TileBfsGraph::from_csr(&coo.to_csr()).unwrap();
        assert!(!g.symmetric());
        let r = verify_bfs_plan(&g, KernelSet::All).unwrap();
        assert!(r.is_proved(), "{r}");
        assert!(!r.launches.iter().any(|l| l == "bfs/pull-csc"));
    }
}
