//! Graph algorithms on the tiled SpMSpV/BFS primitives.
//!
//! The paper motivates TileSpMSpV with the graph algorithms that reduce to
//! it (§1): BFS, betweenness centrality, reverse Cuthill-McKee ordering,
//! and the wider GraphBLAS family. This crate provides those algorithms as
//! a library, each built on the structures and kernels of `tsv-core`:
//!
//! * [`rcm`] — reverse Cuthill-McKee bandwidth reduction (TileBFS level
//!   sets drive the pseudo-peripheral search),
//! * [`bc`] — Brandes betweenness centrality over TileBFS level structure,
//! * [`cc`] — connected components by (min, +) semiring label propagation,
//! * [`pagerank`] — PageRank by tiled SpMV power iteration,
//! * [`sssp`] — single-source shortest paths by (min, +) semiring SpMSpV
//!   (sparse-frontier Bellman-Ford),
//! * [`msbfs`] — multi-source BFS, 64 concurrent sources sharing one
//!   traversal through bit-parallel frontiers (Then et al., VLDB '14) —
//!   the natural batched extension of the paper's bitmask vectors,
//! * [`kcore`] — k-core decomposition by degree peeling,
//! * [`triangles`] — triangle counting by masked row intersection (the
//!   GraphBLAS `L ⊕.⊗ L .* L` formulation).
//!
//! The iterative apps each have a `*_traced` variant taking an optional
//! [`tsv_simt::Tracer`]; when attached and enabled, engine kernel launches,
//! setup phases and per-round progress records land on its ring for Chrome
//! Trace export and run summaries (`tsv_core::telemetry`).

#![forbid(unsafe_code)]

pub mod bc;
pub mod cc;
pub mod kcore;
pub mod msbfs;
pub mod pagerank;
pub mod rcm;
pub mod sssp;
pub mod triangles;

pub use bc::{betweenness, betweenness_msbfs, betweenness_traced};
pub use cc::{connected_components, connected_components_traced};
pub use kcore::k_core;
pub use msbfs::{multi_source_bfs, multi_source_bfs_traced};
pub use pagerank::{pagerank, pagerank_traced, PageRankOptions};
pub use rcm::{permute_symmetric, rcm_order};
pub use sssp::{sssp, sssp_traced};
pub use triangles::count_triangles;
