//! The CSC-form (vector-driven) TileSpMSpV kernel.
//!
//! One warp per *non-empty vector tile*. The warp finds the matrix tiles of
//! the matching column tile through the tile-level CSC index, scales them by
//! the vector tile, and merges the partial row sums into `y` with atomic
//! adds (different vector tiles may hit the same row tile concurrently).
//!
//! Work is proportional to the tiles under non-empty vector tiles only —
//! for very sparse `x` this touches a vanishing fraction of the matrix,
//! which is why Auto mode routes `nnz(x)/n < 0.01` here.

use crate::tile::{TileMatrix, TiledVector};
use tsv_simt::atomic::AtomicF64s;
use tsv_simt::grid::launch;
use tsv_simt::stats::KernelStats;

/// Runs the column-push kernel; returns `y` padded to `m_tiles * nt` and
/// the work counters.
pub fn col_kernel(a: &TileMatrix, x: &TiledVector) -> (Vec<f64>, KernelStats) {
    let nt = a.nt();
    debug_assert_eq!(x.nt(), nt, "vector tiled with a different nt");
    let y = AtomicF64s::zeroed(a.m_tiles() * nt);

    // The active column tiles: one warp each.
    let active: Vec<u32> = (0..x.n_tiles() as u32)
        .filter(|&t| x.x_ptr()[t as usize] >= 0)
        .collect();

    let stats = launch(active.len(), |warp| {
        let ct = active[warp.warp_id] as usize;
        let x_tile = x.tile(ct).expect("active tiles are non-empty");
        warp.stats.read(nt * 8); // load the vector tile once

        for &t in a.col_tiles(ct) {
            let t = t as usize;
            let view = a.tile(t);
            let rt = a.tile_row_of(t);
            warp.stats.read(4 + 4); // tile id + row-tile id
            let base = rt * nt;
            match view.dense {
                Some(d) => {
                    warp.stats.read(nt * nt * 8);
                    for lr in 0..nt {
                        let row = &d[lr * nt..(lr + 1) * nt];
                        let mut sum = 0.0;
                        for (v, xv) in row.iter().zip(x_tile) {
                            sum += v * xv;
                        }
                        if sum != 0.0 {
                            y.add(base + lr, sum);
                            warp.stats.atomic(1);
                            warp.stats.write_scattered(8);
                        }
                    }
                    warp.stats.flop(2 * nt * nt);
                    warp.stats.lane_steps += ((nt * nt) / 32) as u64 * 32;
                }
                None => {
                    warp.stats.read((nt + 1) * 2 + view.nnz() * (1 + 8));
                    // Scale and merge each intra-tile row into the global y.
                    for lr in 0..nt {
                        let (cols, vals) = view.row(lr);
                        if cols.is_empty() {
                            continue;
                        }
                        let mut sum = 0.0;
                        for (&lc, &v) in cols.iter().zip(vals) {
                            sum += v * x_tile[lc as usize];
                        }
                        warp.stats.flop(2 * cols.len());
                        if sum != 0.0 {
                            y.add(base + lr, sum);
                            warp.stats.atomic(1);
                            warp.stats.write_scattered(8);
                        }
                    }
                    warp.stats.lane_steps += view.nnz().div_ceil(2) as u64;
                }
            }
        }
    });

    (y.into_vec(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{TileConfig, TileSize};
    use tsv_sparse::gen::{random_sparse_vector, uniform_random};
    use tsv_sparse::reference::spmspv_row;
    use tsv_sparse::SparseVector;

    #[test]
    fn kernel_matches_reference() {
        let a = uniform_random(200, 200, 3000, 3).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let x = random_sparse_vector(200, 0.05, 1);
        let xt = TiledVector::from_sparse(&x, 16);
        let (y, stats) = col_kernel(&tm, &xt);
        let expect = spmspv_row(&a, &x).unwrap().to_dense();
        for i in 0..200 {
            assert!((y[i] - expect[i]).abs() < 1e-9, "row {i}");
        }
        assert!(stats.atomics > 0, "merging must use atomics");
    }

    #[test]
    fn warps_scale_with_active_tiles() {
        let a = uniform_random(640, 640, 6000, 4).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        // One nonzero → one active vector tile → one warp.
        let x = SparseVector::from_entries(640, vec![(17, 1.0)]).unwrap();
        let xt = TiledVector::from_sparse(&x, 16);
        let (_, stats) = col_kernel(&tm, &xt);
        assert_eq!(stats.warps, 1);
    }

    #[test]
    fn untouched_columns_cost_nothing() {
        let a = uniform_random(320, 320, 2000, 9).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let empty = TiledVector::from_sparse(&SparseVector::zeros(320), 16);
        let (y, stats) = col_kernel(&tm, &empty);
        assert!(y.iter().all(|&v| v == 0.0));
        assert_eq!(stats.gmem_bytes(), 0);
        assert_eq!(stats.warps, 0);
    }
}
