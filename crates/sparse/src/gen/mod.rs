//! Deterministic synthetic matrix and vector generators.
//!
//! The paper's evaluation spans the 2757-matrix SuiteSparse collection; the
//! generators here cover the structure classes that drive the results:
//!
//! * [`banded`] — FEM/structural matrices (cant, ldoor, af_5_k101, ...):
//!   dense diagonal bands, high tile occupancy.
//! * [`grid`] — 2D/3D stencil meshes (333SP-like planar problems).
//! * [`geometric`] — random geometric graphs: road networks (roadNet-TX,
//!   roadCA, europe.osm) with strong spatial locality but tiny degrees.
//! * [`rmat`] — Kronecker/R-MAT power-law graphs: web and social graphs
//!   (in-2004, FB, TW, KR-21-128) with skewed degrees and scattered tiles.
//! * [`uniform`] — Erdős–Rényi uniform random sparsity (worst case for
//!   tiling).
//! * [`vector`] — the random sparse vectors of the Figure 6 sweep
//!   (generated with an explicit seed; the paper uses seed 1).
//!
//! Every generator takes an explicit `seed` and is reproducible across runs
//! and platforms.

pub mod banded;
pub mod geometric;
pub mod grid;
pub mod rmat;
pub mod uniform;
pub mod vector;
pub mod web;

pub use banded::banded;
pub use geometric::geometric_graph;
pub use grid::{grid2d, grid3d};
pub use rmat::{rmat, RmatConfig};
pub use uniform::uniform_random;
pub use vector::random_sparse_vector;
pub use web::webgraph;

use crate::coo::CooMatrix;

/// Identity matrix in COO form.
pub fn identity(n: usize) -> CooMatrix<f64> {
    let mut m = CooMatrix::with_capacity(n, n, n);
    for i in 0..n {
        m.push(i, i, 1.0);
    }
    m
}

/// Tridiagonal matrix (`2` on the diagonal, `-1` off) in COO form — the 1D
/// Laplacian, a maximally banded test case.
pub fn tridiagonal(n: usize) -> CooMatrix<f64> {
    let mut m = CooMatrix::with_capacity(n, n, 3 * n);
    for i in 0..n {
        m.push(i, i, 2.0);
        if i + 1 < n {
            m.push(i, i + 1, -1.0);
            m.push(i + 1, i, -1.0);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_structure() {
        let i = identity(4).to_csr();
        assert_eq!(i.nnz(), 4);
        for k in 0..4 {
            assert_eq!(i.get(k, k), Some(1.0));
        }
    }

    #[test]
    fn tridiagonal_is_symmetric() {
        let t = tridiagonal(10).to_csr();
        assert!(t.is_symmetric());
        assert_eq!(t.nnz(), 10 + 2 * 9);
    }
}
