//! Atomic global-memory operations.
//!
//! The BFS kernels of Algorithms 5-7 update the output frontier with
//! `atomicOr`, and the column-push numeric kernel merges partial products
//! with atomic float adds. These wrappers provide the same operations over
//! plain vectors, with safe conversion back to `Vec<u64>`/`Vec<f64>` once
//! the launch has completed.
//!
//! Under `--cfg loom` the atomics come from the `loom` model checker
//! instead of `std`, so `tests/loom_model.rs` can exhaustively explore
//! thread interleavings through the exact same merge code paths the
//! native backend runs in production.

#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};

/// Exclusive-access store. `loom`'s atomics expose `with_mut` where std
/// has `get_mut`, so the `&mut self` fast paths funnel through here.
#[inline]
fn store_mut(w: &mut AtomicU64, v: u64) {
    #[cfg(loom)]
    w.with_mut(|p| *p = v);
    #[cfg(not(loom))]
    {
        *w.get_mut() = v;
    }
}

/// A bit-word vector supporting concurrent `fetch_or`, the `atomicOr` target
/// of the paper's BFS kernels (one word per vector tile).
#[derive(Debug)]
pub struct AtomicWords {
    words: Vec<AtomicU64>,
}

impl AtomicWords {
    /// Creates `n` zero words.
    pub fn zeroed(n: usize) -> Self {
        Self {
            words: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Wraps an existing word vector.
    pub fn from_vec(v: Vec<u64>) -> Self {
        Self {
            words: v.into_iter().map(AtomicU64::new).collect(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when there are no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// `atomicOr(&words[i], bits)`; returns the previous value.
    #[inline]
    pub fn fetch_or(&self, i: usize, bits: u64) -> u64 {
        self.words[i].fetch_or(bits, Ordering::Relaxed)
    }

    /// Plain load (kernels read the mask vector without synchronization,
    /// exactly like the CUDA code reads global memory).
    #[inline]
    pub fn load(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    /// Resets every word to zero (exclusive access, so no atomics needed) —
    /// lets iterative drivers reuse one allocation across launches.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            store_mut(w, 0);
        }
    }

    /// Overwrites the contents from `src` (exclusive access) — the inverse
    /// of [`copy_into`](Self::copy_into), for staging an existing frontier
    /// into a reused atomic accumulator.
    pub fn load_from(&mut self, src: &[u64]) {
        assert_eq!(src.len(), self.words.len());
        for (w, &s) in self.words.iter_mut().zip(src) {
            store_mut(w, s);
        }
    }

    /// Copies the current contents into `dst` without allocating.
    pub fn copy_into(&self, dst: &mut [u64]) {
        assert_eq!(dst.len(), self.words.len());
        for (d, w) in dst.iter_mut().zip(&self.words) {
            *d = w.load(Ordering::Relaxed);
        }
    }

    /// Consumes the atomic view back into a plain vector.
    pub fn into_vec(self) -> Vec<u64> {
        // Keep the cfg-switched `AtomicU64` alias: naming the std path
        // here would break the `--cfg loom` build.
        self.words.into_iter().map(AtomicU64::into_inner).collect()
    }

    /// Copies the current contents into a plain vector.
    pub fn to_vec(&self) -> Vec<u64> {
        self.words
            .iter()
            .map(|w| w.load(Ordering::Relaxed))
            .collect()
    }
}

/// An `f64` vector supporting concurrent add via compare-and-swap on the
/// bit pattern — the standard emulation of `atomicAdd(double*)`.
#[derive(Debug)]
pub struct AtomicF64s {
    bits: Vec<AtomicU64>,
}

impl AtomicF64s {
    /// Creates `n` zeros.
    pub fn zeroed(n: usize) -> Self {
        Self {
            bits: (0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect(),
        }
    }

    /// Wraps an existing vector (e.g. the output of a non-atomic kernel
    /// that a later atomic pass accumulates into).
    pub fn from_vec(v: Vec<f64>) -> Self {
        Self {
            bits: v.into_iter().map(|x| AtomicU64::new(x.to_bits())).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// `atomicAdd(&vals[i], v)` via a CAS loop; returns nothing (the paper's
    /// kernels discard the old value).
    #[inline]
    pub fn add(&self, i: usize, v: f64) {
        if v == 0.0 {
            return;
        }
        let cell = &self.bits[i];
        let mut cur = cell.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Plain load.
    #[inline]
    pub fn load(&self, i: usize) -> f64 {
        f64::from_bits(self.bits[i].load(Ordering::Relaxed))
    }

    /// Consumes into a plain `Vec<f64>`.
    pub fn into_vec(self) -> Vec<f64> {
        self.bits
            .into_iter()
            .map(|b| f64::from_bits(b.into_inner()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn words_or_and_roundtrip() {
        let w = AtomicWords::zeroed(4);
        let old = w.fetch_or(1, 0b1010);
        assert_eq!(old, 0);
        let old = w.fetch_or(1, 0b0110);
        assert_eq!(old, 0b1010);
        assert_eq!(w.load(1), 0b1110);
        assert_eq!(w.into_vec(), vec![0, 0b1110, 0, 0]);
    }

    #[test]
    fn words_from_vec_preserves_contents() {
        let w = AtomicWords::from_vec(vec![7, 9]);
        assert_eq!(w.to_vec(), vec![7, 9]);
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
    }

    // The concurrent stress tests drive the rayon pool, which Miri
    // cannot interpret at useful speed; loom covers the interleavings.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn concurrent_or_sets_every_bit() {
        let w = AtomicWords::zeroed(1);
        (0..64u64).into_par_iter().for_each(|b| {
            w.fetch_or(0, 1 << b);
        });
        assert_eq!(w.load(0), u64::MAX);
    }

    #[test]
    fn clear_and_copy_into_reuse_allocation() {
        let mut w = AtomicWords::from_vec(vec![3, 5]);
        let mut out = vec![0u64; 2];
        w.copy_into(&mut out);
        assert_eq!(out, vec![3, 5]);
        w.clear();
        assert_eq!(w.to_vec(), vec![0, 0]);
        w.load_from(&[8, 1]);
        assert_eq!(w.to_vec(), vec![8, 1]);
    }

    #[test]
    fn f64_add_accumulates() {
        let v = AtomicF64s::zeroed(2);
        v.add(0, 1.5);
        v.add(0, 2.5);
        v.add(1, -1.0);
        assert_eq!(v.load(0), 4.0);
        assert_eq!(v.into_vec(), vec![4.0, -1.0]);
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn concurrent_f64_adds_do_not_lose_updates() {
        let v = AtomicF64s::zeroed(1);
        (0..10_000).into_par_iter().for_each(|_| v.add(0, 1.0));
        assert_eq!(v.load(0), 10_000.0);
    }

    #[test]
    fn zero_add_is_a_noop() {
        let v = AtomicF64s::zeroed(1);
        v.add(0, 0.0);
        assert_eq!(v.load(0), 0.0);
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
    }
}
