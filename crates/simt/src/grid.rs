//! Kernel launches: a grid of warps over a rayon thread pool.

use crate::stats::KernelStats;
use crate::warp::WarpCtx;
use rayon::prelude::*;
use std::cell::Cell;

/// In which order a launch hands its warps to the scheduler.
///
/// GPU warp schedulers give no ordering guarantee, so a correct kernel must
/// produce the same result under any execution order. The emulator's rayon
/// substrate *is* order-nondeterministic across threads, but on a lightly
/// loaded (or single-core) host it tends to run warps nearly in submission
/// order — which can hide schedule dependence. The policy permutes the
/// submission order deterministically so [`replay_check`] can explore
/// distinct orders reproducibly.
///
/// Warp ids are always the *logical* ids (chunk index, work-list position,
/// bin number): permutation changes when a warp runs, never which work it
/// owns, so any warp-ordered merge downstream is unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Submission order = logical order (the default; zero-overhead path).
    InOrder,
    /// Logical order reversed — the cheapest "maximally different" order.
    Reversed,
    /// A seeded Fisher-Yates shuffle of the logical order.
    Seeded(u64),
}

thread_local! {
    // The policy is per *calling* thread: each launch primitive reads it
    // once before fanning out, so nested launches issued from inside a
    // warp body (none exist today) would see the worker default, InOrder.
    static SCHEDULE: Cell<SchedulePolicy> = const { Cell::new(SchedulePolicy::InOrder) };
}

/// The schedule policy launches issued from this thread will use.
pub fn current_schedule() -> SchedulePolicy {
    SCHEDULE.with(Cell::get)
}

/// Runs `f` with `policy` governing every launch issued from this thread,
/// restoring the previous policy afterwards (also on panic).
pub fn with_schedule<R>(policy: SchedulePolicy, f: impl FnOnce() -> R) -> R {
    struct Restore(SchedulePolicy);
    impl Drop for Restore {
        fn drop(&mut self) {
            SCHEDULE.with(|s| s.set(self.0));
        }
    }
    let _restore = Restore(SCHEDULE.with(|s| s.replace(policy)));
    f()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The submission permutation for `n` warps under the current policy, or
/// `None` for the in-order zero-allocation path.
fn schedule_order(n: usize) -> Option<Vec<usize>> {
    match current_schedule() {
        SchedulePolicy::InOrder => None,
        SchedulePolicy::Reversed => Some((0..n).rev().collect()),
        SchedulePolicy::Seeded(seed) => {
            let mut order: Vec<usize> = (0..n).collect();
            let mut state = seed;
            for i in (1..n).rev() {
                let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
            Some(order)
        }
    }
}

/// Reorders `items` (in logical order) into submission order:
/// `result[pos] = items[order[pos]]`.
fn apply_order<T>(items: Vec<T>, order: &[usize]) -> Vec<T> {
    debug_assert_eq!(items.len(), order.len());
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    order
        .iter()
        .map(|&i| slots[i].take().expect("order is a permutation"))
        .collect()
}

/// Launches `n_warps` warps, each running `body`. Returns the summed work
/// counters.
///
/// This is the CPU analog of `kernel<<<grid, block>>>`: every warp is an
/// independent parallel task (rayon work-stealing plays the role of the GPU
/// warp scheduler, including the load-balancing behaviour the paper's long
/// row tiles stress). The body communicates results through the atomic
/// views in [`crate::atomic`] or through pre-partitioned output — see
/// [`launch_over_chunks`] for the common row-tile-owns-output pattern.
pub fn launch<F>(n_warps: usize, body: F) -> KernelStats
where
    F: Fn(&mut WarpCtx) + Sync,
{
    let run = |warp_id: usize| {
        let mut ctx = WarpCtx::new(warp_id);
        body(&mut ctx);
        ctx.stats
    };
    let stats: KernelStats = match schedule_order(n_warps) {
        None => (0..n_warps).into_par_iter().map(run).sum(),
        Some(order) => order.into_par_iter().map(run).sum(),
    };
    crate::metrics::model_launch_metrics().record(&stats);
    stats
}

/// Asserts the chunked-launch size contract shared by every backend:
/// `chunk_len` positive and `len` an exact multiple of it.
///
/// Every caller owns a padded buffer (`m_tiles * nt` for the tile
/// kernels), and a short tail chunk would mean a mis-sized buffer
/// silently corrupting the last tile. `label` names the launching kernel
/// in the assertion message.
pub(crate) fn check_chunked(label: &str, len: usize, chunk_len: usize) {
    assert!(chunk_len > 0, "{label}: chunk_len must be positive");
    assert_eq!(
        len % chunk_len,
        0,
        "{label}: output length {} is not a multiple of chunk_len {} \
         ({} whole chunks + {} trailing elements); pad the buffer",
        len,
        chunk_len,
        len / chunk_len,
        len % chunk_len
    );
}

/// Carves the chunks named by `worklist` out of `output` as disjoint
/// mutable slices, tagged `(warp_id, unit, chunk)`. Shared by the modeled
/// and native work-list launches so both enforce the same contract: the
/// strictly-increasing check makes the split walk sound, and warp ids are
/// work-list positions, fixed before any scheduling permutation.
pub(crate) fn carve_worklist<'a, T>(
    label: &str,
    output: &'a mut [T],
    chunk_len: usize,
    worklist: &[u32],
) -> Vec<(usize, u32, &'a mut [T])> {
    check_chunked(label, output.len(), chunk_len);
    let n_units = output.len() / chunk_len;
    let mut chunks: Vec<(usize, u32, &mut [T])> = Vec::with_capacity(worklist.len());
    let mut rest = output;
    let mut consumed = 0usize;
    let mut prev: Option<u32> = None;
    for (warp_id, &u) in worklist.iter().enumerate() {
        assert!(
            prev.is_none_or(|p| u > p),
            "{label}: worklist must be strictly increasing (saw {u} after {prev:?})"
        );
        prev = Some(u);
        let u = u as usize;
        assert!(
            u < n_units,
            "{label}: worklist unit {u} out of range ({n_units} units)"
        );
        let (_, tail) = rest.split_at_mut((u - consumed) * chunk_len);
        let (chunk, tail) = tail.split_at_mut(chunk_len);
        chunks.push((warp_id, u as u32, chunk));
        rest = tail;
        consumed = u + 1;
    }
    chunks
}

/// Launches one warp per output chunk: `output` is split into disjoint
/// `chunk_len`-sized pieces and warp `i` gets exclusive mutable access to
/// piece `i`.
///
/// This matches the paper's row-tile kernels, where a warp owns the `nt`
/// output rows of its row tile and therefore needs no atomics on y.
///
/// `output.len()` must be a multiple of `chunk_len`: every caller owns a
/// padded buffer (`m_tiles * nt` for the tile kernels), and a short tail
/// chunk would mean a mis-sized buffer silently corrupting the last tile.
/// `label` names the launching kernel in that assertion's message.
pub fn launch_over_chunks<T, F>(
    label: &str,
    output: &mut [T],
    chunk_len: usize,
    body: F,
) -> KernelStats
where
    T: Send,
    F: Fn(&mut WarpCtx, &mut [T]) + Sync,
{
    check_chunked(label, output.len(), chunk_len);
    let run = |(warp_id, chunk): (usize, &mut [T])| {
        let mut ctx = WarpCtx::new(warp_id);
        body(&mut ctx, chunk);
        ctx.stats
    };
    let n_warps = output.len() / chunk_len;
    let stats: KernelStats = match schedule_order(n_warps) {
        None => output.par_chunks_mut(chunk_len).enumerate().map(run).sum(),
        Some(order) => {
            let chunks: Vec<(usize, &mut [T])> = output.chunks_mut(chunk_len).enumerate().collect();
            apply_order(chunks, &order).into_par_iter().map(run).sum()
        }
    };
    crate::metrics::model_launch_metrics().record(&stats);
    stats
}

/// Launches one warp per *listed* unit: `output` is conceptually split into
/// `chunk_len`-sized chunks as in [`launch_over_chunks`], but only the units
/// named in `worklist` get a warp. Warp `i` runs `body(ctx, worklist[i],
/// chunk_of(worklist[i]))` with exclusive mutable access to its chunk.
///
/// This is the frontier-compacted form of the row-tile launch: the grid size
/// is the work-list length, not the number of chunks, so launched work is
/// proportional to active units. Skipped chunks are left untouched.
///
/// `worklist` must be strictly increasing and in range — the compaction
/// passes that build it produce sorted unit ids, and enforcing the order
/// here keeps warp ids (and therefore any warp-ordered merge downstream)
/// a pure function of the list.
pub fn launch_over_worklist<T, F>(
    label: &str,
    output: &mut [T],
    chunk_len: usize,
    worklist: &[u32],
    body: F,
) -> KernelStats
where
    T: Send,
    F: Fn(&mut WarpCtx, u32, &mut [T]) + Sync,
{
    let chunks = carve_worklist(label, output, chunk_len, worklist);
    let run = |(warp_id, unit, chunk): (usize, u32, &mut [T])| {
        let mut ctx = WarpCtx::new(warp_id);
        body(&mut ctx, unit, chunk);
        ctx.stats
    };
    let stats: KernelStats = match schedule_order(chunks.len()) {
        None => chunks.into_par_iter().map(run).sum(),
        Some(order) => apply_order(chunks, &order).into_par_iter().map(run).sum(),
    };
    crate::metrics::model_launch_metrics().record(&stats);
    stats
}

/// One entry of a warp's work in a binned launch: a unit, or a slice of one.
///
/// `parts == 1` means the warp handles the whole unit; otherwise the unit's
/// work was split into `parts` contiguous pieces and this warp owns piece
/// `part` (0-based). How a "piece" maps onto the unit's work items is the
/// kernel's business — [`Assignment::part_range`] gives the canonical even
/// split of an item count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// Unit id, in the caller's numbering (e.g. row-tile index).
    pub unit: u32,
    /// Which piece of the unit this warp owns (0-based, `< parts`).
    pub part: u32,
    /// How many pieces the unit was split into (1 = whole unit).
    pub parts: u32,
}

impl Assignment {
    /// Splits `n_items` work items of the unit evenly across its parts and
    /// returns the half-open item range this assignment owns. Earlier parts
    /// get the remainder items, so ranges are contiguous, cover `0..n_items`
    /// exactly, and depend only on `(part, parts, n_items)`.
    pub fn part_range(&self, n_items: usize) -> std::ops::Range<usize> {
        let parts = self.parts as usize;
        let part = self.part as usize;
        let base = n_items / parts;
        let extra = n_items % parts;
        let start = part * base + part.min(extra);
        let len = base + usize::from(part < extra);
        start..start + len
    }
}

/// A deterministic warp schedule over weighted units: light units are packed
/// together until a warp holds roughly `target_weight` of work, heavy units
/// (≥ 2× target) are split across several warps.
///
/// The plan is a pure function of `(units, weights, target_weight,
/// max_parts)` — no timing, no thread ids — so two runs over the same
/// frontier produce the same warp numbering, and a merge of per-warp partial
/// results in warp order is reproducible. This is the CMRS-style schedule:
/// the packing bounds scheduling overhead on power-law-light tiles and the
/// splitting bounds the critical path on power-law-heavy ones.
#[derive(Debug, Clone, Default)]
pub struct BinPlan {
    /// CSR offsets: warp `w` executes `assignments[warp_ptr[w]..warp_ptr[w+1]]`.
    warp_ptr: Vec<u32>,
    assignments: Vec<Assignment>,
    /// Scheduled weight per warp (split units contribute `weight/parts`,
    /// remainder to earlier parts), kept for imbalance telemetry.
    warp_weight: Vec<u64>,
    /// The packing threshold the plan was built with.
    target_weight: u64,
}

impl BinPlan {
    /// Creates an empty plan; [`BinPlan::rebuild`] fills it in place so the
    /// buffers can live in a reusable workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the plan over `units` (strictly increasing ids) with
    /// per-unit work `weight`, packing light units until a warp reaches
    /// `target_weight` and splitting any unit of at least twice the target
    /// into `ceil(weight / target)` parts, capped at `max_parts`.
    ///
    /// Deterministic: one pass over `units` in order, no data-dependent
    /// tie-breaks.
    pub fn rebuild<W>(&mut self, units: &[u32], weight: W, target_weight: u64, max_parts: u32)
    where
        W: Fn(u32) -> u64,
    {
        assert!(target_weight > 0, "target_weight must be positive");
        assert!(max_parts > 0, "max_parts must be positive");
        self.warp_ptr.clear();
        self.assignments.clear();
        self.warp_weight.clear();
        self.warp_ptr.push(0);
        self.target_weight = target_weight;
        let mut acc = 0u64;
        let mut open = false; // current warp has at least one assignment
        let mut prev: Option<u32> = None;
        for &u in units {
            assert!(
                prev.is_none_or(|p| u > p),
                "units must be strictly increasing (saw {u} after {prev:?})"
            );
            prev = Some(u);
            let w = weight(u);
            if w >= 2 * target_weight {
                // Heavy unit: close the open packing warp, then one warp
                // per part.
                if open {
                    self.close_warp(&mut acc, &mut open);
                }
                let parts = w.div_ceil(target_weight).min(u64::from(max_parts)).max(1) as u32;
                for part in 0..parts {
                    self.assignments.push(Assignment {
                        unit: u,
                        part,
                        parts,
                    });
                    let base = w / u64::from(parts);
                    let extra = w % u64::from(parts);
                    acc = base + u64::from(u64::from(part) < extra);
                    open = true;
                    self.close_warp(&mut acc, &mut open);
                }
            } else {
                // Light unit: pack into the current warp.
                self.assignments.push(Assignment {
                    unit: u,
                    part: 0,
                    parts: 1,
                });
                acc += w;
                open = true;
                if acc >= target_weight {
                    self.close_warp(&mut acc, &mut open);
                }
            }
        }
        if open {
            self.close_warp(&mut acc, &mut open);
        }
    }

    fn close_warp(&mut self, acc: &mut u64, open: &mut bool) {
        self.warp_ptr.push(self.assignments.len() as u32);
        self.warp_weight.push(*acc);
        *acc = 0;
        *open = false;
    }

    /// Number of warps the plan launches.
    pub fn n_warps(&self) -> usize {
        self.warp_ptr.len() - 1
    }

    /// Total number of assignments across all warps.
    pub fn n_assignments(&self) -> usize {
        self.assignments.len()
    }

    /// The assignments of warp `w`, in execution order.
    pub fn warp(&self, w: usize) -> &[Assignment] {
        &self.assignments[self.warp_ptr[w] as usize..self.warp_ptr[w + 1] as usize]
    }

    /// Scheduled weight per warp — the imbalance-histogram input.
    pub fn warp_weights(&self) -> &[u64] {
        &self.warp_weight
    }

    /// The packing threshold the plan was last built with.
    pub fn target_weight(&self) -> u64 {
        self.target_weight
    }
}

/// Launches one warp per [`BinPlan`] bin; warp `w` receives its assignment
/// slice and exclusive mutable access to `scratch[w]` — its partial-result
/// buffer. Split units make exclusive output slicing impossible (two warps
/// share one unit's output range), so results must go through the per-warp
/// buffers and be merged in warp order afterwards, the same determinism
/// contract as the scatter kernels.
///
/// `scratch` must hold at least [`BinPlan::n_warps`] slots.
pub fn launch_binned<T, F>(plan: &BinPlan, scratch: &mut [T], body: F) -> KernelStats
where
    T: Send,
    F: Fn(&mut WarpCtx, &[Assignment], &mut T) + Sync,
{
    let n = plan.n_warps();
    assert!(
        scratch.len() >= n,
        "scratch holds {} slots for {} warps",
        scratch.len(),
        n
    );
    let run = |(warp_id, slot): (usize, &mut T)| {
        let mut ctx = WarpCtx::new(warp_id);
        body(&mut ctx, plan.warp(warp_id), slot);
        ctx.stats
    };
    let stats: KernelStats = match schedule_order(n) {
        None => scratch[..n].par_iter_mut().enumerate().map(run).sum(),
        Some(order) => {
            let slots: Vec<(usize, &mut T)> = scratch[..n].iter_mut().enumerate().collect();
            apply_order(slots, &order).into_par_iter().map(run).sum()
        }
    };
    crate::metrics::model_launch_metrics().record(&stats);
    stats
}

/// Outcome of a [`replay_check`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// Total executions, including the in-order reference.
    pub runs: usize,
    /// Which non-reference runs disagreed with the reference, by
    /// description (e.g. `"reversed"`, `"seeded(3)"`).
    pub mismatched: Vec<String>,
}

impl ReplayReport {
    /// True when every permuted run matched the in-order reference.
    pub fn all_match(&self) -> bool {
        self.mismatched.is_empty()
    }
}

/// Runs `run` once in order (the reference), once reversed, and under
/// `n_seeded` seeded permutations derived from `seed`, comparing every
/// permuted output to the reference with `eq`.
///
/// `eq` encodes the determinism contract being certified: bit-for-bit
/// comparison proves *bitwise* determinism (the PlusTimes/Binned
/// guarantee), while a semantic comparison (same support, values equal
/// under the semiring's tolerance) proves the weaker *semantic*
/// determinism appropriate for MinPlus/OrAnd.
///
/// This certifies schedule independence only over the orders actually
/// tried — it is a replay fuzzer, not a proof; pair it with the
/// [`crate::sanitize`] conflict detector, which reasons about *all*
/// interleavings of the accesses one execution performs.
pub fn replay_check<O>(
    n_seeded: usize,
    seed: u64,
    mut run: impl FnMut() -> O,
    mut eq: impl FnMut(&O, &O) -> bool,
) -> ReplayReport {
    let reference = with_schedule(SchedulePolicy::InOrder, &mut run);
    let mut report = ReplayReport {
        runs: 1,
        mismatched: Vec::new(),
    };
    let mut check = |policy: SchedulePolicy, desc: String, run: &mut dyn FnMut() -> O| {
        let out = with_schedule(policy, &mut *run);
        report.runs += 1;
        if !eq(&reference, &out) {
            report.mismatched.push(desc);
        }
    };
    check(SchedulePolicy::Reversed, "reversed".to_string(), &mut run);
    for k in 0..n_seeded {
        let mut state = seed ^ (k as u64).wrapping_mul(0x2545_f491_4f6c_dd1d);
        let perm_seed = splitmix64(&mut state);
        check(
            SchedulePolicy::Seeded(perm_seed),
            format!("seeded({k})"),
            &mut run,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::AtomicWords;

    #[test]
    fn launch_runs_every_warp_once() {
        let hits = AtomicWords::zeroed(2);
        let stats = launch(128, |w| {
            hits.fetch_or(w.warp_id / 64, 1 << (w.warp_id % 64));
        });
        assert_eq!(stats.warps, 128);
        assert_eq!(hits.load(0), u64::MAX);
        assert_eq!(hits.load(1), u64::MAX);
    }

    #[test]
    fn launch_zero_warps_is_empty() {
        let stats = launch(0, |_| panic!("no warp should run"));
        assert_eq!(stats.warps, 0);
    }

    #[test]
    fn launch_sums_stats() {
        let stats = launch(10, |w| {
            w.stats.read(8);
            w.stats.flop(2);
        });
        assert_eq!(stats.gmem_read_bytes, 80);
        assert_eq!(stats.flops, 20);
    }

    #[test]
    fn chunks_partition_output_disjointly() {
        let mut out = vec![0u32; 100];
        let stats = launch_over_chunks("test/chunks", &mut out, 10, |w, chunk| {
            for v in chunk.iter_mut() {
                *v = w.warp_id as u32 + 1;
            }
        });
        assert_eq!(stats.warps, 10);
        assert_eq!(out[0], 1);
        assert_eq!(out[99], 10);
        assert!(out.iter().all(|&v| v != 0));
    }

    #[test]
    #[should_panic(expected = "not a multiple of chunk_len")]
    fn chunks_reject_ragged_tail() {
        // A short tail chunk means the caller mis-sized its padded buffer;
        // fail loudly instead of corrupting the last tile.
        let mut out = vec![0u8; 25];
        launch_over_chunks("test/ragged", &mut out, 10, |_, _| {});
    }

    #[test]
    fn ragged_tail_panic_names_the_kernel_and_sizes() {
        // Regression: the divisibility assert used to omit the launching
        // kernel, which made a mis-sized buffer painful to attribute.
        let err = std::panic::catch_unwind(|| {
            let mut out = vec![0u8; 25];
            launch_over_chunks("spmspv/row-tile", &mut out, 10, |_, _| {});
        })
        .expect_err("ragged tail must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("spmspv/row-tile"), "kernel label: {msg}");
        assert!(msg.contains("25"), "total length: {msg}");
        assert!(msg.contains("chunk_len 10"), "chunk size: {msg}");
        assert!(msg.contains("2 whole chunks"), "unit count: {msg}");

        let err = std::panic::catch_unwind(|| {
            let mut out = vec![0u8; 25];
            launch_over_worklist("bfs/pull-csc", &mut out, 10, &[0], |_, _, _| {});
        })
        .expect_err("ragged tail must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("bfs/pull-csc"), "kernel label: {msg}");
    }

    #[test]
    fn worklist_launches_only_listed_units() {
        let mut out = vec![0u32; 80];
        let worklist = [1u32, 3, 6];
        let stats = launch_over_worklist(
            "test/worklist",
            &mut out,
            10,
            &worklist,
            |w, unit, chunk| {
                assert_eq!(worklist[w.warp_id], unit);
                for v in chunk.iter_mut() {
                    *v = unit + 1;
                }
            },
        );
        assert_eq!(stats.warps, 3, "grid size is the work-list length");
        for (i, &v) in out.iter().enumerate() {
            let unit = (i / 10) as u32;
            let expect = if worklist.contains(&unit) {
                unit + 1
            } else {
                0
            };
            assert_eq!(v, expect, "element {i}");
        }
    }

    #[test]
    fn worklist_empty_launches_nothing() {
        let mut out = vec![7u8; 30];
        let stats =
            launch_over_worklist("test/empty", &mut out, 10, &[], |_, _, _| panic!("no warp"));
        assert_eq!(stats.warps, 0);
        assert!(out.iter().all(|&v| v == 7));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn worklist_rejects_unsorted_units() {
        let mut out = vec![0u8; 30];
        launch_over_worklist("test/unsorted", &mut out, 10, &[2, 1], |_, _, _| {});
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn worklist_rejects_out_of_range_units() {
        let mut out = vec![0u8; 30];
        launch_over_worklist("test/range", &mut out, 10, &[3], |_, _, _| {});
    }

    #[test]
    fn bin_plan_packs_light_units() {
        let mut plan = BinPlan::new();
        // Four units of weight 3 against a target of 10: the first three
        // pack into one warp (3+3+3 < 10 closes only at ≥ target... 9 < 10,
        // so the fourth joins and closes it at 12).
        plan.rebuild(&[0, 1, 2, 3], |_| 3, 10, 8);
        assert_eq!(plan.n_warps(), 1);
        assert_eq!(plan.warp(0).len(), 4);
        assert!(plan.warp(0).iter().all(|a| a.parts == 1));
        assert_eq!(plan.warp_weights(), &[12]);
    }

    #[test]
    fn bin_plan_splits_heavy_units() {
        let mut plan = BinPlan::new();
        // Weight 35 at target 10 → ceil(35/10) = 4 part-warps.
        plan.rebuild(&[5], |_| 35, 10, 8);
        assert_eq!(plan.n_warps(), 4);
        for (p, w) in (0..4).zip([9u64, 9, 9, 8]) {
            let a = plan.warp(p);
            assert_eq!(
                a,
                &[Assignment {
                    unit: 5,
                    part: p as u32,
                    parts: 4
                }]
            );
            assert_eq!(plan.warp_weights()[p], w);
        }
        // The part ranges tile the unit's items exactly.
        let mut covered = Vec::new();
        for p in 0..4 {
            covered.extend(plan.warp(p)[0].part_range(35));
        }
        assert_eq!(covered, (0..35).collect::<Vec<_>>());
    }

    #[test]
    fn bin_plan_caps_split_width() {
        let mut plan = BinPlan::new();
        plan.rebuild(&[0], |_| 1000, 10, 4);
        assert_eq!(plan.n_warps(), 4, "max_parts caps the split");
    }

    #[test]
    fn bin_plan_mixes_pack_and_split_deterministically() {
        let weights = [2u64, 2, 50, 1, 1, 1, 30];
        let units: Vec<u32> = (0..weights.len() as u32).collect();
        let mut a = BinPlan::new();
        a.rebuild(&units, |u| weights[u as usize], 10, 8);
        let mut b = BinPlan::new();
        b.rebuild(&units, |u| weights[u as usize], 10, 8);
        assert_eq!(a.n_warps(), b.n_warps());
        for w in 0..a.n_warps() {
            assert_eq!(a.warp(w), b.warp(w), "plan must be reproducible");
        }
        // Unit 2 (weight 50) splits; its parts appear after the packed warp
        // holding units 0-1 and before the warp packing units 3-5.
        assert!(a.warp(0).iter().all(|x| x.parts == 1 && x.unit <= 1));
        assert!(a.warp(1).iter().all(|x| x.unit == 2 && x.parts == 5));
    }

    #[test]
    fn launch_binned_runs_every_assignment_once() {
        let weights = [2u64, 2, 50, 1, 1, 1, 30];
        let units: Vec<u32> = (0..weights.len() as u32).collect();
        let mut plan = BinPlan::new();
        plan.rebuild(&units, |u| weights[u as usize], 10, 8);
        let seen = AtomicWords::zeroed(1);
        let mut scratch = vec![0u32; plan.n_warps()];
        let stats = launch_binned(&plan, &mut scratch, |w, assignments, slot| {
            assert_eq!(assignments, plan.warp(w.warp_id));
            for a in assignments {
                *slot += 1;
                if a.parts == 1 {
                    seen.fetch_or(0, 1 << a.unit);
                }
            }
        });
        assert_eq!(stats.warps as usize, plan.n_warps());
        // Every whole (unsplit) unit was visited.
        assert_eq!(seen.load(0), 0b0111011);
        // Each warp wrote its own scratch slot: totals match assignments.
        assert_eq!(scratch.iter().sum::<u32>() as usize, plan.n_assignments());
    }

    fn all_policies() -> [SchedulePolicy; 4] {
        [
            SchedulePolicy::InOrder,
            SchedulePolicy::Reversed,
            SchedulePolicy::Seeded(7),
            SchedulePolicy::Seeded(0xdead_beef),
        ]
    }

    #[test]
    fn every_policy_runs_every_warp_once_with_logical_ids() {
        for policy in all_policies() {
            with_schedule(policy, || {
                let hits = AtomicWords::zeroed(2);
                let stats = launch(128, |w| {
                    hits.fetch_or(w.warp_id / 64, 1 << (w.warp_id % 64));
                });
                assert_eq!(stats.warps, 128, "{policy:?}");
                assert_eq!(hits.load(0), u64::MAX, "{policy:?}");
                assert_eq!(hits.load(1), u64::MAX, "{policy:?}");
            });
        }
    }

    #[test]
    fn every_policy_keeps_chunk_ownership() {
        let mut reference: Option<Vec<u32>> = None;
        for policy in all_policies() {
            with_schedule(policy, || {
                let mut out = vec![0u32; 100];
                launch_over_chunks("test/sched-chunks", &mut out, 10, |w, chunk| {
                    for v in chunk.iter_mut() {
                        *v = w.warp_id as u32 + 1;
                    }
                });
                match &reference {
                    None => reference = Some(out),
                    Some(r) => assert_eq!(&out, r, "{policy:?}"),
                }
            });
        }
    }

    #[test]
    fn every_policy_keeps_worklist_and_bin_assignments() {
        let worklist = [1u32, 3, 6, 7];
        let weights = [2u64, 2, 50, 1, 1, 1, 30];
        let units: Vec<u32> = (0..weights.len() as u32).collect();
        let mut plan = BinPlan::new();
        plan.rebuild(&units, |u| weights[u as usize], 10, 8);
        for policy in all_policies() {
            with_schedule(policy, || {
                let mut out = vec![0u32; 80];
                launch_over_worklist(
                    "test/sched-wl",
                    &mut out,
                    10,
                    &worklist,
                    |w, unit, chunk| {
                        assert_eq!(worklist[w.warp_id], unit, "{policy:?}");
                        chunk[0] = unit + 1;
                    },
                );
                for (i, &u) in worklist.iter().enumerate() {
                    assert_eq!(out[u as usize * 10], u + 1, "{policy:?} warp {i}");
                }

                let mut scratch = vec![u32::MAX; plan.n_warps()];
                launch_binned(&plan, &mut scratch, |w, assignments, slot| {
                    assert_eq!(assignments, plan.warp(w.warp_id), "{policy:?}");
                    *slot = w.warp_id as u32;
                });
                let expect: Vec<u32> = (0..plan.n_warps() as u32).collect();
                assert_eq!(scratch, expect, "{policy:?}: slot i belongs to warp i");
            });
        }
    }

    #[test]
    fn with_schedule_restores_the_previous_policy() {
        assert_eq!(current_schedule(), SchedulePolicy::InOrder);
        with_schedule(SchedulePolicy::Reversed, || {
            assert_eq!(current_schedule(), SchedulePolicy::Reversed);
            with_schedule(SchedulePolicy::Seeded(1), || {
                assert_eq!(current_schedule(), SchedulePolicy::Seeded(1));
            });
            assert_eq!(current_schedule(), SchedulePolicy::Reversed);
        });
        assert_eq!(current_schedule(), SchedulePolicy::InOrder);
        // Restored even when the body panics.
        let _ = std::panic::catch_unwind(|| {
            with_schedule(SchedulePolicy::Reversed, || panic!("boom"));
        });
        assert_eq!(current_schedule(), SchedulePolicy::InOrder);
    }

    #[test]
    fn seeded_orders_differ_by_seed_and_repeat_by_seed() {
        let order_of = |policy| with_schedule(policy, || schedule_order(64));
        let a = order_of(SchedulePolicy::Seeded(1)).unwrap();
        let b = order_of(SchedulePolicy::Seeded(1)).unwrap();
        let c = order_of(SchedulePolicy::Seeded(2)).unwrap();
        assert_eq!(a, b, "same seed, same order");
        assert_ne!(a, c, "different seed, different order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>(), "a true permutation");
        assert_ne!(a, (0..64).collect::<Vec<_>>(), "not the identity");
    }

    #[test]
    fn replay_check_passes_schedule_independent_kernels() {
        let report = replay_check(
            8,
            42,
            || {
                // Order-independent: disjoint chunk writes.
                let mut out = vec![0u64; 320];
                launch_over_chunks("test/replay", &mut out, 10, |w, chunk| {
                    for (i, v) in chunk.iter_mut().enumerate() {
                        *v = (w.warp_id * 100 + i) as u64;
                    }
                });
                out
            },
            |a, b| a == b,
        );
        assert_eq!(report.runs, 10, "reference + reversed + 8 seeded");
        assert!(report.all_match(), "mismatched: {:?}", report.mismatched);
    }

    #[test]
    fn replay_check_reports_schedule_dependent_outputs() {
        // A "kernel" whose output is the schedule itself: every permuted
        // run must disagree with the in-order reference, and the report
        // names each one.
        let report = replay_check(3, 9, || schedule_order(16), |a, b| a == b);
        assert_eq!(report.runs, 5);
        assert!(!report.all_match());
        assert_eq!(
            report.mismatched,
            vec!["reversed", "seeded(0)", "seeded(1)", "seeded(2)"]
        );
    }

    #[test]
    fn part_range_is_an_exact_even_partition() {
        for parts in 1..7u32 {
            for n in [0usize, 1, 5, 31, 64] {
                let mut covered = Vec::new();
                for part in 0..parts {
                    let a = Assignment {
                        unit: 0,
                        part,
                        parts,
                    };
                    let r = a.part_range(n);
                    assert!(r.len() <= n / parts as usize + 1);
                    covered.extend(r);
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "parts={parts} n={n}");
            }
        }
    }
}
