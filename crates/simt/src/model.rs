//! Analytic device-time model.
//!
//! A straightforward roofline: a kernel is limited by whichever of the
//! memory system, the arithmetic pipes, or atomic serialization it saturates
//! first, plus a fixed launch cost and a floor for grids too small to fill
//! the machine. The model is deliberately simple — it exists to translate
//! *counted work* (which the CPU execution measures exactly) into the
//! cross-device comparisons of Figure 7, not to predict absolute GPU
//! milliseconds.

use crate::device::DeviceConfig;
use crate::stats::KernelStats;

/// Bandwidth derating for scattered (uncoalesced) accesses: single-word
/// random transactions move 32-byte sectors and defeat coalescing, landing
/// around a quarter of peak on Ampere.
pub const SCATTER_PENALTY: f64 = 4.0;

/// Estimated execution time of one kernel launch on `device`, in seconds.
pub fn kernel_time(stats: &KernelStats, device: &DeviceConfig) -> f64 {
    let streamed = stats
        .gmem_bytes()
        .saturating_sub(stats.gmem_scattered_bytes) as f64;
    let scattered = stats.gmem_scattered_bytes as f64;
    let mem = (streamed + SCATTER_PENALTY * scattered) / device.peak_bytes_per_sec();
    // Arithmetic work: float ops and bit-word semiring ops share the ALU
    // pipes; lane bookkeeping contributes a small issue cost per step.
    let alu_ops = stats.flops as f64 + stats.bitops as f64 + 0.25 * stats.lane_steps as f64;
    let compute = alu_ops / device.peak_flops();
    let atomics = stats.atomics as f64 / device.atomics_per_sec;

    // A grid smaller than the resident-warp capacity cannot hide latency;
    // scale the bound up by the unused fraction (empirically the dominant
    // effect for the tiny frontiers of early BFS iterations).
    let occupancy = (stats.warps as f64 / device.max_resident_warps() as f64).clamp(0.02, 1.0);
    let body = mem.max(compute).max(atomics) / occupancy.sqrt();

    // Every launched warp passes through a hardware scheduler once; the
    // SMs dispatch independently, so the aggregate cost is per-warp time
    // divided by the SM count. A grid of mostly-empty warps (one warp per
    // row tile against an inactive frontier) pays this even when its
    // memory traffic rounds to nothing.
    let sched = stats.warps as f64 * device.warp_sched_ns * 1e-9 / f64::from(device.sm_count);

    device.launch_overhead_us * 1e-6 + sched + body
}

/// Estimated time for a sequence of launches (e.g. the iterations of a
/// BFS), in seconds.
pub fn total_time<'a, I>(launches: I, device: &DeviceConfig) -> f64
where
    I: IntoIterator<Item = &'a KernelStats>,
{
    launches.into_iter().map(|s| kernel_time(s, device)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{RTX_3060, RTX_3090};

    fn big_kernel() -> KernelStats {
        KernelStats {
            gmem_read_bytes: 1 << 30,
            gmem_write_bytes: 1 << 28,
            flops: 1 << 30,
            warps: 1 << 20,
            ..KernelStats::default()
        }
    }

    #[test]
    fn bigger_device_is_faster_on_big_kernels() {
        let s = big_kernel();
        assert!(kernel_time(&s, &RTX_3090) < kernel_time(&s, &RTX_3060));
    }

    #[test]
    fn empty_kernel_costs_the_launch_overhead() {
        let s = KernelStats::default();
        let t = kernel_time(&s, &RTX_3090);
        assert!((t - RTX_3090.launch_overhead_us * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_kernel_scales_with_bytes() {
        let mut s = KernelStats {
            warps: 1 << 20,
            ..KernelStats::default()
        };
        s.gmem_read_bytes = 1 << 30;
        let t1 = kernel_time(&s, &RTX_3090);
        s.gmem_read_bytes = 2 << 30;
        let t2 = kernel_time(&s, &RTX_3090);
        assert!(t2 > t1 * 1.8, "doubling bytes should near-double time");
    }

    #[test]
    fn tiny_grids_pay_an_occupancy_penalty() {
        let mut s = big_kernel();
        let full = kernel_time(&s, &RTX_3090);
        s.warps = 8; // nearly empty machine, same work
        let starved = kernel_time(&s, &RTX_3090);
        assert!(starved > full);
    }

    #[test]
    fn extra_warps_cost_scheduler_time() {
        // Same work in 16× the warps: occupancy is saturated either way,
        // so the difference is pure scheduling overhead — the term the
        // compacted dispatch saves.
        let mut s = big_kernel();
        let lean = kernel_time(&s, &RTX_3090);
        s.warps <<= 4;
        let bloated = kernel_time(&s, &RTX_3090);
        assert!(bloated > lean, "warp count must carry a scheduling cost");
    }

    #[test]
    fn scattered_bytes_cost_more_than_streamed() {
        let mut a = KernelStats {
            warps: 1 << 20,
            ..KernelStats::default()
        };
        a.read(1 << 30);
        let mut b = KernelStats {
            warps: 1 << 20,
            ..KernelStats::default()
        };
        b.read_scattered(1 << 30);
        let ta = kernel_time(&a, &RTX_3090);
        let tb = kernel_time(&b, &RTX_3090);
        assert!(tb > ta * 3.0, "scatter penalty missing: {ta} vs {tb}");
    }

    #[test]
    fn total_time_sums_launches() {
        let s = big_kernel();
        let both = total_time([&s, &s], &RTX_3090);
        let one = kernel_time(&s, &RTX_3090);
        assert!((both - 2.0 * one).abs() < 1e-12);
    }
}
