//! Plan-time static race verifier: symbolic access footprints over launch
//! plans, discharged *before* any kernel runs.
//!
//! The dynamic sanitizer ([`crate::sanitize`]) certifies the schedules it
//! happens to replay; this module proves the plan. Every launch shape the
//! substrate offers — a grid over exclusive chunks, a frontier-compacted
//! work list, a [`BinPlan`] with per-warp scratch and a part-order merge,
//! and the atomic-scatter grid of the BFS kernels — induces a *symbolic*
//! per-warp footprint on each global buffer it touches: an interval/set
//! summary over output rows or workspace slots that is a pure function of
//! the plan, not of the execution. Partition-induced write-disjointness is
//! decidable from those summaries alone (the shared-memory SpMV insight),
//! so three obligations are discharged statically per plan:
//!
//! 1. **Write-disjointness** ([`ObligationKind::WriteDisjointness`]) —
//!    distinct warps' plain-write footprints never overlap, *or* every
//!    overlapping update is atomic-mediated. Order-independent atomics
//!    (idempotent `fetch_or` flag sets) prove outright; value-carrying
//!    atomic reductions prove race freedom but leave the accumulation
//!    order schedule-dependent, so they verdict [`Verdict::NeedsAtomics`].
//! 2. **Merge determinism** ([`ObligationKind::MergeDeterminism`]) — a
//!    plan that buffers per-warp partials must consume each partial
//!    exactly once, in an order that is a pure function of the plan
//!    (ascending part order per unit, units in work-list order).
//! 3. **Workspace aliasing** ([`ObligationKind::WorkspaceAliasing`]) — no
//!    warp's read footprint overlaps another warp's write footprint on the
//!    same buffer within a launch; cross-launch write→read dependencies
//!    must sit behind a barrier (they always do: the engine separates
//!    phases with sanitizer barriers, modeled here per launch).
//!
//! Verdicts are [`Verdict::Proved`], [`Verdict::NeedsAtomics`], or
//! [`Verdict::Unknown`] with a reason. [`verify`] also counts every
//! discharged obligation on the metrics registry
//! (`tsv_simt_plan_obligations_total{verdict="..."}`) so long-running
//! processes expose how many plans they proved.
//!
//! The footprint constructors mirror the run-time assertions of
//! [`crate::grid`] as recoverable errors: [`chunked`] rejects exactly what
//! `check_chunked` would panic on (zero or non-dividing `chunk_len`), and
//! [`worklisted`] rejects what `carve_worklist` would panic on (unsorted
//! or out-of-range units) — so a caller that verifies its plan reports a
//! [`PlanError`] *before* launch instead of panicking mid-kernel.
//!
//! The analyzer-vs-sanitizer contract (checked by `repro analyze` and the
//! differential proptests): a plan whose overall verdict is `Proved` must
//! produce **zero** dynamic conflicts under the sanitizer, and a
//! `NeedsAtomics`/`Unknown` verdict must be justified by at least one
//! observed atomic claim in the dynamic log.

use crate::grid::BinPlan;
use crate::metrics;
use std::fmt;

// ---------------------------------------------------------------------
// Interval sets: the numeric half of a symbolic footprint.
// ---------------------------------------------------------------------

/// A normalized set of half-open `[start, end)` index intervals: sorted,
/// disjoint, non-empty, adjacent runs merged. The concrete summary a
/// symbolic [`Footprint`] expands to when an overlap question cannot be
/// answered structurally.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexSet {
    intervals: Vec<(u64, u64)>,
}

impl IndexSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A single interval `[start, end)` (empty when `start >= end`).
    #[must_use]
    pub fn interval(start: u64, end: u64) -> Self {
        let mut s = Self::new();
        s.insert(start, end);
        s
    }

    /// Inserts `[start, end)`, merging with any overlapping or adjacent
    /// run to keep the representation normalized.
    pub fn insert(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let pos = self.intervals.partition_point(|&(_, e)| e < start);
        let mut start = start;
        let mut end = end;
        let mut merged_until = pos;
        while merged_until < self.intervals.len() && self.intervals[merged_until].0 <= end {
            start = start.min(self.intervals[merged_until].0);
            end = end.max(self.intervals[merged_until].1);
            merged_until += 1;
        }
        self.intervals.splice(pos..merged_until, [(start, end)]);
    }

    /// Total number of indices covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.intervals.iter().map(|&(s, e)| e - s).sum()
    }

    /// True when no index is covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The normalized runs, ascending.
    #[must_use]
    pub fn runs(&self) -> &[(u64, u64)] {
        &self.intervals
    }

    /// First index covered by both sets, if any — the witness reported in
    /// obligation details.
    #[must_use]
    pub fn first_overlap(&self, other: &Self) -> Option<u64> {
        let (mut i, mut j) = (0, 0);
        while i < self.intervals.len() && j < other.intervals.len() {
            let (a0, a1) = self.intervals[i];
            let (b0, b1) = other.intervals[j];
            if a0.max(b0) < a1.min(b1) {
                return Some(a0.max(b0));
            }
            if a1 <= b1 {
                i += 1;
            } else {
                j += 1;
            }
        }
        None
    }

    /// Whether the sets share any index.
    #[must_use]
    pub fn intersects(&self, other: &Self) -> bool {
        self.first_overlap(other).is_some()
    }
}

// ---------------------------------------------------------------------
// Symbolic footprints.
// ---------------------------------------------------------------------

/// How a launch's warps touch one buffer: a symbolic per-warp summary.
///
/// The first three shapes are *partition-induced disjoint by
/// construction* — the overlap question is answered structurally, without
/// expanding per-warp index sets. [`Footprint::Shared`] is the scatter
/// summary: any warp may touch any index in range, so questions about it
/// fall back to interval reasoning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Footprint {
    /// Warp `w` owns exactly `[w * chunk_len, (w + 1) * chunk_len)` — the
    /// [`crate::grid::launch_over_chunks`] shape.
    DisjointChunks {
        /// Number of warps (= chunks).
        n_warps: usize,
        /// Chunk width in elements.
        chunk_len: usize,
    },
    /// Warp `i` owns the chunk of unit `units[i]` — the
    /// [`crate::grid::launch_over_worklist`] shape. Construction via
    /// [`worklisted`] guarantees the list is strictly increasing and in
    /// range, which is what makes the chunks disjoint.
    ListedChunks {
        /// Chunk width in elements.
        chunk_len: usize,
        /// Strictly-increasing unit ids, one per warp.
        units: Vec<u32>,
    },
    /// Warp `w` owns exactly scratch slot `w` — the
    /// [`crate::grid::launch_binned`] shape (per-warp partial buffers).
    OwnSlot {
        /// Number of warps (= slots).
        n_warps: usize,
    },
    /// Any warp may touch any index in `[0, len)` — broadcast reads and
    /// atomic scatter targets.
    Shared {
        /// Buffer length.
        len: usize,
    },
    /// Any warp may touch any index in `indices`, but nothing outside it —
    /// the restricted scatter of push-CSR's *split* segments, whose target
    /// words are provably disjoint from the unsplit segments' exclusive
    /// plain stores.
    ScatterSet {
        /// The exact index set the scatter is confined to.
        indices: IndexSet,
    },
}

impl Footprint {
    /// Whether distinct warps' index sets are disjoint *by construction*.
    #[must_use]
    pub fn per_warp_disjoint(&self) -> bool {
        !matches!(self, Self::Shared { .. } | Self::ScatterSet { .. })
    }

    /// The union of all warps' index sets.
    #[must_use]
    pub fn covered(&self) -> IndexSet {
        match self {
            Self::DisjointChunks { n_warps, chunk_len } => {
                IndexSet::interval(0, (*n_warps as u64) * (*chunk_len as u64))
            }
            Self::ListedChunks { chunk_len, units } => {
                let c = *chunk_len as u64;
                let mut s = IndexSet::new();
                for &u in units {
                    s.insert(u64::from(u) * c, (u64::from(u) + 1) * c);
                }
                s
            }
            Self::OwnSlot { n_warps } => IndexSet::interval(0, *n_warps as u64),
            Self::Shared { len } => IndexSet::interval(0, *len as u64),
            Self::ScatterSet { indices } => indices.clone(),
        }
    }

    /// Warp `w`'s own index set.
    #[must_use]
    pub fn warp_set(&self, w: usize) -> IndexSet {
        match self {
            Self::DisjointChunks { chunk_len, .. } => {
                let c = *chunk_len as u64;
                IndexSet::interval(w as u64 * c, (w as u64 + 1) * c)
            }
            Self::ListedChunks { chunk_len, units } => match units.get(w) {
                Some(&u) => {
                    let c = *chunk_len as u64;
                    IndexSet::interval(u64::from(u) * c, (u64::from(u) + 1) * c)
                }
                None => IndexSet::new(),
            },
            Self::OwnSlot { .. } => IndexSet::interval(w as u64, w as u64 + 1),
            Self::Shared { len } => IndexSet::interval(0, *len as u64),
            Self::ScatterSet { indices } => indices.clone(),
        }
    }

    /// Number of warps participating in this footprint.
    #[must_use]
    pub fn warps(&self) -> usize {
        match self {
            Self::DisjointChunks { n_warps, .. } | Self::OwnSlot { n_warps } => *n_warps,
            Self::ListedChunks { units, .. } => units.len(),
            Self::Shared { .. } | Self::ScatterSet { .. } => usize::MAX,
        }
    }

    /// Whether two footprints (on the same buffer, held by *different*
    /// warps) can touch a common index. For the structurally-partitioned
    /// shapes with identical geometry this is decided symbolically; mixed
    /// shapes fall back to interval intersection of the covered sets,
    /// which is conservative (may say "yes" for index sets that interleave
    /// without colliding) but never unsound.
    #[must_use]
    pub fn may_overlap_across_warps(&self, other: &Self) -> bool {
        if self == other && self.per_warp_disjoint() {
            // Same partition: warp w's set equals warp w's set; distinct
            // warps are disjoint by construction.
            return false;
        }
        self.covered().intersects(&other.covered())
    }
}

// ---------------------------------------------------------------------
// Buffer uses, launches, and merge specifications.
// ---------------------------------------------------------------------

/// What a footprint does to its buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessMode {
    /// Plain loads.
    Read,
    /// Plain stores.
    Write,
    /// Atomic read-modify-write.
    Atomic(AtomicKind),
}

/// What an atomic update computes — the distinction between *race-free*
/// and *schedule-independent*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicKind {
    /// Idempotent, order-independent set (e.g. `fetch_or` of frontier or
    /// touched bits): overlapping updates commute *and* absorb, so the
    /// final state is a pure function of the update set. Proves outright.
    IdempotentOr,
    /// Value-carrying reduction (e.g. CAS-loop float add): race-free, but
    /// the accumulation order — and therefore bit-exact floating-point
    /// results — depends on the schedule. Verdicts `NeedsAtomics`.
    Reduction,
}

/// One buffer touched by a launch: name, mode, and symbolic footprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferUse {
    /// Buffer id, matching the dynamic sanitizer's buffer labels.
    pub buf: &'static str,
    /// What the accesses do.
    pub mode: AccessMode,
    /// Who touches what.
    pub footprint: Footprint,
}

/// How the host consumes per-warp partial buffers after a launch barrier:
/// the assignment sequence `(unit, part, parts)` in consumption order,
/// plus the unit work list the merge must cover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSpec {
    /// `(unit, part, parts)` per consumed partial, in merge order.
    pub assignments: Vec<(u32, u32, u32)>,
    /// The strictly-increasing unit list the merge is expected to cover.
    pub units: Vec<u32>,
}

impl MergeSpec {
    /// The merge a [`BinPlan`] induces: warp scratch consumed in warp
    /// order, each warp's assignments in plan order.
    #[must_use]
    pub fn from_plan(plan: &BinPlan, units: &[u32]) -> Self {
        let mut assignments = Vec::with_capacity(plan.n_assignments());
        for w in 0..plan.n_warps() {
            for a in plan.warp(w) {
                assignments.push((a.unit, a.part, a.parts));
            }
        }
        Self {
            assignments,
            units: units.to_vec(),
        }
    }

    /// The trivial merge of unsplit per-warp buckets consumed in warp
    /// order (the direct scatter kernels): unit `i` contributes one
    /// partial, consumed once.
    #[must_use]
    pub fn one_bucket_per_unit(units: &[u32]) -> Self {
        Self {
            assignments: units.iter().map(|&u| (u, 0, 1)).collect(),
            units: units.to_vec(),
        }
    }
}

/// The symbolic summary of one kernel launch: every buffer it touches,
/// plus the host-side merge that consumes its partials (if any). The
/// launch is assumed barrier-terminated — the engine closes every launch
/// with a sanitizer barrier before the next phase reads its output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSummary {
    /// Kernel label, matching trace/sanitizer labels.
    pub label: String,
    /// Buffers touched.
    pub uses: Vec<BufferUse>,
    /// Host merge consuming this launch's per-warp partials.
    pub merge: Option<MergeSpec>,
}

// ---------------------------------------------------------------------
// Plan-construction errors: the grid asserts, surfaced before launch.
// ---------------------------------------------------------------------

/// A plan that could not be constructed — the same conditions the grid
/// launch primitives assert at run time, reported as recoverable errors
/// at plan time so the CLI fails before any kernel starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// `chunk_len` is zero (`check_chunked`'s first assert).
    ZeroChunk {
        /// Launch label.
        label: String,
    },
    /// Output length is not a multiple of `chunk_len` (`check_chunked`'s
    /// divisibility assert — a mis-sized padded buffer).
    NonDivisibleChunks {
        /// Launch label.
        label: String,
        /// Output buffer length.
        len: usize,
        /// Requested chunk width.
        chunk_len: usize,
    },
    /// The work list is not strictly increasing (`carve_worklist`).
    UnsortedWorklist {
        /// Launch label.
        label: String,
        /// The offending unit.
        unit: u32,
        /// Its predecessor in the list.
        prev: u32,
    },
    /// A work-list unit addresses a chunk past the end of the output
    /// buffer (`carve_worklist`).
    UnitOutOfRange {
        /// Launch label.
        label: String,
        /// The offending unit.
        unit: u32,
        /// Number of whole chunks the output holds.
        n_units: usize,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ZeroChunk { label } => {
                write!(f, "{label}: chunk_len must be positive")
            }
            Self::NonDivisibleChunks {
                label,
                len,
                chunk_len,
            } => write!(
                f,
                "{label}: output length {len} is not a multiple of chunk_len {chunk_len} \
                 ({} whole chunks + {} trailing elements); pad the buffer",
                len / chunk_len,
                len % chunk_len
            ),
            Self::UnsortedWorklist { label, unit, prev } => write!(
                f,
                "{label}: worklist must be strictly increasing (saw {unit} after {prev})"
            ),
            Self::UnitOutOfRange {
                label,
                unit,
                n_units,
            } => write!(
                f,
                "{label}: worklist unit {unit} out of range ({n_units} units)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// The [`Footprint::DisjointChunks`] constructor, rejecting exactly what
/// [`crate::grid::launch_over_chunks`] would panic on.
///
/// # Errors
///
/// [`PlanError::ZeroChunk`] when `chunk_len == 0`;
/// [`PlanError::NonDivisibleChunks`] when `len % chunk_len != 0`.
pub fn chunked(
    label: &str,
    buf: &'static str,
    mode: AccessMode,
    len: usize,
    chunk_len: usize,
) -> Result<BufferUse, PlanError> {
    if chunk_len == 0 {
        return Err(PlanError::ZeroChunk {
            label: label.to_string(),
        });
    }
    if !len.is_multiple_of(chunk_len) {
        return Err(PlanError::NonDivisibleChunks {
            label: label.to_string(),
            len,
            chunk_len,
        });
    }
    Ok(BufferUse {
        buf,
        mode,
        footprint: Footprint::DisjointChunks {
            n_warps: len / chunk_len,
            chunk_len,
        },
    })
}

/// The [`Footprint::ListedChunks`] constructor, rejecting exactly what
/// [`crate::grid::launch_over_worklist`] would panic on.
///
/// # Errors
///
/// Everything [`chunked`] rejects, plus
/// [`PlanError::UnsortedWorklist`] / [`PlanError::UnitOutOfRange`] for a
/// list that is not strictly increasing or addresses a chunk outside the
/// output buffer.
pub fn worklisted(
    label: &str,
    buf: &'static str,
    mode: AccessMode,
    len: usize,
    chunk_len: usize,
    worklist: &[u32],
) -> Result<BufferUse, PlanError> {
    // Same divisibility contract as the chunked launch.
    let base = chunked(label, buf, mode, len, chunk_len)?;
    let Footprint::DisjointChunks {
        n_warps: n_units, ..
    } = base.footprint
    else {
        unreachable!("chunked returns DisjointChunks")
    };
    let mut prev: Option<u32> = None;
    for &u in worklist {
        if let Some(p) = prev {
            if u <= p {
                return Err(PlanError::UnsortedWorklist {
                    label: label.to_string(),
                    unit: u,
                    prev: p,
                });
            }
        }
        if u as usize >= n_units {
            return Err(PlanError::UnitOutOfRange {
                label: label.to_string(),
                unit: u,
                n_units,
            });
        }
        prev = Some(u);
    }
    Ok(BufferUse {
        buf,
        mode,
        footprint: Footprint::ListedChunks {
            chunk_len,
            units: worklist.to_vec(),
        },
    })
}

/// The [`Footprint::OwnSlot`] constructor (per-warp scratch; infallible —
/// slot `w` is warp `w`'s by construction).
#[must_use]
pub fn slots(buf: &'static str, mode: AccessMode, n_warps: usize) -> BufferUse {
    BufferUse {
        buf,
        mode,
        footprint: Footprint::OwnSlot { n_warps },
    }
}

/// The [`Footprint::Shared`] constructor (broadcast reads, atomic
/// scatter).
#[must_use]
pub fn shared(buf: &'static str, mode: AccessMode, len: usize) -> BufferUse {
    BufferUse {
        buf,
        mode,
        footprint: Footprint::Shared { len },
    }
}

/// The [`Footprint::ScatterSet`] constructor: a scatter confined to the
/// chunks of `units` (width `chunk_len`), so its extent can be proved
/// apart from other footprints on the same buffer.
#[must_use]
pub fn scatter_units(
    buf: &'static str,
    mode: AccessMode,
    chunk_len: usize,
    units: &[u32],
) -> BufferUse {
    let c = chunk_len as u64;
    let mut indices = IndexSet::new();
    for &u in units {
        indices.insert(u64::from(u) * c, (u64::from(u) + 1) * c);
    }
    BufferUse {
        buf,
        mode,
        footprint: Footprint::ScatterSet { indices },
    }
}

// ---------------------------------------------------------------------
// Verdicts, obligations, reports.
// ---------------------------------------------------------------------

/// The outcome of discharging one obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The property holds as a pure function of the plan.
    Proved,
    /// The property holds *iff* the claimed atomics really are atomic
    /// (and, for reductions, iff the accumulation is order-insensitive).
    /// Must be justified by observed atomic claims in the dynamic log.
    NeedsAtomics,
    /// The analyzer could not discharge the obligation; the reason names
    /// the first blocking footprint.
    Unknown {
        /// Why the obligation could not be discharged.
        reason: String,
    },
}

impl Verdict {
    /// Metrics / JSON label: `"proved"`, `"needs-atomics"`, `"unknown"`.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Proved => "proved",
            Self::NeedsAtomics => "needs-atomics",
            Self::Unknown { .. } => "unknown",
        }
    }

    /// Severity rank for combining verdicts (higher is worse).
    #[must_use]
    pub fn severity(&self) -> u8 {
        match self {
            Self::Proved => 0,
            Self::NeedsAtomics => 1,
            Self::Unknown { .. } => 2,
        }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unknown { reason } => write!(f, "unknown ({reason})"),
            v => f.write_str(v.label()),
        }
    }
}

/// The three properties discharged per plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObligationKind {
    /// Distinct warps' writes are disjoint or atomic-mediated.
    WriteDisjointness,
    /// Each buffered partial is consumed exactly once, in a
    /// schedule-independent order.
    MergeDeterminism,
    /// No warp reads what another warp writes within a launch; cross-phase
    /// dependencies sit behind barriers.
    WorkspaceAliasing,
}

impl ObligationKind {
    /// JSON / report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::WriteDisjointness => "write-disjointness",
            Self::MergeDeterminism => "merge-determinism",
            Self::WorkspaceAliasing => "workspace-aliasing",
        }
    }
}

/// One discharged obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Obligation {
    /// Which property.
    pub kind: ObligationKind,
    /// The outcome.
    pub verdict: Verdict,
    /// Human-readable account of *why* (the proof sketch or the blocker).
    pub detail: String,
}

/// The verifier's account of one plan: the launches analyzed and the
/// three obligations with their verdicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanReport {
    /// Plan label (kernel + balance + format, as the caller names it).
    pub plan: String,
    /// Labels of the launches analyzed, in phase order.
    pub launches: Vec<String>,
    /// The three obligations, in [`ObligationKind`] order.
    pub obligations: Vec<Obligation>,
}

impl PlanReport {
    /// The worst verdict across all obligations.
    #[must_use]
    pub fn overall(&self) -> &Verdict {
        self.obligations
            .iter()
            .map(|o| &o.verdict)
            .max_by_key(|v| v.severity())
            .unwrap_or(&Verdict::Proved)
    }

    /// True when every obligation proved.
    #[must_use]
    pub fn is_proved(&self) -> bool {
        matches!(self.overall(), Verdict::Proved)
    }

    /// `(proved, needs_atomics, unknown)` obligation counts.
    #[must_use]
    pub fn counts(&self) -> (u64, u64, u64) {
        let mut c = (0, 0, 0);
        for o in &self.obligations {
            match o.verdict {
                Verdict::Proved => c.0 += 1,
                Verdict::NeedsAtomics => c.1 += 1,
                Verdict::Unknown { .. } => c.2 += 1,
            }
        }
        c
    }
}

impl fmt::Display for PlanReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan {}: {} ({} launches)",
            self.plan,
            self.overall(),
            self.launches.len()
        )?;
        for o in &self.obligations {
            writeln!(f, "  {:<19} {:<13} {}", o.kind.label(), o.verdict, o.detail)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The verifier.
// ---------------------------------------------------------------------

fn combine(worst: &mut Verdict, v: Verdict) {
    if v.severity() > worst.severity() {
        *worst = v;
    }
}

/// Obligation 1: warp-level write-disjointness, or atomic mediation of
/// every overlapping update.
fn check_write_disjointness(launches: &[LaunchSummary]) -> Obligation {
    let mut verdict = Verdict::Proved;
    let mut notes: Vec<String> = Vec::new();
    for l in launches {
        // Pairwise over all mutating uses of the same buffer (a single
        // Shared use also conflicts with itself across warps).
        let muts: Vec<&BufferUse> = l
            .uses
            .iter()
            .filter(|u| !matches!(u.mode, AccessMode::Read))
            .collect();
        for (i, a) in muts.iter().enumerate() {
            for b in &muts[i..] {
                if a.buf != b.buf {
                    continue;
                }
                let self_pair = std::ptr::eq(*a, *b);
                let overlap = if self_pair {
                    !a.footprint.per_warp_disjoint()
                } else {
                    a.footprint.may_overlap_across_warps(&b.footprint)
                };
                if !overlap {
                    continue;
                }
                if let (AccessMode::Atomic(ka), AccessMode::Atomic(kb)) = (a.mode, b.mode) {
                    if ka == AtomicKind::IdempotentOr && kb == AtomicKind::IdempotentOr {
                        notes.push(format!(
                            "{}: overlapping `{}` updates are idempotent atomic ORs \
                             (order-independent)",
                            l.label, a.buf
                        ));
                    } else {
                        combine(&mut verdict, Verdict::NeedsAtomics);
                        notes.push(format!(
                            "{}: overlapping `{}` updates are atomic reductions — \
                             race-free iff atomic, accumulation order schedule-dependent",
                            l.label, a.buf
                        ));
                    }
                } else {
                    let witness = a
                        .footprint
                        .covered()
                        .first_overlap(&b.footprint.covered())
                        .unwrap_or(0);
                    combine(
                        &mut verdict,
                        Verdict::Unknown {
                            reason: format!(
                                "{}: plain writes to `{}` may collide across warps \
                                 (first shared index {witness})",
                                l.label, a.buf
                            ),
                        },
                    );
                }
            }
        }
    }
    let detail = match &verdict {
        Verdict::Proved if notes.is_empty() => {
            "every write footprint is partition-disjoint by construction".to_string()
        }
        Verdict::Proved => format!("write footprints partition-disjoint; {}", notes.join("; ")),
        Verdict::NeedsAtomics | Verdict::Unknown { .. } => notes.join("; "),
    };
    Obligation {
        kind: ObligationKind::WriteDisjointness,
        verdict,
        detail,
    }
}

/// Obligation 2: each buffered partial consumed exactly once, in
/// ascending part order per unit, covering the work list exactly.
fn check_merge_determinism(launches: &[LaunchSummary]) -> Obligation {
    let mut verdict = Verdict::Proved;
    let mut notes: Vec<String> = Vec::new();
    let mut merges = 0usize;
    for l in launches {
        let Some(merge) = &l.merge else { continue };
        merges += 1;
        // Walk partials in consumption order; per unit, parts must be
        // exactly 0..parts, in order, each consumed once.
        let mut seen: Vec<(u32, u32, u32)> = Vec::new(); // (unit, next_part, parts)
        let fail = |reason: String, verdict: &mut Verdict| {
            combine(verdict, Verdict::Unknown { reason });
        };
        for &(unit, part, parts) in &merge.assignments {
            match seen.iter_mut().find(|(u, ..)| *u == unit) {
                None => {
                    if part != 0 {
                        fail(
                            format!(
                                "{}: unit {unit} merge starts at part {part}, not 0",
                                l.label
                            ),
                            &mut verdict,
                        );
                    }
                    seen.push((unit, part + 1, parts));
                }
                Some((_, next, declared)) => {
                    if parts != *declared {
                        fail(
                            format!(
                                "{}: unit {unit} declares {parts} parts after {declared}",
                                l.label
                            ),
                            &mut verdict,
                        );
                    } else if part != *next {
                        fail(
                            format!(
                                "{}: unit {unit} consumes part {part} out of order \
                                 (expected {next})",
                                l.label
                            ),
                            &mut verdict,
                        );
                    }
                    *next = next.saturating_add(1).max(part + 1);
                }
            }
        }
        for &(unit, consumed, parts) in &seen {
            if consumed != parts {
                fail(
                    format!(
                        "{}: unit {unit} consumed {consumed} of {parts} partials",
                        l.label
                    ),
                    &mut verdict,
                );
            }
        }
        // Coverage: the merged units must be exactly the work list.
        let merged: Vec<u32> = seen.iter().map(|&(u, ..)| u).collect();
        if merged != merge.units {
            fail(
                format!(
                    "{}: merge covers {} units, work list has {}",
                    l.label,
                    merged.len(),
                    merge.units.len()
                ),
                &mut verdict,
            );
        }
        if matches!(verdict, Verdict::Proved) {
            notes.push(format!(
                "{}: {} partials over {} units consumed exactly once in part order",
                l.label,
                merge.assignments.len(),
                merge.units.len()
            ));
        }
    }
    let detail = match (&verdict, merges) {
        (Verdict::Proved, 0) => "plan buffers no partials; nothing to merge".to_string(),
        (Verdict::Proved, _) => format!(
            "merge order is a pure function of the plan; {}",
            notes.join("; ")
        ),
        _ => notes.join("; "),
    };
    Obligation {
        kind: ObligationKind::MergeDeterminism,
        verdict,
        detail,
    }
}

/// Obligation 3: no warp's read footprint overlaps another warp's write
/// footprint on the same buffer within a launch; cross-launch write→read
/// dependencies are barrier-separated (structurally true — every launch
/// summary is barrier-terminated).
fn check_workspace_aliasing(launches: &[LaunchSummary]) -> Obligation {
    let mut verdict = Verdict::Proved;
    let mut notes: Vec<String> = Vec::new();
    for l in launches {
        for r in l.uses.iter().filter(|u| u.mode == AccessMode::Read) {
            for w in &l.uses {
                if w.buf != r.buf || matches!(w.mode, AccessMode::Read) {
                    continue;
                }
                // Same-warp read-after-own-write is fine; the question is
                // whether warp i can read what warp j != i mutates.
                if r.footprint.may_overlap_across_warps(&w.footprint) {
                    match w.mode {
                        AccessMode::Atomic(_) => {
                            combine(&mut verdict, Verdict::NeedsAtomics);
                            notes.push(format!(
                                "{}: plain reads of `{}` observe concurrent atomic \
                                 updates — value is schedule-dependent",
                                l.label, r.buf
                            ));
                        }
                        _ => {
                            combine(
                                &mut verdict,
                                Verdict::Unknown {
                                    reason: format!(
                                        "{}: `{}` is read and written by different \
                                         warps in the same launch",
                                        l.label, r.buf
                                    ),
                                },
                            );
                        }
                    }
                }
            }
        }
    }
    let detail = match &verdict {
        Verdict::Proved => format!(
            "in-launch reads never alias another warp's writes; {} cross-launch \
             dependencies are barrier-separated (one barrier per launch)",
            launches.len().saturating_sub(1)
        ),
        _ => notes.join("; "),
    };
    Obligation {
        kind: ObligationKind::WorkspaceAliasing,
        verdict,
        detail,
    }
}

/// Discharges the three obligations over a plan's launch sequence and
/// counts each verdict on the metrics registry
/// (`tsv_simt_plan_obligations_total{verdict="..."}`).
#[must_use]
pub fn verify(plan: &str, launches: &[LaunchSummary]) -> PlanReport {
    let obligations = vec![
        check_write_disjointness(launches),
        check_merge_determinism(launches),
        check_workspace_aliasing(launches),
    ];
    let registry = metrics::global();
    for o in &obligations {
        registry
            .counter(&metrics::series(
                "tsv_simt_plan_obligations_total",
                &[("verdict", o.verdict.label())],
            ))
            .inc();
    }
    PlanReport {
        plan: plan.to_string(),
        launches: launches.iter().map(|l| l.label.clone()).collect(),
        obligations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn launch(label: &str, uses: Vec<BufferUse>) -> LaunchSummary {
        LaunchSummary {
            label: label.to_string(),
            uses,
            merge: None,
        }
    }

    #[test]
    fn index_set_normalizes_and_merges() {
        let mut s = IndexSet::new();
        s.insert(10, 20);
        s.insert(0, 5);
        s.insert(5, 10); // adjacent: merges into [0, 20)
        assert_eq!(s.runs(), &[(0, 20)]);
        assert_eq!(s.len(), 20);
        s.insert(30, 40);
        s.insert(15, 35); // bridges both runs
        assert_eq!(s.runs(), &[(0, 40)]);
        s.insert(50, 50); // empty: no-op
        assert_eq!(s.runs(), &[(0, 40)]);
    }

    #[test]
    fn index_set_overlap_witness() {
        let a = IndexSet::interval(0, 10);
        let b = IndexSet::interval(8, 12);
        assert_eq!(a.first_overlap(&b), Some(8));
        assert!(a.intersects(&b));
        let c = IndexSet::interval(10, 12);
        assert_eq!(a.first_overlap(&c), None, "half-open: [0,10) vs [10,12)");
        assert!(!a.intersects(&c));
        assert!(IndexSet::new().is_empty());
    }

    #[test]
    fn chunked_mirrors_grid_asserts_as_errors() {
        // The run-time panic in `grid::check_chunked`, surfaced at plan
        // time: the CLI can report this before any kernel launches.
        let err = chunked("spmspv/row-tile", "y", AccessMode::Write, 25, 10).unwrap_err();
        assert_eq!(
            err,
            PlanError::NonDivisibleChunks {
                label: "spmspv/row-tile".into(),
                len: 25,
                chunk_len: 10
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("spmspv/row-tile"), "{msg}");
        assert!(msg.contains("2 whole chunks"), "{msg}");
        assert!(msg.contains("5 trailing elements"), "{msg}");

        let err = chunked("k", "y", AccessMode::Write, 10, 0).unwrap_err();
        assert!(matches!(err, PlanError::ZeroChunk { .. }));

        let ok = chunked("k", "y", AccessMode::Write, 30, 10).unwrap();
        assert_eq!(
            ok.footprint,
            Footprint::DisjointChunks {
                n_warps: 3,
                chunk_len: 10
            }
        );
    }

    #[test]
    fn worklisted_mirrors_carve_asserts_as_errors() {
        let err = worklisted("k", "y", AccessMode::Write, 30, 10, &[2, 1]).unwrap_err();
        assert!(
            matches!(
                err,
                PlanError::UnsortedWorklist {
                    unit: 1,
                    prev: 2,
                    ..
                }
            ),
            "{err:?}"
        );
        let err = worklisted("k", "y", AccessMode::Write, 30, 10, &[3]).unwrap_err();
        assert!(matches!(
            err,
            PlanError::UnitOutOfRange {
                unit: 3,
                n_units: 3,
                ..
            }
        ));
        assert!(err.to_string().contains("out of range"));
        let ok = worklisted("k", "y", AccessMode::Write, 30, 10, &[0, 2]).unwrap();
        assert!(ok.footprint.per_warp_disjoint());
        assert_eq!(ok.footprint.covered().runs(), &[(0, 10), (20, 30)]);
    }

    #[test]
    fn footprint_per_warp_sets() {
        let f = Footprint::DisjointChunks {
            n_warps: 4,
            chunk_len: 8,
        };
        assert_eq!(f.warp_set(1).runs(), &[(8, 16)]);
        assert_eq!(f.warps(), 4);
        let f = Footprint::ListedChunks {
            chunk_len: 4,
            units: vec![1, 5],
        };
        assert_eq!(f.warp_set(0).runs(), &[(4, 8)]);
        assert_eq!(f.warp_set(1).runs(), &[(20, 24)]);
        assert!(f.warp_set(2).is_empty());
        let f = Footprint::OwnSlot { n_warps: 3 };
        assert_eq!(f.warp_set(2).runs(), &[(2, 3)]);
        assert_eq!(f.covered().len(), 3);
    }

    #[test]
    fn identical_partitions_never_overlap_across_warps() {
        let a = Footprint::DisjointChunks {
            n_warps: 4,
            chunk_len: 8,
        };
        assert!(!a.may_overlap_across_warps(&a.clone()));
        let s = Footprint::Shared { len: 32 };
        assert!(a.may_overlap_across_warps(&s));
        assert!(s.may_overlap_across_warps(&s.clone()));
    }

    #[test]
    fn disjoint_writes_prove_all_three_obligations() {
        let l = launch(
            "spmspv/row-tile",
            vec![
                chunked("spmspv/row-tile", "y", AccessMode::Write, 64, 16).unwrap(),
                shared("x-tiles", AccessMode::Read, 4),
                shared("touched", AccessMode::Atomic(AtomicKind::IdempotentOr), 1),
            ],
        );
        let r = verify("row-tile/direct", &[l]);
        assert!(r.is_proved(), "{r}");
        assert_eq!(r.counts(), (3, 0, 0));
        assert_eq!(r.launches, vec!["spmspv/row-tile"]);
        for o in &r.obligations {
            assert_eq!(
                o.verdict,
                Verdict::Proved,
                "{}: {}",
                o.kind.label(),
                o.detail
            );
        }
    }

    #[test]
    fn idempotent_or_scatter_proves_but_reduction_needs_atomics() {
        // BFS frontier: fetch_or scatter — order-independent, proved.
        let or = launch(
            "bfs/push-csc",
            vec![
                shared("mask", AccessMode::Read, 8),
                shared(
                    "y-frontier",
                    AccessMode::Atomic(AtomicKind::IdempotentOr),
                    8,
                ),
            ],
        );
        let r = verify("bfs/push", &[or]);
        assert!(r.is_proved(), "{r}");
        assert!(r.obligations[0].detail.contains("idempotent"), "{r}");

        // Atomic float-add scatter: race-free, order schedule-dependent.
        let red = launch(
            "demo/atomic-add",
            vec![shared("y", AccessMode::Atomic(AtomicKind::Reduction), 8)],
        );
        let r = verify("demo/reduction", &[red]);
        assert_eq!(*r.overall(), Verdict::NeedsAtomics, "{r}");
        assert_eq!(r.overall().label(), "needs-atomics");
    }

    #[test]
    fn overlapping_plain_writes_are_unknown_with_witness() {
        let l = launch("demo/racy", vec![shared("y", AccessMode::Write, 16)]);
        let r = verify("demo/racy", &[l]);
        match r.overall() {
            Verdict::Unknown { reason } => {
                assert!(reason.contains('y'), "{reason}");
                assert!(reason.contains("shared index"), "{reason}");
            }
            v => panic!("expected unknown, got {v}"),
        }
        assert_eq!(r.counts().2, 1);
    }

    #[test]
    fn mixed_write_partitions_with_disjoint_extents_prove() {
        // Two different partition shapes over non-overlapping ranges of
        // the same buffer: interval reasoning proves them apart.
        let l = launch(
            "demo/mixed",
            vec![
                BufferUse {
                    buf: "y",
                    mode: AccessMode::Write,
                    footprint: Footprint::ListedChunks {
                        chunk_len: 4,
                        units: vec![0, 1],
                    },
                },
                BufferUse {
                    buf: "y",
                    mode: AccessMode::Write,
                    footprint: Footprint::ListedChunks {
                        chunk_len: 4,
                        units: vec![2, 3],
                    },
                },
            ],
        );
        let r = verify("demo/mixed", &[l]);
        assert!(r.is_proved(), "{r}");
    }

    #[test]
    fn bin_plan_merge_is_deterministic() {
        let mut plan = BinPlan::new();
        let units = [0u32, 1, 2, 7];
        // Unit 2 is heavy (weight 50 at target 10 → split into parts).
        plan.rebuild(&units, |u| if u == 2 { 50 } else { 3 }, 10, 8);
        let mut l = launch(
            "spmspv/row-tile-binned",
            vec![slots("contribs", AccessMode::Write, plan.n_warps())],
        );
        l.merge = Some(MergeSpec::from_plan(&plan, &units));
        let r = verify("row-tile/binned", &[l]);
        assert!(r.is_proved(), "{r}");
        assert!(
            r.obligations[1]
                .detail
                .contains("pure function of the plan"),
            "{r}"
        );
    }

    #[test]
    fn merge_violations_are_unknown() {
        let base = |assignments: Vec<(u32, u32, u32)>, units: Vec<u32>| {
            let mut l = launch("demo/merge", vec![slots("contribs", AccessMode::Write, 4)]);
            l.merge = Some(MergeSpec { assignments, units });
            verify("demo/merge", &[l])
        };
        // Part consumed out of order.
        let r = base(vec![(0, 1, 2), (0, 0, 2)], vec![0]);
        assert!(
            matches!(r.obligations[1].verdict, Verdict::Unknown { .. }),
            "{r}"
        );
        // Partial consumed twice.
        let r = base(vec![(0, 0, 1), (0, 0, 1)], vec![0]);
        assert!(
            matches!(r.obligations[1].verdict, Verdict::Unknown { .. }),
            "{r}"
        );
        // Partial missing.
        let r = base(vec![(0, 0, 2)], vec![0]);
        assert!(
            matches!(r.obligations[1].verdict, Verdict::Unknown { .. }),
            "{r}"
        );
        // Unit not on the work list.
        let r = base(vec![(0, 0, 1), (3, 0, 1)], vec![0]);
        assert!(
            matches!(r.obligations[1].verdict, Verdict::Unknown { .. }),
            "{r}"
        );
        // Declared parts disagree between assignments.
        let r = base(vec![(0, 0, 2), (0, 1, 3)], vec![0]);
        assert!(
            matches!(r.obligations[1].verdict, Verdict::Unknown { .. }),
            "{r}"
        );
        // The clean trivial merge proves.
        let r = base(vec![(0, 0, 1), (2, 0, 1)], vec![0, 2]);
        assert_eq!(r.obligations[1].verdict, Verdict::Proved, "{r}");
    }

    #[test]
    fn one_bucket_per_unit_merge_proves() {
        let mut l = launch(
            "spmspv/col-tile",
            vec![slots("contribs", AccessMode::Write, 3)],
        );
        l.merge = Some(MergeSpec::one_bucket_per_unit(&[1, 4, 9]));
        let r = verify("col-tile/direct", &[l]);
        assert!(r.is_proved(), "{r}");
    }

    #[test]
    fn cross_warp_read_write_aliasing_detected() {
        // Every warp reads the whole buffer one warp is writing.
        let l = launch(
            "demo/alias",
            vec![
                chunked("demo/alias", "buf", AccessMode::Write, 16, 4).unwrap(),
                shared("buf", AccessMode::Read, 16),
            ],
        );
        let r = verify("demo/alias", &[l]);
        assert!(
            matches!(r.obligations[2].verdict, Verdict::Unknown { .. }),
            "{r}"
        );
        // Reads of a *different* buffer do not alias.
        let l = launch(
            "demo/clean",
            vec![
                chunked("demo/clean", "y", AccessMode::Write, 16, 4).unwrap(),
                shared("x", AccessMode::Read, 16),
            ],
        );
        assert!(verify("demo/clean", &[l]).is_proved());
    }

    #[test]
    fn split_scatter_proves_apart_from_exclusive_stores() {
        // push-CSR: unsplit row tiles own their output word (plain store),
        // split row tiles share theirs (atomic OR). The extents are
        // provably disjoint, so the mixed launch proves.
        let l = launch(
            "bfs/push-csr",
            vec![
                shared("mask", AccessMode::Read, 8),
                worklisted(
                    "bfs/push-csr",
                    "y-frontier",
                    AccessMode::Write,
                    8,
                    1,
                    &[0, 1, 3],
                )
                .unwrap(),
                scatter_units(
                    "y-frontier",
                    AccessMode::Atomic(AtomicKind::IdempotentOr),
                    1,
                    &[2, 4],
                ),
            ],
        );
        let r = verify("bfs/push-csr", &[l]);
        assert!(r.is_proved(), "{r}");

        // If a split word were ALSO plain-stored, the collision surfaces.
        let l = launch(
            "bfs/push-csr",
            vec![
                worklisted(
                    "bfs/push-csr",
                    "y-frontier",
                    AccessMode::Write,
                    8,
                    1,
                    &[0, 2],
                )
                .unwrap(),
                scatter_units(
                    "y-frontier",
                    AccessMode::Atomic(AtomicKind::IdempotentOr),
                    1,
                    &[2, 4],
                ),
            ],
        );
        let r = verify("bfs/push-csr", &[l]);
        assert!(matches!(r.overall(), Verdict::Unknown { .. }), "{r}");
    }

    #[test]
    fn reads_of_atomic_targets_need_atomics() {
        let l = launch(
            "demo/atomic-read",
            vec![
                shared("f", AccessMode::Atomic(AtomicKind::IdempotentOr), 8),
                shared("f", AccessMode::Read, 8),
            ],
        );
        let r = verify("demo/atomic-read", &[l]);
        assert_eq!(r.obligations[2].verdict, Verdict::NeedsAtomics, "{r}");
    }

    #[test]
    fn verify_counts_obligations_on_the_registry() {
        let reg = metrics::global();
        let proved = reg.counter("tsv_simt_plan_obligations_total{verdict=\"proved\"}");
        let before = proved.get();
        let l = launch(
            "spmspv/row-tile",
            vec![chunked("spmspv/row-tile", "y", AccessMode::Write, 32, 16).unwrap()],
        );
        let r = verify("metrics-probe", &[l]);
        assert!(r.is_proved());
        assert!(
            proved.get() >= before + 3 || !reg.is_enabled(),
            "three proved obligations recorded"
        );
    }

    #[test]
    fn report_display_names_everything() {
        let l = launch(
            "spmspv/row-tile",
            vec![chunked("spmspv/row-tile", "y", AccessMode::Write, 32, 16).unwrap()],
        );
        let r = verify("row-tile/direct/tilecsr", &[l]);
        let s = r.to_string();
        assert!(s.contains("row-tile/direct/tilecsr"), "{s}");
        assert!(s.contains("write-disjointness"), "{s}");
        assert!(s.contains("merge-determinism"), "{s}");
        assert!(s.contains("workspace-aliasing"), "{s}");
        assert!(s.contains("proved"), "{s}");
    }

    #[test]
    fn empty_plan_proves_vacuously() {
        let r = verify("empty", &[]);
        assert!(r.is_proved());
        assert_eq!(r.counts(), (3, 0, 0));
    }
}
