//! Cross-crate tests of the application layer on the evaluation suite:
//! the algorithms must agree with each other and with first principles on
//! realistic matrices, not just toy graphs.

use tilespmspv::apps::cc::component_count;
use tilespmspv::apps::rcm::{bandwidth, permute_symmetric, rcm_order};
use tilespmspv::apps::{
    betweenness, betweenness_msbfs, connected_components, multi_source_bfs, pagerank, sssp,
    PageRankOptions,
};
use tilespmspv::prelude::*;
use tilespmspv::sparse::reference::bfs_levels;
use tilespmspv::sparse::suite::{by_name, SuiteScale};

#[test]
fn components_agree_with_repeated_bfs() {
    let a = by_name("roadNet-TX", SuiteScale::Tiny).unwrap().matrix;
    let labels = connected_components(&a).unwrap();

    // Count components by repeated BFS.
    let mut seen = vec![false; a.nrows()];
    let mut count = 0;
    for v in 0..a.nrows() {
        if !seen[v] {
            count += 1;
            for (u, &l) in bfs_levels(&a, v).unwrap().iter().enumerate() {
                if l >= 0 {
                    seen[u] = true;
                }
            }
        }
    }
    assert_eq!(component_count(&labels), count);
}

#[test]
fn sssp_on_unit_weights_matches_tile_bfs() {
    let a = by_name("cavity23", SuiteScale::Tiny).unwrap().matrix;
    // Re-weight every entry to 1.0 (cavity values vary).
    let mut coo = tilespmspv::sparse::CooMatrix::new(a.nrows(), a.ncols());
    for (r, c, _) in a.iter() {
        coo.push(r, c, 1.0);
    }
    let unit = coo.to_csr();

    let g = TileBfsGraph::from_csr(&unit).unwrap();
    let levels = tile_bfs(&g, 0, BfsOptions::default()).unwrap().levels;
    let dist = sssp(&unit, 0).unwrap();
    for v in 0..unit.nrows() {
        if levels[v] >= 0 {
            assert_eq!(dist[v], f64::from(levels[v]), "vertex {v}");
        } else {
            assert!(dist[v].is_infinite());
        }
    }
}

#[test]
fn msbfs_matches_tile_bfs_on_suite_matrix() {
    let a = by_name("333SP", SuiteScale::Tiny).unwrap().matrix;
    let g = TileBfsGraph::from_csr(&a).unwrap();
    let sources: Vec<usize> = (0..24).map(|i| (i * 97) % a.nrows()).collect();
    let batched = multi_source_bfs(&a, &sources).unwrap();
    for (i, &s) in sources.iter().enumerate().step_by(5) {
        let single = tile_bfs(&g, s, BfsOptions::default()).unwrap().levels;
        assert_eq!(batched[i], single, "source {s}");
    }
}

#[test]
fn rcm_improves_tiling_of_a_scrambled_suite_matrix() {
    // Scramble the road analog's labels, then recover locality with RCM.
    let a = by_name("roadNet-TX", SuiteScale::Tiny).unwrap().matrix;
    let n = a.nrows();
    let mut relabel: Vec<usize> = (0..n).collect();
    let mut state = 12345u64;
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        relabel.swap(i, (state >> 33) as usize % (i + 1));
    }
    let mut coo = tilespmspv::sparse::CooMatrix::new(n, n);
    for (r, c, v) in a.iter() {
        coo.push(relabel[r], relabel[c], v);
    }
    let scrambled = coo.to_csr();

    let perm = rcm_order(&scrambled).unwrap();
    let reordered = permute_symmetric(&scrambled, &perm);
    assert!(bandwidth(&reordered) < bandwidth(&scrambled) / 2);

    let tiles_before = tilespmspv::core::tile::tile_count(&scrambled, 16);
    let tiles_after = tilespmspv::core::tile::tile_count(&reordered, 16);
    assert!(
        tiles_after < tiles_before,
        "RCM should reduce tile count: {tiles_before} -> {tiles_after}"
    );
}

#[test]
fn pagerank_is_stochastic_on_a_web_graph() {
    let a = by_name("in-2004", SuiteScale::Tiny).unwrap().matrix;
    let (pr, iters) = pagerank(&a, PageRankOptions::default()).unwrap();
    assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-6);
    assert!(iters > 2 && iters < 200);
    assert!(pr.iter().all(|&r| r >= 0.0));
}

#[test]
fn both_betweenness_variants_agree_on_a_mesh() {
    let a = by_name("cavity23", SuiteScale::Tiny).unwrap().matrix;
    let sources: Vec<usize> = (0..40).map(|i| (i * 9) % a.nrows()).collect();
    let plain = betweenness(&a, &sources).unwrap();
    let batched = betweenness_msbfs(&a, &sources).unwrap();
    for (v, (p, b)) in plain.iter().zip(&batched).enumerate() {
        assert!((p - b).abs() < 1e-6, "vertex {v}: {p} vs {b}");
    }
}
