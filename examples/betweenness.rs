//! Betweenness centrality on top of TileBFS (Brandes' algorithm).
//!
//! Betweenness is the second graph application the paper's introduction
//! motivates (via Solomonik et al., SC '17). The implementation lives in
//! `tilespmspv::apps::bc`; this example runs the sampled approximation on
//! a power-law graph and shows that hubs dominate.
//!
//! ```text
//! cargo run --release --example betweenness
//! ```

use tilespmspv::apps::betweenness;
use tilespmspv::sparse::gen::{rmat, RmatConfig};

fn main() {
    let a = rmat(RmatConfig::new(12, 8), 11).to_csr();
    let n = a.nrows();
    println!("graph: {} vertices, {} edges", n, a.nnz());

    // Approximate BC: sample K sources (exact would pass all n).
    let k = 32;
    let sources: Vec<usize> = (0..k)
        .map(|i| (i * n / k) % n)
        .filter(|&v| a.row_nnz(v) > 0)
        .collect();
    let bc = betweenness(&a, &sources).expect("square input");

    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by(|&x, &y| bc[y].total_cmp(&bc[x]));
    println!(
        "top 10 vertices by (sampled, {}-source) betweenness:",
        sources.len()
    );
    for &v in ranked.iter().take(10) {
        println!(
            "  vertex {:>6}: bc = {:>12.1}, degree = {}",
            v,
            bc[v],
            a.row_nnz(v)
        );
    }

    let avg_deg = a.nnz() as f64 / n as f64;
    assert!(
        a.row_nnz(ranked[0]) as f64 > avg_deg,
        "top-betweenness vertex should be better connected than average"
    );
}
