//! Multi-source BFS: up to 64 sources sharing one traversal.
//!
//! The paper stores frontiers as machine words of vertex bits; MS-BFS
//! (Then et al., VLDB '14) transposes that idea — one word *per vertex*,
//! bit `i` meaning "reached from source `i`". All 64 traversals then share
//! every adjacency read, which is exactly the batched regime (per-source
//! BFS from many roots) that betweenness centrality and all-pairs
//! estimators run. A natural extension of the paper's bitmask machinery.
//!
//! The traversal itself lives in [`BatchedBfsEngine`] in `tsv-core::exec`:
//! the engine owns the round-to-round workspace and routes the expansion
//! through the execution [`Backend`](tsv_simt::backend::Backend)
//! abstraction (this module's previous ad-hoc rayon round buffers moved
//! there wholesale). These free functions remain the one-shot entry
//! points; the regression tests below pin that the engine reproduces the
//! round-buffer implementation's levels exactly.

use std::sync::Arc;
use tsv_core::exec::BatchedBfsEngine;
use tsv_simt::trace::Tracer;
use tsv_sparse::{CsrMatrix, SparseError};

/// Runs up to 64 concurrent BFS traversals. Returns `levels[s][v]`: the
/// level of vertex `v` from `sources[s]` (`-1` when unreachable).
pub fn multi_source_bfs(
    a: &CsrMatrix<f64>,
    sources: &[usize],
) -> Result<Vec<Vec<i32>>, SparseError> {
    multi_source_bfs_traced(a, sources, None)
}

/// [`multi_source_bfs`] with run telemetry: each shared level records one
/// iteration event whose `frontier`/`discovered`/`unvisited` count
/// (vertex, source) *pairs* across all concurrent traversals.
pub fn multi_source_bfs_traced(
    a: &CsrMatrix<f64>,
    sources: &[usize],
    tracer: Option<Arc<Tracer>>,
) -> Result<Vec<Vec<i32>>, SparseError> {
    let mut engine = BatchedBfsEngine::new();
    engine.set_tracer(tracer);
    engine.run(a, sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_simt::backend::ExecBackend;
    use tsv_sparse::gen::{geometric_graph, grid2d, rmat, uniform_random, RmatConfig};
    use tsv_sparse::reference::bfs_levels;

    #[test]
    fn matches_single_source_bfs_for_every_source() {
        let a = grid2d(14, 11).to_csr().without_diagonal();
        let sources: Vec<usize> = (0..10).map(|i| i * 15).collect();
        let all = multi_source_bfs(&a, &sources).unwrap();
        for (i, &s) in sources.iter().enumerate() {
            assert_eq!(all[i], bfs_levels(&a, s).unwrap(), "source {s}");
        }
    }

    #[test]
    fn sixty_four_sources_on_a_road_graph() {
        let a = geometric_graph(800, 4.0, 4).to_csr();
        let sources: Vec<usize> = (0..64).map(|i| (i * 12) % 800).collect();
        let all = multi_source_bfs(&a, &sources).unwrap();
        for (i, &s) in sources.iter().enumerate().step_by(13) {
            assert_eq!(all[i], bfs_levels(&a, s).unwrap(), "source {s}");
        }
    }

    #[test]
    fn duplicate_sources_yield_identical_rows() {
        let a = rmat(RmatConfig::new(7, 6), 2).to_csr();
        let s = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let all = multi_source_bfs(&a, &[s, s, s]).unwrap();
        assert_eq!(all[0], all[1]);
        assert_eq!(all[1], all[2]);
    }

    #[test]
    fn empty_source_list() {
        let a = grid2d(4, 4).to_csr();
        assert!(multi_source_bfs(&a, &[]).unwrap().is_empty());
    }

    #[test]
    fn validates_inputs() {
        let a = grid2d(4, 4).to_csr();
        assert!(multi_source_bfs(&a, &[99]).is_err());
    }

    #[test]
    #[should_panic(expected = "64")]
    fn too_many_sources_panics() {
        let a = grid2d(4, 4).to_csr();
        let sources: Vec<usize> = (0..65).map(|i| i % 16).collect();
        let _ = multi_source_bfs(&a, &sources);
    }

    /// The original round-buffer implementation this module shipped before
    /// the traversal moved into [`BatchedBfsEngine`], kept verbatim (minus
    /// telemetry and the rayon fan-out, which never affected results: OR
    /// merge is commutative and idempotent) as the regression oracle.
    fn round_buffer_msbfs(a: &CsrMatrix<f64>, sources: &[usize]) -> Vec<Vec<i32>> {
        let n = a.nrows();
        let k = sources.len();
        let mut levels = vec![vec![-1i32; n]; k];
        let mut seen = vec![0u64; n];
        let mut front = vec![0u64; n];
        for (i, &s) in sources.iter().enumerate() {
            seen[s] |= 1 << i;
            front[s] |= 1 << i;
            levels[i][s] = 0;
        }
        let mut level = 0i32;
        let mut active: Vec<u32> = sources.iter().map(|&s| s as u32).collect();
        active.sort_unstable();
        active.dedup();
        let mut next = vec![0u64; n];
        while !active.is_empty() {
            level += 1;
            next.fill(0);
            for &u in &active {
                let fu = front[u as usize];
                let (nbrs, _) = a.row(u as usize);
                for &v in nbrs {
                    let fresh = fu & !seen[v as usize];
                    if fresh != 0 {
                        next[v as usize] |= fu;
                    }
                }
            }
            for &u in &active {
                front[u as usize] = 0;
            }
            active.clear();
            for v in 0..n {
                let fresh = next[v] & !seen[v];
                if fresh != 0 {
                    seen[v] |= fresh;
                    front[v] = fresh;
                    for (i, lv) in levels.iter_mut().enumerate().take(k) {
                        if fresh >> i & 1 == 1 {
                            lv[v] = level;
                        }
                    }
                    active.push(v as u32);
                }
            }
        }
        levels
    }

    /// A graph with several components plus isolated vertices: sources in
    /// different components must never see each other, and unreachable
    /// rows stay all `-1`.
    fn disconnected_fixture() -> CsrMatrix<f64> {
        let mut edges: Vec<(u32, u32)> = Vec::new();
        // Component 1: an 8-cycle over 0..8.
        for i in 0..8u32 {
            edges.push((i, (i + 1) % 8));
        }
        // Component 2: a path over 20..30.
        for i in 20..29u32 {
            edges.push((i, i + 1));
        }
        // Component 3: a star centered at 40.
        for leaf in 41..48u32 {
            edges.push((40, leaf));
        }
        // Vertices 48..56 stay isolated.
        let (rows, cols): (Vec<u32>, Vec<u32>) =
            edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]).unzip();
        let vals = vec![1.0; rows.len()];
        tsv_sparse::CooMatrix::from_triplets(56, 56, rows, cols, vals)
            .unwrap()
            .to_csr()
    }

    #[test]
    fn engine_rewrite_reproduces_round_buffer_levels_on_disconnected_fixture() {
        let a = disconnected_fixture();
        let sources = [0usize, 4, 20, 29, 40, 47, 55];
        let expected = round_buffer_msbfs(&a, &sources);
        assert_eq!(multi_source_bfs(&a, &sources).unwrap(), expected);
        // Cross-component isolation: a source on the isolated vertex
        // reaches only itself.
        assert_eq!(expected[6].iter().filter(|&&l| l >= 0).count(), 1);
        // And across backends/thread counts the engine still matches.
        for backend in [ExecBackend::native(Some(1)), ExecBackend::native(Some(4))] {
            let mut engine = BatchedBfsEngine::new();
            engine.set_backend(backend);
            assert_eq!(engine.run(&a, &sources).unwrap(), expected);
        }
    }

    #[test]
    fn engine_rewrite_reproduces_round_buffer_levels_on_representative_corpus() {
        let corpus: Vec<CsrMatrix<f64>> = vec![
            grid2d(17, 13).to_csr().without_diagonal(),
            geometric_graph(600, 4.0, 8).to_csr(),
            rmat(RmatConfig::new(9, 7), 3).to_csr(),
            uniform_random(500, 500, 3000, 12).to_csr(),
        ];
        for (gi, a) in corpus.iter().enumerate() {
            let n = a.nrows();
            let sources: Vec<usize> = (0..32).map(|i| (i * 37) % n).collect();
            let expected = round_buffer_msbfs(a, &sources);
            assert_eq!(
                multi_source_bfs(a, &sources).unwrap(),
                expected,
                "graph {gi}"
            );
        }
    }
}
