//! The CSC-form (vector-driven) TileSpMSpV kernel.
//!
//! One warp per *non-empty vector tile*. The warp finds the matrix tiles of
//! the matching column tile through the tile-level CSC index, scales them by
//! the vector tile, and merges the partial row sums into `y` with atomic
//! adds (different vector tiles may hit the same row tile concurrently).
//!
//! Work is proportional to the tiles under non-empty vector tiles only —
//! for very sparse `x` this touches a vanishing fraction of the matrix,
//! which is why Auto mode routes `nnz(x)/n < 0.01` here.

use super::generic::col_kernel_semiring;
use crate::semiring::PlusTimes;
use crate::tile::{TileMatrix, TiledVector};
use tsv_simt::atomic::AtomicWords;
use tsv_simt::stats::KernelStats;

/// Runs the column-push kernel; returns `y` padded to `m_tiles * nt` and
/// the work counters.
///
/// This is the one-shot `(+, ×)` form of
/// [`col_kernel_semiring`](super::generic::col_kernel_semiring). The
/// atomic-merge counters are charged exactly as before; the merge itself
/// is the deterministic warp-ordered reduction of the generic kernel.
pub fn col_kernel(a: &TileMatrix, x: &TiledVector) -> (Vec<f64>, KernelStats) {
    let nt = a.nt();
    let mut y = vec![0.0f64; a.m_tiles() * nt];
    let touched = AtomicWords::zeroed(a.m_tiles().div_ceil(64));
    let mut contribs = Vec::new();
    let stats = col_kernel_semiring::<PlusTimes, _>(
        &tsv_simt::backend::ModelBackend,
        a,
        x,
        &mut y,
        None,
        &mut contribs,
        &touched,
        None,
    );
    (y, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{TileConfig, TileSize};
    use tsv_sparse::gen::{random_sparse_vector, uniform_random};
    use tsv_sparse::reference::spmspv_row;
    use tsv_sparse::SparseVector;

    #[test]
    fn kernel_matches_reference() {
        let a = uniform_random(200, 200, 3000, 3).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let x = random_sparse_vector(200, 0.05, 1);
        let xt = TiledVector::from_sparse(&x, 16);
        let (y, stats) = col_kernel(&tm, &xt);
        let expect = spmspv_row(&a, &x).unwrap().to_dense();
        for i in 0..200 {
            assert!((y[i] - expect[i]).abs() < 1e-9, "row {i}");
        }
        assert!(stats.atomics > 0, "merging must use atomics");
    }

    #[test]
    fn warps_scale_with_active_tiles() {
        let a = uniform_random(640, 640, 6000, 4).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        // One nonzero → one active vector tile → one warp.
        let x = SparseVector::from_entries(640, vec![(17, 1.0)]).unwrap();
        let xt = TiledVector::from_sparse(&x, 16);
        let (_, stats) = col_kernel(&tm, &xt);
        assert_eq!(stats.warps, 1);
    }

    #[test]
    fn untouched_columns_cost_nothing() {
        let a = uniform_random(320, 320, 2000, 9).to_csr();
        let tm = TileMatrix::from_csr(&a, TileConfig::with_size(TileSize::S16)).unwrap();
        let empty = TiledVector::from_sparse(&SparseVector::zeros(320), 16);
        let (y, stats) = col_kernel(&tm, &empty);
        assert!(y.iter().all(|&v| v == 0.0));
        assert_eq!(stats.gmem_bytes(), 0);
        assert_eq!(stats.warps, 0);
    }
}
