//! Sanity of the device model on *real* kernel workloads (not synthetic
//! counters): the modeled orderings every figure relies on must hold for
//! the stats our kernels actually emit.

use tilespmspv::core::spmspv::{tile_spmspv_with, SpMSpVOptions};
use tilespmspv::prelude::*;
use tilespmspv::simt::model::kernel_time;
use tilespmspv::simt::{RTX_3060, RTX_3090};
use tilespmspv::sparse::gen::random_sparse_vector;
use tilespmspv::sparse::suite::{representative, SuiteScale};

#[test]
fn the_3090_is_never_slower_than_the_3060_on_real_kernels() {
    for e in representative(SuiteScale::Tiny) {
        let a = &e.matrix;
        let tiled = TileMatrix::from_csr(a, TileConfig::default()).unwrap();
        for sp in [0.1, 0.001] {
            let x = random_sparse_vector(a.ncols(), sp, 1);
            let (_, r) = tile_spmspv_with(&tiled, &x, SpMSpVOptions::default()).unwrap();
            let t60 = kernel_time(&r.stats, &RTX_3060);
            let t90 = kernel_time(&r.stats, &RTX_3090);
            assert!(
                t90 <= t60,
                "{}@{sp}: 3090 {t90} slower than 3060 {t60}",
                e.name
            );
        }
    }
}

#[test]
fn modeled_time_grows_with_vector_density() {
    // More frontier work must never model as cheaper on the same kernel.
    let e = representative(SuiteScale::Tiny).remove(0);
    let tiled = TileMatrix::from_csr(&e.matrix, TileConfig::default()).unwrap();
    let mut last = 0.0;
    for sp in [0.0001, 0.01, 0.3] {
        let x = random_sparse_vector(e.matrix.ncols(), sp, 1);
        let opts = SpMSpVOptions {
            kernel: tilespmspv::core::spmspv::KernelChoice::ColTile,
            ..Default::default()
        };
        let (_, r) = tile_spmspv_with(&tiled, &x, opts).unwrap();
        let t = kernel_time(&r.stats, &RTX_3090);
        assert!(t >= last, "density {sp}: modeled time decreased");
        last = t;
    }
}

#[test]
fn bfs_iteration_models_are_finite_and_positive() {
    for e in representative(SuiteScale::Tiny) {
        let a = &e.matrix;
        let src = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap_or(0);
        let g = TileBfsGraph::from_csr(a).unwrap();
        let run = tile_bfs(&g, src, BfsOptions::default()).unwrap();
        for (k, it) in run.iterations.iter().enumerate() {
            for d in [&RTX_3060, &RTX_3090] {
                let t = kernel_time(&it.stats, d);
                assert!(
                    t.is_finite() && t > 0.0,
                    "{} iteration {k}: modeled time {t}",
                    e.name
                );
            }
        }
    }
}
