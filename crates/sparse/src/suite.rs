//! Named synthetic analogs of the paper's evaluation matrices.
//!
//! Table 2 of the paper lists 12 representative SuiteSparse matrices and
//! Figure 12 uses the 6 matrices of the Enterprise paper. We cannot ship the
//! collection, so each matrix is replaced by a generator configuration from
//! the same structure class (banded FEM, mesh, road network, power-law
//! graph), scaled down so the full harness runs on a laptop. The original
//! size/nnz are retained as metadata and reported alongside measurements in
//! `EXPERIMENTS.md`.
//!
//! Relative size ordering between the matrices is preserved (e.g. `333SP`
//! stays the largest, `cavity23` the smallest) because several figures
//! depend on it.

use crate::csr::CsrMatrix;
use crate::gen::{banded, geometric_graph, grid2d, rmat, webgraph, RmatConfig};

/// Structure class of a generated analog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixClass {
    /// Dense diagonal band (FEM/structural).
    Banded,
    /// Planar stencil mesh.
    Mesh,
    /// Road-network-like random geometric graph.
    Road,
    /// Power-law Kronecker (Graph500 R-MAT) graph.
    PowerLaw,
    /// Host-structured web/social graph: dense diagonal blocks plus a
    /// skewed cross-host remainder.
    Web,
}

/// Overall size of the generated suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteScale {
    /// ~1-6K rows: unit/integration tests.
    Tiny,
    /// ~8-50K rows: default for Criterion benches.
    Small,
    /// ~30-200K rows: closer to paper-shape runs.
    Medium,
}

impl SuiteScale {
    /// Base order multiplied by each matrix's relative size factor.
    fn base(self) -> usize {
        match self {
            Self::Tiny => 1_500,
            Self::Small => 12_000,
            Self::Medium => 48_000,
        }
    }
}

/// Size and nnz of the original SuiteSparse matrix, from Table 2 / Fig. 12.
#[derive(Debug, Clone, Copy)]
pub struct PaperInfo {
    /// Rows (= columns; all suite matrices used for BFS are square).
    pub rows: usize,
    /// Nonzeros.
    pub nnz: usize,
}

/// One generated analog plus its provenance metadata.
pub struct SuiteEntry {
    /// SuiteSparse name of the matrix this stands in for.
    pub name: &'static str,
    /// Structure class used for generation.
    pub class: MatrixClass,
    /// Original matrix statistics from the paper.
    pub paper: PaperInfo,
    /// The generated matrix (square, symmetric for BFS use).
    pub matrix: CsrMatrix<f64>,
}

/// Generator recipe for one suite matrix.
#[derive(Debug, Clone, Copy)]
struct Spec {
    name: &'static str,
    class: MatrixClass,
    paper_rows: usize,
    paper_nnz: usize,
    /// Relative size vs. the scale base (preserves the paper's ordering).
    size_factor: f64,
    /// Class-specific density knob: half-bandwidth (Banded), average degree
    /// (Road), edge factor (PowerLaw); unused for Mesh.
    density: f64,
    /// Fill fraction inside the band (Banded only).
    fill: f64,
}

const REPRESENTATIVE: [Spec; 12] = [
    Spec {
        name: "af_5_k101",
        class: MatrixClass::Banded,
        paper_rows: 503_000,
        paper_nnz: 17_000_000,
        size_factor: 1.6,
        density: 25.0,
        fill: 0.66,
    },
    Spec {
        name: "cant",
        class: MatrixClass::Banded,
        paper_rows: 62_000,
        paper_nnz: 4_000_000,
        size_factor: 0.6,
        density: 40.0,
        fill: 0.80,
    },
    Spec {
        name: "cavity23",
        class: MatrixClass::Banded,
        paper_rows: 4_000,
        paper_nnz: 144_000,
        size_factor: 0.25,
        density: 22.0,
        fill: 0.80,
    },
    Spec {
        name: "pdb1HYS",
        class: MatrixClass::Banded,
        paper_rows: 36_000,
        paper_nnz: 4_000_000,
        size_factor: 0.5,
        density: 75.0,
        fill: 0.80,
    },
    Spec {
        name: "fullb",
        class: MatrixClass::Banded,
        paper_rows: 199_000,
        paper_nnz: 11_000_000,
        size_factor: 1.0,
        density: 34.0,
        fill: 0.80,
    },
    Spec {
        name: "ldoor",
        class: MatrixClass::Banded,
        paper_rows: 952_000,
        paper_nnz: 46_000_000,
        size_factor: 2.0,
        density: 30.0,
        fill: 0.80,
    },
    Spec {
        name: "in-2004",
        class: MatrixClass::Web,
        paper_rows: 1_000_000,
        paper_nnz: 27_000_000,
        size_factor: 2.0,
        density: 26.0,
        fill: 0.0,
    },
    Spec {
        name: "msdoor",
        class: MatrixClass::Banded,
        paper_rows: 415_000,
        paper_nnz: 20_000_000,
        size_factor: 1.4,
        density: 30.0,
        fill: 0.77,
    },
    Spec {
        name: "roadNet-TX",
        class: MatrixClass::Road,
        paper_rows: 1_000_000,
        paper_nnz: 3_000_000,
        size_factor: 2.0,
        density: 3.0,
        fill: 0.0,
    },
    Spec {
        name: "ML_Geer",
        class: MatrixClass::Banded,
        paper_rows: 1_000_000,
        paper_nnz: 110_000_000,
        size_factor: 2.0,
        density: 55.0,
        fill: 1.0,
    },
    Spec {
        name: "333SP",
        class: MatrixClass::Mesh,
        paper_rows: 3_000_000,
        paper_nnz: 22_000_000,
        size_factor: 3.0,
        density: 0.0,
        fill: 0.0,
    },
    Spec {
        name: "dielFilterV2clx",
        class: MatrixClass::Banded,
        paper_rows: 607_000,
        paper_nnz: 25_000_000,
        size_factor: 1.8,
        density: 26.0,
        fill: 0.80,
    },
];

const ENTERPRISE: [Spec; 6] = [
    Spec {
        name: "FB",
        class: MatrixClass::Web,
        paper_rows: 2_900_000,
        paper_nnz: 41_900_000,
        size_factor: 1.5,
        density: 15.0,
        fill: 0.0,
    },
    Spec {
        name: "KR-21-128",
        class: MatrixClass::PowerLaw,
        paper_rows: 2_100_000,
        paper_nnz: 182_000_000,
        size_factor: 1.0,
        density: 64.0,
        fill: 0.0,
    },
    Spec {
        name: "TW",
        class: MatrixClass::Web,
        paper_rows: 41_700_000,
        paper_nnz: 1_470_000_000,
        size_factor: 2.0,
        density: 24.0,
        fill: 0.0,
    },
    Spec {
        name: "audikw_1",
        class: MatrixClass::Banded,
        paper_rows: 943_000,
        paper_nnz: 77_600_000,
        size_factor: 1.5,
        density: 45.0,
        fill: 0.90,
    },
    Spec {
        name: "roadCA",
        class: MatrixClass::Road,
        paper_rows: 1_970_000,
        paper_nnz: 5_530_000,
        size_factor: 2.0,
        density: 3.0,
        fill: 0.0,
    },
    Spec {
        name: "europe.osm",
        class: MatrixClass::Road,
        paper_rows: 50_900_000,
        paper_nnz: 108_100_000,
        size_factor: 3.0,
        density: 2.4,
        fill: 0.0,
    },
];

fn build(spec: &Spec, scale: SuiteScale, seed: u64) -> SuiteEntry {
    let n = ((scale.base() as f64 * spec.size_factor) as usize).max(64);
    let matrix = match spec.class {
        MatrixClass::Banded => banded(n, spec.density as usize, spec.fill, seed).to_csr(),
        MatrixClass::Mesh => {
            // Pick grid sides whose product is close to n.
            let side = (n as f64).sqrt().round() as usize;
            grid2d(side.max(2), side.max(2)).to_csr().without_diagonal()
        }
        MatrixClass::Road => geometric_graph(n, spec.density, seed).to_csr(),
        MatrixClass::PowerLaw => {
            let log_n = (n as f64).log2().ceil() as u32;
            let mut cfg = RmatConfig::new(log_n, spec.density as usize);
            cfg.symmetric = true;
            rmat(cfg, seed).to_csr()
        }
        MatrixClass::Web => {
            // Crawl-ordered web/social structure: ~80% of links stay
            // within a host of ~50 consecutive ids.
            webgraph(n, spec.density, 0.8, 50, seed).to_csr()
        }
    };
    SuiteEntry {
        name: spec.name,
        class: spec.class,
        paper: PaperInfo {
            rows: spec.paper_rows,
            nnz: spec.paper_nnz,
        },
        matrix,
    }
}

/// The 12 representative matrices of Table 2, as generated analogs.
pub fn representative(scale: SuiteScale) -> Vec<SuiteEntry> {
    REPRESENTATIVE
        .iter()
        .enumerate()
        .map(|(i, s)| build(s, scale, 0x7135_0000 + i as u64))
        .collect()
}

/// The 6 Enterprise-comparison matrices of Figure 12.
pub fn enterprise_set(scale: SuiteScale) -> Vec<SuiteEntry> {
    ENTERPRISE
        .iter()
        .enumerate()
        .map(|(i, s)| build(s, scale, 0xE17E_0000 + i as u64))
        .collect()
}

/// Looks up a single analog by its SuiteSparse name (both sets searched).
pub fn by_name(name: &str, scale: SuiteScale) -> Option<SuiteEntry> {
    REPRESENTATIVE
        .iter()
        .enumerate()
        .map(|(i, s)| (s, 0x7135_0000 + i as u64))
        .chain(
            ENTERPRISE
                .iter()
                .enumerate()
                .map(|(i, s)| (s, 0xE17E_0000 + i as u64)),
        )
        .find(|(s, _)| s.name == name)
        .map(|(s, seed)| build(s, scale, seed))
}

/// Names of the representative set, in Table 2 order.
pub fn representative_names() -> Vec<&'static str> {
    REPRESENTATIVE.iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representative_has_twelve_square_matrices() {
        let suite = representative(SuiteScale::Tiny);
        assert_eq!(suite.len(), 12);
        for e in &suite {
            assert_eq!(e.matrix.nrows(), e.matrix.ncols(), "{} not square", e.name);
            assert!(e.matrix.nnz() > 0, "{} is empty", e.name);
        }
    }

    #[test]
    fn enterprise_set_has_six() {
        let suite = enterprise_set(SuiteScale::Tiny);
        assert_eq!(suite.len(), 6);
    }

    #[test]
    fn size_ordering_preserved() {
        let suite = representative(SuiteScale::Tiny);
        let find = |n: &str| {
            suite
                .iter()
                .find(|e| e.name == n)
                .map(|e| e.matrix.nrows())
                .unwrap()
        };
        assert!(find("333SP") > find("cant"));
        assert!(find("cant") > find("cavity23"));
        assert!(find("ldoor") > find("cant"));
    }

    #[test]
    fn by_name_finds_both_sets() {
        assert!(by_name("roadNet-TX", SuiteScale::Tiny).is_some());
        assert!(by_name("audikw_1", SuiteScale::Tiny).is_some());
        assert!(by_name("no-such-matrix", SuiteScale::Tiny).is_none());
    }

    #[test]
    fn banded_analogs_are_symmetric_for_bfs() {
        let e = by_name("cant", SuiteScale::Tiny).unwrap();
        assert!(e.matrix.is_symmetric());
    }

    #[test]
    fn road_analog_has_low_degree() {
        let e = by_name("roadNet-TX", SuiteScale::Tiny).unwrap();
        let avg = e.matrix.nnz() as f64 / e.matrix.nrows() as f64;
        assert!(avg < 6.0, "road analog degree {avg} too high");
    }

    #[test]
    fn powerlaw_analog_has_skew() {
        let e = by_name("KR-21-128", SuiteScale::Tiny).unwrap();
        let m = &e.matrix;
        let max_deg = (0..m.nrows()).map(|i| m.row_nnz(i)).max().unwrap();
        let avg = m.nnz() / m.nrows();
        assert!(max_deg > avg * 4, "expected skew: max {max_deg}, avg {avg}");
    }

    #[test]
    fn web_analog_has_host_locality() {
        // in-2004's crawl order gives dense diagonal blocks; the analog
        // must reproduce that (most edges short-range).
        let e = by_name("in-2004", SuiteScale::Tiny).unwrap();
        assert_eq!(e.class, MatrixClass::Web);
        let m = &e.matrix;
        let near = m.iter().filter(|&(r, c, _)| r.abs_diff(c) < 128).count();
        assert!(
            near * 2 > m.nnz(),
            "web analog lost host locality: {near}/{}",
            m.nnz()
        );
    }

    #[test]
    fn road_analogs_are_connected() {
        let e = by_name("roadNet-TX", SuiteScale::Tiny).unwrap();
        let levels = crate::reference::bfs_levels(&e.matrix, 0).unwrap();
        assert!(levels.iter().all(|&l| l >= 0));
    }
}
