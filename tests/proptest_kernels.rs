//! Property-based tests on the traversal kernels and semirings.

use proptest::prelude::*;
use tilespmspv::baselines::{enterprise_bfs, gswitch_bfs, gunrock_bfs};
use tilespmspv::core::bfs::KernelSet;
use tilespmspv::core::semiring::{spmspv_semiring, MaxTimes, MinPlus, OrAnd, PlusTimes, Semiring};
use tilespmspv::prelude::*;
use tilespmspv::sparse::reference::bfs_levels;
use tilespmspv::sparse::{CooMatrix, CsrMatrix, SparseVector};

/// An arbitrary undirected graph of up to 120 vertices.
fn arb_graph() -> impl Strategy<Value = CsrMatrix<f64>> {
    (2usize..120)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32);
            (Just(n), proptest::collection::vec(edge, 0..300))
        })
        .prop_map(|(n, edges)| {
            let mut coo = CooMatrix::new(n, n);
            for (u, v) in edges {
                if u != v {
                    coo.push(u as usize, v as usize, 1.0);
                    coo.push(v as usize, u as usize, 1.0);
                }
            }
            let mut c = coo;
            c.sum_duplicates();
            c.to_csr()
        })
}

/// An arbitrary directed graph of up to 100 vertices.
fn arb_digraph() -> impl Strategy<Value = CsrMatrix<f64>> {
    (2usize..100)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32);
            (Just(n), proptest::collection::vec(edge, 0..250))
        })
        .prop_map(|(n, edges)| {
            let mut coo = CooMatrix::new(n, n);
            for (u, v) in edges {
                if u != v {
                    coo.push(u as usize, v as usize, 1.0);
                }
            }
            let mut c = coo;
            c.sum_duplicates();
            c.to_csr()
        })
}

/// A matrix whose populated tiles each hold only a handful of entries —
/// the very-sparse-tile shape §3.2 extracts onto the COO side pass.
///
/// Built from (tile coordinate, intra-tile offset) tuples over a small
/// tile grid with a ragged edge, so proptest shrinks toward fewer
/// entries, fewer tiles and aligned orders without ever producing an
/// invalid structure.
fn arb_sparse_tile_matrix() -> impl Strategy<Value = CsrMatrix<f64>> {
    (1usize..6, 1usize..6, 0usize..32, 0usize..32)
        .prop_flat_map(|(mt, nt, trim_r, trim_c)| {
            let entry = (0..mt as u32, 0..nt as u32, 0u32..32, 0u32..32, 1i32..100);
            (
                Just((mt, nt, trim_r, trim_c)),
                proptest::collection::vec(entry, 0..24),
            )
        })
        .prop_map(|((mt, nt, trim_r, trim_c), entries)| {
            // Trim the last tile so orders straddle the tile edge.
            let nrows = (mt * 32 - trim_r.min(31)).max(1);
            let ncols = (nt * 32 - trim_c.min(31)).max(1);
            let mut coo = CooMatrix::new(nrows, ncols);
            for (tr, tc, dr, dc, v) in entries {
                let r = tr as usize * 32 + dr as usize;
                let c = tc as usize * 32 + dc as usize;
                if r < nrows && c < ncols {
                    coo.push(r, c, f64::from(v) * 0.5);
                }
            }
            coo.sum_duplicates();
            coo.to_csr()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn tile_bfs_equals_serial_on_random_graphs(a in arb_graph(), src_pick in 0usize..1000) {
        let source = src_pick % a.nrows();
        let expect = bfs_levels(&a, source).unwrap();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        for set in [KernelSet::PushCscOnly, KernelSet::PushOnly, KernelSet::All] {
            let r = tile_bfs(&g, source, BfsOptions { kernels: set, ..Default::default() }).unwrap();
            prop_assert_eq!(&r.levels, &expect, "kernel set {:?}", set);
        }
    }

    #[test]
    fn tile_bfs_equals_serial_on_random_digraphs(a in arb_digraph(), src_pick in 0usize..1000) {
        let source = src_pick % a.nrows();
        let expect = bfs_levels(&a, source).unwrap();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        let r = tile_bfs(&g, source, BfsOptions::default()).unwrap();
        prop_assert_eq!(&r.levels, &expect);
    }

    #[test]
    fn baselines_equal_serial_on_random_graphs(a in arb_graph(), src_pick in 0usize..1000) {
        let source = src_pick % a.nrows();
        let expect = bfs_levels(&a, source).unwrap();
        prop_assert_eq!(&gunrock_bfs(&a, source).unwrap().levels, &expect);
        prop_assert_eq!(&gswitch_bfs(&a, source).unwrap().levels, &expect);
        prop_assert_eq!(&enterprise_bfs(&a, source).unwrap().levels, &expect);
    }

    #[test]
    fn or_and_spmspv_is_one_bfs_step(a in arb_graph(), src_pick in 0usize..1000) {
        // One boolean SpMSpV from {source} must produce exactly the
        // source's neighbor set.
        let source = src_pick % a.nrows();
        let pattern = {
            let mut coo = CooMatrix::new(a.nrows(), a.ncols());
            for (r, c, _) in a.iter() {
                coo.push(r, c, 1u8);
            }
            coo.to_csr().to_csc()
        };
        let bool_csc = tilespmspv::sparse::CscMatrix::from_parts(
            pattern.nrows(),
            pattern.ncols(),
            pattern.col_ptr().to_vec(),
            pattern.row_idx().to_vec(),
            vec![true; pattern.nnz()],
        ).unwrap();
        let x = SparseVector::from_entries(a.nrows(), vec![(source as u32, true)]).unwrap();
        let y = spmspv_semiring::<OrAnd>(&bool_csc, &x).unwrap();
        let mut expect: Vec<u32> = a.row(source).0.to_vec();
        expect.sort_unstable();
        prop_assert_eq!(y.indices().to_vec(), expect);
    }

    #[test]
    fn semiring_axioms_hold_on_samples(vals in proptest::collection::vec(-10.0f64..10.0, 3)) {
        let (a, b, c) = (vals[0], vals[1], vals[2]);
        fn axioms<S: Semiring<T = f64>>(a: f64, b: f64, c: f64) {
            // Additive identity.
            assert_eq!(S::add(S::zero(), a), a);
            // Annihilation (up to sign of zero).
            assert!(S::mul(S::zero(), a) == S::zero() || S::zero().is_infinite());
            // Commutativity and associativity of add.
            assert_eq!(S::add(a, b), S::add(b, a));
            assert!((S::add(S::add(a, b), c) - S::add(a, S::add(b, c))).abs() < 1e-12);
        }
        axioms::<PlusTimes>(a, b, c);
        axioms::<MinPlus>(a, b, c);
        axioms::<MaxTimes>(a.abs(), b.abs(), c.abs());
    }

    #[test]
    fn bit_frontier_ops_match_set_semantics(
        n in 1usize..200,
        xs in proptest::collection::btree_set(0usize..200, 0..40),
        ms in proptest::collection::btree_set(0usize..200, 0..40),
    ) {
        use tilespmspv::core::tile::BitFrontier;
        let xs: Vec<usize> = xs.into_iter().filter(|&v| v < n).collect();
        let ms: Vec<usize> = ms.into_iter().filter(|&v| v < n).collect();
        for nt in [32usize, 64] {
            let mut x = BitFrontier::new(n, nt);
            for &v in &xs { x.set(v); }
            let mut m = BitFrontier::new(n, nt);
            for &v in &ms { m.set(v); }

            prop_assert_eq!(x.count_ones(), xs.len());
            let fresh = x.and_not(&m);
            let expect: Vec<usize> = xs.iter().copied().filter(|v| !ms.contains(v)).collect();
            prop_assert_eq!(fresh.iter_vertices().collect::<Vec<_>>(), expect);

            let comp = m.complement();
            prop_assert_eq!(comp.count_ones(), n - ms.len());
            for v in 0..n {
                prop_assert_eq!(comp.get(v), !m.get(v));
            }

            let mut u = x.clone();
            u.or_assign(&m);
            prop_assert_eq!(u.count_ones(), xs.iter().chain(ms.iter()).collect::<std::collections::BTreeSet<_>>().len());
        }
    }

    #[test]
    fn coo_extraction_path_matches_the_row_reference(
        a in arb_sparse_tile_matrix(),
        seed in 0u64..16,
        sp_pick in 0usize..3,
    ) {
        use tilespmspv::core::spmspv::{tile_spmspv_with, Balance, KernelChoice, SpMSpVOptions};
        use tilespmspv::core::tile::{TileConfig, TileMatrix};
        use tilespmspv::sparse::reference::spmspv_row;

        let sparsity = [0.05, 0.2, 0.6][sp_pick];
        let x = tilespmspv::sparse::gen::random_sparse_vector(a.ncols(), sparsity, seed);
        let expect = spmspv_row(&a, &x).unwrap();

        let threshold = 4usize;
        let cfg = TileConfig { extract_threshold: threshold, ..Default::default() };
        let tiled = TileMatrix::from_csr(&a, cfg).unwrap();

        // §3.2.1's extraction rule, checked structurally: exactly the
        // entries of tiles holding at most `threshold` nonzeros move to
        // the COO side.
        let nt = tiled.nt();
        let mut per_tile: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for (r, c, _) in a.iter() {
            *per_tile.entry((r / nt, c / nt)).or_default() += 1;
        }
        let expect_extra: usize = per_tile.values().filter(|&&k| k <= threshold).sum();
        prop_assert_eq!(tiled.extra().nnz(), expect_extra);

        // Both kernels and both balance modes must agree with the serial
        // reference through the hybrid tile + COO-side pass.
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                let opts = SpMSpVOptions { kernel, balance, ..Default::default() };
                let (y, _) = tile_spmspv_with(&tiled, &x, opts).unwrap();
                prop_assert!(
                    y.max_abs_diff(&expect) < 1e-9,
                    "{:?}/{:?} diverged through the extraction path", kernel, balance
                );
            }
        }
    }

    #[test]
    fn plus_times_semiring_equals_reference(a in arb_graph(), seed in 0u64..20) {
        let csc = a.to_csc();
        let x = tilespmspv::sparse::gen::random_sparse_vector(a.ncols(), 0.2, seed);
        let y = spmspv_semiring::<PlusTimes>(&csc, &x).unwrap();
        let expect = tilespmspv::sparse::reference::spmspv_col(&csc, &x).unwrap();
        prop_assert!(y.max_abs_diff(&expect) < 1e-9);
    }
}
