//! Serial reference kernels.
//!
//! These are direct transcriptions of the paper's Algorithms 1–3 plus a
//! textbook SpMV and queue BFS. Every parallel implementation in the
//! workspace is tested against these oracles.

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::spvec::SparseVector;
use crate::Result;

/// Row-wise (matrix-driven) SpMSpV, Algorithm 1 of the paper: for each row,
/// dot the sparse row with the sparse vector.
pub fn spmspv_row(a: &CsrMatrix<f64>, x: &SparseVector<f64>) -> Result<SparseVector<f64>> {
    if a.ncols() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "spmspv_row",
            expected: a.ncols(),
            found: x.len(),
        });
    }
    let xd = x.to_dense();
    let mut indices = Vec::new();
    let mut vals = Vec::new();
    for i in 0..a.nrows() {
        let (cols, avals) = a.row(i);
        let mut yi = 0.0;
        let mut hit = false;
        for (&j, &aij) in cols.iter().zip(avals) {
            let xj = xd[j as usize];
            if xj != 0.0 {
                yi += aij * xj;
                hit = true;
            }
        }
        // GraphBLAS-style structural output: a row whose pattern intersects x
        // produces an entry even if the values cancel to 0.0; we follow the
        // numeric convention instead and drop exact zeros, matching what the
        // tiled kernels emit after compaction.
        if hit && yi != 0.0 {
            indices.push(i as u32);
            vals.push(yi);
        }
    }
    SparseVector::from_parts(a.nrows(), indices, vals)
}

/// Column-wise (vector-driven) SpMSpV, Algorithm 2 of the paper: scale and
/// merge the matrix columns selected by x's nonzeros.
pub fn spmspv_col(a: &CscMatrix<f64>, x: &SparseVector<f64>) -> Result<SparseVector<f64>> {
    if a.ncols() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "spmspv_col",
            expected: a.ncols(),
            found: x.len(),
        });
    }
    let mut y = vec![0.0f64; a.nrows()];
    for (j, xj) in x.iter() {
        let (rows, vals) = a.col(j);
        for (&i, &aij) in rows.iter().zip(vals) {
            y[i as usize] += aij * xj;
        }
    }
    Ok(SparseVector::from_dense(&y))
}

/// Dense-vector SpMV reference (`y = A x` with dense x and y).
pub fn spmv(a: &CsrMatrix<f64>, x: &[f64]) -> Result<Vec<f64>> {
    if a.ncols() != x.len() {
        return Err(SparseError::DimensionMismatch {
            op: "spmv",
            expected: a.ncols(),
            found: x.len(),
        });
    }
    let mut y = vec![0.0; a.nrows()];
    for (i, yi) in y.iter_mut().enumerate() {
        let (cols, vals) = a.row(i);
        let mut acc = 0.0;
        for (&j, &v) in cols.iter().zip(vals) {
            acc += v * x[j as usize];
        }
        *yi = acc;
    }
    Ok(y)
}

/// Serial queue-based BFS over the adjacency structure of a square matrix.
///
/// Returns the level of each vertex (`-1` for unreachable ones). Level 0 is
/// the source. This is the oracle for TileBFS and all BFS baselines.
pub fn bfs_levels<T: Copy>(a: &CsrMatrix<T>, source: usize) -> Result<Vec<i32>> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    if source >= a.nrows() {
        return Err(SparseError::IndexOutOfBounds {
            row: source,
            col: 0,
            nrows: a.nrows(),
            ncols: 1,
        });
    }
    let n = a.nrows();
    let mut levels = vec![-1i32; n];
    let mut queue = std::collections::VecDeque::new();
    levels[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let lvl = levels[u];
        let (cols, _) = a.row(u);
        for &v in cols {
            let v = v as usize;
            if levels[v] < 0 {
                levels[v] = lvl + 1;
                queue.push_back(v);
            }
        }
    }
    Ok(levels)
}

/// Number of edges traversed by a BFS from `source`: the sum of out-degrees
/// of all reached vertices. This is the numerator of the GTEPS metric used
/// throughout the paper's BFS figures.
pub fn bfs_edges_traversed<T: Copy>(a: &CsrMatrix<T>, levels: &[i32]) -> usize {
    levels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l >= 0)
        .map(|(v, _)| a.row_nnz(v))
        .sum()
}

/// Graph500-style validation of a BFS level assignment, independent of the
/// algorithm that produced it:
///
/// 1. the source has level 0 and nothing else does,
/// 2. every edge `u → v` out of a reached `u` reaches `v`, with
///    `level[v] ≤ level[u] + 1` (no skipped layers),
/// 3. every reached vertex other than the source has an in-neighbor one
///    level up (a valid BFS parent),
/// 4. unreached vertices have no reached in-neighbor.
///
/// Returns a description of the first violation, or `Ok(())`.
pub fn validate_bfs_levels<T: Copy>(
    a: &CsrMatrix<T>,
    source: usize,
    levels: &[i32],
) -> std::result::Result<(), String> {
    let n = a.nrows();
    if levels.len() != n {
        return Err(format!("levels length {} != order {n}", levels.len()));
    }
    if levels[source] != 0 {
        return Err(format!("source level is {}, not 0", levels[source]));
    }
    if levels
        .iter()
        .enumerate()
        .any(|(v, &l)| l == 0 && v != source)
    {
        return Err("a non-source vertex has level 0".to_string());
    }

    // Rule 2 over all edges.
    for u in 0..n {
        if levels[u] < 0 {
            continue;
        }
        let (cols, _) = a.row(u);
        for &v in cols {
            let v = v as usize;
            if levels[v] < 0 {
                return Err(format!(
                    "edge {u} -> {v}: {u} reached (level {}) but {v} unreached",
                    levels[u]
                ));
            }
            if levels[v] > levels[u] + 1 {
                return Err(format!(
                    "edge {u} -> {v} skips a layer: {} -> {}",
                    levels[u], levels[v]
                ));
            }
        }
    }

    // Rule 3: every reached vertex has a parent one level up. Checked via
    // the transpose (in-neighbors).
    let t = a.transpose();
    for v in 0..n {
        if levels[v] <= 0 {
            continue;
        }
        let (ins, _) = t.row(v);
        let has_parent = ins.iter().any(|&u| levels[u as usize] == levels[v] - 1);
        if !has_parent {
            return Err(format!(
                "vertex {v} (level {}) has no in-neighbor at level {}",
                levels[v],
                levels[v] - 1
            ));
        }
    }
    Ok(())
}

/// Derives a parent array from validated BFS levels: `parents[v]` is an
/// in-neighbor of `v` one level up (`-1` for unreached vertices, `source`
/// maps to itself). This is the Graph500 output format; the bitmask
/// kernels do not track provenance, so parents are recovered in one pass
/// over the transpose.
pub fn bfs_parents_from_levels<T: Copy>(
    a: &CsrMatrix<T>,
    source: usize,
    levels: &[i32],
) -> Vec<i64> {
    let t = a.transpose();
    let mut parents = vec![-1i64; a.nrows()];
    for v in 0..a.nrows() {
        if levels[v] < 0 {
            continue;
        }
        if v == source {
            parents[v] = source as i64;
            continue;
        }
        let (ins, _) = t.row(v);
        if let Some(&u) = ins.iter().find(|&&u| levels[u as usize] == levels[v] - 1) {
            parents[v] = i64::from(u);
        }
    }
    parents
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// The 6x6 example of the paper's Figure 1/2: an undirected graph where
    /// vertex 0 connects to 1, 2, 3 and vertex 1 connects to 4 (plus 2-5).
    fn paper_graph() -> CsrMatrix<f64> {
        let edges = [(0, 1), (0, 2), (0, 3), (1, 4), (2, 5)];
        let mut coo = CooMatrix::new(6, 6);
        for &(u, v) in &edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn row_and_col_spmspv_agree() {
        let a = paper_graph();
        let x = SparseVector::from_parts(6, vec![0, 4], vec![2.0, 3.0]).unwrap();
        let yr = spmspv_row(&a, &x).unwrap();
        let yc = spmspv_col(&a.to_csc(), &x).unwrap();
        assert_eq!(yr.to_dense(), yc.to_dense());
    }

    #[test]
    fn spmspv_matches_dense_product() {
        let a = paper_graph();
        let x = SparseVector::from_parts(6, vec![1, 2], vec![1.0, -2.0]).unwrap();
        let y = spmspv_row(&a, &x).unwrap().to_dense();
        let expect = spmv(&a, &x.to_dense()).unwrap();
        assert_eq!(y, expect);
    }

    #[test]
    fn spmspv_dimension_check() {
        let a = paper_graph();
        let x = SparseVector::<f64>::zeros(7);
        assert!(matches!(
            spmspv_row(&a, &x),
            Err(SparseError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            spmspv_col(&a.to_csc(), &x),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_x_gives_empty_y() {
        let a = paper_graph();
        let x = SparseVector::<f64>::zeros(6);
        assert_eq!(spmspv_row(&a, &x).unwrap().nnz(), 0);
        assert_eq!(spmspv_col(&a.to_csc(), &x).unwrap().nnz(), 0);
    }

    #[test]
    fn bfs_levels_match_figure_2() {
        // Frontier {0} discovers {1, 2, 3} in the first iteration (the paper
        // labels vertices 1-based; ours are 0-based).
        let a = paper_graph();
        let levels = bfs_levels(&a, 0).unwrap();
        assert_eq!(levels, vec![0, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn bfs_unreachable_vertices_get_minus_one() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo.to_csr();
        let levels = bfs_levels(&a, 0).unwrap();
        assert_eq!(levels, vec![0, 1, -1, -1]);
    }

    #[test]
    fn bfs_rejects_non_square_and_bad_source() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 1.0);
        let a = coo.to_csr();
        assert!(matches!(
            bfs_levels(&a, 0),
            Err(SparseError::NotSquare { .. })
        ));

        let sq = paper_graph();
        assert!(bfs_levels(&sq, 17).is_err());
    }

    #[test]
    fn validator_accepts_correct_levels() {
        let a = paper_graph();
        let levels = bfs_levels(&a, 0).unwrap();
        assert_eq!(validate_bfs_levels(&a, 0, &levels), Ok(()));
    }

    #[test]
    fn validator_rejects_corrupted_levels() {
        let a = paper_graph();
        let good = bfs_levels(&a, 0).unwrap();

        let mut wrong_source = good.clone();
        wrong_source[0] = 1;
        assert!(validate_bfs_levels(&a, 0, &wrong_source).is_err());

        let mut skipped = good.clone();
        skipped[4] = 5; // level jump along an edge
        assert!(validate_bfs_levels(&a, 0, &skipped).is_err());

        let mut orphan = good.clone();
        orphan[5] = 9; // reached but no parent at level 8
        assert!(validate_bfs_levels(&a, 0, &orphan).is_err());

        let mut unreached = good.clone();
        unreached[3] = -1; // neighbor of a reached vertex marked unreached
        assert!(validate_bfs_levels(&a, 0, &unreached).is_err());

        assert!(validate_bfs_levels(&a, 0, &good[..3]).is_err());
    }

    #[test]
    fn parents_are_one_level_up() {
        let a = paper_graph();
        let levels = bfs_levels(&a, 0).unwrap();
        let parents = bfs_parents_from_levels(&a, 0, &levels);
        assert_eq!(parents[0], 0);
        for v in 1..6 {
            let p = parents[v] as usize;
            assert_eq!(levels[p], levels[v] - 1, "vertex {v} parent {p}");
            // The parent is an actual in-neighbor.
            assert!(a.get(p, v).is_some());
        }
    }

    #[test]
    fn parents_of_unreached_are_minus_one() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(0, 1, 1.0);
        coo.push(1, 0, 1.0);
        let a = coo.to_csr();
        let levels = bfs_levels(&a, 0).unwrap();
        let parents = bfs_parents_from_levels(&a, 0, &levels);
        assert_eq!(parents[2], -1);
        assert_eq!(parents[3], -1);
        assert_eq!(parents[1], 0);
    }

    #[test]
    fn edges_traversed_counts_reached_outdegrees() {
        let a = paper_graph();
        let levels = bfs_levels(&a, 0).unwrap();
        // All 6 vertices reached; undirected edges stored twice: 10 entries.
        assert_eq!(bfs_edges_traversed(&a, &levels), 10);
    }
}
