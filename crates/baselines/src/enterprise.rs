//! Enterprise-style BFS (Liu & Huang, SC '15).
//!
//! Enterprise's contribution is frontier *load balancing by out-degree*:
//! each iteration classifies frontier vertices into small/middle/large
//! bins and assigns each bin an execution granularity (thread, warp,
//! block), so a handful of hub vertices cannot serialize a warp. It also
//! adopts direction switching. Here the bins map to rayon scheduling
//! granularities: the small bin is processed in coarse chunks, the middle
//! bin one task per vertex, and large vertices split their adjacency lists
//! across tasks.

use crate::bfs_common::{
    validate_bfs_input, BaselineBfsResult, BaselineIteration, Bitmap, VisitedSet,
};
use rayon::prelude::*;
use std::time::Instant;
use tsv_simt::stats::KernelStats;
use tsv_sparse::{CsrMatrix, SparseError};

/// Degree boundary between the small and middle bins (a warp's width).
const SMALL_DEGREE: usize = 32;
/// Degree boundary between the middle and large bins (a block's width).
const LARGE_DEGREE: usize = 256;
/// Beamer-style direction constants (Enterprise adopts the same scheme).
const ALPHA: usize = 15;
const BETA: usize = 18;

/// Runs Enterprise-style BFS from `source`.
pub fn enterprise_bfs(a: &CsrMatrix<f64>, source: usize) -> Result<BaselineBfsResult, SparseError> {
    validate_bfs_input(a, source)?;
    let n = a.nrows();
    let symmetric = {
        let t = a.transpose();
        t.row_ptr() == a.row_ptr() && t.col_idx() == a.col_idx()
    };

    let mut levels = vec![-1i32; n];
    levels[source] = 0;
    let visited = VisitedSet::new(n);
    visited.try_visit(source);

    let mut frontier: Vec<u32> = vec![source as u32];
    let mut iterations = Vec::new();
    let mut total_stats = KernelStats::default();
    let mut level = 0i32;
    let total_edges = a.nnz();
    let mut explored_edges = a.row_nnz(source);
    let mut bottom_up = false;

    while !frontier.is_empty() {
        let start = Instant::now();
        let frontier_edges: usize = frontier.iter().map(|&v| a.row_nnz(v as usize)).sum();

        if symmetric {
            if !bottom_up && frontier_edges * ALPHA > total_edges.saturating_sub(explored_edges) {
                bottom_up = true;
            } else if bottom_up && frontier.len() * BETA < n {
                bottom_up = false;
            }
        }

        let (next, stats, strategy) = if bottom_up {
            let bitmap = Bitmap::from_list(n, &frontier);
            bottom_up_step(a, &bitmap, &visited)
        } else {
            binned_top_down(a, &frontier, &visited)
        };

        let wall = start.elapsed();
        iterations.push(BaselineIteration {
            frontier: frontier.len(),
            strategy,
            stats,
            wall,
        });
        total_stats += stats;

        level += 1;
        for &v in &next {
            levels[v as usize] = level;
            explored_edges += a.row_nnz(v as usize);
        }
        frontier = next;
    }

    Ok(BaselineBfsResult {
        levels,
        iterations,
        total_stats,
    })
}

/// Top-down with degree-classified bins.
fn binned_top_down(
    a: &CsrMatrix<f64>,
    frontier: &[u32],
    visited: &VisitedSet,
) -> (Vec<u32>, KernelStats, &'static str) {
    // Classification pass (Enterprise does this with a scan kernel).
    let mut small = Vec::new();
    let mut middle = Vec::new();
    let mut large = Vec::new();
    let mut stats = KernelStats::default();
    for &u in frontier {
        let d = a.row_nnz(u as usize);
        stats.read(8);
        if d < SMALL_DEGREE {
            small.push(u);
        } else if d < LARGE_DEGREE {
            middle.push(u);
        } else {
            large.push(u);
        }
    }

    let mut next = Vec::new();

    // Small bin: coarse chunks, one task handles many low-degree vertices.
    let chunk = small
        .len()
        .div_ceil(rayon::current_num_threads().max(1))
        .max(64);
    let (v, s) = expand_chunks(a, &small, chunk, visited);
    next.extend(v);
    stats += s;

    // Middle bin: finer chunks (one "warp" per few vertices).
    let (v, s) = expand_chunks(a, &middle, 4, visited);
    next.extend(v);
    stats += s;

    // Large bin: split each adjacency list across tasks.
    for &u in &large {
        let (cols, _) = a.row(u as usize);
        let parts: Vec<(Vec<u32>, KernelStats)> = cols
            .par_chunks(LARGE_DEGREE)
            .map(|seg| {
                let mut st = KernelStats::default();
                st.warps += 1;
                st.read(seg.len() * 4);
                let mut local = Vec::new();
                for &v in seg {
                    st.atomic(1);
                    if visited.try_visit(v as usize) {
                        local.push(v);
                        st.write(4);
                    }
                }
                st.lane_steps += seg.len().div_ceil(32) as u64 * 32;
                (local, st)
            })
            .collect();
        for (local, s) in parts {
            next.extend(local);
            stats += s;
        }
    }

    (next, stats, "binned-top-down")
}

fn expand_chunks(
    a: &CsrMatrix<f64>,
    bin: &[u32],
    chunk: usize,
    visited: &VisitedSet,
) -> (Vec<u32>, KernelStats) {
    if bin.is_empty() {
        return (Vec::new(), KernelStats::default());
    }
    let parts: Vec<(Vec<u32>, KernelStats)> = bin
        .par_chunks(chunk.max(1))
        .map(|part| {
            let mut st = KernelStats::default();
            st.warps += 1;
            let mut local = Vec::new();
            for &u in part {
                let (cols, _) = a.row(u as usize);
                st.read_scattered(8);
                st.read(cols.len() * 4);
                for &v in cols {
                    st.atomic(1);
                    if visited.try_visit(v as usize) {
                        local.push(v);
                        st.write(4);
                    }
                }
                st.lane_steps += cols.len().div_ceil(32) as u64 * 32;
            }
            (local, st)
        })
        .collect();
    let mut out = Vec::new();
    let mut stats = KernelStats::default();
    for (local, s) in parts {
        out.extend(local);
        stats += s;
    }
    (out, stats)
}

fn bottom_up_step(
    a: &CsrMatrix<f64>,
    frontier: &Bitmap,
    visited: &VisitedSet,
) -> (Vec<u32>, KernelStats, &'static str) {
    let n = a.nrows();
    let chunk = (n / (rayon::current_num_threads().max(1) * 8)).max(64);
    let parts: Vec<(Vec<u32>, KernelStats)> = (0..n)
        .into_par_iter()
        .chunks(chunk)
        .map(|part| {
            let mut st = KernelStats::default();
            st.warps += 1;
            let mut local = Vec::new();
            for v in part {
                if visited.contains(v) {
                    continue;
                }
                let (cols, _) = a.row(v);
                st.read(8 + 4);
                for (k, &u) in cols.iter().enumerate() {
                    st.read_scattered(4); // frontier bitmap probe
                    if frontier.get(u as usize) {
                        if visited.try_visit(v) {
                            local.push(v as u32);
                            st.atomic(1);
                            st.write(4);
                        }
                        st.lane_steps += (k + 1) as u64;
                        break;
                    }
                }
            }
            (local, st)
        })
        .collect();
    let mut next = Vec::new();
    let mut stats = KernelStats::default();
    for (local, s) in parts {
        next.extend(local);
        stats += s;
    }
    (next, stats, "bottom-up")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{banded, grid2d, rmat, RmatConfig};
    use tsv_sparse::reference::bfs_levels;

    #[test]
    fn matches_serial_on_grid() {
        let a = grid2d(22, 17).to_csr().without_diagonal();
        let r = enterprise_bfs(&a, 0).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, 0).unwrap());
    }

    #[test]
    fn matches_serial_on_skewed_graph() {
        // Power-law graphs exercise all three bins.
        let a = rmat(RmatConfig::new(10, 16), 4).to_csr();
        let source = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap();
        let r = enterprise_bfs(&a, source).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, source).unwrap());
    }

    #[test]
    fn matches_serial_on_banded() {
        let a = banded(400, 6, 0.8, 7).to_csr();
        let r = enterprise_bfs(&a, 7).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, 7).unwrap());
    }

    #[test]
    fn hub_heavy_star_graph_is_handled() {
        // One hub of degree n-1 exercises the large bin's split path.
        let n = 1000;
        let mut coo = tsv_sparse::CooMatrix::new(n, n);
        for v in 1..n {
            coo.push(0, v, 1.0);
            coo.push(v, 0, 1.0);
        }
        let a = coo.to_csr();
        let r = enterprise_bfs(&a, 0).unwrap();
        assert_eq!(r.levels, bfs_levels(&a, 0).unwrap());
        assert_eq!(r.reached(), n);
    }

    #[test]
    fn rejects_bad_source() {
        let a = grid2d(4, 4).to_csr();
        assert!(enterprise_bfs(&a, 100).is_err());
    }
}
