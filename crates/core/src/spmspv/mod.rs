//! The TileSpMSpV algorithm (§3.3).
//!
//! Entry points:
//!
//! * [`tile_spmspv`] — compute `y = A x` with default options.
//! * [`tile_spmspv_with`] — same, returning an [`ExecReport`] with the
//!   kernel that ran and its work counters.
//!
//! Two numeric kernels implement the two traversal directions of §2.1:
//!
//! * [`row_kernel`] (CSR form, Algorithm 4) — one warp per *row tile*; each
//!   stored tile looks up its vector tile in O(1) through `x_ptr` and is
//!   skipped outright when the vector tile is empty.
//! * [`col_kernel`] (CSC form) — vector-driven: only the column tiles
//!   matching non-empty vector tiles are touched, merging into `y` with
//!   atomic adds.
//!
//! The extracted very-sparse entries are applied by [`coo_kernel`] in a
//! separate pass (§3.2.1's hybrid scheme). [`KernelChoice::Auto`] picks the
//! column kernel for very sparse vectors (the paper's 0.01 rule) and the
//! row kernel otherwise.

pub mod col_kernel;
pub mod coo_kernel;
pub mod generic;
pub mod row_kernel;
pub(crate) mod verify;

pub use col_kernel::col_kernel;
pub use coo_kernel::coo_kernel;
pub use row_kernel::row_kernel;

use crate::exec::{spmspv_with_workspace, SpMSpVWorkspace};
use crate::semiring::PlusTimes;
use crate::tile::{SellConfig, SellStats, TileMatrix};
use tsv_simt::stats::KernelStats;
use tsv_sparse::{SparseError, SparseVector};

/// Which numeric kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelChoice {
    /// Select by input-vector sparsity (the default).
    Auto,
    /// Force the matrix-driven CSR-form kernel (Algorithm 4).
    RowTile,
    /// Force the vector-driven CSC-form kernel.
    ColTile,
}

/// Warp-scheduling policy for the tile kernels.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Balance {
    /// One warp per row tile over the full grid — the paper's Algorithm 4
    /// launch, and the default. Bit-for-bit identical to the pre-dispatch
    /// behavior.
    #[default]
    OneWarpPerRowTile,
    /// Frontier-compacted work list with nnz-binned warp scheduling: only
    /// row tiles intersecting the active vector tiles are launched, light
    /// ones packed together and heavy ones split across warps (CMRS-style),
    /// with per-warp partial buffers merged in warp order.
    Binned {
        /// Target scheduled nnz per warp: light units pack until a warp
        /// holds roughly this much work, units of ≥ 2× this split.
        target_nnz: u32,
        /// Cap on how many warps one unit may split into.
        max_split: u32,
    },
}

impl Balance {
    /// The binned policy with default thresholds: one warp targets 64 nnz
    /// (two multiply-adds per lane), splits capped at 32 warps. Small
    /// targets deliberately over-decompose — many light warps hide latency
    /// far better than few heavy ones, and the per-warp scheduling cost
    /// they add is two orders of magnitude below the occupancy win.
    pub fn binned() -> Self {
        Self::Binned {
            target_nnz: 64,
            max_split: 32,
        }
    }
}

/// Storage format the tile kernels traverse for stored sparse tiles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SpvFormat {
    /// The intra-tile CSR payload (the paper's layout, and the default).
    #[default]
    TileCsr,
    /// SELL-C-σ slabs built per tile from the tile-CSR payload (see
    /// [`crate::tile::SellSlabs`]): lane-blocked kernel bodies process `C`
    /// rows per step, with per-tile fallback to tile-CSR when the padding
    /// overhead exceeds the configured threshold. `PlusTimes` results are
    /// bit-identical to [`SpvFormat::TileCsr`].
    Sell(SellConfig),
}

impl SpvFormat {
    /// Parses a CLI/env format spec: `tilecsr`, `sell`, `sell:C` or
    /// `sell:C:sigma` (`C` ∈ {4, 8}).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let head = parts.next().unwrap_or("");
        let parse_pos = |what: &str, s: &str| -> Result<usize, String> {
            s.parse::<usize>()
                .ok()
                .filter(|&v| v > 0)
                .ok_or_else(|| format!("{what} must be a positive integer, got '{s}'"))
        };
        let fmt = match head {
            "tilecsr" => Self::TileCsr,
            "sell" => {
                let mut cfg = SellConfig::default();
                if let Some(c) = parts.next() {
                    cfg.c = parse_pos("sell chunk height", c)?;
                }
                if let Some(sigma) = parts.next() {
                    cfg.sigma = parse_pos("sell sigma window", sigma)?;
                }
                cfg.validate()?;
                Self::Sell(cfg)
            }
            other => {
                return Err(format!(
                    "unknown format '{other}' (expected 'tilecsr' or 'sell[:C[:sigma]]')"
                ))
            }
        };
        if let Some(extra) = parts.next() {
            return Err(format!("unexpected trailing format component ':{extra}'"));
        }
        if head == "tilecsr" && spec != "tilecsr" {
            return Err("'tilecsr' takes no parameters".into());
        }
        Ok(fmt)
    }

    /// Short format family name (`"tilecsr"` / `"sell"`), used for metric
    /// labels and bench-table columns.
    pub fn short(&self) -> &'static str {
        match self {
            Self::TileCsr => "tilecsr",
            Self::Sell(_) => "sell",
        }
    }

    /// Full spec round-trippable through [`SpvFormat::parse`].
    pub fn label(&self) -> String {
        match self {
            Self::TileCsr => "tilecsr".to_string(),
            Self::Sell(cfg) => format!("sell:{}:{}", cfg.c, cfg.sigma),
        }
    }
}

impl std::fmt::Display for SpvFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Dispatch-plan telemetry of one binned launch: how the frontier-compacted
/// work list was packed into warps. `None` in [`ExecReport`] when the launch
/// used the one-warp-per-row-tile grid.
///
/// Histogram buckets are powers of two: bucket `i` counts warps whose value
/// `v` satisfies `2^i <= v < 2^(i+1)` (bucket 0 additionally holds `v = 0`),
/// with the last bucket open-ended.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Work-list length: units (row tiles / vector tiles) with active work.
    pub units: u32,
    /// Warps the plan launched (packing and splitting applied).
    pub warps: u32,
    /// Bin occupancy: warps by assignment count (power-of-two buckets).
    pub occupancy_hist: [u32; 8],
    /// Per-warp scheduled work in nnz (power-of-two buckets).
    pub work_hist: [u32; 16],
    /// Heaviest warp's scheduled nnz.
    pub max_warp_work: u64,
    /// Total scheduled nnz across all warps.
    pub total_work: u64,
}

impl DispatchStats {
    /// Summarizes a built [`BinPlan`] over a `units`-long work list.
    pub fn from_plan(plan: &tsv_simt::grid::BinPlan, units: usize) -> Self {
        fn bucket(v: u64, len: usize) -> usize {
            if v == 0 {
                0
            } else {
                (v.ilog2() as usize).min(len - 1)
            }
        }
        let mut s = Self {
            units: units as u32,
            warps: plan.n_warps() as u32,
            ..Default::default()
        };
        for w in 0..plan.n_warps() {
            s.occupancy_hist[bucket(plan.warp(w).len() as u64, s.occupancy_hist.len())] += 1;
        }
        for &wt in plan.warp_weights() {
            s.work_hist[bucket(wt, s.work_hist.len())] += 1;
            s.max_warp_work = s.max_warp_work.max(wt);
            s.total_work += wt;
        }
        s
    }

    /// Mean scheduled nnz per warp.
    pub fn mean_warp_work(&self) -> f64 {
        if self.warps == 0 {
            0.0
        } else {
            self.total_work as f64 / f64::from(self.warps)
        }
    }

    /// `max / mean` per-warp work — 1.0 is a perfectly balanced launch.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_warp_work();
        if mean == 0.0 {
            1.0
        } else {
            self.max_warp_work as f64 / mean
        }
    }

    /// The tracer-side view of the same numbers, attached to
    /// `spmspv/dispatch-plan` spans.
    pub fn to_trace_info(self) -> tsv_simt::trace::DispatchInfo {
        tsv_simt::trace::DispatchInfo {
            units: self.units,
            warps: self.warps,
            max_warp_work: self.max_warp_work,
            total_work: self.total_work,
            occupancy_hist: self.occupancy_hist,
            work_hist: self.work_hist,
        }
    }
}

/// Options for [`tile_spmspv_with`].
#[derive(Debug, Clone, Copy)]
pub struct SpMSpVOptions {
    /// Kernel selection policy.
    pub kernel: KernelChoice,
    /// `Auto` picks the column kernel when `nnz(x)/n` falls below this
    /// (the paper's Push-CSC threshold of 0.01). Under [`Balance::Binned`]
    /// the same threshold is applied to the *tile occupancy* of the
    /// compressed vector instead — the compacted row kernel's work scales
    /// with active tiles, so element sparsity no longer predicts its cost.
    pub csc_threshold: f64,
    /// Warp-scheduling policy for the tile kernels.
    pub balance: Balance,
    /// Storage format for stored sparse tiles. [`SpvFormat::TileCsr`]
    /// (the default) is the paper's layout; [`SpvFormat::Sell`] runs the
    /// lane-blocked slab bodies with bit-identical `PlusTimes` results.
    pub format: SpvFormat,
    /// Run the plan-time static race verifier ([`tsv_simt::analyze`]) on
    /// every dispatch before launching it: symbolic per-warp footprints
    /// are extracted for the selected kernel shape and the three
    /// obligations (write-disjointness, merge determinism, workspace
    /// aliasing) are discharged. The report lands on the workspace
    /// ([`crate::exec::SpMSpVEngine::last_analysis`]); a structurally
    /// invalid plan returns [`tsv_sparse::SparseError::Plan`] instead of
    /// panicking mid-kernel.
    pub verify: bool,
}

impl Default for SpMSpVOptions {
    fn default() -> Self {
        Self {
            kernel: KernelChoice::Auto,
            csc_threshold: 0.01,
            balance: Balance::OneWarpPerRowTile,
            format: SpvFormat::TileCsr,
            verify: false,
        }
    }
}

/// Which kernel actually executed, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelUsed {
    /// CSR-form row-tile kernel.
    RowTile,
    /// CSC-form column-push kernel.
    ColTile,
}

impl KernelUsed {
    /// Short label for profiler aggregation ("row-tile" / "col-tile").
    pub fn label(&self) -> &'static str {
        match self {
            Self::RowTile => "row-tile",
            Self::ColTile => "col-tile",
        }
    }

    /// Namespaced `'static` label used for both trace events and profiler
    /// entries (`"spmspv/" + label`) — allocation-free, and identical in
    /// both views so they can be joined.
    pub fn trace_label(&self) -> &'static str {
        match self {
            Self::RowTile => "spmspv/row-tile",
            Self::ColTile => "spmspv/col-tile",
        }
    }
}

impl std::fmt::Display for KernelUsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RowTile => write!(f, "row-tile (CSR form)"),
            Self::ColTile => write!(f, "col-tile (CSC form)"),
        }
    }
}

/// Execution record of one SpMSpV call.
///
/// The flop counter that defines the GFlops metric of Fig. 6 is
/// `stats.flops` (2 × useful multiply-adds); it used to be duplicated here
/// as a separate `useful_flops` field, which has been dropped.
#[derive(Debug, Clone, Copy)]
pub struct ExecReport {
    /// The kernel that ran.
    pub kernel: KernelUsed,
    /// Work counters of the tile kernel plus the COO pass.
    pub stats: KernelStats,
    /// Dispatch-plan telemetry when the launch was binned
    /// ([`Balance::Binned`]); `None` on the one-warp-per-row-tile grid.
    pub dispatch: Option<DispatchStats>,
    /// The tile format the kernels traversed.
    pub format: SpvFormat,
    /// Slab-construction accounting when the format was
    /// [`SpvFormat::Sell`]; `None` on tile-CSR.
    pub sell: Option<SellStats>,
}

/// `y = A x` with default options.
///
/// ```
/// use tsv_core::spmspv::tile_spmspv;
/// use tsv_core::tile::{TileConfig, TileMatrix};
///
/// let a = tsv_sparse::gen::banded(200, 4, 0.9, 7).to_csr();
/// let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
/// let x = tsv_sparse::gen::random_sparse_vector(200, 0.05, 1);
/// let y = tile_spmspv(&tiled, &x).unwrap();
///
/// let expect = tsv_sparse::reference::spmspv_row(&a, &x).unwrap();
/// assert!(y.max_abs_diff(&expect) < 1e-9);
/// ```
pub fn tile_spmspv(
    a: &TileMatrix,
    x: &SparseVector<f64>,
) -> Result<SparseVector<f64>, SparseError> {
    tile_spmspv_with(a, x, SpMSpVOptions::default()).map(|(y, _)| y)
}

/// `y = A x`, reporting the kernel used and its counted work.
///
/// This is the one-shot convenience form: it builds a fresh
/// [`SpMSpVWorkspace`] per call. Iterative callers should hold a
/// [`crate::exec::SpMSpVEngine`] instead, which reuses the workspace (and
/// its touched-tile compaction) across calls.
pub fn tile_spmspv_with(
    a: &TileMatrix,
    x: &SparseVector<f64>,
    opts: SpMSpVOptions,
) -> Result<(SparseVector<f64>, ExecReport), SparseError> {
    let mut ws = SpMSpVWorkspace::new();
    spmspv_with_workspace::<PlusTimes>(a, x, opts, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{TileConfig, TileSize};
    use tsv_sparse::gen::{banded, random_sparse_vector, rmat, uniform_random, RmatConfig};
    use tsv_sparse::reference::spmspv_row;
    use tsv_sparse::CsrMatrix;

    fn check_against_reference(a: &CsrMatrix<f64>, x: &SparseVector<f64>, cfg: TileConfig) {
        let tiled = TileMatrix::from_csr(a, cfg).unwrap();
        let expect = spmspv_row(a, x).unwrap();
        for choice in [
            KernelChoice::RowTile,
            KernelChoice::ColTile,
            KernelChoice::Auto,
        ] {
            let opts = SpMSpVOptions {
                kernel: choice,
                ..Default::default()
            };
            let (y, report) = tile_spmspv_with(&tiled, x, opts).unwrap();
            assert!(
                y.max_abs_diff(&expect) < 1e-9,
                "kernel {choice:?} diverged: {} entries vs {}",
                y.nnz(),
                expect.nnz()
            );
            assert!(report.stats.warps > 0 || x.nnz() == 0 || tiled.num_tiles() == 0);
        }
    }

    #[test]
    fn matches_reference_on_banded() {
        let a = banded(200, 8, 0.7, 3).to_csr();
        for sparsity in [0.1, 0.01, 0.5] {
            let x = random_sparse_vector(200, sparsity, 1);
            for ts in TileSize::all() {
                check_against_reference(&a, &x, TileConfig::with_size(ts));
            }
        }
    }

    #[test]
    fn matches_reference_with_extraction() {
        let a = uniform_random(300, 300, 1500, 7).to_csr();
        let x = random_sparse_vector(300, 0.05, 1);
        let cfg = TileConfig {
            tile_size: TileSize::S16,
            extract_threshold: 3,
            ..Default::default()
        };
        check_against_reference(&a, &x, cfg);
    }

    #[test]
    fn matches_reference_on_powerlaw() {
        let a = rmat(RmatConfig::new(9, 6), 2).to_csr();
        let x = random_sparse_vector(a.ncols(), 0.02, 1);
        check_against_reference(&a, &x, TileConfig::default());
    }

    #[test]
    fn rectangular_matrices_supported() {
        let a = uniform_random(150, 400, 2000, 5).to_csr();
        let x = random_sparse_vector(400, 0.1, 1);
        check_against_reference(&a, &x, TileConfig::default());
    }

    #[test]
    fn empty_vector_yields_empty_result() {
        let a = banded(64, 4, 0.8, 1).to_csr();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let x = SparseVector::<f64>::zeros(64);
        let y = tile_spmspv(&tiled, &x).unwrap();
        assert_eq!(y.nnz(), 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = banded(64, 4, 0.8, 1).to_csr();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let x = SparseVector::<f64>::zeros(65);
        assert!(matches!(
            tile_spmspv(&tiled, &x),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn auto_selects_by_sparsity() {
        let a = banded(5000, 6, 0.8, 1).to_csr();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();

        let dense_x = random_sparse_vector(5000, 0.1, 1);
        let (_, r) = tile_spmspv_with(&tiled, &dense_x, SpMSpVOptions::default()).unwrap();
        assert_eq!(r.kernel, KernelUsed::RowTile);

        let sparse_x = random_sparse_vector(5000, 0.001, 1);
        let (_, r) = tile_spmspv_with(&tiled, &sparse_x, SpMSpVOptions::default()).unwrap();
        assert_eq!(r.kernel, KernelUsed::ColTile);
    }

    #[test]
    fn sparse_vectors_do_less_work() {
        // The defining property of TileSpMSpV: work scales with the
        // non-empty vector tiles, not with the matrix.
        let a = banded(4000, 8, 0.9, 2).to_csr();
        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();

        let dense_x = random_sparse_vector(4000, 0.5, 1);
        let sparse_x = random_sparse_vector(4000, 0.001, 1);
        let opts = SpMSpVOptions {
            kernel: KernelChoice::ColTile,
            ..Default::default()
        };
        let (_, dense_r) = tile_spmspv_with(&tiled, &dense_x, opts).unwrap();
        let (_, sparse_r) = tile_spmspv_with(&tiled, &sparse_x, opts).unwrap();
        assert!(
            sparse_r.stats.gmem_bytes() < dense_r.stats.gmem_bytes() / 10,
            "sparse x should touch far less memory: {} vs {}",
            sparse_r.stats.gmem_bytes(),
            dense_r.stats.gmem_bytes()
        );
    }

    #[test]
    fn kernel_used_displays() {
        assert!(KernelUsed::RowTile.to_string().contains("CSR"));
        assert!(KernelUsed::ColTile.to_string().contains("CSC"));
    }
}
