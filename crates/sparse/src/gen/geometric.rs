//! Random geometric graphs: the road-network analog.
//!
//! `roadNet-TX`, `roadCA` and `europe.osm` are near-planar graphs with tiny
//! average degree and very long BFS diameters. A random geometric graph
//! (vertices at random points in the unit square, edges between points
//! within a radius) has the same profile. Vertices are ordered along a
//! space-filling sweep (row-major cell order) so that — like the real road
//! matrices — nearby vertices get nearby indices and tiles capture locality.

use crate::coo::CooMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a symmetric, *connected* random geometric graph of `n`
/// vertices.
///
/// `avg_degree` controls the connection radius (`r ≈ sqrt(d / (π n))`).
/// Edge values are 1.0. The graph is built with a cell grid so generation
/// is `O(n · d)` rather than `O(n²)`. Below the percolation threshold a
/// random geometric graph shatters into dust, which no road network does,
/// so components are stitched along the spatial label order (adding a few
/// short edges); BFS then exhibits the long-diameter behaviour the road
/// matrices are chosen for.
pub fn geometric_graph(n: usize, avg_degree: f64, seed: u64) -> CooMatrix<f64> {
    assert!(n > 0, "vertex count must be positive");
    assert!(avg_degree >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let radius = (avg_degree / (std::f64::consts::PI * n as f64)).sqrt();

    // Place points.
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();

    // Bin into cells of side >= radius for neighbor queries.
    let cells_per_side = ((1.0 / radius.max(1e-9)) as usize).clamp(1, 4096);
    let cell_of = |p: (f64, f64)| {
        let cx = ((p.0 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((p.1 * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut bins: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        bins[cy * cells_per_side + cx].push(i as u32);
    }

    // Relabel vertices in cell-sweep order for spatial index locality.
    let mut relabel = vec![0u32; n];
    let mut next = 0u32;
    for bin in &bins {
        for &v in bin {
            relabel[v as usize] = next;
            next += 1;
        }
    }

    let r2 = radius * radius;
    let mut m = CooMatrix::with_capacity(n, n, (n as f64 * avg_degree) as usize + 16);
    let mut uf = UnionFind::new(n);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of((x, y));
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                for &j in &bins[ny as usize * cells_per_side + nx as usize] {
                    let j = j as usize;
                    if j <= i {
                        continue;
                    }
                    let (px, py) = pts[j];
                    let d2 = (px - x) * (px - x) + (py - y) * (py - y);
                    if d2 <= r2 {
                        let (a, b) = (relabel[i] as usize, relabel[j] as usize);
                        m.push(a, b, 1.0);
                        m.push(b, a, 1.0);
                        uf.union(a, b);
                    }
                }
            }
        }
    }

    // Road networks are connected; a low-degree random geometric graph is
    // not. Stitch label-adjacent components together — consecutive labels
    // are spatially adjacent cells, so each added edge is a realistic
    // short road segment.
    for v in 1..n {
        if uf.find(v) != uf.find(v - 1) {
            m.push(v - 1, v, 1.0);
            m.push(v, v - 1, 1.0);
            uf.union(v - 1, v);
        }
    }
    m
}

/// Minimal union-find with path halving.
struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as u32).collect(),
        }
    }

    fn find(&mut self, mut v: usize) -> usize {
        while self.parent[v] as usize != v {
            let gp = self.parent[self.parent[v] as usize];
            self.parent[v] = gp;
            v = gp as usize;
        }
        v
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_degree_is_near_target() {
        let n = 4000;
        let m = geometric_graph(n, 4.0, 11);
        let avg = m.nnz() as f64 / n as f64;
        assert!(
            (2.0..=6.5).contains(&avg),
            "average degree {avg} too far from target 4"
        );
    }

    #[test]
    fn graph_is_symmetric_without_self_loops() {
        let m = geometric_graph(500, 3.0, 5).to_csr();
        assert!(m.is_symmetric());
        for i in 0..m.nrows() {
            assert_eq!(m.get(i, i), None);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(geometric_graph(300, 4.0, 2), geometric_graph(300, 4.0, 2));
    }

    #[test]
    fn graph_is_connected() {
        use crate::reference::bfs_levels;
        for (n, deg) in [(500usize, 3.0), (3000, 2.5)] {
            let m = geometric_graph(n, deg, 13).to_csr();
            let levels = bfs_levels(&m, 0).unwrap();
            assert!(
                levels.iter().all(|&l| l >= 0),
                "graph n={n} deg={deg} is disconnected"
            );
        }
    }

    #[test]
    fn bfs_diameter_is_long() {
        use crate::reference::bfs_levels;
        let m = geometric_graph(4000, 4.0, 11).to_csr();
        let levels = bfs_levels(&m, 0).unwrap();
        let max = *levels.iter().max().unwrap();
        assert!(max > 20, "road-like graphs need long diameters, got {max}");
    }

    #[test]
    fn locality_of_labels() {
        // With the cell-sweep relabeling, most edges should connect nearby
        // indices — the property that makes road matrices tile well.
        let m = geometric_graph(2000, 4.0, 8);
        let near = m.iter().filter(|&(r, c, _)| r.abs_diff(c) < 400).count();
        assert!(
            near * 2 > m.nnz(),
            "expected most edges to be index-local: {near}/{}",
            m.nnz()
        );
    }
}
