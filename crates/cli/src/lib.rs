//! Library half of the `tsv` command-line tool: matrix-source parsing and
//! the subcommand implementations, kept out of `main.rs` so they are unit
//! testable.

#![forbid(unsafe_code)]

pub mod source;

pub use source::{load_matrix, MatrixSource};

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use tsv_baselines::{enterprise_bfs, gswitch_bfs, gunrock_bfs};
use tsv_core::bfs::BfsOptions;
use tsv_core::exec::{BatchedSpMSpVEngine, BfsEngine, SpMSpVEngine};
use tsv_core::semiring::PlusTimes;
use tsv_core::spmspv::{Balance, KernelChoice, SpMSpVOptions, SpvFormat};
use tsv_core::telemetry::RunSummary;
use tsv_core::tile::{TileConfig, TileMatrix, TileStats};
use tsv_simt::backend::BackendKind;
use tsv_simt::device::RTX_3060;
use tsv_simt::trace::chrome_trace_json;
use tsv_simt::{Backend as _, ExecBackend, Sanitizer, Tracer};
use tsv_sparse::gen::random_sparse_vector;
use tsv_sparse::reference::bfs_edges_traversed;
use tsv_sparse::CsrMatrix;

/// Error type of the CLI: either a sparse-layer error or a usage problem.
#[derive(Debug)]
pub enum CliError {
    /// Underlying matrix error.
    Sparse(tsv_sparse::SparseError),
    /// Bad arguments or spec.
    Usage(String),
    /// The race sanitizer detected conflicts; the message carries the
    /// per-violation reports.
    Sanitizer(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Sparse(e) => write!(f, "{e}"),
            Self::Usage(m) => write!(f, "{m}"),
            Self::Sanitizer(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<tsv_sparse::SparseError> for CliError {
    fn from(e: tsv_sparse::SparseError) -> Self {
        Self::Sparse(e)
    }
}

/// `tsv info <matrix>`: shape, nnz, symmetry, tile statistics.
pub fn cmd_info(a: &CsrMatrix<f64>) -> String {
    let stats = TileStats::for_matrix(a);
    let sym = if a.nrows() == a.ncols() {
        let t = a.transpose();
        if t.row_ptr() == a.row_ptr() && t.col_idx() == a.col_idx() {
            "symmetric pattern"
        } else {
            "asymmetric pattern"
        }
    } else {
        "rectangular"
    };
    let mut out = String::new();
    out.push_str(&format!(
        "shape       {} x {} ({sym})\nnnz         {}  ({:.3} per row)\n",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.nnz() as f64 / a.nrows().max(1) as f64
    ));
    out.push_str(&format!(
        "tiles 16    {} ({:.4}% of grid)\ntiles 32    {} ({:.4}% of grid)\ntiles 64    {} ({:.4}% of grid)\n",
        stats.tiles16,
        100.0 * stats.occupancy(tsv_core::tile::TileSize::S16),
        stats.tiles32,
        100.0 * stats.occupancy(tsv_core::tile::TileSize::S32),
        stats.tiles64,
        100.0 * stats.occupancy(tsv_core::tile::TileSize::S64),
    ));
    out
}

/// Renders the sanitizer's account after a run: the aggregate counters as
/// a report line, and — when conflicts were found — a [`CliError`] carrying
/// one report per violation, so the process exits nonzero.
fn sanitizer_verdict(san: &Sanitizer, out: &mut String) -> Result<(), CliError> {
    let s = san.summary();
    out.push_str(&format!(
        "sanitizer: {} launches, {} accesses, {} violations\n",
        s.launches, s.accesses, s.violations
    ));
    if s.violations == 0 {
        return Ok(());
    }
    let mut msg = format!("sanitizer detected {} conflict(s):\n", s.violations);
    for v in san.violations() {
        msg.push_str(&format!("  {v}\n"));
    }
    Err(CliError::Sanitizer(msg))
}

/// Writes the Chrome-trace document and the run-summary JSON next to it
/// (`<trace_out>` and `<trace_out stem>.summary.json`), returning the
/// lines to append to the command's report. Records the tracer's ring
/// accounting into the summary first, and warns on stderr when the ring
/// overflowed — a truncated trace silently missing its oldest spans is
/// worse than a noisy one.
fn write_trace_outputs(
    trace_out: &Path,
    tracer: &Tracer,
    summary: &mut RunSummary,
) -> Result<String, CliError> {
    summary.record_trace(tracer);
    let dropped = tracer.dropped();
    if dropped > 0 {
        eprintln!(
            "warning: trace ring overflowed; {dropped} event(s) dropped (oldest spans are \
             missing from {})",
            trace_out.display()
        );
    }
    let chrome = chrome_trace_json(&tracer.events(), &RTX_3060);
    std::fs::write(trace_out, chrome)
        .map_err(|e| CliError::Usage(format!("cannot write {}: {e}", trace_out.display())))?;
    let summary_path = trace_out.with_extension("summary.json");
    std::fs::write(&summary_path, summary.to_json())
        .map_err(|e| CliError::Usage(format!("cannot write {}: {e}", summary_path.display())))?;
    Ok(format!(
        "trace: {} ({} events)\nsummary: {}\n",
        trace_out.display(),
        tracer.len(),
        summary_path.display(),
    ))
}

/// Writes the process-wide metrics registry as Prometheus text exposition
/// to `path`, self-validating the document before it lands on disk.
fn write_metrics_output(path: &Path) -> Result<String, CliError> {
    let text = tsv_simt::metrics::global().prometheus_text();
    let check = tsv_simt::metrics::validate_prometheus_text(&text)
        .map_err(|e| CliError::Usage(format!("internal error: metrics exposition invalid: {e}")))?;
    std::fs::write(path, &text)
        .map_err(|e| CliError::Usage(format!("cannot write {}: {e}", path.display())))?;
    Ok(format!(
        "metrics: {} ({} families, {} series)\n",
        path.display(),
        check.families,
        check.series,
    ))
}

/// Parses the `--balance` flag: `direct` (one warp per row tile, the
/// default), `binned` (default thresholds), or `binned:<target>[:<split>]`
/// with explicit target nnz per warp and maximum split width.
pub fn parse_balance(spec: &str) -> Result<Balance, CliError> {
    if spec == "direct" {
        return Ok(Balance::OneWarpPerRowTile);
    }
    let mut parts = spec.split(':');
    if parts.next() != Some("binned") {
        return Err(CliError::Usage(format!(
            "unknown balance {spec:?} (direct|binned[:target[:split]])"
        )));
    }
    let Balance::Binned {
        target_nnz: default_target,
        max_split: default_split,
    } = Balance::binned()
    else {
        unreachable!("Balance::binned is the binned variant");
    };
    let parse = |v: Option<&str>, name: &str, default: u32| -> Result<u32, CliError> {
        match v {
            None => Ok(default),
            Some(v) => v.parse::<u32>().ok().filter(|&v| v > 0).ok_or_else(|| {
                CliError::Usage(format!(
                    "balance {name} needs a positive integer, got {v:?}"
                ))
            }),
        }
    };
    let target_nnz = parse(parts.next(), "target", default_target)?;
    let max_split = parse(parts.next(), "split", default_split)?;
    if parts.next().is_some() {
        return Err(CliError::Usage(format!(
            "unknown balance {spec:?} (direct|binned[:target[:split]])"
        )));
    }
    Ok(Balance::Binned {
        target_nnz,
        max_split,
    })
}

/// Parses the `--format` flag: `tilecsr` (the baseline tile-CSR bodies,
/// the default) or `sell[:C[:sigma]]` (SELL-C-σ slab tiles with
/// lane-blocked inner loops; C ∈ {4, 8}, σ a positive row-sort window).
pub fn parse_format(spec: &str) -> Result<SpvFormat, CliError> {
    SpvFormat::parse(spec).map_err(CliError::Usage)
}

/// Parses the `--backend` flag: `model` (the modeled SIMT grid, the
/// default) or `native[:threads]` (the rayon CPU backend, with an optional
/// positive thread count; without one the pool sizes itself to the
/// machine).
pub fn parse_backend(spec: &str) -> Result<ExecBackend, CliError> {
    if spec == "model" {
        return Ok(ExecBackend::model());
    }
    let mut parts = spec.split(':');
    if parts.next() != Some("native") {
        return Err(CliError::Usage(format!(
            "unknown backend {spec:?} (model|native[:threads])"
        )));
    }
    let threads = match parts.next() {
        None => None,
        Some(v) => Some(v.parse::<usize>().ok().filter(|&t| t > 0).ok_or_else(|| {
            CliError::Usage(format!(
                "backend threads needs a positive integer, got {v:?}"
            ))
        })?),
    };
    if parts.next().is_some() {
        return Err(CliError::Usage(format!(
            "unknown backend {spec:?} (model|native[:threads])"
        )));
    }
    Ok(ExecBackend::native(threads))
}

/// Rejects `--sanitize` on a non-model backend: the race sanitizer replays
/// the modeled grid's warp schedules, which a native thread pool does not
/// expose.
fn check_sanitize_backend(sanitize: bool, backend: &ExecBackend) -> Result<(), CliError> {
    if sanitize && backend.kind() != BackendKind::Model {
        return Err(CliError::Usage(format!(
            "--sanitize requires the model backend (the race sanitizer replays modeled \
             warp schedules); drop --sanitize or use --backend model, not {:?}",
            backend.describe()
        )));
    }
    Ok(())
}

/// `tsv spmspv <matrix> --sparsity S [--sanitize] [--trace-out F]
/// [--metrics-out F] [--report]`: one product with timing and report; with
/// `--trace-out`, also a Chrome trace and a run summary of the launch.
/// With `sanitize`, every kernel launch runs under the race sanitizer and
/// any conflict fails the command. `--metrics-out` dumps the process-wide
/// metrics registry as Prometheus text; `--report` appends the roofline
/// utilization table (per-kernel achieved bandwidth / flop rate against
/// the device peaks, with bound classification). `--verify-plan` runs the
/// plan-time static race verifier over the launch shapes before execution
/// and prints its per-obligation verdicts; malformed launch geometry is
/// reported as an error before any kernel runs. `--batch k` (`batch > 0`
/// here) routes through the batched multi-frontier engine instead: `k`
/// random frontiers (seeds `seed..seed+k`) multiplied in one shared tile
/// traversal, with per-lane rows in the output and the run summary.
#[allow(clippy::too_many_arguments)]
pub fn cmd_spmspv(
    a: &CsrMatrix<f64>,
    sparsity: f64,
    seed: u64,
    kernel: KernelChoice,
    balance: Balance,
    format: SpvFormat,
    backend: ExecBackend,
    batch: usize,
    sanitize: bool,
    trace_out: Option<&Path>,
    metrics_out: Option<&Path>,
    report: bool,
    verify_plan: bool,
) -> Result<String, CliError> {
    check_sanitize_backend(sanitize, &backend)?;
    if batch > 0 && kernel == KernelChoice::ColTile {
        return Err(CliError::Usage(
            "--batch runs the row-tile batched kernel (its lane-major output slabs have no \
             column-kernel counterpart); drop --kernel col or --batch"
                .to_string(),
        ));
    }
    let tracer = trace_out.map(|_| Arc::new(Tracer::new()));
    let san = sanitize.then(|| Arc::new(Sanitizer::new()));
    let tiled = TileMatrix::from_csr(a, TileConfig::default())?;
    let mut summary = RunSummary::new("spmspv", RTX_3060);
    summary.set_backend(backend.describe());
    if tracer.is_some() {
        summary.record_tile_nnz(&tiled);
    }
    let opts = SpMSpVOptions {
        kernel,
        balance,
        format,
        verify: verify_plan,
        ..Default::default()
    };
    if batch > 0 {
        let mut engine = BatchedSpMSpVEngine::<PlusTimes>::with_options(tiled, opts);
        let backend_desc = backend.describe();
        engine.set_backend(backend);
        engine.set_tracer(tracer.clone());
        engine.set_sanitizer(san.clone());
        let xs: Vec<_> = (0..batch)
            .map(|q| random_sparse_vector(a.ncols(), sparsity, seed + q as u64))
            .collect();
        let t = Instant::now();
        let (_ys, exec_report) = engine.multiply(&xs)?;
        let dt = t.elapsed();
        summary.record_batch(&exec_report);
        let mut out = format!("batch: {batch} lanes\n");
        for (q, row) in exec_report.per_query.iter().enumerate() {
            out.push_str(&format!(
                "lane {q}: x {} nonzeros -> y {} nonzeros\n",
                row.x_nnz, row.y_nnz
            ));
        }
        out.push_str(&format!(
            "backend: {backend_desc}\nkernel: spmspv/row-tile-batched\nformat: {}\ntime: {:.3} ms   flops: {}   gmem: {} bytes\n",
            exec_report.format,
            dt.as_secs_f64() * 1e3,
            exec_report.stats.flops,
            exec_report.stats.gmem_bytes(),
        ));
        if let Some(d) = &exec_report.dispatch {
            out.push_str(&format!(
                "dispatch: {} units -> {} warps   max/mean work {:.0}/{:.1} (imbalance {:.2})\n",
                d.units,
                d.warps,
                d.max_warp_work as f64,
                d.mean_warp_work(),
                d.imbalance(),
            ));
            summary.record_dispatch("spmspv/row-tile-batched-binned", d);
        }
        if let Some(analysis) = engine.last_analysis() {
            summary.record_static_analysis(analysis);
            out.push_str(&format!("{analysis}"));
        }
        if let Some(san) = &san {
            summary.record_sanitizer(san.summary());
            sanitizer_verdict(san, &mut out)?;
        }
        if trace_out.is_some() || report {
            summary.record_profiler(engine.profiler());
        }
        if report {
            out.push_str("utilization:\n");
            out.push_str(&summary.utilization_table());
        }
        if let (Some(path), Some(tracer)) = (trace_out, &tracer) {
            out.push_str(&write_trace_outputs(path, tracer, &mut summary)?);
        }
        if let Some(path) = metrics_out {
            out.push_str(&write_metrics_output(path)?);
        }
        return Ok(out);
    }
    let x = random_sparse_vector(a.ncols(), sparsity, seed);
    let mut engine = SpMSpVEngine::<PlusTimes>::with_options(tiled, opts);
    let backend_desc = backend.describe();
    engine.set_backend(backend);
    engine.set_tracer(tracer.clone());
    engine.set_sanitizer(san.clone());
    let t = Instant::now();
    let (y, exec_report) = engine.multiply(&x)?;
    let dt = t.elapsed();
    let mut out = format!(
        "x: {} nonzeros ({:.4}% dense)\ny: {} nonzeros\nbackend: {backend_desc}\nkernel: {}\nformat: {}\ntime: {:.3} ms   flops: {}   gmem: {} bytes\n",
        x.nnz(),
        100.0 * x.sparsity(),
        y.nnz(),
        exec_report.kernel,
        exec_report.format,
        dt.as_secs_f64() * 1e3,
        exec_report.stats.flops,
        exec_report.stats.gmem_bytes(),
    );
    if let Some(sell) = &exec_report.sell {
        out.push_str(&format!(
            "sell: {} slab tiles, {} fallback, {} dense   padding {:.3}x\n",
            sell.sell_tiles,
            sell.fallback_tiles,
            sell.dense_tiles,
            sell.padding_ratio(),
        ));
    }
    if let Some(d) = &exec_report.dispatch {
        out.push_str(&format!(
            "dispatch: {} units -> {} warps   max/mean work {:.0}/{:.1} (imbalance {:.2})\n",
            d.units,
            d.warps,
            d.max_warp_work as f64,
            d.mean_warp_work(),
            d.imbalance(),
        ));
        summary.record_dispatch(exec_report.kernel.trace_label(), d);
    }
    if let Some(analysis) = engine.last_analysis() {
        summary.record_static_analysis(analysis);
        out.push_str(&format!("{analysis}"));
    }
    if let Some(san) = &san {
        summary.record_sanitizer(san.summary());
        sanitizer_verdict(san, &mut out)?;
    }
    if trace_out.is_some() || report {
        summary.record_profiler(engine.profiler());
    }
    if report {
        out.push_str("utilization:\n");
        out.push_str(&summary.utilization_table());
    }
    if let (Some(path), Some(tracer)) = (trace_out, &tracer) {
        out.push_str(&write_trace_outputs(path, tracer, &mut summary)?);
    }
    if let Some(path) = metrics_out {
        out.push_str(&write_metrics_output(path)?);
    }
    Ok(out)
}

/// `tsv bfs <matrix> --source V --algo A [--trace-out F] [--metrics-out F]
/// [--report]`: one traversal with summary. Tracing, reporting and the
/// sanitizer instrument the tiled engine only, so those flags require
/// `--algo tile`; `--metrics-out` reads the process-wide registry and
/// works with every algorithm.
#[allow(clippy::too_many_arguments)]
pub fn cmd_bfs(
    a: &CsrMatrix<f64>,
    source: usize,
    algo: &str,
    format: SpvFormat,
    backend: ExecBackend,
    sanitize: bool,
    trace_out: Option<&Path>,
    metrics_out: Option<&Path>,
    report: bool,
    verify_plan: bool,
) -> Result<String, CliError> {
    check_sanitize_backend(sanitize, &backend)?;
    if verify_plan && algo != "tile" {
        return Err(CliError::Usage(format!(
            "--verify-plan analyzes the tiled engine's launch shapes; not supported with --algo {algo}"
        )));
    }
    if format != SpvFormat::TileCsr && algo != "tile" {
        return Err(CliError::Usage(format!(
            "--format selects the tiled engine's kernel bodies; not supported with --algo {algo}"
        )));
    }
    if trace_out.is_some() && algo != "tile" {
        return Err(CliError::Usage(format!(
            "--trace-out instruments the tiled engine; not supported with --algo {algo}"
        )));
    }
    if report && algo != "tile" {
        return Err(CliError::Usage(format!(
            "--report reads the tiled engine's profiler; not supported with --algo {algo}"
        )));
    }
    if sanitize && algo != "tile" {
        return Err(CliError::Usage(format!(
            "--sanitize instruments the tiled engine; not supported with --algo {algo}"
        )));
    }
    if backend.kind() != BackendKind::Model && algo != "tile" {
        return Err(CliError::Usage(format!(
            "--backend selects the tiled engine's substrate; not supported with --algo {algo}"
        )));
    }
    let backend_desc = backend.describe();
    let t = Instant::now();
    let mut traced: Option<(Arc<Tracer>, RunSummary)> = None;
    let mut report_table: Option<String> = None;
    let mut san_report = String::new();
    let levels = match algo {
        "tile" => {
            let tracer = trace_out.map(|_| Arc::new(Tracer::new()));
            let san = sanitize.then(|| Arc::new(Sanitizer::new()));
            let mut engine = BfsEngine::from_csr_traced(a, tracer.clone())?;
            // `--format sell[:C]` maps to the lane-blocked pull sweep with
            // lane width C; tile-CSR keeps the scalar early-exit walk.
            engine.set_options(BfsOptions {
                pull_lanes: match format {
                    SpvFormat::TileCsr => 0,
                    SpvFormat::Sell(cfg) => cfg.c,
                },
                verify: verify_plan,
                ..Default::default()
            });
            engine.set_backend(backend);
            engine.set_sanitizer(san.clone());
            let r = engine.run(source)?;
            if let Some(analysis) = &r.analysis {
                san_report.push_str(&format!("{analysis}"));
            }
            if trace_out.is_some() || report {
                let mut summary = RunSummary::new("bfs", RTX_3060);
                summary.set_backend(&backend_desc);
                summary.record_bfs(&r, a.nrows());
                summary.record_profiler(engine.profiler());
                if let Some(analysis) = &r.analysis {
                    summary.record_static_analysis(analysis);
                }
                if let Some(san) = &san {
                    summary.record_sanitizer(san.summary());
                }
                if report {
                    report_table = Some(summary.utilization_table());
                }
                if let Some(tracer) = tracer {
                    traced = Some((tracer, summary));
                }
            }
            if let Some(san) = &san {
                sanitizer_verdict(san, &mut san_report)?;
            }
            r.levels
        }
        "gunrock" => gunrock_bfs(a, source)?.levels,
        "gswitch" => gswitch_bfs(a, source)?.levels,
        "enterprise" => enterprise_bfs(a, source)?.levels,
        other => {
            return Err(CliError::Usage(format!(
                "unknown algorithm {other:?} (tile|gunrock|gswitch|enterprise)"
            )))
        }
    };
    let dt = t.elapsed();
    let reached = levels.iter().filter(|&&l| l >= 0).count();
    let depth = *levels.iter().max().unwrap_or(&0);
    let edges = bfs_edges_traversed(a, &levels);
    let mut out = format!(
        "algorithm: {algo}\nbackend: {backend_desc}\nreached: {reached}/{} vertices, depth {depth}\nedges traversed: {edges}\ntime (incl. format build): {:.3} ms\n",
        a.nrows(),
        dt.as_secs_f64() * 1e3,
    );
    if algo == "tile" {
        out.push_str(&format!("format: {format}\n"));
    }
    out.push_str(&san_report);
    if let Some(table) = report_table {
        out.push_str("utilization:\n");
        out.push_str(&table);
    }
    if let (Some(path), Some((tracer, summary))) = (trace_out, &mut traced) {
        out.push_str(&write_trace_outputs(path, tracer, summary)?);
    }
    if let Some(path) = metrics_out {
        out.push_str(&write_metrics_output(path)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::banded;

    #[test]
    fn info_reports_shape_and_tiles() {
        let a = banded(100, 4, 0.8, 1).to_csr();
        let s = cmd_info(&a);
        assert!(s.contains("100 x 100"));
        assert!(s.contains("symmetric pattern"));
        assert!(s.contains("tiles 16"));
    }

    #[test]
    fn spmspv_runs_and_reports() {
        let a = banded(200, 5, 0.8, 1).to_csr();
        let s = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::Auto,
            Balance::default(),
            SpvFormat::default(),
            ExecBackend::model(),
            0,
            false,
            None,
            None,
            false,
            false,
        )
        .unwrap();
        assert!(s.contains("kernel:"));
        assert!(s.contains("backend: model"));
        assert!(s.contains("nonzeros"));
    }

    #[test]
    fn spmspv_binned_reports_dispatch_shape() {
        let a = banded(200, 5, 0.8, 1).to_csr();
        let s = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::RowTile,
            Balance::binned(),
            SpvFormat::default(),
            ExecBackend::model(),
            0,
            false,
            None,
            None,
            false,
            false,
        )
        .unwrap();
        assert!(s.contains("dispatch:"), "{s}");
        assert!(s.contains("imbalance"), "{s}");
    }

    #[test]
    fn sanitize_reports_clean_runs_for_both_commands() {
        let a = banded(200, 5, 0.8, 1).to_csr();
        for balance in [Balance::default(), Balance::binned()] {
            let s = cmd_spmspv(
                &a,
                0.05,
                1,
                KernelChoice::Auto,
                balance,
                SpvFormat::default(),
                ExecBackend::model(),
                0,
                true,
                None,
                None,
                false,
                false,
            )
            .unwrap();
            assert!(s.contains("sanitizer:"), "{s}");
            assert!(s.contains(" 0 violations"), "{s}");
        }
        let s = cmd_bfs(
            &a,
            0,
            "tile",
            SpvFormat::default(),
            ExecBackend::model(),
            true,
            None,
            None,
            false,
            false,
        )
        .unwrap();
        assert!(s.contains("sanitizer:"), "{s}");
        assert!(s.contains(" 0 violations"), "{s}");
        // Sanitizing is an engine feature; baseline algorithms reject it.
        assert!(cmd_bfs(
            &a,
            0,
            "gunrock",
            SpvFormat::default(),
            ExecBackend::model(),
            true,
            None,
            None,
            false,
            false,
        )
        .is_err());
    }

    #[test]
    fn balance_specs_parse() {
        assert_eq!(parse_balance("direct").unwrap(), Balance::OneWarpPerRowTile);
        assert_eq!(parse_balance("binned").unwrap(), Balance::binned());
        assert_eq!(
            parse_balance("binned:128").unwrap(),
            Balance::Binned {
                target_nnz: 128,
                max_split: match Balance::binned() {
                    Balance::Binned { max_split, .. } => max_split,
                    Balance::OneWarpPerRowTile => unreachable!(),
                }
            }
        );
        assert_eq!(
            parse_balance("binned:96:8").unwrap(),
            Balance::Binned {
                target_nnz: 96,
                max_split: 8
            }
        );
        assert!(parse_balance("tilted").is_err());
        assert!(parse_balance("binned:0").is_err());
        assert!(parse_balance("binned:64:4:9").is_err());
        assert!(parse_balance("binned:many").is_err());
    }

    #[test]
    fn bfs_all_algorithms_run() {
        let a = banded(150, 4, 0.9, 2).to_csr();
        for algo in ["tile", "gunrock", "gswitch", "enterprise"] {
            let s = cmd_bfs(
                &a,
                0,
                algo,
                SpvFormat::default(),
                ExecBackend::model(),
                false,
                None,
                None,
                false,
                false,
            )
            .unwrap();
            assert!(s.contains("reached: 150/150"), "{algo}: {s}");
        }
        assert!(cmd_bfs(
            &a,
            0,
            "nope",
            SpvFormat::default(),
            ExecBackend::model(),
            false,
            None,
            None,
            false,
            false,
        )
        .is_err());
    }

    #[test]
    fn trace_out_writes_valid_documents() {
        let dir = std::env::temp_dir().join("tsv-cli-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = banded(300, 5, 0.8, 1).to_csr();

        let spmspv_trace = dir.join("spmspv.trace.json");
        let s = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::Auto,
            Balance::binned(),
            SpvFormat::default(),
            ExecBackend::model(),
            0,
            true,
            Some(&spmspv_trace),
            None,
            false,
            false,
        )
        .unwrap();
        assert!(s.contains("trace:"), "{s}");
        let doc = std::fs::read_to_string(&spmspv_trace).unwrap();
        let check = tsv_simt::trace::validate_chrome_trace(&doc).unwrap();
        assert!(check.kernel_spans >= 1, "at least the multiply launch");
        let summary = std::fs::read_to_string(dir.join("spmspv.trace.summary.json")).unwrap();
        let v = tsv_simt::json::parse(&summary).unwrap();
        assert!(!v.get("kernels").unwrap().as_array().unwrap().is_empty());
        // The sanitized run exports its counters in the summary document.
        let san = v.get("sanitizer").expect("sanitizer object present");
        assert_eq!(
            san.get("violations")
                .and_then(tsv_simt::json::JsonValue::as_u64),
            Some(0)
        );

        let bfs_trace = dir.join("bfs.trace.json");
        cmd_bfs(
            &a,
            0,
            "tile",
            SpvFormat::default(),
            ExecBackend::model(),
            false,
            Some(&bfs_trace),
            None,
            false,
            false,
        )
        .unwrap();
        let doc = std::fs::read_to_string(&bfs_trace).unwrap();
        tsv_simt::trace::validate_chrome_trace(&doc).unwrap();
        let summary = std::fs::read_to_string(dir.join("bfs.trace.summary.json")).unwrap();
        let v = tsv_simt::json::parse(&summary).unwrap();
        assert!(!v
            .get("bfs_iterations")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());

        // Tracing is an engine feature; baseline algorithms reject it.
        assert!(cmd_bfs(
            &a,
            0,
            "gunrock",
            SpvFormat::default(),
            ExecBackend::model(),
            false,
            Some(&bfs_trace),
            None,
            false,
            false,
        )
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_and_metrics_out_produce_valid_documents() {
        let dir = std::env::temp_dir().join("tsv-cli-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = banded(300, 5, 0.8, 1).to_csr();

        let metrics_path = dir.join("spmspv.prom");
        let s = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::Auto,
            Balance::binned(),
            SpvFormat::default(),
            ExecBackend::model(),
            0,
            false,
            None,
            Some(&metrics_path),
            true,
            false,
        )
        .unwrap();
        // The utilization table lists the launched kernels with a bound
        // classification column.
        assert!(s.contains("utilization:"), "{s}");
        assert!(s.contains("bound"), "{s}");
        assert!(s.contains("spmspv/"), "{s}");
        assert!(s.contains("metrics:"), "{s}");

        // The exposition on disk revalidates and carries the launch
        // counters the run just incremented.
        let text = std::fs::read_to_string(&metrics_path).unwrap();
        let check = tsv_simt::metrics::validate_prometheus_text(&text).unwrap();
        assert!(check.series > 0);
        assert!(text.contains("tsv_simt_launches_total"), "{text}");
        assert!(text.contains("tsv_engine_phase_ns"), "{text}");
        assert!(text.contains("tsv_engine_multiplies_total"), "{text}");

        // BFS accepts the same flags on the tiled engine and rejects
        // --report on baselines (no profiler to read).
        let s = cmd_bfs(
            &a,
            0,
            "tile",
            SpvFormat::default(),
            ExecBackend::model(),
            false,
            None,
            Some(&dir.join("bfs.prom")),
            true,
            false,
        )
        .unwrap();
        assert!(s.contains("utilization:"), "{s}");
        assert!(s.contains("metrics:"), "{s}");
        assert!(cmd_bfs(
            &a,
            0,
            "gunrock",
            SpvFormat::default(),
            ExecBackend::model(),
            false,
            None,
            None,
            true,
            false,
        )
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backend_specs_parse() {
        assert_eq!(parse_backend("model").unwrap().describe(), "model");
        let native = parse_backend("native:3").unwrap();
        assert_eq!(native.kind(), BackendKind::Native);
        assert_eq!(native.describe(), "native:3");
        assert_eq!(native.threads(), 3);
        let auto = parse_backend("native").unwrap();
        assert_eq!(auto.kind(), BackendKind::Native);
        assert!(auto.threads() >= 1);
        assert!(parse_backend("cuda").is_err());
        assert!(parse_backend("native:0").is_err());
        assert!(parse_backend("native:many").is_err());
        assert!(parse_backend("native:2:4").is_err());
    }

    #[test]
    fn native_backend_runs_both_commands() {
        let a = banded(200, 5, 0.8, 1).to_csr();
        let model = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::Auto,
            Balance::binned(),
            SpvFormat::default(),
            ExecBackend::model(),
            0,
            false,
            None,
            None,
            false,
            false,
        )
        .unwrap();
        let native = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::Auto,
            Balance::binned(),
            SpvFormat::default(),
            ExecBackend::native(Some(2)),
            0,
            false,
            None,
            None,
            false,
            false,
        )
        .unwrap();
        assert!(native.contains("backend: native:2"), "{native}");
        // Same product, same kernel, same counters — only backend and
        // timing lines may differ.
        let stable = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("x:") || l.starts_with("y:") || l.starts_with("kernel:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(stable(&model), stable(&native));

        let s = cmd_bfs(
            &a,
            0,
            "tile",
            SpvFormat::default(),
            ExecBackend::native(Some(2)),
            false,
            None,
            None,
            false,
            false,
        )
        .unwrap();
        assert!(
            s.contains("reached: 150/150") || s.contains("reached: 200/200"),
            "{s}"
        );
        assert!(s.contains("backend: native:2"), "{s}");
    }

    #[test]
    fn sanitize_rejects_native_backend() {
        let a = banded(100, 4, 0.8, 1).to_csr();
        let err = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::Auto,
            Balance::default(),
            SpvFormat::default(),
            ExecBackend::native(Some(2)),
            0,
            true,
            None,
            None,
            false,
            false,
        )
        .unwrap_err();
        assert!(
            err.to_string()
                .contains("--sanitize requires the model backend"),
            "{err}"
        );
        let err = cmd_bfs(
            &a,
            0,
            "tile",
            SpvFormat::default(),
            ExecBackend::native(Some(2)),
            true,
            None,
            None,
            false,
            false,
        )
        .unwrap_err();
        assert!(
            err.to_string()
                .contains("--sanitize requires the model backend"),
            "{err}"
        );
        // Baseline algorithms have no backend either.
        assert!(cmd_bfs(
            &a,
            0,
            "gunrock",
            SpvFormat::default(),
            ExecBackend::native(Some(2)),
            false,
            None,
            None,
            false,
            false,
        )
        .is_err());
    }

    #[test]
    fn format_specs_parse() {
        use tsv_core::tile::SellConfig;
        assert_eq!(parse_format("tilecsr").unwrap(), SpvFormat::TileCsr);
        assert_eq!(
            parse_format("sell").unwrap(),
            SpvFormat::Sell(SellConfig::default())
        );
        match parse_format("sell:4:16").unwrap() {
            SpvFormat::Sell(cfg) => {
                assert_eq!(cfg.c, 4);
                assert_eq!(cfg.sigma, 16);
            }
            other @ SpvFormat::TileCsr => panic!("expected sell, got {other}"),
        }
        assert!(parse_format("csr").is_err());
        assert!(parse_format("sell:3").is_err());
        assert!(parse_format("sell:8:0").is_err());
        assert!(parse_format("sell:8:64:9").is_err());
        assert!(parse_format("tilecsr:8").is_err());
    }

    #[test]
    fn sell_format_reports_slab_stats_and_matches_tilecsr() {
        let a = banded(240, 6, 0.85, 2).to_csr();
        let stable = |s: &str| {
            s.lines()
                .filter(|l| l.starts_with("x:") || l.starts_with("y:") || l.starts_with("kernel:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        for backend in [ExecBackend::model(), ExecBackend::native(Some(2))] {
            let tilecsr = cmd_spmspv(
                &a,
                0.05,
                1,
                KernelChoice::Auto,
                Balance::binned(),
                SpvFormat::default(),
                backend.clone(),
                0,
                false,
                None,
                None,
                false,
                false,
            )
            .unwrap();
            let sell = cmd_spmspv(
                &a,
                0.05,
                1,
                KernelChoice::Auto,
                Balance::binned(),
                parse_format("sell:8:32").unwrap(),
                backend,
                0,
                false,
                None,
                None,
                false,
                false,
            )
            .unwrap();
            assert!(sell.contains("format: sell"), "{sell}");
            assert!(sell.contains("sell: "), "{sell}");
            assert!(sell.contains("padding"), "{sell}");
            assert!(tilecsr.contains("format: tilecsr"), "{tilecsr}");
            // Same product regardless of tile storage.
            assert_eq!(stable(&tilecsr), stable(&sell));
        }
    }

    #[test]
    fn bfs_sell_format_uses_lane_blocked_pull() {
        let a = banded(200, 5, 0.8, 1).to_csr();
        let scalar = cmd_bfs(
            &a,
            0,
            "tile",
            SpvFormat::default(),
            ExecBackend::model(),
            false,
            None,
            None,
            false,
            false,
        )
        .unwrap();
        let lanes = cmd_bfs(
            &a,
            0,
            "tile",
            parse_format("sell:8").unwrap(),
            ExecBackend::model(),
            false,
            None,
            None,
            false,
            false,
        )
        .unwrap();
        assert!(lanes.contains("format: sell"), "{lanes}");
        let reached = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("reached:"))
                .map(str::to_owned)
        };
        assert_eq!(reached(&scalar), reached(&lanes));
        // Baseline algorithms have no tile storage to reshape.
        assert!(cmd_bfs(
            &a,
            0,
            "gunrock",
            parse_format("sell").unwrap(),
            ExecBackend::model(),
            false,
            None,
            None,
            false,
            false,
        )
        .is_err());
    }

    #[test]
    fn spmspv_verify_plan_prints_proved_verdicts() {
        let a = banded(200, 5, 0.8, 1).to_csr();
        for balance in [Balance::default(), Balance::binned()] {
            let s = cmd_spmspv(
                &a,
                0.05,
                1,
                KernelChoice::Auto,
                balance,
                SpvFormat::default(),
                ExecBackend::model(),
                0,
                false,
                None,
                None,
                false,
                true,
            )
            .unwrap();
            assert!(s.contains("plan spmspv/"), "{s}");
            assert!(s.contains("proved"), "{s}");
            assert!(s.contains("write-disjointness"), "{s}");
            assert!(s.contains("merge-determinism"), "{s}");
            assert!(s.contains("workspace-aliasing"), "{s}");
        }
    }

    #[test]
    fn bfs_verify_plan_prints_proved_verdicts_and_rejects_baselines() {
        let a = banded(200, 5, 0.8, 1).to_csr();
        let s = cmd_bfs(
            &a,
            0,
            "tile",
            SpvFormat::default(),
            ExecBackend::model(),
            false,
            None,
            None,
            false,
            true,
        )
        .unwrap();
        assert!(s.contains("plan bfs/"), "{s}");
        assert!(s.contains("proved"), "{s}");
        // Baselines have no tiled launch plan to verify.
        assert!(cmd_bfs(
            &a,
            0,
            "gunrock",
            SpvFormat::default(),
            ExecBackend::model(),
            false,
            None,
            None,
            false,
            true,
        )
        .is_err());
    }

    #[test]
    fn verify_plan_works_on_the_native_backend() {
        // Unlike --sanitize, the static proof is substrate-independent.
        let a = banded(200, 5, 0.8, 1).to_csr();
        let s = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::Auto,
            Balance::default(),
            SpvFormat::default(),
            ExecBackend::native(Some(2)),
            0,
            false,
            None,
            None,
            false,
            true,
        )
        .unwrap();
        assert!(s.contains("plan spmspv/"), "{s}");
        assert!(s.contains("proved"), "{s}");
    }

    #[test]
    fn spmspv_batch_prints_per_lane_rows_on_both_backends() {
        let a = banded(200, 5, 0.8, 1).to_csr();
        for backend in [ExecBackend::model(), ExecBackend::native(Some(2))] {
            for balance in [Balance::default(), Balance::binned()] {
                let s = cmd_spmspv(
                    &a,
                    0.05,
                    1,
                    KernelChoice::Auto,
                    balance,
                    SpvFormat::default(),
                    backend.clone(),
                    3,
                    false,
                    None,
                    None,
                    false,
                    false,
                )
                .unwrap();
                assert!(s.contains("batch: 3 lanes"), "{s}");
                assert!(s.contains("lane 0:"), "{s}");
                assert!(s.contains("lane 2:"), "{s}");
                assert!(s.contains("kernel: spmspv/row-tile-batched"), "{s}");
                if balance == Balance::binned() {
                    assert!(s.contains("dispatch:"), "{s}");
                }
            }
        }
    }

    #[test]
    fn spmspv_batch_rejects_the_column_kernel() {
        let a = banded(100, 4, 0.8, 1).to_csr();
        let err = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::ColTile,
            Balance::default(),
            SpvFormat::default(),
            ExecBackend::model(),
            2,
            false,
            None,
            None,
            false,
            false,
        )
        .unwrap_err();
        assert!(err.to_string().contains("--batch"), "{err}");
    }

    #[test]
    fn spmspv_batch_sanitizes_verifies_and_records_the_summary() {
        let dir = std::env::temp_dir().join("tsv-cli-batch-test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = banded(300, 5, 0.8, 1).to_csr();
        let trace = dir.join("batch.trace.json");
        let s = cmd_spmspv(
            &a,
            0.05,
            1,
            KernelChoice::Auto,
            Balance::binned(),
            SpvFormat::default(),
            ExecBackend::model(),
            4,
            true,
            Some(&trace),
            None,
            false,
            true,
        )
        .unwrap();
        assert!(s.contains("batch: 4 lanes"), "{s}");
        assert!(s.contains("plan spmspv/row-tile-batched/"), "{s}");
        assert!(s.contains("/b4"), "{s}");
        assert!(s.contains("proved"), "{s}");
        assert!(s.contains("sanitizer:"), "{s}");
        assert!(s.contains(" 0 violations"), "{s}");
        let summary = std::fs::read_to_string(dir.join("batch.trace.summary.json")).unwrap();
        let v = tsv_simt::json::parse(&summary).unwrap();
        let batch = v.get("batch").expect("batch object present");
        assert_eq!(
            batch
                .get("width")
                .and_then(tsv_simt::json::JsonValue::as_u64),
            Some(4)
        );
        assert_eq!(
            batch
                .get("queries")
                .and_then(tsv_simt::json::JsonValue::as_array)
                .map(<[tsv_simt::json::JsonValue]>::len),
            Some(4)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
