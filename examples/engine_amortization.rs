//! Engine amortization: the same iterative SpMSpV workload run through a
//! shared [`SpMSpVEngine`] workspace versus a fresh workspace per call.
//!
//! The kernel work (slots scanned and reset during touched-tile
//! compaction) is identical either way — the engine only amortizes the
//! scratch builds, which is the point of the execution-plan layer for
//! iterative algorithms like SSSP and label propagation.
//!
//! Run with `cargo run --example engine_amortization`.

use tilespmspv::core::exec::{spmspv_with_workspace, SpMSpVEngine, SpMSpVWorkspace};
use tilespmspv::core::semiring::{MinPlus, PlusTimes};
use tilespmspv::core::tile::{TileConfig, TileMatrix};
use tilespmspv::sparse::gen::{banded, random_sparse_vector};

fn main() {
    let a = banded(4096, 8, 0.9, 7).to_csr();
    let rounds = 16;
    let xs: Vec<_> = (0..rounds)
        .map(|s| random_sparse_vector(a.ncols(), 0.01, s as u64))
        .collect();

    // Shared workspace: one scratch build for the whole run.
    let mut engine = SpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
    for x in &xs {
        engine.multiply(x).unwrap();
    }
    let shared = engine.metrics();

    // Fresh workspace per call: one scratch build per round.
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    let mut builds = 0;
    let mut scanned = 0;
    for x in &xs {
        let mut ws = SpMSpVWorkspace::new();
        spmspv_with_workspace::<PlusTimes>(&tiled, x, Default::default(), &mut ws).unwrap();
        builds += ws.metrics().scratch_reshapes;
        scanned += ws.metrics().slots_scanned;
    }

    println!("{rounds} rounds of SpMSpV on a 4096-row banded matrix");
    println!(
        "  engine (shared workspace): {} scratch builds, {} compaction slots",
        shared.scratch_reshapes, shared.slots_scanned
    );
    println!("  one-shot (fresh per call): {builds} scratch builds, {scanned} compaction slots");
    assert_eq!(shared.slots_scanned, scanned, "same kernel work either way");
    assert!(shared.scratch_reshapes < builds);

    // The same engine API serves any semiring; (min, +) drives SSSP.
    let mut tropical = SpMSpVEngine::<MinPlus>::from_csr(&a, TileConfig::default()).unwrap();
    let x = random_sparse_vector(a.ncols(), 0.01, 1);
    let (y, report) = tropical.multiply(&x).unwrap();
    println!(
        "  (min, +) multiply through the same layer: {} outputs via the {:?} kernel",
        y.nnz(),
        report.kernel
    );
}
