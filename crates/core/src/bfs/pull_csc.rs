//! Pull-CSC (K3): the pull kernel of Algorithm 7.
//!
//! The input vector is the *complement of the mask* (the unvisited
//! vertices, Fig. 5's `x₃ = ¬m₃`). Each unvisited vertex checks its own
//! matrix column against the visited mask; on the first non-empty
//! intersection the vertex joins the next frontier and the warp stops
//! scanning its remaining tiles (line 10's early exit).
//!
//! The column-of-own-index check finds *out*-neighbors under `y = Ax`; it
//! equals the in-neighbor check exactly when the adjacency pattern is
//! symmetric, which is why the policy only selects this kernel for
//! undirected graphs (the paper's BFS setting). Because completed BFS
//! layers guarantee every visited neighbor of an unvisited vertex sits in
//! the *current* frontier, testing against `m` (as the paper does) yields
//! the same level assignment as testing against `x`.

use crate::tile::bitvec::iter_bits;
use crate::tile::{BitFrontier, BitTileMatrix};
use tsv_simt::backend::{Backend, ModelBackend};
use tsv_simt::sanitize::{self, Sanitizer};
use tsv_simt::stats::KernelStats;

/// Discovers the next frontier by pulling from unvisited vertices; returns
/// the newly discovered vertices and the kernel's work counters.
pub fn pull_csc(a: &BitTileMatrix, m: &BitFrontier) -> (BitFrontier, KernelStats) {
    let unvisited = m.complement();
    let mut y_words = vec![0u64; a.n_tiles()];
    let stats = pull_csc_into(&ModelBackend, a, m, &unvisited, &mut y_words, 0, None);
    let mut out = BitFrontier::new(m.len(), a.nt());
    out.set_words(y_words);
    (out, stats)
}

/// Lane-blocked hit detection over one tile's column words: ANDs `C`
/// column words per step against the broadcast mask word and bit-packs the
/// nonzero tests into a per-tile hit word. The fixed-width `[u64; C]`
/// blocks let LLVM autovectorize the AND sweep on stable Rust; OR-ing hits
/// is order-free, so the result equals the scalar per-column walk.
#[inline]
fn pull_tile_lanes<const C: usize>(words: &[u64], mask_word: u64) -> u64 {
    let mut hit = 0u64;
    for (j, blk) in words.chunks_exact(C).enumerate() {
        let blk: &[u64; C] = blk.try_into().expect("lane width");
        let mut h = [0u64; C];
        for l in 0..C {
            h[l] = blk[l] & mask_word;
        }
        for (l, &hv) in h.iter().enumerate() {
            hit |= u64::from(hv != 0) << (j * C + l);
        }
    }
    hit
}

/// Workspace form of [`pull_csc`]: the caller supplies the precomputed
/// complement of the mask (see
/// [`BitFrontier::complement_into`](crate::tile::BitFrontier::complement_into))
/// and the output word buffer, which is fully overwritten.
///
/// `lanes` selects the inner-loop shape: `0` is the scalar
/// column-at-a-time walk with the paper's per-column early exit (Algorithm
/// 7 line 10); `4` or `8` process that many columns per step over
/// fixed-width blocks (the early exit moves to tile granularity — the tile
/// scan stops once every unvisited column has found a parent). Both shapes
/// discover exactly the same frontier; the work counters differ because
/// the lane form reads whole tiles. Other values (or a lane width that
/// does not divide `nt`) fall back to the scalar walk.
pub fn pull_csc_into<B: Backend>(
    backend: &B,
    a: &BitTileMatrix,
    m: &BitFrontier,
    unvisited: &BitFrontier,
    y_words: &mut [u64],
    lanes: usize,
    san: Option<&Sanitizer>,
) -> KernelStats {
    let nt = a.nt();
    let word_bytes = nt / 8;
    debug_assert_eq!(y_words.len(), a.n_tiles());
    let lanes = if (lanes == 4 || lanes == 8) && nt.is_multiple_of(lanes) {
        lanes
    } else {
        0
    };

    backend.launch_over_chunks("bfs/pull-csc", y_words, 1, |warp, out| {
        let ct = warp.warp_id; // vertex tile = column tile of its own column
                               // Every warp owns exactly its own output word and overwrites it on
                               // all paths: a plain exclusive store.
        sanitize::write(san, "y-words", ct, warp.warp_id, 0);
        let uw = unvisited.word(ct);
        warp.stats.read(word_bytes);
        sanitize::read(san, "unvisited", ct, warp.warp_id, 0);
        if uw == 0 {
            // Still overwrite: the caller's buffer may hold a previous
            // iteration's word.
            out[0] = 0;
            return;
        }
        let mut found = 0u64;
        if lanes == 0 {
            for lc in iter_bits(uw) {
                // Scan the stored tiles of this column until a visited
                // parent shows up.
                for t in a.col_tile_range(ct) {
                    let rt = a.csc_row_tile(t);
                    let col_word = a.csc_tile_words(t)[lc];
                    warp.stats.read(4);
                    warp.stats.read_scattered(2 * word_bytes); // column + mask words
                    warp.stats.bitop(1);
                    sanitize::read(san, "mask", rt, warp.warp_id, lc % 32);
                    if col_word & m.word(rt) != 0 {
                        found |= 1u64 << lc;
                        break; // early exit, Algorithm 7 line 10
                    }
                }
                warp.stats.lane_steps += 1;
            }
        } else {
            for t in a.col_tile_range(ct) {
                if uw & !found == 0 {
                    break; // every unvisited column has found a parent
                }
                let rt = a.csc_row_tile(t);
                let mask_word = m.word(rt);
                warp.stats.read(4 + word_bytes); // tile header + mask word
                sanitize::read(san, "mask", rt, warp.warp_id, 0);
                if mask_word == 0 {
                    continue; // no visited vertices in this row tile
                }
                let words = a.csc_tile_words(t);
                warp.stats.read_scattered(words.len() * word_bytes);
                warp.stats.bitop(words.len());
                let hit = match lanes {
                    4 => pull_tile_lanes::<4>(words, mask_word),
                    _ => pull_tile_lanes::<8>(words, mask_word),
                };
                found |= hit & uw;
                warp.stats.lane_steps += (words.len() / lanes) as u64;
            }
        }
        if found != 0 {
            warp.stats.write(word_bytes);
        }
        out[0] = found;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::push_csc::push_csc;
    use tsv_sparse::gen::banded;
    use tsv_sparse::CooMatrix;

    fn chain(n: usize) -> BitTileMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i + 1, 1.0);
            coo.push(i + 1, i, 1.0);
        }
        BitTileMatrix::from_csr(&coo.to_csr(), 32, 0).unwrap()
    }

    #[test]
    fn pull_matches_push_when_frontier_is_last_layer() {
        let a = chain(64);
        // Visited = {0..=10}; last layer = {10}; next layer must be {11}.
        let mut m = BitFrontier::new(64, 32);
        for v in 0..=10 {
            m.set(v);
        }
        let mut x = BitFrontier::new(64, 32);
        x.set(10);
        let (y_pull, _) = pull_csc(&a, &m);
        let (y_push, _) = push_csc(&a, &x, &m);
        assert_eq!(y_pull, y_push);
        assert_eq!(y_pull.iter_vertices().collect::<Vec<_>>(), vec![11]);
    }

    #[test]
    fn nearly_complete_traversal_is_cheap() {
        let a = chain(96);
        let mut m = BitFrontier::new(96, 32);
        for v in 0..95 {
            m.set(v);
        }
        let (y, stats) = pull_csc(&a, &m);
        assert_eq!(y.iter_vertices().collect::<Vec<_>>(), vec![95]);
        // Only tiles of unvisited vertices pay more than a word read.
        assert!(stats.gmem_bytes() < 96 * 16);
    }

    #[test]
    fn early_exit_stops_at_first_parent() {
        // Star: vertex 1 connects to everything; all visited except 0.
        let n = 40;
        let mut coo = CooMatrix::new(n, n);
        for v in 0..n {
            if v != 1 {
                coo.push(1, v, 1.0);
                coo.push(v, 1, 1.0);
            }
        }
        let a = BitTileMatrix::from_csr(&coo.to_csr(), 32, 0).unwrap();
        let mut m = BitFrontier::new(n, 32);
        for v in 1..n {
            m.set(v);
        }
        let (y, _) = pull_csc(&a, &m);
        assert_eq!(y.iter_vertices().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn lane_blocked_pull_matches_scalar() {
        // Several visited prefixes over an irregular graph: the lane-blocked
        // sweep must discover exactly the scalar walk's frontier.
        let a = banded(200, 7, 0.8, 3);
        let bit = BitTileMatrix::from_csr(&a.to_csr(), 32, 0).unwrap();
        for visited in [1usize, 13, 64, 120, 199] {
            let mut m = BitFrontier::new(200, 32);
            for v in 0..visited {
                m.set(v);
            }
            let unvisited = m.complement();
            let mut scalar = vec![0u64; bit.n_tiles()];
            pull_csc_into(&ModelBackend, &bit, &m, &unvisited, &mut scalar, 0, None);
            for lanes in [4usize, 8] {
                let mut lane = vec![0u64; bit.n_tiles()];
                pull_csc_into(&ModelBackend, &bit, &m, &unvisited, &mut lane, lanes, None);
                assert_eq!(scalar, lane, "visited={visited} lanes={lanes}");
            }
        }
    }

    #[test]
    fn invalid_lane_widths_fall_back_to_scalar() {
        let a = chain(64);
        let mut m = BitFrontier::new(64, 32);
        for v in 0..=10 {
            m.set(v);
        }
        let unvisited = m.complement();
        let mut scalar = vec![0u64; a.n_tiles()];
        let s0 = pull_csc_into(&ModelBackend, &a, &m, &unvisited, &mut scalar, 0, None);
        // 3 is not a supported lane width: identical counters prove the
        // scalar path ran.
        let mut odd = vec![0u64; a.n_tiles()];
        let s3 = pull_csc_into(&ModelBackend, &a, &m, &unvisited, &mut odd, 3, None);
        assert_eq!(scalar, odd);
        assert_eq!(s0, s3);
    }

    #[test]
    fn all_visited_discovers_nothing() {
        let a = chain(32);
        let mut m = BitFrontier::new(32, 32);
        for v in 0..32 {
            m.set(v);
        }
        let (y, _) = pull_csc(&a, &m);
        assert!(y.none());
    }

    #[test]
    fn disconnected_vertices_stay_undiscovered() {
        let a = banded(64, 2, 1.0, 1);
        let mut csr = a.to_csr();
        // Remove row/col 63 connections by rebuilding without them.
        let mut coo = CooMatrix::new(64, 64);
        for (r, c, v) in csr.iter() {
            if r < 60 && c < 60 {
                coo.push(r, c, v);
            }
        }
        csr = coo.to_csr();
        let bit = BitTileMatrix::from_csr(&csr, 32, 0).unwrap();
        let mut m = BitFrontier::new(64, 32);
        for v in 0..60 {
            m.set(v);
        }
        let (y, _) = pull_csc(&bit, &m);
        // 60..64 have no visited parents (no edges at all).
        assert!(y.none());
    }
}
