//! Machine-readable run summaries.
//!
//! [`RunSummary`] collects the three views the paper's §4.5 analysis is
//! built from — the per-kernel table (from a [`Profiler`]), the
//! per-iteration BFS timeline (from a [`BfsResult`]) and distribution
//! histograms (per-tile nnz, frontier densities) — and renders them as one
//! JSON document. The schema is hand-rolled (the workspace carries no
//! serde) and versioned via `schema_version`; the emitted document is
//! parseable by [`tsv_simt::json::parse`], which the `repro trace` smoke
//! check uses to validate its own output.
//!
//! Per-kernel `modeled_ms` comes from
//! [`ProfileEntry::modeled_secs`](tsv_simt::profile::ProfileEntry::modeled_secs),
//! so the summary's totals equal the profiler's `report` figures exactly.

use crate::bfs::BfsResult;
use crate::exec::BatchExecReport;
use crate::spmspv::DispatchStats;
use crate::tile::TileMatrix;
use std::fmt::Write as _;
use tsv_simt::analyze::PlanReport;
use tsv_simt::device::DeviceConfig;
use tsv_simt::json;
use tsv_simt::model::{kernel_time, SCATTER_PENALTY};
use tsv_simt::profile::Profiler;
use tsv_simt::sanitize::SanitizerSummary;
use tsv_simt::stats::KernelStats;
use tsv_simt::trace::Tracer;

/// Schema version of [`RunSummary::to_json`]. Version 2 added the
/// `dispatch` array (per-plan warp-occupancy and work-imbalance views of
/// the binned scheduler). Version 3 added the optional `sanitizer` object
/// (launches analyzed, shadow accesses logged, conflicts detected by the
/// race sanitizer). Version 4 added the `backend` string (which execution
/// substrate ran the kernels: `"model"` or `"native:<threads>"`).
/// Version 5 added `lane_steps` to kernel rows, the `utilization` array
/// (per-kernel roofline attribution: achieved bandwidth / flop rate as
/// fractions of the [`DeviceConfig`] peaks, with a bound classification)
/// and the optional `trace` object (`events`, `events_dropped` — ring
/// overflow accounting from the tracer). Version 6 added `atomics` to the
/// `sanitizer` object and the optional `static_analysis` object (verdict
/// counts plus one row per verified plan, each with its per-obligation
/// verdicts from the plan-time race verifier). Version 7 added the
/// optional `batch` object (batch width, batched multiplies recorded, and
/// one row per query lane with its frontier/output nonzero counts) for
/// runs through the batched multi-frontier engine.
pub const SCHEMA_VERSION: u32 = 7;

/// One row of the per-kernel table.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSummary {
    /// Kernel label, e.g. `"spmspv/row-tile"` or `"bfs/push-csc"`.
    pub label: String,
    /// Recorded launches.
    pub launches: usize,
    /// Summed wall time, milliseconds.
    pub wall_ms: f64,
    /// Modeled device time, milliseconds (equals the profiler report).
    pub modeled_ms: f64,
    /// Streamed global-memory traffic, bytes.
    pub gmem_bytes: u64,
    /// Scattered global-memory traffic, bytes.
    pub gmem_scattered_bytes: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// Bitmask operations.
    pub bitops: u64,
    /// Atomic operations.
    pub atomics: u64,
    /// Warps launched.
    pub warps: u64,
    /// Lane-iterations executed (occupancy/divergence measure; feeds the
    /// compute term of the roofline at 0.25 ops per step).
    pub lane_steps: u64,
}

/// One row of the per-iteration BFS timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationSummary {
    /// BFS level the iteration discovered.
    pub level: u32,
    /// The kernel the policy selected.
    pub kernel: &'static str,
    /// Frontier size entering the iteration.
    pub frontier: usize,
    /// Vertices discovered.
    pub discovered: usize,
    /// Vertices still unvisited entering the iteration.
    pub unvisited: usize,
    /// `frontier / n` — what the policy's density rule saw.
    pub density: f64,
    /// Iteration wall time, milliseconds.
    pub wall_ms: f64,
    /// Modeled device time of the iteration's launch, milliseconds.
    pub modeled_ms: f64,
}

/// A named bucketed distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Distribution name, e.g. `"tile_nnz"`.
    pub name: String,
    /// `(bucket label, count)` pairs in ascending bucket order.
    pub buckets: Vec<(String, u64)>,
}

/// One dispatch-plan row: how the binned scheduler distributed work
/// units across warps for a labeled sequence of launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DispatchSummary {
    /// Plan label, e.g. `"spmspv/row-tile-binned"`.
    pub label: String,
    /// Plans aggregated into this row.
    pub plans: usize,
    /// Summed work units (active row/column tiles) across the plans.
    pub units: u64,
    /// Summed warps launched across the plans.
    pub warps: u64,
    /// Heaviest per-warp work seen in any plan.
    pub max_warp_work: u64,
    /// Summed per-warp work across all warps of all plans.
    pub total_work: u64,
    /// Warp counts bucketed by units-per-warp (power-of-two buckets).
    pub occupancy: Histogram,
    /// Warp counts bucketed by per-warp work (power-of-two buckets).
    pub work: Histogram,
}

impl DispatchSummary {
    /// Mean per-warp work across all warps of all plans (0 when empty).
    pub fn mean_warp_work(&self) -> f64 {
        if self.warps == 0 {
            0.0
        } else {
            self.total_work as f64 / self.warps as f64
        }
    }

    /// `max_warp_work / mean_warp_work` — 1.0 is perfectly balanced, and
    /// the value reported for an empty row.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_warp_work();
        if mean == 0.0 {
            1.0
        } else {
            self.max_warp_work as f64 / mean
        }
    }
}

/// Which roofline term dominated a kernel's modeled time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundKind {
    /// The memory term (streamed + penalized scattered traffic over peak
    /// bandwidth) was largest.
    Memory,
    /// The compute term (flops + bitops + lane-step overhead over peak
    /// flop rate) was largest.
    Compute,
    /// The atomic-throughput term was largest.
    Atomic,
    /// Fixed costs (per-launch overhead plus warp scheduling) exceeded
    /// every roofline term — the kernel is too small to saturate anything.
    Overhead,
}

impl BoundKind {
    /// Lower-case name used in JSON and tables.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Memory => "memory",
            Self::Compute => "compute",
            Self::Atomic => "atomic",
            Self::Overhead => "overhead",
        }
    }
}

/// Per-kernel roofline attribution: where one kernel's modeled time went,
/// expressed as achieved rates and as fractions of the device peaks.
///
/// The fractions restate the cost model's own terms: each is (term time)
/// / (modeled time). Because the modeled body is `max(mem, compute,
/// atomic) / sqrt(occupancy)` with `occupancy <= 1`, and launch/schedule
/// overhead only adds on top, every fraction is provably `<= 1.0` — a
/// kernel cannot appear to exceed a [`DeviceConfig`] peak.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelUtilization {
    /// Kernel label, matching the [`KernelSummary`] row.
    pub label: String,
    /// Raw global-memory traffic over modeled time, GB/s (no scatter
    /// penalty — this is the bandwidth the kernel actually achieved).
    pub achieved_gbps: f64,
    /// ALU throughput (flops + bitops + 0.25·lane_steps) over modeled
    /// time, GFLOP/s.
    pub achieved_gflops: f64,
    /// Memory-term time as a fraction of modeled time (penalized traffic
    /// over peak bandwidth; in `[0, 1]`).
    pub bw_fraction: f64,
    /// Compute-term time as a fraction of modeled time (in `[0, 1]`).
    pub flop_fraction: f64,
    /// Atomic-term time as a fraction of modeled time (in `[0, 1]`).
    pub atomic_fraction: f64,
    /// Which term dominated.
    pub bound: BoundKind,
}

impl KernelUtilization {
    /// Attribution for `launches` launches whose summed counters are
    /// `stats` and whose modeled total is `modeled_ms` — the figures a
    /// [`KernelSummary`] row carries.
    pub fn from_launches(
        label: impl Into<String>,
        stats: &KernelStats,
        launches: usize,
        modeled_ms: f64,
        device: &DeviceConfig,
    ) -> Self {
        let label = label.into();
        let modeled_secs = modeled_ms * 1e-3;
        // Degenerate (zero, negative or NaN) modeled time: no meaningful
        // rates, report zero utilization.
        if modeled_secs.is_nan() || modeled_secs <= 0.0 {
            return Self {
                label,
                achieved_gbps: 0.0,
                achieved_gflops: 0.0,
                bw_fraction: 0.0,
                flop_fraction: 0.0,
                atomic_fraction: 0.0,
                bound: BoundKind::Overhead,
            };
        }
        // Mirror `tsv_simt::model::kernel_time` term for term so the
        // fractions are exact restatements of the cost model.
        let scattered = stats.gmem_scattered_bytes as f64;
        let streamed = stats
            .gmem_bytes()
            .saturating_sub(stats.gmem_scattered_bytes) as f64;
        let mem_secs = (streamed + SCATTER_PENALTY * scattered) / device.peak_bytes_per_sec();
        let alu_ops = stats.flops as f64 + stats.bitops as f64 + 0.25 * stats.lane_steps as f64;
        let compute_secs = alu_ops / device.peak_flops();
        let atomic_secs = stats.atomics as f64 / device.atomics_per_sec;
        let overhead_secs = launches as f64 * device.launch_overhead_us * 1e-6
            + stats.warps as f64 * device.warp_sched_ns * 1e-9 / f64::from(device.sm_count);

        let body_max = mem_secs.max(compute_secs).max(atomic_secs);
        let bound = if overhead_secs > body_max {
            BoundKind::Overhead
        } else if mem_secs >= compute_secs && mem_secs >= atomic_secs {
            BoundKind::Memory
        } else if compute_secs >= atomic_secs {
            BoundKind::Compute
        } else {
            BoundKind::Atomic
        };

        Self {
            label,
            achieved_gbps: stats.gmem_bytes() as f64 / modeled_secs / 1e9,
            achieved_gflops: alu_ops / modeled_secs / 1e9,
            bw_fraction: mem_secs / modeled_secs,
            flop_fraction: compute_secs / modeled_secs,
            atomic_fraction: atomic_secs / modeled_secs,
            bound,
        }
    }

    /// Attribution computed from one recorded [`KernelSummary`] row.
    pub fn from_row(row: &KernelSummary, device: &DeviceConfig) -> Self {
        let stats = KernelStats {
            gmem_read_bytes: row.gmem_bytes,
            gmem_write_bytes: 0,
            gmem_scattered_bytes: row.gmem_scattered_bytes,
            atomics: row.atomics,
            flops: row.flops,
            bitops: row.bitops,
            warps: row.warps,
            lane_steps: row.lane_steps,
        };
        Self::from_launches(
            row.label.clone(),
            &stats,
            row.launches,
            row.modeled_ms,
            device,
        )
    }
}

/// One query lane's row in the `batch` object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchQuerySummary {
    /// Lane index within the batch.
    pub query: usize,
    /// Nonzeros of the lane's input frontier.
    pub x_nnz: u64,
    /// Nonzeros of the lane's compacted output.
    pub y_nnz: u64,
}

/// Account of the most recent batched multiply: the batch width, how many
/// batched multiplies this summary has seen, and per-query lane rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchSummary {
    /// Query lanes in the most recent batched multiply.
    pub width: usize,
    /// Batched multiplies recorded into this summary.
    pub multiplies: u64,
    /// Per-lane rows of the most recent batched multiply, lane order.
    pub queries: Vec<BatchQuerySummary>,
}

/// Tracer ring accounting: how many events the ring holds and how many
/// were evicted because it wrapped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Events currently held in the ring.
    pub events: u64,
    /// Events evicted by ring overflow — nonzero means the exported trace
    /// is missing its oldest spans.
    pub events_dropped: u64,
}

/// A structured, exportable account of one run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    workload: String,
    device: DeviceConfig,
    backend: String,
    kernels: Vec<KernelSummary>,
    bfs_iterations: Vec<IterationSummary>,
    histograms: Vec<Histogram>,
    dispatch: Vec<DispatchSummary>,
    sanitizer: Option<SanitizerSummary>,
    trace: Option<TraceSummary>,
    static_analysis: Vec<PlanReport>,
    batch: Option<BatchSummary>,
}

impl RunSummary {
    /// An empty summary for `workload`, modeled on `device`. The backend
    /// defaults to `"model"`; runs on another substrate record it with
    /// [`RunSummary::set_backend`].
    pub fn new(workload: impl Into<String>, device: DeviceConfig) -> Self {
        Self {
            workload: workload.into(),
            device,
            backend: "model".to_string(),
            kernels: Vec::new(),
            bfs_iterations: Vec::new(),
            histograms: Vec::new(),
            dispatch: Vec::new(),
            sanitizer: None,
            trace: None,
            static_analysis: Vec::new(),
            batch: None,
        }
    }

    /// Records which execution substrate ran the kernels (e.g. `"model"`
    /// or `"native:8"` — the [`tsv_simt::ExecBackend::describe`] string).
    pub fn set_backend(&mut self, backend: impl Into<String>) {
        self.backend = backend.into();
    }

    /// The recorded execution backend.
    pub fn backend(&self) -> &str {
        &self.backend
    }

    /// Appends one per-kernel row per profiler entry. `modeled_ms` uses the
    /// same per-launch share as `Profiler::report`, so the two views agree
    /// figure for figure.
    pub fn record_profiler(&mut self, p: &Profiler) {
        for (label, e) in p.entries() {
            self.kernels.push(KernelSummary {
                label,
                launches: e.launches,
                wall_ms: e.wall.as_secs_f64() * 1e3,
                modeled_ms: e.modeled_secs(&self.device) * 1e3,
                gmem_bytes: e.stats.gmem_bytes(),
                gmem_scattered_bytes: e.stats.gmem_scattered_bytes,
                flops: e.stats.flops,
                bitops: e.stats.bitops,
                atomics: e.stats.atomics,
                warps: e.stats.warps,
                lane_steps: e.stats.lane_steps,
            });
        }
    }

    /// Appends the per-iteration timeline of a traversal over `n` vertices
    /// and a histogram of its frontier densities.
    pub fn record_bfs(&mut self, r: &BfsResult, n: usize) {
        let mut counts = [0u64; DENSITY_BUCKETS.len()];
        for it in &r.iterations {
            let density = it.frontier as f64 / n.max(1) as f64;
            counts[density_bucket(density)] += 1;
            self.bfs_iterations.push(IterationSummary {
                level: it.level,
                kernel: it.kernel.trace_label(),
                frontier: it.frontier,
                discovered: it.discovered,
                unvisited: it.unvisited,
                density,
                wall_ms: it.wall.as_secs_f64() * 1e3,
                modeled_ms: kernel_time(&it.stats, &self.device) * 1e3,
            });
        }
        self.histograms.push(Histogram {
            name: "frontier_density".to_string(),
            buckets: DENSITY_BUCKETS
                .iter()
                .zip(counts)
                .map(|(label, c)| (label.to_string(), c))
                .collect(),
        });
    }

    /// Appends a power-of-two histogram of per-tile nonzero counts — the
    /// distribution the paper's tiling analysis (per-tile load balance)
    /// turns on.
    pub fn record_tile_nnz<T: Copy + PartialEq + Default + Send + Sync>(
        &mut self,
        a: &TileMatrix<T>,
    ) {
        let mut counts: Vec<u64> = Vec::new();
        for t in 0..a.num_tiles() {
            let nnz = a.tile(t).nnz();
            // Bucket k holds tiles with nnz in [2^k, 2^(k+1)).
            let k = (usize::BITS - nnz.max(1).leading_zeros() - 1) as usize;
            if counts.len() <= k {
                counts.resize(k + 1, 0);
            }
            counts[k] += 1;
        }
        self.histograms.push(Histogram {
            name: "tile_nnz".to_string(),
            buckets: counts
                .iter()
                .enumerate()
                .map(|(k, &c)| {
                    let lo = 1u64 << k;
                    let hi = (1u64 << (k + 1)) - 1;
                    (format!("{lo}..{hi}"), c)
                })
                .collect(),
        });
    }

    /// Folds one dispatch plan's statistics into the row labeled `label`,
    /// creating the row on first sight. Iterative workloads (BFS, SSSP)
    /// call this once per `multiply`, so a row aggregates every plan the
    /// label produced; histogram buckets add elementwise.
    pub fn record_dispatch(&mut self, label: impl Into<String>, d: &DispatchStats) {
        let label = label.into();
        let row = if let Some(row) = self.dispatch.iter_mut().find(|r| r.label == label) {
            row
        } else {
            self.dispatch.push(DispatchSummary {
                label: label.clone(),
                plans: 0,
                units: 0,
                warps: 0,
                max_warp_work: 0,
                total_work: 0,
                occupancy: pow2_histogram(format!("{label}/occupancy"), d.occupancy_hist.len()),
                work: pow2_histogram(format!("{label}/warp_work"), d.work_hist.len()),
            });
            self.dispatch.last_mut().expect("just pushed")
        };
        row.plans += 1;
        row.units += u64::from(d.units);
        row.warps += u64::from(d.warps);
        row.max_warp_work = row.max_warp_work.max(d.max_warp_work);
        row.total_work += d.total_work;
        for (b, &c) in row.occupancy.buckets.iter_mut().zip(&d.occupancy_hist) {
            b.1 += u64::from(c);
        }
        for (b, &c) in row.work.buckets.iter_mut().zip(&d.work_hist) {
            b.1 += u64::from(c);
        }
    }

    /// Records one batched multiply. The width and per-query rows snapshot
    /// the latest report (iterative workloads overwrite them each round);
    /// the `multiplies` count accumulates across calls.
    pub fn record_batch(&mut self, report: &BatchExecReport) {
        let multiplies = self.batch.as_ref().map_or(0, |b| b.multiplies) + 1;
        self.batch = Some(BatchSummary {
            width: report.batch,
            multiplies,
            queries: report
                .per_query
                .iter()
                .enumerate()
                .map(|(query, q)| BatchQuerySummary {
                    query,
                    x_nnz: q.x_nnz as u64,
                    y_nnz: q.y_nnz as u64,
                })
                .collect(),
        });
    }

    /// The recorded batch object, if any batched multiply was recorded.
    pub fn batch(&self) -> Option<&BatchSummary> {
        self.batch.as_ref()
    }

    /// Records the race sanitizer's aggregate counters. Calling it again
    /// replaces the object — the sanitizer itself accumulates across
    /// launches, so the latest snapshot is the complete account.
    pub fn record_sanitizer(&mut self, s: SanitizerSummary) {
        self.sanitizer = Some(s);
    }

    /// The recorded sanitizer counters, if any.
    pub fn sanitizer(&self) -> Option<SanitizerSummary> {
        self.sanitizer
    }

    /// Appends one plan report from the static race verifier. A run that
    /// verifies several plans (e.g. a multiply and a traversal) records
    /// each; duplicate plan labels are kept — they are distinct proofs.
    pub fn record_static_analysis(&mut self, report: &PlanReport) {
        self.static_analysis.push(report.clone());
    }

    /// The recorded plan reports, in record order.
    pub fn static_analysis(&self) -> &[PlanReport] {
        &self.static_analysis
    }

    /// Records the tracer's ring accounting. Call after the run so the
    /// exported document says whether the trace is complete: a nonzero
    /// `events_dropped` means the ring wrapped and the oldest spans were
    /// evicted.
    pub fn record_trace(&mut self, tracer: &Tracer) {
        self.trace = Some(TraceSummary {
            events: tracer.len() as u64,
            events_dropped: tracer.dropped(),
        });
    }

    /// The recorded tracer ring accounting, if any.
    pub fn trace(&self) -> Option<TraceSummary> {
        self.trace
    }

    /// Roofline attribution for every recorded kernel row, in row order.
    pub fn utilization(&self) -> Vec<KernelUtilization> {
        self.kernels
            .iter()
            .map(|k| KernelUtilization::from_row(k, &self.device))
            .collect()
    }

    /// Renders [`RunSummary::utilization`] as an aligned, human-readable
    /// table (the `--report` view).
    pub fn utilization_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>9} {:>7} {:>9} {:>7} {:>9}",
            "kernel", "launches", "GB/s", "%bw", "GFLOP/s", "%flop", "bound"
        );
        for (k, u) in self.kernels.iter().zip(self.utilization()) {
            let _ = writeln!(
                out,
                "{:<28} {:>8} {:>9.3} {:>6.1}% {:>9.3} {:>6.1}% {:>9}",
                u.label,
                k.launches,
                u.achieved_gbps,
                u.bw_fraction * 100.0,
                u.achieved_gflops,
                u.flop_fraction * 100.0,
                u.bound.as_str(),
            );
        }
        out
    }

    /// The dispatch-plan rows recorded so far.
    pub fn dispatch(&self) -> &[DispatchSummary] {
        &self.dispatch
    }

    /// The per-kernel table recorded so far.
    pub fn kernels(&self) -> &[KernelSummary] {
        &self.kernels
    }

    /// The per-iteration BFS timeline recorded so far.
    pub fn bfs_iterations(&self) -> &[IterationSummary] {
        &self.bfs_iterations
    }

    /// The histograms recorded so far.
    pub fn histograms(&self) -> &[Histogram] {
        &self.histograms
    }

    /// Renders the summary as a JSON document (see the module docs for the
    /// schema).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"schema_version\":{SCHEMA_VERSION},\"workload\":\"{}\",\"device\":\"{}\",\
             \"backend\":\"{}\"",
            json::escape(&self.workload),
            json::escape(self.device.name),
            json::escape(&self.backend),
        );

        out.push_str(",\"kernels\":[");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"launches\":{},\"wall_ms\":{},\"modeled_ms\":{},\
                 \"gmem_bytes\":{},\"gmem_scattered_bytes\":{},\"flops\":{},\"bitops\":{},\
                 \"atomics\":{},\"warps\":{},\"lane_steps\":{}}}",
                json::escape(&k.label),
                k.launches,
                json::number(k.wall_ms),
                json::number(k.modeled_ms),
                k.gmem_bytes,
                k.gmem_scattered_bytes,
                k.flops,
                k.bitops,
                k.atomics,
                k.warps,
                k.lane_steps,
            );
        }
        out.push(']');

        out.push_str(",\"bfs_iterations\":[");
        for (i, it) in self.bfs_iterations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"level\":{},\"kernel\":\"{}\",\"frontier\":{},\"discovered\":{},\
                 \"unvisited\":{},\"density\":{},\"wall_ms\":{},\"modeled_ms\":{}}}",
                it.level,
                json::escape(it.kernel),
                it.frontier,
                it.discovered,
                it.unvisited,
                json::number(it.density),
                json::number(it.wall_ms),
                json::number(it.modeled_ms),
            );
        }
        out.push(']');

        out.push_str(",\"dispatch\":[");
        for (i, d) in self.dispatch.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"plans\":{},\"units\":{},\"warps\":{},\
                 \"max_warp_work\":{},\"total_work\":{},\"mean_warp_work\":{},\
                 \"imbalance\":{}",
                json::escape(&d.label),
                d.plans,
                d.units,
                d.warps,
                d.max_warp_work,
                d.total_work,
                json::number(d.mean_warp_work()),
                json::number(d.imbalance()),
            );
            for (key, h) in [("occupancy", &d.occupancy), ("warp_work", &d.work)] {
                let _ = write!(out, ",\"{key}\":[");
                for (j, (label, count)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"bucket\":\"{}\",\"count\":{count}}}",
                        json::escape(label)
                    );
                }
                out.push(']');
            }
            out.push('}');
        }
        out.push(']');

        out.push_str(",\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"buckets\":[",
                json::escape(&h.name)
            );
            for (j, (label, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"bucket\":\"{}\",\"count\":{count}}}",
                    json::escape(label)
                );
            }
            out.push_str("]}");
        }
        out.push(']');

        out.push_str(",\"utilization\":[");
        for (i, u) in self.utilization().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"achieved_gbps\":{},\"achieved_gflops\":{},\
                 \"bw_fraction\":{},\"flop_fraction\":{},\"atomic_fraction\":{},\
                 \"bound\":\"{}\"}}",
                json::escape(&u.label),
                json::number(u.achieved_gbps),
                json::number(u.achieved_gflops),
                json::number(u.bw_fraction),
                json::number(u.flop_fraction),
                json::number(u.atomic_fraction),
                u.bound.as_str(),
            );
        }
        out.push(']');

        if let Some(s) = &self.sanitizer {
            let _ = write!(
                out,
                ",\"sanitizer\":{{\"launches\":{},\"accesses\":{},\"atomics\":{},\
                 \"violations\":{}}}",
                s.launches, s.accesses, s.atomics, s.violations,
            );
        }
        if !self.static_analysis.is_empty() {
            let (proved, needs_atomics, unknown) =
                self.static_analysis
                    .iter()
                    .fold((0u64, 0u64, 0u64), |(p, a, u), r| {
                        let (rp, ra, ru) = r.counts();
                        (p + rp, a + ra, u + ru)
                    });
            let _ = write!(
                out,
                ",\"static_analysis\":{{\"proved\":{proved},\"needs_atomics\":{needs_atomics},\
                 \"unknown\":{unknown},\"plans\":["
            );
            for (i, r) in self.static_analysis.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"plan\":\"{}\",\"overall\":\"{}\",\"obligations\":[",
                    json::escape(&r.plan),
                    r.overall().label(),
                );
                for (j, o) in r.obligations.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"kind\":\"{}\",\"verdict\":\"{}\",\"detail\":\"{}\"}}",
                        o.kind.label(),
                        o.verdict.label(),
                        json::escape(&o.detail),
                    );
                }
                out.push_str("]}");
            }
            out.push_str("]}");
        }
        if let Some(b) = &self.batch {
            let _ = write!(
                out,
                ",\"batch\":{{\"width\":{},\"multiplies\":{},\"queries\":[",
                b.width, b.multiplies,
            );
            for (i, q) in b.queries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"query\":{},\"x_nnz\":{},\"y_nnz\":{}}}",
                    q.query, q.x_nnz, q.y_nnz,
                );
            }
            out.push_str("]}");
        }
        if let Some(t) = &self.trace {
            let _ = write!(
                out,
                ",\"trace\":{{\"events\":{},\"events_dropped\":{}}}",
                t.events, t.events_dropped,
            );
        }
        out.push('}');
        out
    }
}

/// A zeroed histogram with the power-of-two bucket labels matching
/// [`DispatchStats`]: bucket 0 holds values `0..1`, bucket `k` holds
/// `2^k..2^(k+1)-1`, and the last bucket is open-ended.
fn pow2_histogram(name: String, len: usize) -> Histogram {
    let buckets = (0..len)
        .map(|k| {
            let label = if k == 0 {
                "0..1".to_string()
            } else if k + 1 == len {
                format!(">={}", 1u64 << k)
            } else {
                format!("{}..{}", 1u64 << k, (1u64 << (k + 1)) - 1)
            };
            (label, 0u64)
        })
        .collect();
    Histogram { name, buckets }
}

const DENSITY_BUCKETS: [&str; 5] = ["<1e-4", "1e-4..1e-3", "1e-3..1e-2", "1e-2..1e-1", ">=1e-1"];

fn density_bucket(density: f64) -> usize {
    if density < 1e-4 {
        0
    } else if density < 1e-3 {
        1
    } else if density < 1e-2 {
        2
    } else if density < 1e-1 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{tile_bfs, BfsOptions, TileBfsGraph};
    use crate::tile::TileConfig;
    use tsv_simt::device::RTX_3060;
    use tsv_simt::json::JsonValue;
    use tsv_simt::stats::KernelStats;
    use tsv_simt::Profiler;

    #[test]
    fn summary_kernel_totals_equal_profiler_aggregates() {
        let p = Profiler::new();
        let mut s = KernelStats::default();
        s.read(4096);
        s.flop(100);
        s.warps = 8;
        p.record("spmspv/row-tile", s, std::time::Duration::from_micros(250));
        p.record("spmspv/row-tile", s, std::time::Duration::from_micros(250));
        p.record("bfs/push-csc", s, std::time::Duration::from_micros(100));

        let mut summary = RunSummary::new("unit", RTX_3060);
        summary.record_profiler(&p);

        let entries = p.entries();
        assert_eq!(summary.kernels().len(), entries.len());
        for ((label, e), k) in entries.iter().zip(summary.kernels()) {
            assert_eq!(&k.label, label);
            assert_eq!(k.launches, e.launches);
            assert_eq!(k.gmem_bytes, e.stats.gmem_bytes());
            assert_eq!(k.flops, e.stats.flops);
            let report_ms = e.modeled_secs(&RTX_3060) * 1e3;
            assert_eq!(k.modeled_ms, report_ms, "{label}: summary vs report");
            assert_eq!(k.wall_ms, e.wall.as_secs_f64() * 1e3);
        }
    }

    #[test]
    fn json_roundtrips_and_matches_recorded_rows() {
        let a = tsv_sparse::gen::grid2d(12, 12).to_csr().without_diagonal();
        let g = TileBfsGraph::from_csr(&a).unwrap();
        let r = tile_bfs(&g, 0, BfsOptions::default()).unwrap();

        let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
        let mut summary = RunSummary::new("grid12", RTX_3060);
        summary.record_bfs(&r, g.n());
        summary.record_tile_nnz(&tiled);

        let doc = summary.to_json();
        let v = tsv_simt::json::parse(&doc).expect("summary must parse");
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(u64::from(SCHEMA_VERSION))
        );
        assert_eq!(v.get("workload").unwrap().as_str(), Some("grid12"));

        let iters = v.get("bfs_iterations").unwrap().as_array().unwrap();
        assert_eq!(iters.len(), r.iterations.len());
        for (row, it) in iters.iter().zip(&r.iterations) {
            assert_eq!(
                row.get("kernel").and_then(JsonValue::as_str),
                Some(it.kernel.trace_label())
            );
            assert_eq!(
                row.get("frontier").and_then(JsonValue::as_u64),
                Some(it.frontier as u64)
            );
            assert_eq!(
                row.get("unvisited").and_then(JsonValue::as_u64),
                Some(it.unvisited as u64)
            );
            let density = row.get("density").and_then(JsonValue::as_f64).unwrap();
            assert!((density - it.frontier as f64 / g.n() as f64).abs() < 1e-12);
        }

        // Histograms: every stored tile lands in exactly one nnz bucket,
        // every iteration in one density bucket.
        let hists = v.get("histograms").unwrap().as_array().unwrap();
        assert_eq!(hists.len(), 2);
        let total = |h: &JsonValue| -> u64 {
            h.get("buckets")
                .unwrap()
                .as_array()
                .unwrap()
                .iter()
                .map(|b| b.get("count").unwrap().as_u64().unwrap())
                .sum()
        };
        assert_eq!(
            hists
                .iter()
                .find(|h| h.get("name").and_then(JsonValue::as_str) == Some("frontier_density"))
                .map(total),
            Some(r.iterations.len() as u64)
        );
        assert_eq!(
            hists
                .iter()
                .find(|h| h.get("name").and_then(JsonValue::as_str) == Some("tile_nnz"))
                .map(total),
            Some(tiled.num_tiles() as u64)
        );
    }

    #[test]
    fn dispatch_rows_aggregate_and_roundtrip() {
        let mut d = crate::spmspv::DispatchStats {
            units: 10,
            warps: 4,
            max_warp_work: 40,
            total_work: 100,
            ..Default::default()
        };
        d.occupancy_hist[1] = 4;
        d.work_hist[4] = 3;
        d.work_hist[5] = 1;

        let mut summary = RunSummary::new("unit", RTX_3060);
        summary.record_dispatch("spmspv/row-tile-binned", &d);
        summary.record_dispatch("spmspv/row-tile-binned", &d);

        let rows = summary.dispatch();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.plans, 2);
        assert_eq!(row.units, 20);
        assert_eq!(row.warps, 8);
        assert_eq!(row.max_warp_work, 40);
        assert_eq!(row.total_work, 200);
        assert!((row.mean_warp_work() - 25.0).abs() < 1e-12);
        assert!((row.imbalance() - 1.6).abs() < 1e-12);
        assert_eq!(row.occupancy.buckets[1], ("2..3".to_string(), 8));
        assert_eq!(row.work.buckets[4], ("16..31".to_string(), 6));
        assert_eq!(row.occupancy.buckets.last().unwrap().0, ">=128");
        assert_eq!(row.work.buckets.last().unwrap().0, ">=32768");

        let doc = summary.to_json();
        let v = tsv_simt::json::parse(&doc).expect("summary must parse");
        let dispatch = v.get("dispatch").unwrap().as_array().unwrap();
        assert_eq!(dispatch.len(), 1);
        let row = &dispatch[0];
        assert_eq!(
            row.get("label").and_then(JsonValue::as_str),
            Some("spmspv/row-tile-binned")
        );
        assert_eq!(row.get("warps").and_then(JsonValue::as_u64), Some(8));
        assert_eq!(
            row.get("max_warp_work").and_then(JsonValue::as_u64),
            Some(40)
        );
        let imbalance = row.get("imbalance").and_then(JsonValue::as_f64).unwrap();
        assert!((imbalance - 1.6).abs() < 1e-9);
        let occ = row.get("occupancy").unwrap().as_array().unwrap();
        assert_eq!(occ.len(), 8);
        assert_eq!(occ[1].get("count").and_then(JsonValue::as_u64), Some(8));
        let work = row.get("warp_work").unwrap().as_array().unwrap();
        assert_eq!(work.len(), 16);
    }

    #[test]
    fn sanitizer_object_is_absent_until_recorded_and_roundtrips() {
        let mut summary = RunSummary::new("unit", RTX_3060);
        assert!(summary.sanitizer().is_none());
        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        assert!(v.get("sanitizer").is_none());

        summary.record_sanitizer(SanitizerSummary {
            launches: 3,
            accesses: 1234,
            atomics: 17,
            violations: 1,
        });
        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        let s = v.get("sanitizer").unwrap();
        assert_eq!(s.get("launches").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(s.get("accesses").and_then(JsonValue::as_u64), Some(1234));
        assert_eq!(s.get("atomics").and_then(JsonValue::as_u64), Some(17));
        assert_eq!(s.get("violations").and_then(JsonValue::as_u64), Some(1));
    }

    #[test]
    fn static_analysis_object_is_absent_until_recorded_and_roundtrips() {
        let mut summary = RunSummary::new("unit", RTX_3060);
        assert!(summary.static_analysis().is_empty());
        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        assert!(v.get("static_analysis").is_none());

        // A real proof from the verifier: an exclusively-chunked write.
        use tsv_simt::analyze::{chunked, verify, AccessMode, LaunchSummary};
        let launch = LaunchSummary {
            label: "unit/chunked".to_string(),
            uses: vec![chunked("unit/chunked", "y", AccessMode::Write, 64, 16).unwrap()],
            merge: None,
        };
        let report = verify("unit/plan", &[launch]);
        assert!(report.is_proved());
        summary.record_static_analysis(&report);
        summary.record_static_analysis(&report);

        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        let sa = v.get("static_analysis").unwrap();
        assert_eq!(sa.get("proved").and_then(JsonValue::as_u64), Some(6));
        assert_eq!(sa.get("needs_atomics").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(sa.get("unknown").and_then(JsonValue::as_u64), Some(0));
        let plans = sa.get("plans").unwrap().as_array().unwrap();
        assert_eq!(plans.len(), 2);
        assert_eq!(
            plans[0].get("plan").and_then(JsonValue::as_str),
            Some("unit/plan")
        );
        assert_eq!(
            plans[0].get("overall").and_then(JsonValue::as_str),
            Some("proved")
        );
        let obligations = plans[0].get("obligations").unwrap().as_array().unwrap();
        assert_eq!(obligations.len(), 3);
        for o in obligations {
            assert_eq!(o.get("verdict").and_then(JsonValue::as_str), Some("proved"));
            assert!(o.get("kind").and_then(JsonValue::as_str).is_some());
            assert!(o.get("detail").and_then(JsonValue::as_str).is_some());
        }
    }

    #[test]
    fn batch_object_is_absent_until_recorded_and_roundtrips() {
        let mut summary = RunSummary::new("unit", RTX_3060);
        assert!(summary.batch().is_none());
        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        assert!(v.get("batch").is_none());

        // A real batched multiply feeds the object.
        use crate::exec::BatchedSpMSpVEngine;
        use crate::semiring::PlusTimes;
        let a = tsv_sparse::gen::uniform_random(150, 150, 1200, 4).to_csr();
        let mut engine =
            BatchedSpMSpVEngine::<PlusTimes>::from_csr(&a, TileConfig::default()).unwrap();
        let xs: Vec<_> = (0..3)
            .map(|s| tsv_sparse::gen::random_sparse_vector(150, 0.1, s))
            .collect();
        let (ys, report) = engine.multiply(&xs).unwrap();
        summary.record_batch(&report);
        summary.record_batch(&report);

        let b = summary.batch().expect("recorded");
        assert_eq!(b.width, 3);
        assert_eq!(b.multiplies, 2);
        assert_eq!(b.queries.len(), 3);

        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        let bj = v.get("batch").unwrap();
        assert_eq!(bj.get("width").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(bj.get("multiplies").and_then(JsonValue::as_u64), Some(2));
        let queries = bj.get("queries").unwrap().as_array().unwrap();
        assert_eq!(queries.len(), 3);
        for (q, row) in queries.iter().enumerate() {
            assert_eq!(row.get("query").and_then(JsonValue::as_u64), Some(q as u64));
            assert_eq!(
                row.get("x_nnz").and_then(JsonValue::as_u64),
                Some(xs[q].nnz() as u64)
            );
            assert_eq!(
                row.get("y_nnz").and_then(JsonValue::as_u64),
                Some(ys[q].nnz() as u64)
            );
        }
    }

    #[test]
    fn backend_defaults_to_model_and_roundtrips() {
        let mut summary = RunSummary::new("unit", RTX_3060);
        assert_eq!(summary.backend(), "model");
        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        assert_eq!(v.get("backend").and_then(JsonValue::as_str), Some("model"));

        summary.set_backend("native:4");
        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        assert_eq!(
            v.get("backend").and_then(JsonValue::as_str),
            Some("native:4")
        );
    }

    #[test]
    fn utilization_fractions_are_bounded_and_consistent_with_profiler() {
        let p = Profiler::new();
        // A memory-heavy kernel, a compute-heavy kernel, an atomic-heavy
        // kernel, and a tiny launch that is pure overhead.
        let mut mem = KernelStats::default();
        mem.read(512 << 20);
        mem.read_scattered(64 << 20);
        mem.warps = 4096;
        let mut comp = KernelStats::default();
        comp.read(1024);
        comp.flop(4_000_000_000);
        comp.bitop(500_000_000);
        comp.lane_steps = 2_000_000_000;
        comp.warps = 4096;
        let mut atom = KernelStats::default();
        atom.read(1024);
        atom.atomic(2_000_000_000);
        atom.warps = 4096;
        let mut tiny = KernelStats::default();
        tiny.read(64);
        tiny.flop(8);
        tiny.warps = 1;
        p.record("mem-bound", mem, std::time::Duration::from_millis(1));
        p.record("compute-bound", comp, std::time::Duration::from_millis(1));
        p.record("atomic-bound", atom, std::time::Duration::from_millis(1));
        p.record("overhead-bound", tiny, std::time::Duration::from_micros(5));
        p.record("overhead-bound", tiny, std::time::Duration::from_micros(5));

        let mut summary = RunSummary::new("unit", RTX_3060);
        summary.record_profiler(&p);
        let rows = summary.utilization();
        assert_eq!(rows.len(), summary.kernels().len());

        for (k, u) in summary.kernels().iter().zip(&rows) {
            assert_eq!(k.label, u.label);
            // Every fraction is a share of the kernel's own modeled time,
            // which upper-bounds each roofline term by construction.
            for f in [u.bw_fraction, u.flop_fraction, u.atomic_fraction] {
                assert!(
                    (0.0..=1.0).contains(&f),
                    "{}: fraction {f} out of range",
                    u.label
                );
            }
            // Fractions restate the profiler's modeled figures exactly:
            // term time = fraction * modeled time.
            let modeled_secs = k.modeled_ms * 1e-3;
            let scattered = k.gmem_scattered_bytes as f64;
            let streamed = (k.gmem_bytes - k.gmem_scattered_bytes) as f64;
            let mem_secs = (streamed + SCATTER_PENALTY * scattered) / RTX_3060.peak_bytes_per_sec();
            assert!(
                (u.bw_fraction * modeled_secs - mem_secs).abs() <= 1e-12 + 1e-9 * mem_secs,
                "{}: bw term mismatch",
                u.label
            );
            let alu = k.flops as f64 + k.bitops as f64 + 0.25 * k.lane_steps as f64;
            assert!(
                (u.achieved_gflops * modeled_secs * 1e9 - alu).abs() <= 1e-6 * alu.max(1.0),
                "{}: flop rate mismatch",
                u.label
            );
            assert!(
                (u.achieved_gbps * modeled_secs * 1e9 - k.gmem_bytes as f64).abs()
                    <= 1e-6 * k.gmem_bytes as f64,
                "{}: bandwidth mismatch",
                u.label
            );
        }

        let bound_of = |label: &str| rows.iter().find(|u| u.label == label).unwrap().bound;
        assert_eq!(bound_of("mem-bound"), BoundKind::Memory);
        assert_eq!(bound_of("compute-bound"), BoundKind::Compute);
        assert_eq!(bound_of("atomic-bound"), BoundKind::Atomic);
        assert_eq!(bound_of("overhead-bound"), BoundKind::Overhead);

        // The table lists every kernel with its bound classification.
        let table = summary.utilization_table();
        for u in &rows {
            assert!(table.contains(&u.label), "table missing {}", u.label);
        }
        assert!(table.contains("memory") && table.contains("overhead"));

        // And the JSON view carries the same rows.
        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        let util = v.get("utilization").unwrap().as_array().unwrap();
        assert_eq!(util.len(), rows.len());
        for (row, u) in util.iter().zip(&rows) {
            assert_eq!(
                row.get("label").and_then(JsonValue::as_str),
                Some(u.label.as_str())
            );
            assert_eq!(
                row.get("bound").and_then(JsonValue::as_str),
                Some(u.bound.as_str())
            );
            let f = row.get("bw_fraction").and_then(JsonValue::as_f64).unwrap();
            assert!((f - u.bw_fraction).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_modeled_time_yields_zero_utilization() {
        let u =
            KernelUtilization::from_launches("noop", &KernelStats::default(), 0, 0.0, &RTX_3060);
        assert_eq!(u.achieved_gbps, 0.0);
        assert_eq!(u.bw_fraction, 0.0);
        assert_eq!(u.bound, BoundKind::Overhead);
    }

    #[test]
    fn trace_object_is_absent_until_recorded_and_counts_drops() {
        let mut summary = RunSummary::new("unit", RTX_3060);
        assert!(summary.trace().is_none());
        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        assert!(v.get("trace").is_none());

        // A two-slot ring fed five events evicts three.
        let tracer = tsv_simt::trace::Tracer::with_capacity(2);
        for i in 0..5u64 {
            tracer.record("ev", "kernel", i, 1, None, None);
        }
        summary.record_trace(&tracer);
        assert_eq!(
            summary.trace(),
            Some(TraceSummary {
                events: 2,
                events_dropped: 3
            })
        );
        let v = tsv_simt::json::parse(&summary.to_json()).expect("summary must parse");
        let t = v.get("trace").unwrap();
        assert_eq!(t.get("events").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(t.get("events_dropped").and_then(JsonValue::as_u64), Some(3));
    }

    #[test]
    fn density_buckets_partition_the_unit_interval() {
        assert_eq!(density_bucket(0.0), 0);
        assert_eq!(density_bucket(9.9e-5), 0);
        assert_eq!(density_bucket(1e-4), 1);
        assert_eq!(density_bucket(5e-3), 2);
        assert_eq!(density_bucket(0.05), 3);
        assert_eq!(density_bucket(0.1), 4);
        assert_eq!(density_bucket(1.0), 4);
    }
}
