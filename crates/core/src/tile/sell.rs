//! SELL-C-σ slabs: a vectorizable sidecar payload for stored CSR tiles.
//!
//! The tile-CSR payload walks one row at a time, so the native backend's
//! inner loops are scalar gathers. Following SlimSell's construction, this
//! module re-lays each stored sparse tile as *slabs*: rows are sorted by
//! descending length inside σ-row windows (recording the permutation),
//! grouped into chunks of height `C` (the lane width), and each chunk is
//! padded to its longest row with the columns/values stored *lane-major* —
//! entry `k` of the chunk's `C` rows sits at `k*C .. k*C+C`. A kernel can
//! then process `C` rows per step over `chunks_exact` fixed-width arrays,
//! which LLVM autovectorizes on stable Rust.
//!
//! The slabs are a sidecar: the [`TileMatrix`] (tile-level CSR, dense
//! payloads, COO extraction, CSC tile index) is unchanged, and any tile
//! whose padding overhead exceeds [`SellConfig::max_padding`] falls back to
//! its tile-CSR payload. Dense tiles keep their dense sweep.
//!
//! Determinism: the σ-window sort orders rows by `(length desc, row asc)` —
//! a total order, so the permutation is a pure function of the tile
//! structure. Each row's entries keep their CSR (ascending-column) order
//! along the lane axis, and kernels fold them in exactly that order with
//! padding slots masked out of the accumulators, so per-row sums are
//! bit-identical to the tile-CSR walk for any semiring.

use super::matrix::TileMatrix;

/// Lane widths the lane-blocked kernel bodies are compiled for.
pub const SELL_LANE_WIDTHS: [usize; 2] = [4, 8];

/// Parameters of the SELL-C-σ slab construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SellConfig {
    /// Chunk height = lane width. Must be one of [`SELL_LANE_WIDTHS`]
    /// (every tile size divides by both).
    pub c: usize,
    /// Row-sorting window in rows; clamped to the tile height. `nt`-sized
    /// windows sort the whole tile, `c`-sized windows preserve locality.
    pub sigma: usize,
    /// Per-tile fallback threshold: when `padded / real` entries exceed
    /// this, the tile keeps its tile-CSR payload.
    pub max_padding: f64,
}

impl Default for SellConfig {
    fn default() -> Self {
        Self {
            c: 8,
            sigma: 64,
            max_padding: 3.0,
        }
    }
}

impl SellConfig {
    /// Validates the lane width and window.
    pub fn validate(&self) -> Result<(), String> {
        if !SELL_LANE_WIDTHS.contains(&self.c) {
            return Err(format!(
                "sell chunk height must be one of {SELL_LANE_WIDTHS:?}, got {}",
                self.c
            ));
        }
        if self.sigma == 0 {
            return Err("sell sigma window must be positive".into());
        }
        if self.max_padding.is_nan() || self.max_padding < 1.0 {
            return Err("sell padding threshold must be >= 1.0".into());
        }
        Ok(())
    }
}

/// Aggregate slab-construction accounting, behind the
/// `tsv_core_sell_padding_ratio` gauge and the CLI's format report line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SellStats {
    /// Stored sparse tiles converted to slabs.
    pub sell_tiles: usize,
    /// Stored sparse tiles kept on tile-CSR (padding above threshold).
    pub fallback_tiles: usize,
    /// Stored dense tiles (never converted; the dense sweep already
    /// vectorizes).
    pub dense_tiles: usize,
    /// True nonzeros held in slabs.
    pub real_entries: usize,
    /// Slab slots including padding (`Σ chunk_width * C`).
    pub padded_entries: usize,
}

impl SellStats {
    /// Padded slots per real entry over the converted tiles (1.0 when no
    /// tile converted).
    pub fn padding_ratio(&self) -> f64 {
        if self.real_entries == 0 {
            1.0
        } else {
            self.padded_entries as f64 / self.real_entries as f64
        }
    }

    /// Fraction of slab slots holding real entries.
    pub fn fill_ratio(&self) -> f64 {
        1.0 / self.padding_ratio()
    }
}

/// Borrowed view of one tile's slab, handed to the lane-blocked kernel
/// bodies. All arrays are indexed in *sorted* row position; `perm` maps a
/// sorted position back to the original intra-tile row.
#[derive(Debug, Clone, Copy)]
pub struct SellSlabView<'a, T> {
    /// Chunk height = lane width.
    pub c: usize,
    /// Sorted position → original local row (`nt` entries, a permutation).
    pub perm: &'a [u8],
    /// True row length at each sorted position (`nt` entries).
    pub lens: &'a [u16],
    /// Padded width of each chunk (`nt / c` entries; the max length in the
    /// chunk).
    pub widths: &'a [u16],
    /// Lane-major local column indices (`Σ width * c` entries; padding
    /// slots hold 0).
    pub cols: &'a [u8],
    /// Lane-major values, parallel to `cols`; padding slots hold
    /// `T::default()` and are masked out of every accumulation.
    pub vals: &'a [T],
}

/// SELL-C-σ slabs for every eligible stored tile of a [`TileMatrix`].
#[derive(Debug, Clone)]
pub struct SellSlabs<T> {
    c: usize,
    nt: usize,
    config: SellConfig,
    /// Per stored tile: slab index, or `u32::MAX` for dense/fallback tiles.
    sell_id: Vec<u32>,
    /// Per slab: the stored tile it was built from.
    tile_of: Vec<u32>,
    perm: Vec<u8>,
    lens: Vec<u16>,
    widths: Vec<u16>,
    /// Per slab: start offset into `cols` / `vals` (`n_slabs + 1` entries).
    slab_ptr: Vec<usize>,
    cols: Vec<u8>,
    vals: Vec<T>,
    stats: SellStats,
}

impl<T: Copy + PartialEq + Default + Send + Sync> SellSlabs<T> {
    /// Builds slabs for every stored sparse tile of `a` whose padding
    /// overhead stays under `config.max_padding`.
    ///
    /// # Panics
    ///
    /// When `config` fails [`SellConfig::validate`].
    pub fn build(a: &TileMatrix<T>, config: SellConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid SellConfig: {e}"));
        let nt = a.nt();
        let c = config.c;
        debug_assert_eq!(nt % c, 0, "every tile size divides by the lane width");
        let sigma = config.sigma.min(nt).max(1);
        let n_chunks = nt / c;

        let mut slabs = Self {
            c,
            nt,
            config,
            sell_id: Vec::with_capacity(a.num_tiles()),
            tile_of: Vec::new(),
            perm: Vec::new(),
            lens: Vec::new(),
            widths: Vec::new(),
            slab_ptr: vec![0],
            cols: Vec::new(),
            vals: Vec::new(),
            stats: SellStats::default(),
        };
        let mut order: Vec<u8> = Vec::with_capacity(nt);

        for t in 0..a.num_tiles() {
            let view = a.tile(t);
            if view.dense.is_some() {
                slabs.sell_id.push(u32::MAX);
                slabs.stats.dense_tiles += 1;
                continue;
            }
            let row_len =
                |lr: u8| view.local_row_ptr[lr as usize + 1] - view.local_row_ptr[lr as usize];

            // σ-window sort: (length desc, row asc) is a total order, so the
            // permutation is deterministic regardless of sort stability.
            order.clear();
            order.extend(0..nt as u8);
            for window in order.chunks_mut(sigma) {
                window.sort_unstable_by_key(|&lr| (std::cmp::Reverse(row_len(lr)), lr));
            }

            // Chunk widths and the padding decision.
            let mut padded = 0usize;
            let mut tile_widths = [0u16; 16]; // nt/c ≤ 64/4 = 16
            for (j, chunk) in order.chunks(c).enumerate() {
                let w = chunk.iter().map(|&lr| row_len(lr)).max().unwrap_or(0);
                tile_widths[j] = w;
                padded += w as usize * c;
            }
            let real = view.nnz();
            if real == 0 || padded as f64 > config.max_padding * real as f64 {
                slabs.sell_id.push(u32::MAX);
                slabs.stats.fallback_tiles += 1;
                continue;
            }

            // Lay the chunk lanes out lane-major: entry k of the chunk's c
            // rows at k*c .. k*c+c, padding with (col 0, T::default()).
            slabs.sell_id.push(slabs.tile_of.len() as u32);
            slabs.tile_of.push(t as u32);
            for (j, chunk) in order.chunks(c).enumerate() {
                for k in 0..tile_widths[j] {
                    for &lr in chunk {
                        let (cols, vals) = view.row(lr as usize);
                        if (k as usize) < cols.len() {
                            slabs.cols.push(cols[k as usize]);
                            slabs.vals.push(vals[k as usize]);
                        } else {
                            slabs.cols.push(0);
                            slabs.vals.push(T::default());
                        }
                    }
                }
                slabs.widths.push(tile_widths[j]);
            }
            for &lr in &order {
                slabs.perm.push(lr);
                slabs.lens.push(row_len(lr));
            }
            slabs.slab_ptr.push(slabs.cols.len());
            slabs.stats.sell_tiles += 1;
            slabs.stats.real_entries += real;
            slabs.stats.padded_entries += padded;
            debug_assert_eq!(slabs.widths.len(), slabs.tile_of.len() * n_chunks);
        }
        slabs
    }
}

impl<T> SellSlabs<T> {
    /// The slab of stored tile `t`, or `None` when the tile stayed on its
    /// dense / tile-CSR payload.
    #[inline]
    pub fn slab(&self, t: usize) -> Option<SellSlabView<'_, T>> {
        let sid = *self.sell_id.get(t)?;
        if sid == u32::MAX {
            return None;
        }
        let sid = sid as usize;
        let n_chunks = self.nt / self.c;
        Some(SellSlabView {
            c: self.c,
            perm: &self.perm[sid * self.nt..(sid + 1) * self.nt],
            lens: &self.lens[sid * self.nt..(sid + 1) * self.nt],
            widths: &self.widths[sid * n_chunks..(sid + 1) * n_chunks],
            cols: &self.cols[self.slab_ptr[sid]..self.slab_ptr[sid + 1]],
            vals: &self.vals[self.slab_ptr[sid]..self.slab_ptr[sid + 1]],
        })
    }

    /// The stored-tile id each slab was built from, parallel to slab ids.
    pub fn slab_tiles(&self) -> &[u32] {
        &self.tile_of
    }

    /// Chunk height = lane width.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Tile height the slabs were built for.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// The construction parameters.
    pub fn config(&self) -> SellConfig {
        self.config
    }

    /// Construction accounting (tiles converted, padding overhead).
    pub fn stats(&self) -> &SellStats {
        &self.stats
    }

    /// Approximate resident bytes of the slab arrays.
    pub fn approx_bytes(&self) -> u64 {
        (self.sell_id.len() * 4
            + self.tile_of.len() * 4
            + self.perm.len()
            + self.lens.len() * 2
            + self.widths.len() * 2
            + self.slab_ptr.len() * 8
            + self.cols.len()
            + self.vals.len() * std::mem::size_of::<T>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tile::{TileConfig, TileSize};
    use tsv_sparse::gen::{banded, rmat, RmatConfig};

    fn slabs_for(
        csr: &tsv_sparse::CsrMatrix<f64>,
        tile: TileSize,
        cfg: SellConfig,
    ) -> (TileMatrix<f64>, SellSlabs<f64>) {
        let tm = TileMatrix::from_csr(csr, TileConfig::with_size(tile)).unwrap();
        let sl = SellSlabs::build(&tm, cfg);
        (tm, sl)
    }

    #[test]
    fn slabs_round_trip_to_tile_csr() {
        let a = rmat(RmatConfig::new(8, 6), 5).to_csr();
        for c in SELL_LANE_WIDTHS {
            for sigma in [4, 16, 64] {
                let cfg = SellConfig {
                    c,
                    sigma,
                    max_padding: 1e9, // convert everything
                };
                let (tm, sl) = slabs_for(&a, TileSize::S16, cfg);
                let nt = tm.nt();
                for t in 0..tm.num_tiles() {
                    let view = tm.tile(t);
                    let Some(slab) = sl.slab(t) else {
                        assert!(view.dense.is_some(), "only dense tiles skipped");
                        continue;
                    };
                    // perm is a permutation; lens are the true row lengths.
                    let mut seen = vec![false; nt];
                    for (pos, &lr) in slab.perm.iter().enumerate() {
                        assert!(!seen[lr as usize]);
                        seen[lr as usize] = true;
                        let (cols, vals) = view.row(lr as usize);
                        assert_eq!(slab.lens[pos] as usize, cols.len());
                        // Reconstruct the row from the lane-major layout.
                        let chunk = pos / c;
                        let lane = pos % c;
                        let base: usize =
                            slab.widths[..chunk].iter().map(|&w| w as usize * c).sum();
                        for k in 0..cols.len() {
                            assert_eq!(slab.cols[base + k * c + lane], cols[k]);
                            assert_eq!(slab.vals[base + k * c + lane], vals[k]);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn sigma_windows_sort_descending_within_each_window() {
        let a = rmat(RmatConfig::new(9, 4), 11).to_csr();
        let cfg = SellConfig {
            c: 4,
            sigma: 8,
            max_padding: 1e9,
            // full conversion so every tile is inspectable
        };
        let (tm, sl) = slabs_for(&a, TileSize::S32, cfg);
        for t in 0..tm.num_tiles() {
            let Some(slab) = sl.slab(t) else { continue };
            for window in slab.lens.chunks(8) {
                for pair in window.windows(2) {
                    assert!(pair[0] >= pair[1], "lengths not descending in window");
                }
            }
        }
    }

    #[test]
    fn uniform_band_has_low_padding() {
        // Band rows have near-identical lengths, so the overall padding
        // ratio stays close to 1 even with fallback disabled. (Under the
        // default `max_padding` the tiny off-diagonal corner tiles — one
        // row, one entry — legitimately fall back instead.)
        let a = banded(256, 1, 1.0, 3).to_csr();
        let cfg = TileConfig {
            tile_size: TileSize::S32,
            extract_threshold: 0,
            dense_threshold: 2.0,
        };
        let tm = TileMatrix::from_csr(&a, cfg).unwrap();
        let sl = SellSlabs::build(
            &tm,
            SellConfig {
                max_padding: 1e9,
                ..Default::default()
            },
        );
        let st = sl.stats();
        assert!(st.sell_tiles > 0);
        assert_eq!(st.fallback_tiles, 0);
        assert!(st.padding_ratio() < 1.35, "band rows are near-uniform");

        // With the default cap the corner tiles fall back but the band
        // interior still converts.
        let capped = SellSlabs::build(&tm, SellConfig::default());
        assert!(capped.stats().sell_tiles > 0);
        assert!(capped.stats().padding_ratio() <= st.padding_ratio());
    }

    #[test]
    fn pathological_tiles_fall_back() {
        // One full row per tile, the rest empty: padding C× the real
        // entries at any chunk the full row lands in.
        let mut coo = tsv_sparse::CooMatrix::new(64, 64);
        for ccol in 0..64 {
            coo.push(0, ccol, 1.0);
        }
        let cfg = TileConfig {
            tile_size: TileSize::S32,
            extract_threshold: 0,
            dense_threshold: 2.0,
        };
        let tm = TileMatrix::from_csr(&coo.to_csr(), cfg).unwrap();
        let sl = SellSlabs::build(
            &tm,
            SellConfig {
                c: 8,
                sigma: 32,
                max_padding: 1.5,
            },
        );
        let st = sl.stats();
        assert_eq!(st.sell_tiles + st.fallback_tiles, tm.num_tiles());
        assert!(st.fallback_tiles > 0, "skewed tiles must fall back");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SellConfig {
            c: 3,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SellConfig {
            sigma: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SellConfig {
            max_padding: 0.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SellConfig::default().validate().is_ok());
    }
}
