//! The TileSpMSpV paper's contribution, as a library.
//!
//! Three layers, mirroring §3 of the paper:
//!
//! 1. [`tile`] — the tiled storage structures (§3.2): sparse matrices split
//!    into `nt × nt` sparse tiles held in a tile-level CSR/CSC with
//!    compressed intra-tile indices; very sparse tiles extracted into a side
//!    COO matrix; sparse vectors in the `x_ptr`/`x_tile` form of Fig. 3;
//!    bitmask tiles and bit frontier vectors for BFS.
//! 2. [`spmspv`] — the TileSpMSpV algorithm (§3.3): the warp-per-row-tile
//!    CSR-form kernel of Algorithm 4, a vector-driven CSC-form kernel, the
//!    side-COO pass, and automatic kernel selection by vector sparsity.
//! 3. [`bfs`] — the TileBFS algorithm (§3.4): Push-CSC, Push-CSR and
//!    Pull-CSC bitmask kernels with the paper's direction-switching policy.
//!
//! [`semiring`] supplies the GraphBLAS-style algebra the paper frames its
//! kernels in (AND/OR for BFS, +/× for numeric SpMSpV).
//!
//! [`exec`] is the execution-plan layer on top: [`exec::SpMSpVEngine`] and
//! [`exec::BfsEngine`] bind a prepared operator to reusable scratch and a
//! cumulative profiler, which is what iterative workloads (PageRank, SSSP,
//! betweenness) run through. The free functions above are one-shot wrappers
//! over the same drivers.

//! [`telemetry`] turns a run's profiler aggregates, BFS iteration records
//! and tiling statistics into a machine-readable JSON summary; span-level
//! tracing (Chrome Trace export) lives in [`tsv_simt::trace`] and is
//! attached to the engines via their `*_traced` constructors.

#![forbid(unsafe_code)]

pub mod bfs;
pub mod exec;
pub mod semiring;
pub mod spmspv;
pub mod telemetry;
pub mod tile;

pub use bfs::{
    tile_bfs, tile_bfs_with_workspace, BfsOptions, BfsResult, BfsWorkspace, TileBfsGraph,
};
pub use exec::{BfsEngine, EngineMetrics, SpMSpVEngine, SpMSpVWorkspace};
pub use spmspv::{tile_spmspv, tile_spmspv_with, SpMSpVOptions};
pub use telemetry::RunSummary;
pub use tile::{TileConfig, TileMatrix, TileSize, TiledVector};
