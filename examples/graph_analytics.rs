//! A small analytics pipeline over one graph: connected components,
//! PageRank, and 64-way multi-source BFS — all on the tiled primitives.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use tilespmspv::apps::cc::component_count;
use tilespmspv::apps::{connected_components, multi_source_bfs, pagerank, PageRankOptions};
use tilespmspv::sparse::gen::webgraph;

fn main() {
    // A host-structured web graph (the in-2004 analog class).
    let a = webgraph(30_000, 14.0, 0.8, 50, 5).to_csr();
    println!("graph: {} vertices, {} edges", a.nrows(), a.nnz());

    // 1. Components via (min, +) label propagation.
    let labels = connected_components(&a).expect("square input");
    let n_components = component_count(&labels);
    println!("connected components: {n_components}");

    // 2. PageRank via tiled SpMV power iteration.
    let (pr, iters) = pagerank(&a, PageRankOptions::default()).expect("square input");
    let mut top: Vec<usize> = (0..a.nrows()).collect();
    top.sort_by(|&x, &y| pr[y].total_cmp(&pr[x]));
    println!("pagerank converged in {iters} iterations; top 5 pages:");
    for &v in top.iter().take(5) {
        println!(
            "  vertex {:>6}: rank {:.6}, degree {}",
            v,
            pr[v],
            a.row_nnz(v)
        );
    }

    // 3. 64 BFS traversals sharing one sweep: eccentricity sampling.
    let sources: Vec<usize> = (0..64).map(|i| (i * 449) % a.nrows()).collect();
    let levels = multi_source_bfs(&a, &sources).expect("≤64 sources");
    let max_ecc = levels
        .iter()
        .flat_map(|ls| ls.iter().copied())
        .filter(|&l| l >= 0)
        .max()
        .unwrap_or(0);
    println!("64-source MS-BFS: sampled eccentricity bound = {max_ecc}");

    // Consistency: the top PageRank page should sit in the giant component.
    let giant = {
        let mut counts = std::collections::HashMap::new();
        for &l in &labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        *counts.iter().max_by_key(|(_, &c)| c).unwrap().0
    };
    assert_eq!(
        labels[top[0]], giant,
        "top page outside the giant component"
    );
}
