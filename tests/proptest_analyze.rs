//! Differential properties for the plan-time static race verifier:
//! the analyzer's verdicts cross-checked against the dynamic sanitizer
//! on random matrices × kernels × balance modes × tile formats.
//!
//! The contract (also enforced corpus-wide by `repro analyze`):
//!
//! * a plan whose overall verdict is `Proved` must show **zero** dynamic
//!   conflicts when the same launches run under the sanitizer;
//! * a non-`Proved` verdict must be justified by at least one observed
//!   atomic claim in the dynamic log (the analyzer only weakens its
//!   verdict for atomic-mediated overlap);
//! * every report discharges exactly the three obligations, and the
//!   verdict counters are consistent with the overall verdict.

mod common;

use proptest::prelude::*;
use std::sync::Arc;
use tilespmspv::core::exec::{BatchedSpMSpVEngine, BfsEngine, SpMSpVEngine};
use tilespmspv::core::semiring::PlusTimes;
use tilespmspv::core::spmspv::{Balance, KernelChoice, SpMSpVOptions, SpvFormat};
use tilespmspv::core::tile::{SellConfig, TileConfig};
use tilespmspv::prelude::*;
use tilespmspv::simt::Sanitizer;
use tilespmspv::sparse::CooMatrix;

/// An arbitrary matrix up to 150 rows with clustered and scattered
/// entries, so tile occupancy spans dense slabs and singleton tiles.
fn arb_matrix() -> impl Strategy<Value = tilespmspv::sparse::CsrMatrix<f64>> {
    (2usize..150, 2usize..150)
        .prop_flat_map(|(m, n)| {
            let entry = (0..m as u32, 0..n as u32, 1i32..50);
            (Just((m, n)), proptest::collection::vec(entry, 0..400))
        })
        .prop_map(|((m, n), entries)| {
            let mut coo = CooMatrix::new(m, n);
            for (r, c, v) in entries {
                coo.push(r as usize, c as usize, f64::from(v) * 0.25);
            }
            coo.sum_duplicates();
            coo.to_csr()
        })
}

/// An arbitrary square (directed) graph up to 120 vertices for BFS.
fn arb_square() -> impl Strategy<Value = tilespmspv::sparse::CsrMatrix<f64>> {
    (2usize..120)
        .prop_flat_map(|n| {
            let edge = (0..n as u32, 0..n as u32);
            (Just(n), proptest::collection::vec(edge, 0..300))
        })
        .prop_map(|(n, edges)| {
            let mut coo = CooMatrix::new(n, n);
            for (u, v) in edges {
                if u != v {
                    coo.push(u as usize, v as usize, 1.0);
                }
            }
            coo.sum_duplicates();
            coo.to_csr()
        })
}

/// A random matrix paired with a shrinking batch of frontiers over its
/// column space (the generator shared with the backend proptests).
#[allow(clippy::type_complexity)]
fn arb_batched_case() -> impl Strategy<
    Value = (
        tilespmspv::sparse::CsrMatrix<f64>,
        Vec<tilespmspv::sparse::SparseVector<f64>>,
    ),
> {
    arb_matrix().prop_flat_map(|a| {
        let n = a.ncols();
        (Just(a), common::arb_frontier_batch(n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn proved_plans_show_zero_dynamic_conflicts(
        a in arb_matrix(),
        seed in 0u64..16,
        sp_pick in 0usize..3,
    ) {
        let sparsity = [0.05, 0.2, 0.6][sp_pick];
        let x = tilespmspv::sparse::gen::random_sparse_vector(a.ncols(), sparsity, seed);
        for kernel in [KernelChoice::RowTile, KernelChoice::ColTile] {
            for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
                for format in [SpvFormat::TileCsr, SpvFormat::Sell(SellConfig::default())] {
                    let opts = SpMSpVOptions {
                        kernel,
                        balance,
                        format,
                        verify: true,
                        ..Default::default()
                    };
                    let mut engine = SpMSpVEngine::<PlusTimes>::from_csr_with(
                        &a,
                        TileConfig::default(),
                        opts,
                    )
                    .unwrap();
                    let san = Arc::new(Sanitizer::new());
                    engine.set_sanitizer(Some(Arc::clone(&san)));
                    engine.multiply(&x).unwrap();

                    let report = engine.last_analysis().expect("verify: true must report");
                    prop_assert_eq!(report.obligations.len(), 3,
                        "{}: three obligations per plan", report.plan);
                    let (proved, needs_atomics, unknown) = report.counts();
                    prop_assert_eq!(proved + needs_atomics + unknown, 3u64);
                    prop_assert_eq!(report.is_proved(), proved == 3,
                        "{}: overall verdict vs counts", report.plan);

                    let conflicts = san.violation_count();
                    let atomics = san.summary().atomics;
                    if report.is_proved() {
                        prop_assert_eq!(conflicts, 0,
                            "{}: proved but {} dynamic conflict(s)", report.plan, conflicts);
                    } else {
                        prop_assert!(atomics > 0,
                            "{}: non-proved verdict with no atomic claims to justify it",
                            report.plan);
                    }
                }
            }
        }
    }

    #[test]
    fn proved_batched_plans_show_zero_dynamic_conflicts(case in arb_batched_case()) {
        // Batched launches get their own access-footprint shapes: the
        // verifier must prove write-disjointness across the `nt·b`
        // lane-major slots of every row tile, and a proof must hold up
        // under the dynamic sanitizer for every query lane at once. An
        // empty batch launches nothing, so there is no plan to check.
        let (a, xs) = case;
        if xs.is_empty() {
            return;
        }
        for balance in [Balance::OneWarpPerRowTile, Balance::binned()] {
            for format in [SpvFormat::TileCsr, SpvFormat::Sell(SellConfig::default())] {
                let opts = SpMSpVOptions {
                    kernel: KernelChoice::RowTile,
                    balance,
                    format,
                    verify: true,
                    ..Default::default()
                };
                let mut engine = BatchedSpMSpVEngine::<PlusTimes>::from_csr_with(
                    &a,
                    TileConfig::default(),
                    opts,
                )
                .unwrap();
                let san = Arc::new(Sanitizer::new());
                engine.set_sanitizer(Some(Arc::clone(&san)));
                engine.multiply(&xs).unwrap();

                let report = engine.last_analysis().expect("verify: true must report");
                prop_assert_eq!(report.obligations.len(), 3,
                    "{}: three obligations per plan", report.plan);
                if report.is_proved() {
                    prop_assert_eq!(san.violation_count(), 0,
                        "{}: proved but dynamic conflicts across {} lanes",
                        report.plan, xs.len());
                } else {
                    prop_assert!(san.summary().atomics > 0,
                        "{}: non-proved verdict with no atomic claims", report.plan);
                }
            }
        }
    }

    #[test]
    fn proved_bfs_plans_show_zero_dynamic_conflicts(
        a in arb_square(),
        src_pick in 0usize..1000,
    ) {
        let source = src_pick % a.nrows();
        let mut bfs = BfsEngine::from_csr(&a).unwrap();
        let opts = BfsOptions { verify: true, ..Default::default() };
        bfs.set_options(opts);
        let san = Arc::new(Sanitizer::new());
        bfs.set_sanitizer(Some(Arc::clone(&san)));
        let r = bfs.run(source).unwrap();

        let report = r.analysis.expect("verify: true must report");
        prop_assert_eq!(report.obligations.len(), 3);
        if report.is_proved() {
            prop_assert_eq!(san.violation_count(), 0,
                "{}: proved but dynamic conflicts observed", report.plan);
        } else {
            prop_assert!(san.summary().atomics > 0,
                "{}: non-proved verdict with no atomic claims", report.plan);
        }
    }
}
