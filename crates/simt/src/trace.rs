//! Run telemetry: a low-overhead span/event recorder with Chrome Trace
//! Format export.
//!
//! The [`Tracer`] is a shared, thread-safe ring buffer of completed spans.
//! Call sites are written against `Option<&Tracer>` through the free
//! helpers [`start`], [`phase`], [`kernel`] and [`iteration`]; with no
//! tracer (or a disabled one) each helper costs a single branch, so the
//! hot engine paths stay unperturbed when telemetry is off.
//!
//! Events are recorded at span *end* (one timestamp read at entry, one at
//! exit) — there is no open-span bookkeeping on the recording side. The
//! ring overwrites its oldest entry when full and counts the evictions in
//! [`Tracer::dropped`], so a long run can always be traced; the tail is
//! what survives.
//!
//! [`chrome_trace_json`] turns the recorded events into a Chrome Trace
//! Format document (loadable in `chrome://tracing` or
//! <https://ui.perfetto.dev>) with one track per recording thread plus a
//! synthetic *modeled-device* track that lays the analytic-model duration
//! of every kernel launch end to end. [`validate_chrome_trace`] is the
//! structural checker used by both the unit tests and the `repro trace`
//! smoke step.

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::device::DeviceConfig;
use crate::json::{self, JsonValue};
use crate::model::kernel_time;
use crate::stats::KernelStats;

/// Track id reserved for the synthetic modeled-device timeline.
pub const MODELED_TID: u64 = 0;

/// Default ring capacity (events), enough for ~65k spans.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// Event category for kernel launches (carries [`KernelStats`]).
pub const CAT_KERNEL: &str = "kernel";
/// Event category for engine phases (tiling, compression, compaction...).
pub const CAT_PHASE: &str = "phase";
/// Event category for per-iteration BFS records (carries [`IterationInfo`]).
pub const CAT_BFS: &str = "bfs";
/// Event category for dispatch-plan records (carries [`DispatchInfo`]).
pub const CAT_DISPATCH: &str = "dispatch";

// Worker tids start at 1; 0 is the modeled-device track. Each thread takes
// a dense id the first time it records, so traces show "worker-1..k"
// rather than opaque OS thread ids.
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// Per-iteration traversal context attached to BFS events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationInfo {
    /// 1-based BFS level the iteration discovered.
    pub level: u32,
    /// Frontier size entering the iteration.
    pub frontier: usize,
    /// Vertices discovered by the iteration.
    pub discovered: usize,
    /// Vertices still unvisited entering the iteration.
    pub unvisited: usize,
    /// `frontier / n` — the density the kernel policy saw.
    pub density: f64,
}

/// Work-distribution context attached to dispatch-plan events: how a
/// binned scheduler packed work units into warps. The histograms use
/// power-of-two buckets — `occupancy_hist[k]` counts warps holding
/// `[2^k, 2^(k+1))` units (bucket 0 also holds empty warps, the last
/// bucket is open-ended), `work_hist[k]` counts warps the same way by
/// weighted work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchInfo {
    /// Work units (e.g. active row tiles) in the plan.
    pub units: u32,
    /// Warps the plan launches.
    pub warps: u32,
    /// Heaviest per-warp work (weighted units).
    pub max_warp_work: u64,
    /// Summed per-warp work.
    pub total_work: u64,
    /// Warp counts bucketed by units-per-warp.
    pub occupancy_hist: [u32; 8],
    /// Warp counts bucketed by per-warp work.
    pub work_hist: [u32; 16],
}

impl DispatchInfo {
    /// Mean per-warp work (0 for an empty plan).
    pub fn mean_warp_work(&self) -> f64 {
        if self.warps == 0 {
            0.0
        } else {
            self.total_work as f64 / f64::from(self.warps)
        }
    }

    /// `max / mean` per-warp work — 1.0 is perfectly balanced. Defined as
    /// 1.0 when the plan is empty.
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_warp_work();
        if mean == 0.0 {
            1.0
        } else {
            self.max_warp_work as f64 / mean
        }
    }
}

/// One completed span.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span label, e.g. `"spmspv/row-tile"` or `"bfs/push-csc"`.
    pub name: Cow<'static, str>,
    /// One of [`CAT_KERNEL`], [`CAT_PHASE`], [`CAT_BFS`].
    pub cat: &'static str,
    /// Dense per-thread track id (≥ 1; 0 is the modeled track).
    pub tid: u64,
    /// Span start, nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Span wall duration in nanoseconds.
    pub dur_ns: u64,
    /// Work counters for kernel launches.
    pub stats: Option<KernelStats>,
    /// Traversal context for BFS iterations.
    pub iteration: Option<IterationInfo>,
    /// Work-distribution context for dispatch plans.
    pub dispatch: Option<DispatchInfo>,
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
}

/// Thread-safe span recorder. Cheap to share (`Arc<Tracer>`); disabled
/// recording costs one atomic load.
pub struct Tracer {
    epoch: Instant,
    capacity: usize,
    enabled: AtomicBool,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("capacity", &self.capacity)
            .field("enabled", &self.is_enabled())
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// An enabled tracer with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer whose ring holds `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            epoch: Instant::now(),
            capacity,
            enabled: AtomicBool::new(true),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                head: 0,
            }),
        }
    }

    /// Whether recording is on. The single branch every call site pays.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since this tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one completed span on the calling thread's track.
    pub fn record(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        ts_ns: u64,
        dur_ns: u64,
        stats: Option<KernelStats>,
        iteration: Option<IterationInfo>,
    ) {
        self.record_full(name, cat, ts_ns, dur_ns, stats, iteration, None);
    }

    /// Records one completed span with every optional payload.
    #[allow(clippy::too_many_arguments)]
    pub fn record_full(
        &self,
        name: impl Into<Cow<'static, str>>,
        cat: &'static str,
        ts_ns: u64,
        dur_ns: u64,
        stats: Option<KernelStats>,
        iteration: Option<IterationInfo>,
        dispatch: Option<DispatchInfo>,
    ) {
        if !self.is_enabled() {
            return;
        }
        let ev = TraceEvent {
            name: name.into(),
            cat,
            tid: current_tid(),
            ts_ns,
            dur_ns,
            stats,
            iteration,
            dispatch,
        };
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
        } else {
            let head = ring.head;
            ring.buf[head] = ev;
            ring.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events currently held, oldest first (by recording order).
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock().expect("tracer ring poisoned");
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.head..]);
        out.extend_from_slice(&ring.buf[..ring.head]);
        out
    }

    /// Number of events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer ring poisoned").buf.len()
    }

    /// True when nothing has been recorded (or everything cleared).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Discards all recorded events and the eviction count.
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        ring.buf.clear();
        ring.head = 0;
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// Span-entry timestamp, or 0 when tracing is off. The `None`/disabled
/// path is the one branch per launch that disabled tracing costs.
#[inline]
pub fn start(tracer: Option<&Tracer>) -> u64 {
    match tracer {
        Some(t) if t.is_enabled() => t.now_ns(),
        _ => 0,
    }
}

/// Closes a phase span opened by [`start`].
#[inline]
pub fn phase(tracer: Option<&Tracer>, name: impl Into<Cow<'static, str>>, start_ns: u64) {
    if let Some(t) = tracer {
        if t.is_enabled() {
            let now = t.now_ns();
            t.record(
                name,
                CAT_PHASE,
                start_ns,
                now.saturating_sub(start_ns),
                None,
                None,
            );
        }
    }
}

/// Closes a kernel-launch span opened by [`start`], attaching its
/// work counters.
#[inline]
pub fn kernel(
    tracer: Option<&Tracer>,
    name: impl Into<Cow<'static, str>>,
    stats: KernelStats,
    start_ns: u64,
) {
    if let Some(t) = tracer {
        if t.is_enabled() {
            let now = t.now_ns();
            t.record(
                name,
                CAT_KERNEL,
                start_ns,
                now.saturating_sub(start_ns),
                Some(stats),
                None,
            );
        }
    }
}

/// Closes a BFS-iteration span opened by [`start`], attaching the
/// traversal context (and kernel counters when the iteration maps to a
/// single launch).
#[inline]
pub fn iteration(
    tracer: Option<&Tracer>,
    name: impl Into<Cow<'static, str>>,
    stats: Option<KernelStats>,
    info: IterationInfo,
    start_ns: u64,
) {
    if let Some(t) = tracer {
        if t.is_enabled() {
            let now = t.now_ns();
            t.record(
                name,
                CAT_BFS,
                start_ns,
                now.saturating_sub(start_ns),
                stats,
                Some(info),
            );
        }
    }
}

/// Closes a dispatch-plan span opened by [`start`], attaching the
/// work-distribution context.
#[inline]
pub fn dispatch(
    tracer: Option<&Tracer>,
    name: impl Into<Cow<'static, str>>,
    info: DispatchInfo,
    start_ns: u64,
) {
    if let Some(t) = tracer {
        if t.is_enabled() {
            let now = t.now_ns();
            t.record_full(
                name,
                CAT_DISPATCH,
                start_ns,
                now.saturating_sub(start_ns),
                None,
                None,
                Some(info),
            );
        }
    }
}

// ------------------------------------------------------------------
// Chrome Trace Format export
// ------------------------------------------------------------------

struct Span {
    tid: u64,
    name: String,
    cat: &'static str,
    start_ns: u64,
    end_ns: u64,
    args: String,
}

fn stats_args(out: &mut String, stats: &KernelStats, device: &DeviceConfig) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        ",\"modeled_ms\":{},\"gmem_read_bytes\":{},\"gmem_write_bytes\":{},\
         \"gmem_scattered_bytes\":{},\"atomics\":{},\"flops\":{},\"bitops\":{},\
         \"warps\":{},\"lane_steps\":{}",
        json::number(kernel_time(stats, device) * 1e3),
        stats.gmem_read_bytes,
        stats.gmem_write_bytes,
        stats.gmem_scattered_bytes,
        stats.atomics,
        stats.flops,
        stats.bitops,
        stats.warps,
        stats.lane_steps,
    );
}

fn dispatch_args(out: &mut String, info: &DispatchInfo) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        ",\"units\":{},\"warps\":{},\"max_warp_work\":{},\"mean_warp_work\":{},\
         \"imbalance\":{},\"occupancy_hist\":[",
        info.units,
        info.warps,
        info.max_warp_work,
        json::number(info.mean_warp_work()),
        json::number(info.imbalance()),
    );
    for (i, c) in info.occupancy_hist.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    out.push_str("],\"work_hist\":[");
    for (i, c) in info.work_hist.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{c}");
    }
    out.push(']');
}

fn iteration_args(out: &mut String, info: &IterationInfo) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        ",\"level\":{},\"frontier\":{},\"discovered\":{},\"unvisited\":{},\"density\":{}",
        info.level,
        info.frontier,
        info.discovered,
        info.unvisited,
        json::number(info.density),
    );
}

/// Renders recorded events as a Chrome Trace Format JSON document with one
/// track per recording thread and a synthetic modeled-device track (tid 0)
/// laying the analytic-model duration of each kernel launch end to end.
///
/// Guarantees: globally non-decreasing `ts` over the `B`/`E` stream, and
/// properly nested `B`/`E` pairs on every track.
pub fn chrome_trace_json(events: &[TraceEvent], device: &DeviceConfig) -> String {
    use std::fmt::Write as _;

    let mut spans: Vec<Span> = Vec::with_capacity(events.len() * 2);
    for ev in events {
        let mut args = format!("\"wall_ms\":{}", json::number(ev.dur_ns as f64 / 1e6));
        if let Some(s) = &ev.stats {
            stats_args(&mut args, s, device);
        }
        if let Some(i) = &ev.iteration {
            iteration_args(&mut args, i);
        }
        if let Some(d) = &ev.dispatch {
            dispatch_args(&mut args, d);
        }
        spans.push(Span {
            tid: ev.tid,
            name: ev.name.to_string(),
            cat: ev.cat,
            start_ns: ev.ts_ns,
            end_ns: ev.ts_ns + ev.dur_ns.max(1),
            args,
        });
    }

    // Modeled-device track: each kernel launch (including BFS iterations,
    // which are one launch each), at its analytic-model duration, placed
    // sequentially (the model assumes the device runs one kernel at a
    // time). Launch order follows wall-clock start times.
    let mut kernels: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| (e.cat == CAT_KERNEL || e.cat == CAT_BFS) && e.stats.is_some())
        .collect();
    kernels.sort_by_key(|e| e.ts_ns);
    let mut cursor = 0u64;
    for ev in &kernels {
        let stats = ev.stats.as_ref().expect("filtered on stats");
        let dur = ((kernel_time(stats, device) * 1e9) as u64).max(1);
        let start = cursor.max(ev.ts_ns);
        cursor = start + dur;
        let mut args = format!("\"modeled_ms\":{}", json::number(dur as f64 / 1e6));
        let _ = write!(
            args,
            ",\"wall_ms\":{}",
            json::number(ev.dur_ns as f64 / 1e6)
        );
        spans.push(Span {
            tid: MODELED_TID,
            name: ev.name.to_string(),
            cat: "modeled",
            start_ns: start,
            end_ns: start + dur,
            args,
        });
    }

    // Normalize so the trace starts at ts 0.
    let t0 = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    for s in &mut spans {
        s.start_ns -= t0;
        s.end_ns -= t0;
    }

    // Emit as a single sorted B/E stream. Sorting B's by (start, longest
    // first) puts enclosing spans before the spans they contain; the sweep
    // then closes every open span whose end has passed before opening the
    // next one, which keeps `ts` globally non-decreasing and every track's
    // B/E stream properly nested (per-track open stacks are popped
    // top-first, and nested spans always sit above their parents).
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by_key(|&i| (spans[i].start_ns, std::cmp::Reverse(spans[i].end_ns), i));

    fn sep(body: &mut String, first: &mut bool) {
        if !std::mem::take(first) {
            body.push(',');
        }
    }

    let mut body = String::new();
    let mut first = true;

    // Metadata: process name plus one thread_name record per track.
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    sep(&mut body, &mut first);
    body.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"tilespmspv\"}}",
    );
    for &tid in &tids {
        let label = if tid == MODELED_TID {
            format!("modeled-{}", device.name)
        } else {
            format!("worker-{tid}")
        };
        sep(&mut body, &mut first);
        let _ = write!(
            body,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json::escape(&label)
        );
    }

    let us = |ns: u64| format!("{:.3}", ns as f64 / 1e3);

    // Per-track stacks of open spans: (end_ns, span index). Nesting means
    // each stack's ends weakly decrease toward the top, so the top is
    // always the track's earliest-closing open span.
    let mut open: BTreeMap<u64, Vec<(u64, usize)>> = BTreeMap::new();
    let close_until = |body: &mut String,
                       open: &mut BTreeMap<u64, Vec<(u64, usize)>>,
                       limit: u64,
                       first: &mut bool| {
        loop {
            let mut best: Option<(u64, u64)> = None; // (end, tid)
            for (&tid, stack) in open.iter() {
                if let Some(&(end, _)) = stack.last() {
                    if end <= limit && best.is_none_or(|(be, _)| end < be) {
                        best = Some((end, tid));
                    }
                }
            }
            let Some((end, tid)) = best else { break };
            let stack = open.get_mut(&tid).expect("tid present");
            let (_, idx) = stack.pop().expect("non-empty");
            if stack.is_empty() {
                open.remove(&tid);
            }
            let s: &Span = &spans[idx];
            if !std::mem::take(first) {
                body.push(',');
            }
            let _ = write!(
                body,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                json::escape(&s.name),
                s.cat,
                us(end),
                tid,
            );
        }
    };

    for &i in &order {
        close_until(&mut body, &mut open, spans[i].start_ns, &mut first);
        let s = &spans[i];
        if !std::mem::take(&mut first) {
            body.push(',');
        }
        let _ = write!(
            body,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\
             \"tid\":{},\"args\":{{{}}}}}",
            json::escape(&s.name),
            s.cat,
            us(s.start_ns),
            s.tid,
            s.args,
        );
        open.entry(s.tid).or_default().push((s.end_ns, i));
    }
    close_until(&mut body, &mut open, u64::MAX, &mut first);

    format!("{{\"traceEvents\":[{body}],\"displayTimeUnit\":\"ms\"}}")
}

/// Structural facts established by [`validate_chrome_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total `B`/`E` events (metadata excluded).
    pub events: usize,
    /// `B` events with category `"kernel"`.
    pub kernel_spans: usize,
    /// Distinct track ids carrying spans.
    pub tracks: usize,
}

/// Validates a Chrome Trace Format document structurally: it must parse,
/// `ts` must be globally non-decreasing over the `B`/`E` stream, and every
/// track's `B`/`E` events must pair up with stack discipline (matching
/// names, nothing left open).
pub fn validate_chrome_trace(doc: &str) -> Result<TraceCheck, String> {
    let root = json::parse(doc)?;
    let events = root
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or("missing traceEvents array")?;

    let mut last_ts = f64::NEG_INFINITY;
    let mut stacks: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut check = TraceCheck {
        events: 0,
        kernel_spans: 0,
        tracks: 0,
    };
    let mut tracks: Vec<u64> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue;
        }
        if ph != "B" && ph != "E" {
            return Err(format!("event {i}: unexpected ph {ph:?}"));
        }
        let ts = ev
            .get("ts")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("event {i}: missing ts"))?;
        if ts < last_ts {
            return Err(format!("event {i}: ts {ts} < previous {last_ts}"));
        }
        last_ts = ts;
        let tid = ev
            .get("tid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing tid"))?;
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("");
        check.events += 1;
        if !tracks.contains(&tid) {
            tracks.push(tid);
        }
        if ph == "B" {
            if ev.get("cat").and_then(JsonValue::as_str) == Some(CAT_KERNEL) {
                check.kernel_spans += 1;
            }
            stacks.entry(tid).or_default().push(name.to_string());
        } else {
            let top = stacks
                .get_mut(&tid)
                .and_then(Vec::pop)
                .ok_or_else(|| format!("event {i}: E with no open span on tid {tid}"))?;
            if !name.is_empty() && top != name {
                return Err(format!(
                    "event {i}: E name {name:?} does not close B name {top:?} on tid {tid}"
                ));
            }
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {tid}: {} span(s) left open", stack.len()));
        }
    }
    check.tracks = tracks.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::RTX_3060;

    fn some_stats() -> KernelStats {
        let mut s = KernelStats::default();
        s.read(4096);
        s.write(512);
        s.flop(1000);
        s.warps = 4;
        s.lane_steps = 128;
        s
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.set_enabled(false);
        let t0 = start(Some(&t));
        assert_eq!(t0, 0);
        kernel(Some(&t), "k", some_stats(), t0);
        phase(Some(&t), "p", t0);
        assert!(t.is_empty());
        assert_eq!(start(None), 0);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::with_capacity(4);
        for i in 0..6u64 {
            t.record(format!("ev{i}"), CAT_PHASE, i * 100, 10, None, None);
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 2);
        let names: Vec<String> = t.events().iter().map(|e| e.name.to_string()).collect();
        assert_eq!(names, vec!["ev2", "ev3", "ev4", "ev5"]);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn span_helpers_record_wall_time_and_payloads() {
        let t = Tracer::new();
        let t0 = start(Some(&t));
        std::thread::sleep(std::time::Duration::from_millis(2));
        kernel(Some(&t), "spmspv/row-tile", some_stats(), t0);
        let info = IterationInfo {
            level: 3,
            frontier: 40,
            discovered: 120,
            unvisited: 500,
            density: 0.04,
        };
        let t1 = start(Some(&t));
        iteration(Some(&t), "bfs/push-csr", Some(some_stats()), info, t1);
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].cat, CAT_KERNEL);
        assert!(
            evs[0].dur_ns >= 1_000_000,
            "slept 2ms, got {}ns",
            evs[0].dur_ns
        );
        assert_eq!(evs[0].stats, Some(some_stats()));
        assert_eq!(evs[1].iteration, Some(info));
        assert!(evs[1].ts_ns >= evs[0].ts_ns);
    }

    fn some_dispatch() -> DispatchInfo {
        let mut occupancy_hist = [0u32; 8];
        occupancy_hist[0] = 1;
        occupancy_hist[2] = 3;
        let mut work_hist = [0u32; 16];
        work_hist[5] = 4;
        DispatchInfo {
            units: 13,
            warps: 4,
            max_warp_work: 48,
            total_work: 130,
            occupancy_hist,
            work_hist,
        }
    }

    #[test]
    fn dispatch_spans_carry_their_histograms() {
        let t = Tracer::new();
        let t0 = start(Some(&t));
        dispatch(Some(&t), "spmspv/dispatch-plan", some_dispatch(), t0);
        let evs = t.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].cat, CAT_DISPATCH);
        assert_eq!(evs[0].dispatch, Some(some_dispatch()));

        let doc = chrome_trace_json(&t.events(), &RTX_3060);
        validate_chrome_trace(&doc).expect("valid trace");
        assert!(
            doc.contains("\"occupancy_hist\":[1,0,3,0,0,0,0,0]"),
            "{doc}"
        );
        assert!(doc.contains("\"max_warp_work\":48"), "{doc}");
        let info = some_dispatch();
        assert!((info.mean_warp_work() - 32.5).abs() < 1e-12);
        assert!((info.imbalance() - 48.0 / 32.5).abs() < 1e-12);
        let empty = DispatchInfo {
            units: 0,
            warps: 0,
            max_warp_work: 0,
            total_work: 0,
            occupancy_hist: [0; 8],
            work_hist: [0; 16],
        };
        assert_eq!(empty.mean_warp_work(), 0.0);
        assert_eq!(empty.imbalance(), 1.0);
    }

    #[test]
    fn chrome_export_is_structurally_valid() {
        let t = Tracer::new();
        // Nested phases around two kernels on this thread.
        let outer = start(Some(&t));
        let k0 = start(Some(&t));
        kernel(Some(&t), "spmspv/row-tile", some_stats(), k0);
        let k1 = start(Some(&t));
        kernel(Some(&t), "spmspv/col-tile", some_stats(), k1);
        phase(Some(&t), "spmspv/outer", outer);

        let doc = chrome_trace_json(&t.events(), &RTX_3060);
        let check = validate_chrome_trace(&doc).expect("valid trace");
        // 3 wall spans + 2 modeled spans, each a B/E pair.
        assert_eq!(check.events, 10);
        assert_eq!(check.kernel_spans, 2);
        // This thread's track plus the modeled-device track.
        assert_eq!(check.tracks, 2);
        assert!(doc.contains("modeled-NVIDIA GeForce RTX 3060"));
        assert!(doc.contains("thread_name"));
    }

    #[test]
    fn chrome_export_keeps_parallel_tracks_separate() {
        let t = Tracer::new();
        std::thread::scope(|s| {
            for w in 0..3 {
                let tr = &t;
                s.spawn(move || {
                    for i in 0..5 {
                        let t0 = start(Some(tr));
                        std::hint::black_box(w * i);
                        kernel(Some(tr), "spmspv/row-tile", some_stats(), t0);
                    }
                });
            }
        });
        assert_eq!(t.len(), 15);
        let doc = chrome_trace_json(&t.events(), &RTX_3060);
        let check = validate_chrome_trace(&doc).expect("valid trace");
        assert_eq!(check.kernel_spans, 15);
        // 3 worker tracks plus the modeled track. (Each spawned thread gets
        // a fresh dense tid.)
        assert_eq!(check.tracks, 4);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        // Unsorted ts.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // E without B.
        let bad = r#"{"traceEvents":[{"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Left open.
        let bad = r#"{"traceEvents":[{"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
        // Mismatched names.
        let bad = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":2,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad).is_err());
    }

    #[test]
    fn modeled_track_durations_follow_the_analytic_model() {
        let t = Tracer::new();
        let t0 = start(Some(&t));
        kernel(Some(&t), "k", some_stats(), t0);
        let doc = chrome_trace_json(&t.events(), &RTX_3060);
        let root = json::parse(&doc).unwrap();
        let events = root.get("traceEvents").unwrap().as_array().unwrap();
        let modeled_b = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(JsonValue::as_str) == Some("B")
                    && e.get("tid").and_then(JsonValue::as_u64) == Some(MODELED_TID)
            })
            .expect("modeled B event");
        let modeled_ms = modeled_b
            .get("args")
            .and_then(|a| a.get("modeled_ms"))
            .and_then(JsonValue::as_f64)
            .expect("modeled_ms arg");
        let want = kernel_time(&some_stats(), &RTX_3060) * 1e3;
        assert!(
            (modeled_ms - want).abs() <= want * 1e-3 + 1e-6,
            "modeled {modeled_ms} vs analytic {want}"
        );
    }
}
