//! Reverse Cuthill-McKee ordering.
//!
//! RCM permutes a symmetric matrix so its entries hug the diagonal, which
//! directly benefits the tiled format (fewer, denser tiles — see the
//! `rcm_ordering` example for measurements). The expensive part, repeated
//! whole-graph BFS during the pseudo-peripheral search, runs on TileBFS;
//! the final ordering is the classic serial queue walk.

use tsv_core::bfs::{tile_bfs, BfsOptions, TileBfsGraph};
use tsv_sparse::{CooMatrix, CsrMatrix, SparseError};

/// Computes the RCM permutation of a square matrix with a symmetric
/// pattern: `perm[new_index] = old_index`. Disconnected components are
/// ordered one after another, each from a low-degree root.
pub fn rcm_order(a: &CsrMatrix<f64>) -> Result<Vec<usize>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    if n == 0 {
        return Ok(Vec::new());
    }
    let g = TileBfsGraph::from_csr(a)?;
    let start = (0..n).min_by_key(|&v| a.row_nnz(v).max(1)).unwrap_or(0);
    let root = pseudo_peripheral(a, &g, start)?;

    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[root] = true;
    queue.push_back(root);

    let mut nbrs = Vec::new();
    loop {
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let (cols, _) = a.row(u);
            nbrs.clear();
            nbrs.extend(cols.iter().map(|&c| c as usize).filter(|&v| !seen[v]));
            nbrs.sort_by_key(|&v| a.row_nnz(v));
            for &v in &nbrs {
                seen[v] = true;
                queue.push_back(v);
            }
        }
        match (0..n).filter(|&v| !seen[v]).min_by_key(|&v| a.row_nnz(v)) {
            Some(next_root) => {
                seen[next_root] = true;
                queue.push_back(next_root);
            }
            None => break,
        }
    }
    order.reverse();
    Ok(order)
}

/// Finds a pseudo-peripheral vertex by the George-Liu iteration: jump to
/// the farthest lowest-degree vertex until eccentricity stops growing.
fn pseudo_peripheral(
    a: &CsrMatrix<f64>,
    g: &TileBfsGraph,
    start: usize,
) -> Result<usize, SparseError> {
    let mut v = start;
    let mut ecc = -1i32;
    loop {
        let levels = tile_bfs(g, v, BfsOptions::default())?.levels;
        let new_ecc = *levels.iter().max().expect("non-empty graph");
        if new_ecc <= ecc {
            return Ok(v);
        }
        ecc = new_ecc;
        v = levels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == new_ecc)
            .map(|(u, _)| u)
            .min_by_key(|&u| a.row_nnz(u))
            .expect("max level is attained");
    }
}

/// Applies a symmetric permutation (`perm[new] = old`) to a matrix.
pub fn permute_symmetric(a: &CsrMatrix<f64>, perm: &[usize]) -> CsrMatrix<f64> {
    assert_eq!(perm.len(), a.nrows(), "permutation length mismatch");
    let mut inv = vec![0usize; perm.len()];
    for (new, &old) in perm.iter().enumerate() {
        inv[old] = new;
    }
    let mut coo = CooMatrix::with_capacity(a.nrows(), a.ncols(), a.nnz());
    for (r, c, v) in a.iter() {
        coo.push(inv[r], inv[c], v);
    }
    coo.to_csr()
}

/// Bandwidth: `max |i - j|` over stored entries.
pub fn bandwidth(a: &CsrMatrix<f64>) -> usize {
    a.iter().map(|(r, c, _)| r.abs_diff(c)).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{geometric_graph, grid2d};

    fn scramble(a: &CsrMatrix<f64>, seed: u64) -> CsrMatrix<f64> {
        let n = a.nrows();
        let mut relabel: Vec<usize> = (0..n).collect();
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            relabel.swap(i, j);
        }
        let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
        for (r, c, v) in a.iter() {
            coo.push(relabel[r], relabel[c], v);
        }
        coo.to_csr()
    }

    #[test]
    fn rcm_is_a_permutation() {
        let a = geometric_graph(500, 4.0, 1).to_csr();
        let perm = rcm_order(&a).unwrap();
        let mut sorted = perm;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..500).collect::<Vec<_>>());
    }

    #[test]
    fn rcm_reduces_bandwidth_of_scrambled_mesh() {
        let mesh = grid2d(25, 25).to_csr().without_diagonal();
        let scrambled = scramble(&mesh, 7);
        let before = bandwidth(&scrambled);
        let perm = rcm_order(&scrambled).unwrap();
        let after = bandwidth(&permute_symmetric(&scrambled, &perm));
        assert!(
            after * 3 < before,
            "expected a large reduction: {before} -> {after}"
        );
    }

    #[test]
    fn permutation_preserves_the_spectrum_proxy() {
        // Row sums (a similarity invariant under symmetric permutation).
        let a = geometric_graph(300, 5.0, 2).to_csr();
        let perm = rcm_order(&a).unwrap();
        let p = permute_symmetric(&a, &perm);
        assert_eq!(p.nnz(), a.nnz());
        let mut sums_a: Vec<usize> = (0..300).map(|v| a.row_nnz(v)).collect();
        let mut sums_p: Vec<usize> = (0..300).map(|v| p.row_nnz(v)).collect();
        sums_a.sort_unstable();
        sums_p.sort_unstable();
        assert_eq!(sums_a, sums_p);
    }

    #[test]
    fn disconnected_graphs_are_fully_ordered() {
        let mut coo = CooMatrix::new(60, 60);
        for base in [0usize, 30] {
            for i in 0..20 {
                coo.push(base + i, base + i + 1, 1.0);
                coo.push(base + i + 1, base + i, 1.0);
            }
        }
        let a = coo.to_csr();
        let perm = rcm_order(&a).unwrap();
        assert_eq!(perm.len(), 60);
        let mut sorted = perm;
        sorted.sort_unstable();
        assert_eq!(sorted, (0..60).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_non_square() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 3, 1.0);
        assert!(rcm_order(&coo.to_csr()).is_err());
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::<f64>::zeros(0, 0);
        assert!(rcm_order(&a).unwrap().is_empty());
    }
}
