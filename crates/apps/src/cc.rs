//! Connected components by semiring label propagation.
//!
//! Every vertex starts with its own index as label; each round replaces a
//! vertex's label with the minimum over its neighborhood. One round is an
//! SpMSpV over the (min, +) semiring with zero edge weights (min over
//! neighbor labels), driven by the *changed* vertices only — the sparse
//! work-set formulation that makes SpMSpV the right primitive. The rounds
//! share one [`SpMSpVEngine`], so the tiled pattern matrix and the kernel
//! scratch are built once for the whole propagation.

use std::sync::Arc;
use tsv_core::exec::SpMSpVEngine;
use tsv_core::semiring::MinPlus;
use tsv_core::tile::TileConfig;
use tsv_simt::trace::{self, IterationInfo, Tracer};
use tsv_sparse::{CooMatrix, CsrMatrix, SparseError, SparseVector};

/// Labels each vertex of an undirected graph with the smallest vertex id
/// of its component. Returns the label array.
///
/// ```
/// use tsv_apps::connected_components;
/// use tsv_sparse::CooMatrix;
///
/// let mut coo = CooMatrix::new(4, 4);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0);
/// let labels = connected_components(&coo.to_csr()).unwrap();
/// assert_eq!(labels, vec![0, 0, 2, 3]);
/// ```
pub fn connected_components(a: &CsrMatrix<f64>) -> Result<Vec<u32>, SparseError> {
    connected_components_traced(a, None)
}

/// [`connected_components`] with run telemetry: the pattern-build phase,
/// the engine's SpMSpV launches and a per-round propagation record
/// (changed-set size and density) land on `tracer` when one is attached
/// and enabled.
pub fn connected_components_traced(
    a: &CsrMatrix<f64>,
    tracer: Option<Arc<Tracer>>,
) -> Result<Vec<u32>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let t0 = trace::start(tracer.as_deref());
    // Zero-weighted pattern: (min, +) then takes plain minima of labels.
    let mut coo = CooMatrix::with_capacity(n, n, a.nnz());
    for (r, c, _) in a.iter() {
        coo.push(r, c, 0.0);
    }
    let pattern = coo.to_csr();
    trace::phase(tracer.as_deref(), "cc/build-pattern", t0);
    let mut engine =
        SpMSpVEngine::<MinPlus>::from_csr_traced(&pattern, TileConfig::default(), tracer)?;
    let tr = engine.tracer().cloned();
    let tr = tr.as_deref();

    let mut labels: Vec<f64> = (0..n).map(|v| v as f64).collect();
    // Initially every vertex is "changed".
    let mut frontier = SparseVector::from_parts(n, (0..n as u32).collect(), labels.clone())
        .expect("indices are sorted");

    let mut round = 0u32;
    // Recycled round output: `multiply_into` ping-pongs its buffers with
    // the engine's staging area instead of allocating per round.
    let mut candidates = SparseVector::zeros(n);
    while frontier.nnz() > 0 {
        round += 1;
        let t0 = trace::start(tr);
        let frontier_size = frontier.nnz();
        // Candidate labels: min over changed neighbors.
        engine.multiply_into(&frontier, &mut candidates)?;
        let mut changed = Vec::new();
        for (v, cand) in candidates.iter() {
            if cand < labels[v] {
                labels[v] = cand;
                changed.push((v as u32, cand));
            }
        }
        let discovered = changed.len();
        frontier = SparseVector::from_entries(n, changed)?;
        trace::iteration(
            tr,
            "cc/round",
            None,
            IterationInfo {
                level: round,
                frontier: frontier_size,
                discovered,
                // Vertices whose labels are still in flux — the work left
                // for later rounds.
                unvisited: discovered,
                density: frontier_size as f64 / n.max(1) as f64,
            },
            t0,
        );
    }
    Ok(labels.into_iter().map(|l| l as u32).collect())
}

/// Number of connected components given a label array.
pub fn component_count(labels: &[u32]) -> usize {
    let mut distinct: Vec<u32> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::gen::{geometric_graph, grid2d};
    use tsv_sparse::reference::bfs_levels;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn two_islands() {
        let a = undirected(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let labels = connected_components(&a).unwrap();
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
        assert_eq!(component_count(&labels), 2);
    }

    #[test]
    fn isolated_vertices_are_their_own_components() {
        let a = undirected(5, &[(1, 3)]);
        let labels = connected_components(&a).unwrap();
        assert_eq!(labels, vec![0, 1, 2, 1, 4]);
        assert_eq!(component_count(&labels), 4);
    }

    #[test]
    fn connected_graph_has_one_component() {
        let a = grid2d(12, 9).to_csr().without_diagonal();
        let labels = connected_components(&a).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
        assert_eq!(component_count(&labels), 1);
    }

    #[test]
    fn labels_agree_with_bfs_reachability() {
        let a = geometric_graph(400, 3.5, 5).to_csr();
        let labels = connected_components(&a).unwrap();
        // Two vertices share a label iff BFS reaches one from the other.
        let levels = bfs_levels(&a, 0).unwrap();
        for v in 0..400 {
            assert_eq!(
                labels[v] == labels[0],
                levels[v] >= 0,
                "vertex {v}: label {} vs level {}",
                labels[v],
                levels[v]
            );
        }
        // Every label is the minimum id of its component.
        for (v, &label) in labels.iter().enumerate() {
            assert!(label as usize <= v);
        }
    }

    #[test]
    fn rejects_non_square() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 1.0);
        assert!(connected_components(&coo.to_csr()).is_err());
    }
}
