//! Compressed Sparse Column matrix.
//!
//! The vector-driven SpMSpV direction (Algorithm 2 of the paper) and the
//! CombBLAS bucket baseline both walk columns, so CSC is a first-class
//! format here rather than a transpose trick.

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;
use crate::Result;

/// A sparse matrix in CSC form: `col_ptr` of length `ncols + 1` delimits the
/// row-index/value run of each column. Row indices within a column are kept
/// sorted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscMatrix<T> {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Copy> CscMatrix<T> {
    /// Builds a CSC matrix from raw arrays, validating every invariant.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        vals: Vec<T>,
    ) -> Result<Self> {
        if col_ptr.len() != ncols + 1 {
            return Err(SparseError::MalformedPointers {
                what: format!(
                    "col_ptr has length {}, expected ncols + 1 = {}",
                    col_ptr.len(),
                    ncols + 1
                ),
            });
        }
        if row_idx.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                what: "row_idx/vals of a CSC matrix",
            });
        }
        if col_ptr[0] != 0 || *col_ptr.last().expect("len >= 1") != row_idx.len() {
            return Err(SparseError::MalformedPointers {
                what: "col_ptr must start at 0 and end at nnz".to_string(),
            });
        }
        for w in col_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::MalformedPointers {
                    what: "col_ptr must be non-decreasing".to_string(),
                });
            }
        }
        for c in 0..ncols {
            let col = &row_idx[col_ptr[c]..col_ptr[c + 1]];
            for w in col.windows(2) {
                if w[1] <= w[0] {
                    return Err(SparseError::MalformedPointers {
                        what: format!("column {c} has unsorted or duplicate row indices"),
                    });
                }
            }
            if let Some(&r) = col.last() {
                if r as usize >= nrows {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r as usize,
                        col: c,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(Self {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            vals,
        })
    }

    /// Internal constructor for callers that already guarantee the
    /// invariants (e.g. the CSR→CSC counting transpose).
    pub(crate) fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<u32>,
        vals: Vec<T>,
    ) -> Self {
        debug_assert_eq!(col_ptr.len(), ncols + 1);
        debug_assert_eq!(row_idx.len(), vals.len());
        Self {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            vals,
        }
    }

    /// Converts from COO by building the CSR of the transpose.
    pub fn from_coo(coo: &CooMatrix<T>) -> Self
    where
        T: std::ops::Add<Output = T>,
    {
        let t = coo.transpose().to_csr();
        Self {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            col_ptr: t.row_ptr().to_vec(),
            row_idx: t.col_idx().to_vec(),
            vals: t.values().to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The column pointer array (length `ncols + 1`).
    pub fn col_ptr(&self) -> &[usize] {
        &self.col_ptr
    }

    /// The row index array (length `nnz`).
    pub fn row_idx(&self) -> &[u32] {
        &self.row_idx
    }

    /// The value array (length `nnz`).
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Row indices and values of column `j`.
    pub fn col(&self, j: usize) -> (&[u32], &[T]) {
        let (s, e) = (self.col_ptr[j], self.col_ptr[j + 1]);
        (&self.row_idx[s..e], &self.vals[s..e])
    }

    /// Number of stored entries in column `j` (the in-degree for adjacency
    /// matrices).
    pub fn col_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Converts to CSR by a counting transpose pass.
    pub fn to_csr(&self) -> CsrMatrix<T>
    where
        T: std::ops::Add<Output = T>,
    {
        // The CSC arrays are exactly the CSR arrays of Aᵀ; transposing that
        // CSR yields A in CSR form.
        let t = CsrMatrix::from_parts(
            self.ncols,
            self.nrows,
            self.col_ptr.clone(),
            self.row_idx.clone(),
            self.vals.clone(),
        )
        .expect("CSC invariants imply a valid transpose CSR");
        t.transpose()
    }

    /// Converts to a dense row-major buffer (tests / tiny matrices only).
    pub fn to_dense(&self) -> Vec<T>
    where
        T: Default,
    {
        let mut dense = vec![T::default(); self.nrows * self.ncols];
        for j in 0..self.ncols {
            let (rows, vals) = self.col(j);
            for (&r, &v) in rows.iter().zip(vals) {
                dense[r as usize * self.ncols + j] = v;
            }
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 1, 4.0);
        CscMatrix::from_coo(&coo)
    }

    #[test]
    fn from_coo_builds_expected_structure() {
        let m = sample();
        assert_eq!(m.col_ptr(), &[0, 2, 3, 4]);
        assert_eq!(m.row_idx(), &[0, 2, 2, 0]);
        assert_eq!(m.values(), &[1.0, 3.0, 4.0, 2.0]);
    }

    #[test]
    fn col_access() {
        let m = sample();
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 3.0]);
        assert_eq!(m.col_nnz(1), 1);
    }

    #[test]
    fn csr_roundtrip_preserves_matrix() {
        let m = sample();
        let back = m.to_csr().to_csc();
        assert_eq!(back, m);
    }

    #[test]
    fn from_parts_validates() {
        let e = CscMatrix::<f64>::from_parts(2, 2, vec![0, 1], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::MalformedPointers { .. })));

        let e = CscMatrix::<f64>::from_parts(2, 1, vec![0, 1], vec![9], vec![1.0]);
        assert!(matches!(e, Err(SparseError::IndexOutOfBounds { .. })));

        let e = CscMatrix::<f64>::from_parts(3, 1, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::MalformedPointers { .. })));
    }

    #[test]
    fn dense_matches_csr_dense() {
        let m = sample();
        assert_eq!(m.to_dense(), m.to_csr().to_dense());
    }
}
