//! Conjugate gradient on the tiled format: solves a 2D Poisson problem
//! with TileSpMV as the matrix-vector engine.
//!
//! Iterative solvers are the classic consumer of fast SpMV; running one on
//! the same `TileMatrix` the SpMSpV kernels use shows the storage serving
//! both dense-vector and sparse-vector workloads (the design point of the
//! tile format family).
//!
//! ```text
//! cargo run --release --example conjugate_gradient
//! ```

use tilespmspv::baselines::tile_spmv;
use tilespmspv::prelude::*;
use tilespmspv::sparse::gen::grid2d;

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn main() {
    // The 2D Laplacian on a 120x120 grid, shifted to be positive definite.
    let side = 120;
    let n = side * side;
    let mut coo = grid2d(side, side);
    for i in 0..n {
        coo.push(i, i, 0.01); // diagonal shift: strictly PD
    }
    let a = coo.to_csr();
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    println!(
        "system: {n} unknowns, {} nonzeros, {} tiles ({} dense)",
        a.nnz(),
        tiled.num_tiles(),
        tiled.dense_tiles()
    );

    // Manufactured solution with structure across the grid (a constant
    // vector is an eigenvector of the shifted Laplacian and would converge
    // in one step).
    let x_star: Vec<f64> = (0..n)
        .map(|i| {
            let (gx, gy) = (i % side, i / side);
            1.0 + (gx as f64 * 0.13).sin() + (gy as f64 * 0.07).cos()
        })
        .collect();
    let (b, _) = tile_spmv(&tiled, &x_star);

    // Conjugate gradient.
    let mut x = vec![0.0f64; n];
    let mut r = b;
    let mut p = r.clone();
    let mut rs = dot(&r, &r);
    let b_norm = rs.sqrt();
    let mut iters = 0;
    while rs.sqrt() / b_norm > 1e-10 && iters < 2 * n {
        let (ap, _) = tile_spmv(&tiled, &p);
        let alpha = rs / dot(&p, &ap);
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rs_new = dot(&r, &r);
        let beta = rs_new / rs;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rs = rs_new;
        iters += 1;
    }

    let err = x
        .iter()
        .zip(&x_star)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("CG converged in {iters} iterations; max |x - x*| = {err:.3e}");
    assert!(err < 1e-6, "CG must recover the manufactured solution");
}
