//! Figure 12 bench: TileBFS against the Enterprise-style BFS on the six
//! matrices of the Enterprise comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsv_baselines::enterprise_bfs;
use tsv_bench::workloads::bfs_source;
use tsv_core::bfs::{tile_bfs, BfsOptions, TileBfsGraph};
use tsv_sparse::suite::{enterprise_set, SuiteScale};

fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for e in enterprise_set(SuiteScale::Tiny) {
        let a = e.matrix;
        let src = bfs_source(&a);
        let g = TileBfsGraph::from_csr(&a).unwrap();

        group.bench_with_input(BenchmarkId::new("TileBFS", e.name), &e.name, |b, _| {
            b.iter(|| black_box(tile_bfs(&g, src, BfsOptions::default()).unwrap()));
        });
        group.bench_with_input(BenchmarkId::new("Enterprise", e.name), &e.name, |b, _| {
            b.iter(|| black_box(enterprise_bfs(&a, src).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
