#!/usr/bin/env bash
# Local CI: the same gate the GitHub workflow runs.
# Requires a reachable crates.io registry to resolve the (few) external
# dependencies (rand, rayon, proptest, criterion).
set -euo pipefail
cd "$(dirname "$0")"

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace
cargo test -q --workspace
