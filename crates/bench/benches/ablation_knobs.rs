//! Ablation benches for the design knobs DESIGN.md calls out:
//! tile size (16/32/64), the very-sparse extraction threshold, and the
//! SpMSpV kernel choice (row vs. column form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsv_core::spmspv::{tile_spmspv_with, KernelChoice, SpMSpVOptions};
use tsv_core::tile::{TileConfig, TileMatrix, TileSize};
use tsv_sparse::gen::random_sparse_vector;
use tsv_sparse::suite::{by_name, SuiteScale};

fn bench_tile_size(c: &mut Criterion) {
    let a = by_name("cant", SuiteScale::Tiny).unwrap().matrix;
    let x = random_sparse_vector(a.ncols(), 0.01, 1);
    let mut group = c.benchmark_group("ablation/tile-size");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for ts in TileSize::all() {
        let tiled = TileMatrix::from_csr(&a, TileConfig::with_size(ts)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(ts), &ts, |b, _| {
            b.iter(|| black_box(tsv_core::spmspv::tile_spmspv(&tiled, &x).unwrap()));
        });
    }
    group.finish();
}

fn bench_extraction_threshold(c: &mut Criterion) {
    // Power-law structure produces many near-empty tiles, the case the
    // extraction path exists for (the paper's cryg10000 example).
    let a = by_name("in-2004", SuiteScale::Tiny).unwrap().matrix;
    let x = random_sparse_vector(a.ncols(), 0.01, 1);
    let mut group = c.benchmark_group("ablation/extract-threshold");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for threshold in [0usize, 1, 2, 4, 8] {
        let cfg = TileConfig {
            tile_size: TileSize::S16,
            extract_threshold: threshold,
            ..Default::default()
        };
        let tiled = TileMatrix::from_csr(&a, cfg).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, _| b.iter(|| black_box(tsv_core::spmspv::tile_spmspv(&tiled, &x).unwrap())),
        );
    }
    group.finish();
}

fn bench_kernel_choice(c: &mut Criterion) {
    let a = by_name("cant", SuiteScale::Tiny).unwrap().matrix;
    let tiled = TileMatrix::from_csr(&a, TileConfig::default()).unwrap();
    let mut group = c.benchmark_group("ablation/kernel-choice");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for sp in [0.1, 0.001] {
        let x = random_sparse_vector(a.ncols(), sp, 1);
        for (label, choice) in [
            ("row", KernelChoice::RowTile),
            ("col", KernelChoice::ColTile),
        ] {
            let opts = SpMSpVOptions {
                kernel: choice,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(label, sp), &sp, |b, _| {
                b.iter(|| black_box(tile_spmspv_with(&tiled, &x, opts).unwrap()));
            });
        }
    }
    group.finish();
}

fn bench_dense_threshold(c: &mut Criterion) {
    // Full-band FEM structure: the case dense payloads exist for.
    let a = by_name("ML_Geer", SuiteScale::Tiny).unwrap().matrix;
    let x = random_sparse_vector(a.ncols(), 0.05, 1);
    let mut group = c.benchmark_group("ablation/dense-threshold");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for threshold in [2.0f64, 0.9, 0.75, 0.5, 0.25] {
        let cfg = TileConfig {
            dense_threshold: threshold,
            ..Default::default()
        };
        let tiled = TileMatrix::from_csr(&a, cfg).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, _| b.iter(|| black_box(tsv_core::spmspv::tile_spmspv(&tiled, &x).unwrap())),
        );
    }
    group.finish();
}

fn bench_policy_thresholds(c: &mut Criterion) {
    use tsv_core::bfs::{tile_bfs, BfsOptions, PolicyThresholds, TileBfsGraph};
    let a = by_name("in-2004", SuiteScale::Tiny).unwrap().matrix;
    let src = (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap_or(0);
    let g = TileBfsGraph::from_csr(&a).unwrap();
    let mut group = c.benchmark_group("ablation/push-csc-threshold");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for density in [0.001f64, 0.01, 0.1] {
        let opts = BfsOptions {
            thresholds: PolicyThresholds {
                push_csc_density: density,
                ..Default::default()
            },
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(density), &density, |b, _| {
            b.iter(|| black_box(tile_bfs(&g, src, opts).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_tile_size,
    bench_extraction_threshold,
    bench_kernel_choice,
    bench_dense_threshold,
    bench_policy_thresholds
);
criterion_main!(benches);
