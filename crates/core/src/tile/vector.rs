//! The tiled sparse vector of Fig. 3: `x_ptr` + `x_tile`.
//!
//! The vector of length `n` is cut into `⌈n/nt⌉` tiles; empty tiles are
//! dropped and the surviving ones stored densely and contiguously.
//! `x_ptr[t]` is `-1` for an empty tile, otherwise the slot of tile `t` in
//! `x_tile`, so element `i` is found in O(1) as
//! `x_tile[x_ptr[i / nt] * nt + i % nt]`.
//!
//! The layout is generic over the element type so the semiring-generic
//! driver can tile `bool` (OrAnd) or `f64` (PlusTimes/MinPlus) vectors with
//! the same code; padding slots hold the semiring's additive identity
//! (`fill`), which is `0.0` for the numeric case the paper describes.

use tsv_sparse::SparseVector;

/// A sparse vector in the paper's tiled physical layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TiledVector<T = f64> {
    n: usize,
    nt: usize,
    /// Value padding empty slots of stored tiles (and reported for elements
    /// of dropped tiles) — the additive identity of the active semiring.
    fill: T,
    x_ptr: Vec<i32>,
    x_tile: Vec<T>,
    /// Vector-tile indices with `x_ptr[t] >= 0`, in slot order. Kept so a
    /// reusing caller can clear exactly the slots it dirtied.
    active: Vec<u32>,
}

impl<T: Copy + PartialEq + Default> TiledVector<T> {
    /// Builds the tiled layout from a logical sparse vector, padding with
    /// `T::default()` (`0.0` in the numeric case).
    pub fn from_sparse(x: &SparseVector<T>, nt: usize) -> Self {
        Self::from_sparse_filled(x, nt, T::default())
    }

    /// Builds the tiled layout with an explicit padding value — the
    /// additive identity of the semiring the kernel will run under (e.g.
    /// `+∞` for MinPlus).
    pub fn from_sparse_filled(x: &SparseVector<T>, nt: usize, fill: T) -> Self {
        assert!(nt > 0, "tile length must be positive");
        let n = x.len();
        let mut out = Self {
            n,
            nt,
            fill,
            x_ptr: vec![-1i32; n.div_ceil(nt)],
            x_tile: Vec::new(),
            active: Vec::new(),
        };
        out.refill(x, fill);
        out
    }

    /// An empty tiled vector of logical length `n`.
    pub fn zeros(n: usize, nt: usize) -> Self {
        assert!(nt > 0);
        Self {
            n,
            nt,
            fill: T::default(),
            x_ptr: vec![-1; n.div_ceil(nt)],
            x_tile: Vec::new(),
            active: Vec::new(),
        }
    }

    /// Re-tiles `x` in place, reusing the allocations of a previous call.
    ///
    /// Only the tiles dirtied by the previous contents are reset (work
    /// scales with the number of active tiles, not `n/nt`), and `x_tile`
    /// keeps its capacity, so steady-state iterative use allocates nothing
    /// once the buffers have grown to their working size.
    pub fn refill(&mut self, x: &SparseVector<T>, fill: T) {
        assert_eq!(
            x.len(),
            self.n,
            "refill requires a vector of the same length"
        );
        for &t in &self.active {
            self.x_ptr[t as usize] = -1;
        }
        self.active.clear();
        self.fill = fill;

        // First pass: mark and enumerate non-empty tiles in order (Fig. 3:
        // "the rest tiles are marked as 0, 1, 2, ...").
        let nt = self.nt;
        let mut slots = 0i32;
        for &i in x.indices() {
            let t = i as usize / nt;
            if self.x_ptr[t] < 0 {
                self.x_ptr[t] = slots;
                slots += 1;
                self.active.push(t as u32);
            }
        }

        // Second pass: scatter values into their padded tile payloads.
        self.x_tile.clear();
        self.x_tile.resize(slots as usize * nt, fill);
        for (i, v) in x.iter() {
            let slot = self.x_ptr[i / nt];
            debug_assert!(slot >= 0);
            self.x_tile[slot as usize * nt + i % nt] = v;
        }
    }

    /// Logical vector length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Tile edge length `nt`.
    pub fn nt(&self) -> usize {
        self.nt
    }

    /// Number of vector tiles (`⌈n/nt⌉`).
    pub fn n_tiles(&self) -> usize {
        self.x_ptr.len()
    }

    /// Number of non-empty tiles actually stored.
    pub fn stored_tiles(&self) -> usize {
        self.x_tile.len() / self.nt
    }

    /// The padding value of empty slots (the semiring's additive identity).
    pub fn fill(&self) -> T {
        self.fill
    }

    /// The tile index array (`-1` marks an empty tile).
    pub fn x_ptr(&self) -> &[i32] {
        &self.x_ptr
    }

    /// The non-empty vector-tile indices in slot order — ascending, since
    /// tiles are enumerated over the sorted nonzero indices. This is the
    /// sparse tile list the vector-driven kernel launches one warp per
    /// entry of, available without a scan over `x_ptr`.
    pub fn active_tiles(&self) -> &[u32] {
        &self.active
    }

    /// The dense payloads of the non-empty tiles, `nt` values each.
    pub fn x_tile(&self) -> &[T] {
        &self.x_tile
    }

    /// The payload of vector tile `t`, or `None` when the tile is empty —
    /// the O(1) lookup the TileSpMSpV kernel performs per matrix tile.
    #[inline]
    pub fn tile(&self, t: usize) -> Option<&[T]> {
        let slot = self.x_ptr[t];
        if slot < 0 {
            None
        } else {
            let s = slot as usize * self.nt;
            Some(&self.x_tile[s..s + self.nt])
        }
    }

    /// O(1) element access (implicit padding values included).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        assert!(i < self.n, "index {i} out of bounds for length {}", self.n);
        match self.x_ptr[i / self.nt] {
            s if s < 0 => self.fill,
            s => self.x_tile[s as usize * self.nt + i % self.nt],
        }
    }

    /// Converts back to the logical compressed form, dropping padding
    /// values.
    pub fn to_sparse(&self) -> SparseVector<T> {
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for (t, &slot) in self.x_ptr.iter().enumerate() {
            if slot < 0 {
                continue;
            }
            let base = t * self.nt;
            let payload = &self.x_tile[slot as usize * self.nt..(slot as usize + 1) * self.nt];
            for (k, &v) in payload.iter().enumerate() {
                if v != self.fill && base + k < self.n {
                    indices.push((base + k) as u32);
                    vals.push(v);
                }
            }
        }
        SparseVector::from_parts(self.n, indices, vals)
            .expect("tile order yields sorted unique indices")
    }

    /// Reserves payload capacity for the worst case (every tile active), so
    /// no subsequent [`refill`](Self::refill) can reallocate — engines call
    /// this once at preparation time.
    pub fn reserve_full(&mut self) {
        let full = self.x_ptr.len() * self.nt;
        if self.x_tile.capacity() < full {
            let additional = full - self.x_tile.len();
            self.x_tile.reserve(additional);
        }
        if self.active.capacity() < self.x_ptr.len() {
            let additional = self.x_ptr.len() - self.active.len();
            self.active.reserve(additional);
        }
    }

    /// `(pointer, capacity)` of the payload buffer — lets reuse tests
    /// assert that a [`refill`](Self::refill) neither moved nor regrew the
    /// allocation.
    pub fn payload_fingerprint(&self) -> (usize, usize) {
        (self.x_tile.as_ptr() as usize, self.x_tile.capacity())
    }

    /// Fraction of vector tiles that are non-empty — the quantity that
    /// bounds TileSpMSpV's work.
    pub fn tile_occupancy(&self) -> f64 {
        if self.x_ptr.is_empty() {
            0.0
        } else {
            self.stored_tiles() as f64 / self.n_tiles() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The example of Fig. 3: length 16, nt = 4, five nonzeros placed so
    /// tiles 1 and 3 are empty.
    fn figure3_vector() -> SparseVector<f64> {
        SparseVector::from_entries(16, vec![(0, 1.0), (2, 2.0), (3, 3.0), (8, 4.0), (10, 5.0)])
            .unwrap()
    }

    #[test]
    fn figure3_layout() {
        let t = TiledVector::from_sparse(&figure3_vector(), 4);
        assert_eq!(t.x_ptr(), &[0, -1, 1, -1]);
        assert_eq!(t.stored_tiles(), 2);
        assert_eq!(t.x_tile(), &[1.0, 0.0, 2.0, 3.0, 4.0, 0.0, 5.0, 0.0]);
    }

    #[test]
    fn o1_lookup_formula() {
        let t = TiledVector::from_sparse(&figure3_vector(), 4);
        for i in 0..16 {
            let expect = figure3_vector().get(i).unwrap_or(0.0);
            assert_eq!(t.get(i), expect, "element {i}");
        }
    }

    #[test]
    fn tile_access() {
        let t = TiledVector::from_sparse(&figure3_vector(), 4);
        assert_eq!(t.tile(0), Some(&[1.0, 0.0, 2.0, 3.0][..]));
        assert_eq!(t.tile(1), None);
        assert_eq!(t.tile(2), Some(&[4.0, 0.0, 5.0, 0.0][..]));
    }

    #[test]
    fn roundtrip_to_sparse() {
        let x = figure3_vector();
        let t = TiledVector::from_sparse(&x, 4);
        assert_eq!(t.to_sparse(), x);
    }

    #[test]
    fn ragged_tail_tile() {
        // Length 10 with nt = 4: three tiles, last covers only 2 elements.
        let x = SparseVector::from_entries(10, vec![(9, 7.0)]).unwrap();
        let t = TiledVector::from_sparse(&x, 4);
        assert_eq!(t.n_tiles(), 3);
        assert_eq!(t.x_ptr(), &[-1, -1, 0]);
        assert_eq!(t.get(9), 7.0);
        assert_eq!(t.to_sparse(), x);
    }

    #[test]
    fn zeros_vector() {
        let t = TiledVector::<f64>::zeros(20, 8);
        assert_eq!(t.n_tiles(), 3);
        assert_eq!(t.stored_tiles(), 0);
        assert_eq!(t.get(13), 0.0);
        assert_eq!(t.to_sparse().nnz(), 0);
        assert_eq!(t.tile_occupancy(), 0.0);
    }

    #[test]
    fn occupancy_fraction() {
        let t = TiledVector::from_sparse(&figure3_vector(), 4);
        assert!((t.tile_occupancy() - 0.5).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let t = TiledVector::<f64>::zeros(10, 4);
        t.get(10);
    }

    #[test]
    fn custom_fill_pads_with_identity() {
        // MinPlus tiling pads with +∞ so min-reductions ignore the padding.
        let x = SparseVector::from_entries(8, vec![(1, 2.0), (6, 3.0)]).unwrap();
        let t = TiledVector::from_sparse_filled(&x, 4, f64::INFINITY);
        assert_eq!(t.get(0), f64::INFINITY);
        assert_eq!(t.get(1), 2.0);
        assert_eq!(
            t.tile(0),
            Some(&[f64::INFINITY, 2.0, f64::INFINITY, f64::INFINITY][..])
        );
        // to_sparse drops the padding, not real values.
        assert_eq!(t.to_sparse(), x);
    }

    #[test]
    fn refill_reuses_allocations_and_resets_state() {
        let dense = SparseVector::from_entries(
            16,
            (0..16).map(|i| (i, f64::from(i) + 1.0)).collect::<Vec<_>>(),
        )
        .unwrap();
        let mut t = TiledVector::from_sparse(&dense, 4);
        let cap_tile = t.x_tile.capacity();
        let cap_active = t.active.capacity();

        // Refill with a much sparser vector: previously active tiles must
        // be cleared, and no buffer may reallocate.
        let sparse = SparseVector::from_entries(16, vec![(9, 7.0)]).unwrap();
        t.refill(&sparse, 0.0);
        assert_eq!(t.x_ptr(), &[-1, -1, 0, -1]);
        assert_eq!(t.stored_tiles(), 1);
        assert_eq!(t.to_sparse(), sparse);
        assert_eq!(t.x_tile.capacity(), cap_tile);
        assert_eq!(t.active.capacity(), cap_active);

        // And refilling matches a fresh build exactly.
        t.refill(&dense, 0.0);
        assert_eq!(t, TiledVector::from_sparse(&dense, 4));
    }

    #[test]
    fn bool_vector_tiles() {
        let x = SparseVector::from_entries(10, vec![(2, true), (8, true)]).unwrap();
        let t = TiledVector::from_sparse(&x, 4);
        assert!(t.get(2));
        assert!(!t.get(3));
        assert_eq!(t.to_sparse(), x);
    }
}
