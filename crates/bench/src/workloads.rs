//! Workload definitions shared by the benches and the `repro` binary.

use tsv_sparse::gen::{banded, geometric_graph, rmat, RmatConfig};
use tsv_sparse::CsrMatrix;

/// The four vector sparsities of Figure 6.
pub fn fig6_sparsities() -> [f64; 4] {
    [0.1, 0.01, 0.001, 0.0001]
}

/// One point of the Figure 7 size sweep.
pub struct Fig7Point {
    /// Graph family label.
    pub family: &'static str,
    /// The generated matrix.
    pub matrix: CsrMatrix<f64>,
}

/// The Figure 7 sweep: three graph families at geometrically increasing
/// sizes, covering the x-axis (matrix size) of the figure. `max_scale`
/// bounds the largest graph (`n ≈ 2^max_scale`).
pub fn fig7_sweep(max_scale: u32) -> Vec<Fig7Point> {
    let mut points = Vec::new();
    let mut scale = 9u32;
    while scale <= max_scale {
        let n = 1usize << scale;
        points.push(Fig7Point {
            family: "banded",
            matrix: banded(n, 16, 0.8, u64::from(scale)).to_csr(),
        });
        points.push(Fig7Point {
            family: "geometric",
            matrix: geometric_graph(n, 4.0, u64::from(scale)).to_csr(),
        });
        points.push(Fig7Point {
            family: "rmat",
            matrix: rmat(RmatConfig::new(scale, 8), u64::from(scale)).to_csr(),
        });
        scale += 2;
    }
    points
}

/// Deterministic BFS source: the first vertex with outgoing edges
/// (the paper traverses from fixed sources; isolated vertices would make
/// the run trivial).
pub fn bfs_source(a: &CsrMatrix<f64>) -> usize {
    (0..a.nrows()).find(|&v| a.row_nnz(v) > 0).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsities_match_figure_6() {
        assert_eq!(fig6_sparsities(), [0.1, 0.01, 0.001, 0.0001]);
    }

    #[test]
    fn sweep_produces_increasing_sizes() {
        let sweep = fig7_sweep(11);
        assert_eq!(sweep.len(), 6); // scales 9, 11 × 3 families
        assert!(sweep.iter().all(|p| p.matrix.nnz() > 0));
    }

    #[test]
    fn source_has_outgoing_edges() {
        let sweep = fig7_sweep(9);
        for p in &sweep {
            let s = bfs_source(&p.matrix);
            assert!(p.matrix.row_nnz(s) > 0, "{}", p.family);
        }
    }
}
