//! Sparse matrix substrate for the TileSpMSpV reproduction.
//!
//! This crate provides everything the tiled algorithms in `tsv-core` and the
//! comparators in `tsv-baselines` are built on:
//!
//! * the classic triplet/compressed formats ([`CooMatrix`], [`CsrMatrix`],
//!   [`CscMatrix`]) with validated constructors and lossless conversions,
//! * a compressed sparse vector type ([`SparseVector`]) with the
//!   element-wise merge operations GraphBLAS composes around SpMSpV
//!   ([`spvec_ops`]),
//! * MatrixMarket I/O ([`io`]) so the real SuiteSparse collection can be used
//!   when available,
//! * deterministic synthetic matrix generators ([`gen`]) spanning the
//!   structure classes of the paper's evaluation set (banded FEM matrices,
//!   meshes, road-like geometric graphs, RMAT power-law graphs, uniform
//!   random), and named scaled-down analogs of the paper's representative
//!   matrices ([`suite`]),
//! * simple serial reference kernels ([`reference`]) used as correctness
//!   oracles by every parallel implementation in the workspace.
//!
//! All indices stored inside matrices are `u32` (the collection the paper
//! evaluates fits comfortably), while matrix dimensions use `usize`.

#![forbid(unsafe_code)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod gen;
pub mod io;
pub mod reference;
pub mod spvec;
pub mod spvec_ops;
pub mod suite;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use spvec::SparseVector;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
