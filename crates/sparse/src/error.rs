//! Error type shared by the sparse substrate.

use std::fmt;

/// Errors produced while constructing, converting, or parsing sparse data.
#[derive(Debug)]
pub enum SparseError {
    /// An entry coordinate lies outside the declared matrix shape.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Number of rows in the matrix.
        nrows: usize,
        /// Number of columns in the matrix.
        ncols: usize,
    },
    /// Parallel arrays (rows/cols/vals or ptr/idx/vals) disagree in length.
    LengthMismatch {
        /// Human-readable description of which arrays disagree.
        what: &'static str,
    },
    /// An operation required operands of compatible shapes and got none.
    DimensionMismatch {
        /// Description of the operation.
        op: &'static str,
        /// Shape implied by the left operand.
        expected: usize,
        /// Shape found on the right operand.
        found: usize,
    },
    /// A compressed pointer array is not monotonically non-decreasing or has
    /// the wrong first/last element.
    MalformedPointers {
        /// Description of the violated invariant.
        what: String,
    },
    /// The operation requires a square matrix.
    NotSquare {
        /// Number of rows.
        nrows: usize,
        /// Number of columns.
        ncols: usize,
    },
    /// I/O failure while reading or writing a matrix file.
    Io(std::io::Error),
    /// A MatrixMarket file violated the format.
    Parse {
        /// 1-based line number where parsing failed.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A kernel launch plan failed static verification — the condition a
    /// grid launch primitive would otherwise assert at run time (zero or
    /// non-dividing chunk width, unsorted or out-of-range work list),
    /// surfaced before any kernel starts.
    Plan {
        /// Description of the rejected plan.
        what: String,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::IndexOutOfBounds {
                row,
                col,
                nrows,
                ncols,
            } => write!(
                f,
                "entry ({row}, {col}) is outside the {nrows}x{ncols} matrix"
            ),
            Self::LengthMismatch { what } => {
                write!(f, "parallel array length mismatch: {what}")
            }
            Self::DimensionMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "dimension mismatch in {op}: expected {expected}, found {found}"
            ),
            Self::MalformedPointers { what } => {
                write!(f, "malformed compressed pointer array: {what}")
            }
            Self::NotSquare { nrows, ncols } => {
                write!(f, "operation requires a square matrix, got {nrows}x{ncols}")
            }
            Self::Io(e) => write!(f, "I/O error: {e}"),
            Self::Parse { line, msg } => {
                write!(f, "MatrixMarket parse error at line {line}: {msg}")
            }
            Self::Plan { what } => {
                write!(f, "launch plan rejected by static verifier: {what}")
            }
        }
    }
}

impl std::error::Error for SparseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SparseError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SparseError::IndexOutOfBounds {
            row: 7,
            col: 3,
            nrows: 4,
            ncols: 4,
        };
        let s = e.to_string();
        assert!(s.contains("(7, 3)"));
        assert!(s.contains("4x4"));

        let e = SparseError::DimensionMismatch {
            op: "spmv",
            expected: 10,
            found: 12,
        };
        assert!(e.to_string().contains("spmv"));

        let e = SparseError::NotSquare { nrows: 3, ncols: 5 };
        assert!(e.to_string().contains("3x5"));

        let e = SparseError::Plan {
            what: "spmspv/row-tile: output length 25 is not a multiple of chunk_len 10".into(),
        };
        let s = e.to_string();
        assert!(s.contains("static verifier"), "{s}");
        assert!(s.contains("spmspv/row-tile"), "{s}");
    }

    #[test]
    fn io_error_converts_and_sources() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: SparseError = io.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }
}
