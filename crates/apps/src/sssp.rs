//! Single-source shortest paths by (min, +) SpMSpV.
//!
//! Sparse-frontier Bellman-Ford: each round relaxes only the vertices
//! whose distance improved last round, via one tiled SpMSpV over the
//! tropical semiring run through a [`SpMSpVEngine`], so the tiled
//! operator and all kernel scratch are built once and reused across
//! rounds. Terminates after at most `n` rounds on graphs with
//! non-negative weights.

use std::sync::Arc;
use tsv_core::exec::SpMSpVEngine;
use tsv_core::semiring::MinPlus;
use tsv_core::tile::TileConfig;
use tsv_simt::trace::{self, IterationInfo, Tracer};
use tsv_sparse::{CsrMatrix, SparseError, SparseVector};

/// Shortest distances from `source` over a non-negatively weighted
/// digraph (edge `u → v` of weight `w` is entry `(u, v) = w`). Unreachable
/// vertices get `f64::INFINITY`.
///
/// ```
/// use tsv_apps::sssp;
/// use tsv_sparse::CooMatrix;
///
/// let mut coo = CooMatrix::new(3, 3);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 2, 2.0);
/// coo.push(0, 2, 10.0);
/// let d = sssp(&coo.to_csr(), 0).unwrap();
/// assert_eq!(d, vec![0.0, 1.0, 3.0]);
/// ```
pub fn sssp(a: &CsrMatrix<f64>, source: usize) -> Result<Vec<f64>, SparseError> {
    sssp_traced(a, source, None)
}

/// [`sssp`] with run telemetry: the engine's SpMSpV launches and a
/// per-round relaxation record (frontier size, improved count, vertices
/// still at `+inf`) land on `tracer` when one is attached and enabled.
pub fn sssp_traced(
    a: &CsrMatrix<f64>,
    source: usize,
    tracer: Option<Arc<Tracer>>,
) -> Result<Vec<f64>, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    if source >= a.nrows() {
        return Err(SparseError::IndexOutOfBounds {
            row: source,
            col: 0,
            nrows: a.nrows(),
            ncols: 1,
        });
    }
    debug_assert!(
        a.values().iter().all(|&w| w >= 0.0),
        "sssp requires non-negative weights"
    );
    let n = a.nrows();
    // SpMSpV pushes along columns; transpose so frontier vertices push
    // along their out-edges. `from_csr` disables dense tiles because the
    // tropical zero (+inf) differs from the structural default.
    let mut engine =
        SpMSpVEngine::<MinPlus>::from_csr_traced(&a.transpose(), TileConfig::default(), tracer)?;
    let tr = engine.tracer().cloned();
    let tr = tr.as_deref();

    let mut dist = vec![f64::INFINITY; n];
    dist[source] = 0.0;
    let mut frontier = SparseVector::from_entries(n, vec![(source as u32, 0.0)])?;
    let mut unvisited = n - 1;
    // Round output, recycled through the engine: `multiply_into` swaps the
    // result into `candidates` and keeps the displaced buffers as its next
    // staging area, so the loop ping-pongs between two allocations instead
    // of growing a fresh vector every relaxation.
    let mut candidates = SparseVector::zeros(n);

    for round in 0..n {
        if frontier.nnz() == 0 {
            break;
        }
        let t0 = trace::start(tr);
        let frontier_size = frontier.nnz();
        engine.multiply_into(&frontier, &mut candidates)?;
        let mut improved = Vec::new();
        for (v, d) in candidates.iter() {
            if d < dist[v] {
                if dist[v].is_infinite() {
                    unvisited -= 1;
                }
                dist[v] = d;
                improved.push((v as u32, d));
            }
        }
        let discovered = improved.len();
        frontier = SparseVector::from_entries(n, improved)?;
        trace::iteration(
            tr,
            "sssp/round",
            None,
            IterationInfo {
                level: round as u32 + 1,
                frontier: frontier_size,
                discovered,
                unvisited,
                density: frontier_size as f64 / n as f64,
            },
            t0,
        );
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::CooMatrix;

    fn weighted(n: usize, edges: &[(usize, usize, f64)]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v, w) in edges {
            coo.push(u, v, w);
        }
        coo.to_csr()
    }

    #[test]
    fn picks_the_cheaper_route() {
        // 0 -> 2 direct costs 10; 0 -> 1 -> 2 costs 3.
        let a = weighted(3, &[(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)]);
        let d = sssp(&a, 0).unwrap();
        assert_eq!(d, vec![0.0, 1.0, 3.0]);
    }

    #[test]
    fn respects_edge_direction() {
        let a = weighted(3, &[(0, 1, 1.0), (2, 1, 1.0)]);
        let d = sssp(&a, 0).unwrap();
        assert_eq!(d[1], 1.0);
        assert!(d[2].is_infinite(), "2 is not reachable from 0");
    }

    #[test]
    fn unit_weights_reduce_to_bfs_levels() {
        let pattern = tsv_sparse::gen::geometric_graph(300, 4.0, 3).to_csr();
        let d = sssp(&pattern, 0).unwrap();
        let levels = tsv_sparse::reference::bfs_levels(&pattern, 0).unwrap();
        for v in 0..300 {
            if levels[v] >= 0 {
                assert_eq!(d[v], f64::from(levels[v]), "vertex {v}");
            } else {
                assert!(d[v].is_infinite());
            }
        }
    }

    #[test]
    fn later_rounds_can_improve_earlier_distances() {
        // The hop-count-shorter path is more expensive; Bellman-Ford must
        // settle on the cheaper long route.
        let a = weighted(4, &[(0, 3, 10.0), (0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let d = sssp(&a, 0).unwrap();
        assert_eq!(d[3], 3.0);
    }

    #[test]
    fn source_validation() {
        let a = weighted(2, &[(0, 1, 1.0)]);
        assert!(sssp(&a, 5).is_err());
        let mut rect = CooMatrix::new(2, 3);
        rect.push(0, 2, 1.0);
        assert!(sssp(&rect.to_csr(), 0).is_err());
    }
}
