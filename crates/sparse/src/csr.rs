//! Compressed Sparse Row matrix.

use crate::coo::CooMatrix;
use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::Result;

/// A sparse matrix in CSR form: `row_ptr` of length `nrows + 1` delimits the
/// column-index/value run of each row.
///
/// Invariants (checked by [`CsrMatrix::from_parts`]):
/// * `row_ptr[0] == 0`, `row_ptr[nrows] == col_idx.len() == vals.len()`,
/// * `row_ptr` is non-decreasing,
/// * every column index is `< ncols`.
///
/// Column indices within a row are kept sorted by every constructor in this
/// crate; [`CsrMatrix::from_parts`] verifies it so downstream binary searches
/// are sound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrMatrix<T> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Copy> CsrMatrix<T> {
    /// Builds a CSR matrix from raw arrays, validating every invariant.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<T>,
    ) -> Result<Self> {
        if row_ptr.len() != nrows + 1 {
            return Err(SparseError::MalformedPointers {
                what: format!(
                    "row_ptr has length {}, expected nrows + 1 = {}",
                    row_ptr.len(),
                    nrows + 1
                ),
            });
        }
        if col_idx.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                what: "col_idx/vals of a CSR matrix",
            });
        }
        if row_ptr[0] != 0 || *row_ptr.last().expect("len >= 1") != col_idx.len() {
            return Err(SparseError::MalformedPointers {
                what: "row_ptr must start at 0 and end at nnz".to_string(),
            });
        }
        for w in row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::MalformedPointers {
                    what: "row_ptr must be non-decreasing".to_string(),
                });
            }
        }
        for r in 0..nrows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                if w[1] <= w[0] {
                    return Err(SparseError::MalformedPointers {
                        what: format!("row {r} has unsorted or duplicate column indices"),
                    });
                }
            }
            if let Some(&c) = row.last() {
                if c as usize >= ncols {
                    return Err(SparseError::IndexOutOfBounds {
                        row: r,
                        col: c as usize,
                        nrows,
                        ncols,
                    });
                }
            }
        }
        Ok(Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        })
    }

    /// Converts from COO, sorting row-major and summing duplicates.
    pub fn from_coo(coo: &CooMatrix<T>) -> Self
    where
        T: std::ops::Add<Output = T>,
    {
        let mut sorted = coo.clone();
        sorted.sum_duplicates();
        let nrows = sorted.nrows();
        let mut row_ptr = vec![0usize; nrows + 1];
        for &r in sorted.row_indices() {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Self {
            nrows,
            ncols: sorted.ncols(),
            row_ptr,
            col_idx: sorted.col_indices().to_vec(),
            vals: sorted.values().to_vec(),
        }
    }

    /// An empty (all-zero) matrix of the given shape.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// The row pointer array (length `nrows + 1`).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// The column index array (length `nnz`).
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// The value array (length `nnz`).
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Column indices and values of row `i`.
    pub fn row(&self, i: usize) -> (&[u32], &[T]) {
        let (s, e) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[s..e], &self.vals[s..e])
    }

    /// Number of stored entries in row `i` (the out-degree for adjacency
    /// matrices).
    pub fn row_nnz(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Looks up a single entry (binary search within the row).
    pub fn get(&self, i: usize, j: usize) -> Option<T> {
        let (cols, vals) = self.row(i);
        cols.binary_search(&(j as u32)).ok().map(|k| vals[k])
    }

    /// Iterates `(row, col, value)` over stored entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.nrows).flat_map(move |r| {
            let (cols, vals) = self.row(r);
            cols.iter()
                .zip(vals)
                .map(move |(&c, &v)| (r, c as usize, v))
        })
    }

    /// Converts to COO triplets.
    pub fn to_coo(&self) -> CooMatrix<T> {
        let mut rows = Vec::with_capacity(self.nnz());
        for r in 0..self.nrows {
            rows.extend(std::iter::repeat_n(r as u32, self.row_nnz(r)));
        }
        CooMatrix::from_triplets(
            self.nrows,
            self.ncols,
            rows,
            self.col_idx.clone(),
            self.vals.clone(),
        )
        .expect("CSR invariants imply valid COO")
    }

    /// Converts to CSC by a counting transpose pass.
    pub fn to_csc(&self) -> CscMatrix<T> {
        let mut col_ptr = vec![0usize; self.ncols + 1];
        for &c in &self.col_idx {
            col_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut next = col_ptr.clone();
        let mut row_idx = vec![0u32; self.nnz()];
        let mut vals = self.vals.clone();
        for r in 0..self.nrows {
            let (cols, rvals) = self.row(r);
            for (&c, &v) in cols.iter().zip(rvals) {
                let slot = next[c as usize];
                row_idx[slot] = r as u32;
                vals[slot] = v;
                next[c as usize] += 1;
            }
        }
        CscMatrix::from_parts_unchecked(self.nrows, self.ncols, col_ptr, row_idx, vals)
    }

    /// Returns `Aᵀ` in CSR form.
    pub fn transpose(&self) -> Self {
        let csc = self.to_csc();
        // A CSC matrix is the CSR of its transpose with roles swapped.
        Self {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr: csc.col_ptr().to_vec(),
            col_idx: csc.row_idx().to_vec(),
            vals: csc.values().to_vec(),
        }
    }

    /// True when the sparsity pattern and values are symmetric (requires a
    /// square matrix).
    pub fn is_symmetric(&self) -> bool
    where
        T: PartialEq,
    {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        t.row_ptr == self.row_ptr && t.col_idx == self.col_idx && t.vals == self.vals
    }

    /// Converts to a dense row-major buffer (tests / tiny matrices only).
    pub fn to_dense(&self) -> Vec<T>
    where
        T: Default,
    {
        let mut dense = vec![T::default(); self.nrows * self.ncols];
        for (r, c, v) in self.iter() {
            dense[r * self.ncols + c] = v;
        }
        dense
    }
}

impl CsrMatrix<f64> {
    /// Makes the pattern symmetric by adding `Aᵀ`'s missing entries (values
    /// are kept where both directions exist; new entries copy the mirrored
    /// value). Used to turn directed generator output into undirected graphs.
    pub fn symmetrize(&self) -> Self {
        let mut coo = self.to_coo();
        for (r, c, v) in self.iter() {
            if r != c && self.get(c, r).is_none() {
                coo.push(c, r, v);
            }
        }
        coo.to_csr()
    }

    /// Removes diagonal entries (self-loops for adjacency matrices).
    pub fn without_diagonal(&self) -> Self {
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz());
        for (r, c, v) in self.iter() {
            if r != c {
                coo.push(r, c, v);
            }
        }
        coo.to_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix<f64> {
        // [1 0 2]
        // [0 0 0]
        // [3 4 0]
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 1.0);
        coo.push(0, 2, 2.0);
        coo.push(2, 0, 3.0);
        coo.push(2, 1, 4.0);
        coo.to_csr()
    }

    #[test]
    fn from_coo_builds_expected_structure() {
        let m = sample();
        assert_eq!(m.row_ptr(), &[0, 2, 2, 4]);
        assert_eq!(m.col_idx(), &[0, 2, 0, 1]);
        assert_eq!(m.values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn row_access_and_get() {
        let m = sample();
        let (cols, vals) = m.row(2);
        assert_eq!(cols, &[0, 1]);
        assert_eq!(vals, &[3.0, 4.0]);
        assert_eq!(m.get(0, 2), Some(2.0));
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.row_nnz(1), 0);
    }

    #[test]
    fn from_parts_rejects_bad_pointers() {
        let e = CsrMatrix::<f64>::from_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::MalformedPointers { .. })));

        let e = CsrMatrix::<f64>::from_parts(2, 2, vec![0, 2, 1], vec![0], vec![1.0]);
        assert!(matches!(e, Err(SparseError::MalformedPointers { .. })));
    }

    #[test]
    fn from_parts_rejects_unsorted_rows() {
        let e = CsrMatrix::<f64>::from_parts(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]);
        assert!(matches!(e, Err(SparseError::MalformedPointers { .. })));
    }

    #[test]
    fn from_parts_rejects_out_of_bounds_column() {
        let e = CsrMatrix::<f64>::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
        assert!(matches!(e, Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn coo_roundtrip_preserves_matrix() {
        let m = sample();
        assert_eq!(m.to_coo().to_csr(), m);
    }

    #[test]
    fn csc_conversion_matches_dense() {
        let m = sample();
        let csc = m.to_csc();
        assert_eq!(csc.to_dense(), m.to_dense());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        let t = m.transpose();
        let d = m.to_dense();
        let td = t.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d[r * 3 + c], td[c * 3 + r]);
            }
        }
    }

    #[test]
    fn symmetrize_produces_symmetric_pattern() {
        let s = sample().symmetrize();
        // Pattern symmetry: every (i, j) has a mirrored (j, i). Values where
        // both directions pre-existed are kept as-is, so only the pattern is
        // guaranteed symmetric.
        for (r, c, _) in s.iter() {
            assert!(s.get(c, r).is_some(), "missing mirror of ({r},{c})");
        }
        // (2, 1) existed only one way; its mirror copies the value.
        assert_eq!(s.get(1, 2), Some(4.0));
        // Both (0, 2) and (2, 0) pre-existed with different values: kept.
        assert_eq!(s.get(0, 2), Some(2.0));
        assert_eq!(s.get(2, 0), Some(3.0));
    }

    #[test]
    fn without_diagonal_strips_self_loops() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 1, 2.0);
        let m = coo.to_csr().without_diagonal();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), None);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::<f64>::zeros(4, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.nrows(), 4);
        assert_eq!(z.ncols(), 7);
        assert_eq!(z.iter().count(), 0);
    }
}
