//! Triangle counting by masked row intersection.
//!
//! The GraphBLAS formulation counts `tri = Σ (L ⊕.⊗ L) .* L` over the
//! lower-triangular pattern: each edge `(u, v)` with `u > v` contributes
//! the size of the intersection of the *preceding* neighborhoods. The row
//! merge below is that masked product, parallel over vertices.

use rayon::prelude::*;
use tsv_sparse::{CsrMatrix, SparseError};

/// Counts the triangles of an undirected graph (each triangle once).
pub fn count_triangles(a: &CsrMatrix<f64>) -> Result<u64, SparseError> {
    if a.nrows() != a.ncols() {
        return Err(SparseError::NotSquare {
            nrows: a.nrows(),
            ncols: a.ncols(),
        });
    }
    let n = a.nrows();
    let total: u64 = (0..n)
        .into_par_iter()
        .map(|u| {
            // L row of u: neighbors below u.
            let (u_nbrs, _) = a.row(u);
            let u_low: &[u32] = cut_below(u_nbrs, u as u32);
            let mut count = 0u64;
            for &v in u_low {
                // Intersect u's and v's lower neighborhoods below v.
                let (v_nbrs, _) = a.row(v as usize);
                let v_low = cut_below(v_nbrs, v);
                let u_lower_than_v = cut_below(u_low, v);
                count += sorted_intersection(u_lower_than_v, v_low);
            }
            count
        })
        .sum();
    Ok(total)
}

/// Prefix of a sorted slice strictly below `limit`.
fn cut_below(sorted: &[u32], limit: u32) -> &[u32] {
    let end = sorted.partition_point(|&x| x < limit);
    &sorted[..end]
}

/// Size of the intersection of two sorted slices.
fn sorted_intersection(a: &[u32], b: &[u32]) -> u64 {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsv_sparse::CooMatrix;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> CsrMatrix<f64> {
        let mut coo = CooMatrix::new(n, n);
        for &(u, v) in edges {
            coo.push(u, v, 1.0);
            coo.push(v, u, 1.0);
        }
        coo.to_csr()
    }

    #[test]
    fn single_triangle() {
        let a = undirected(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_triangles(&a).unwrap(), 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let a = undirected(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_triangles(&a).unwrap(), 0);
    }

    #[test]
    fn complete_graph_counts_n_choose_3() {
        let n = 8;
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        let a = undirected(n, &edges);
        assert_eq!(count_triangles(&a).unwrap(), 56); // C(8,3)
    }

    #[test]
    fn two_triangles_sharing_an_edge() {
        let a = undirected(4, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 3)]);
        assert_eq!(count_triangles(&a).unwrap(), 2);
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        let a = tsv_sparse::gen::geometric_graph(200, 8.0, 3).to_csr();
        let fast = count_triangles(&a).unwrap();
        // Brute force over vertex triples restricted to edges.
        let mut brute = 0u64;
        for u in 0..200usize {
            let (nu, _) = a.row(u);
            for &v in nu.iter().filter(|&&v| (v as usize) > u) {
                let (nv, _) = a.row(v as usize);
                for &w in nv.iter().filter(|&&w| w > v) {
                    if a.get(u, w as usize).is_some() {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(fast, brute);
    }

    #[test]
    fn rejects_non_square() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 2, 1.0);
        assert!(count_triangles(&coo.to_csr()).is_err());
    }
}
