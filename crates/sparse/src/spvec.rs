//! Compressed sparse vector.
//!
//! This is the *logical* sparse vector (sorted index/value pairs). The tiled
//! physical layout the paper introduces (`x_ptr`/`x_tile`, Fig. 3) lives in
//! `tsv-core`; both sides convert through this type.

use crate::error::SparseError;
use crate::Result;

/// A length-`n` sparse vector holding `nnz` explicit entries with strictly
/// increasing indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseVector<T> {
    n: usize,
    indices: Vec<u32>,
    vals: Vec<T>,
}

impl<T: Copy> SparseVector<T> {
    /// An all-zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            indices: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Builds from parallel arrays; indices must be strictly increasing and
    /// in-bounds.
    pub fn from_parts(n: usize, indices: Vec<u32>, vals: Vec<T>) -> Result<Self> {
        if indices.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                what: "indices/vals of a sparse vector",
            });
        }
        for w in indices.windows(2) {
            if w[1] <= w[0] {
                return Err(SparseError::MalformedPointers {
                    what: "sparse vector indices must be strictly increasing".to_string(),
                });
            }
        }
        if let Some(&last) = indices.last() {
            if last as usize >= n {
                return Err(SparseError::IndexOutOfBounds {
                    row: last as usize,
                    col: 0,
                    nrows: n,
                    ncols: 1,
                });
            }
        }
        Ok(Self { n, indices, vals })
    }

    /// Builds from possibly unsorted entries, sorting and rejecting
    /// duplicates.
    pub fn from_entries(n: usize, mut entries: Vec<(u32, T)>) -> Result<Self> {
        entries.sort_by_key(|e| e.0);
        let indices: Vec<u32> = entries.iter().map(|e| e.0).collect();
        let vals: Vec<T> = entries.iter().map(|e| e.1).collect();
        Self::from_parts(n, indices, vals)
    }

    /// Replaces this vector's contents with `(n, indices, vals)` —
    /// validated exactly like [`SparseVector::from_parts`] — and returns
    /// the *previous* buffers for reuse.
    ///
    /// This is the recycling primitive for iterative producers: a caller
    /// that regenerates a vector every round hands the old allocation back
    /// instead of dropping it, so the producer/consumer pair ping-pongs
    /// between two stable allocations. On validation failure the vector is
    /// left unchanged.
    pub fn replace_parts(
        &mut self,
        n: usize,
        indices: Vec<u32>,
        vals: Vec<T>,
    ) -> Result<(Vec<u32>, Vec<T>)> {
        let new = Self::from_parts(n, indices, vals)?;
        let old = std::mem::replace(self, new);
        Ok((old.indices, old.vals))
    }

    /// Logical length of the vector.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of explicit entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `nnz / n`, the quantity the paper's kernel-selection heuristics use.
    pub fn sparsity(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.n as f64
        }
    }

    /// The sorted entry indices.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The entry values, parallel to [`SparseVector::indices`].
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Iterates `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, T)> + '_ {
        self.indices
            .iter()
            .zip(&self.vals)
            .map(|(&i, &v)| (i as usize, v))
    }

    /// Looks up one element (binary search), returning `None` for implicit
    /// zeros.
    pub fn get(&self, i: usize) -> Option<T> {
        self.indices
            .binary_search(&(i as u32))
            .ok()
            .map(|k| self.vals[k])
    }

    /// Expands into a dense buffer of length `n`.
    pub fn to_dense(&self) -> Vec<T>
    where
        T: Default,
    {
        let mut dense = vec![T::default(); self.n];
        for (i, v) in self.iter() {
            dense[i] = v;
        }
        dense
    }
}

impl SparseVector<f64> {
    /// Compresses a dense buffer, keeping nonzero elements.
    pub fn from_dense(dense: &[f64]) -> Self {
        let mut indices = Vec::new();
        let mut vals = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                indices.push(i as u32);
                vals.push(v);
            }
        }
        Self {
            n: dense.len(),
            indices,
            vals,
        }
    }

    /// Maximum absolute difference against another vector of the same
    /// length, treating implicit zeros as 0.0. Used by tests comparing
    /// parallel results to the serial reference.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.n, other.n, "comparing vectors of different lengths");
        let a = self.to_dense();
        let b = other.to_dense();
        a.iter()
            .zip(&b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_parts_validates_order_and_bounds() {
        assert!(SparseVector::from_parts(4, vec![0, 2], vec![1.0, 2.0]).is_ok());
        assert!(SparseVector::from_parts(4, vec![2, 0], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::from_parts(4, vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::from_parts(4, vec![9], vec![1.0]).is_err());
        assert!(SparseVector::from_parts(4, vec![0], vec![1.0, 2.0]).is_err());
    }

    #[test]
    fn from_entries_sorts() {
        let v = SparseVector::from_entries(5, vec![(3, 1.0), (1, 2.0)]).unwrap();
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.values(), &[2.0, 1.0]);
    }

    #[test]
    fn from_entries_rejects_duplicates() {
        assert!(SparseVector::from_entries(5, vec![(3, 1.0), (3, 2.0)]).is_err());
    }

    #[test]
    fn replace_parts_swaps_buffers_and_validates() {
        let mut v = SparseVector::from_parts(4, vec![0, 2], vec![1.0, 2.0]).unwrap();
        let (old_i, old_v) = v.replace_parts(6, vec![1, 5], vec![3.0, 4.0]).unwrap();
        assert_eq!(old_i, vec![0, 2]);
        assert_eq!(old_v, vec![1.0, 2.0]);
        assert_eq!(v.len(), 6);
        assert_eq!(v.indices(), &[1, 5]);
        // Invalid replacement leaves the vector untouched.
        assert!(v.replace_parts(6, vec![5, 1], vec![0.0, 0.0]).is_err());
        assert_eq!(v.indices(), &[1, 5]);
    }

    #[test]
    fn dense_roundtrip() {
        let dense = vec![0.0, 1.5, 0.0, -2.0];
        let v = SparseVector::from_dense(&dense);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(), dense);
    }

    #[test]
    fn get_distinguishes_explicit_entries() {
        let v = SparseVector::from_parts(4, vec![1, 3], vec![5.0, 6.0]).unwrap();
        assert_eq!(v.get(1), Some(5.0));
        assert_eq!(v.get(0), None);
    }

    #[test]
    fn sparsity_matches_definition() {
        let v = SparseVector::from_parts(100, vec![3, 50], vec![1.0, 1.0]).unwrap();
        assert!((v.sparsity() - 0.02).abs() < 1e-15);
        let z = SparseVector::<f64>::zeros(0);
        assert_eq!(z.sparsity(), 0.0);
    }

    #[test]
    fn max_abs_diff_measures_worst_element() {
        let a = SparseVector::from_dense(&[1.0, 0.0, 2.0]);
        let b = SparseVector::from_dense(&[1.0, 0.5, 2.25]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-15);
    }
}
