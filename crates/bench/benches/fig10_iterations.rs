//! Figure 10 bench: the cost of a single BFS iteration under each of the
//! three directional kernels, on the figure's four matrices. The full
//! per-iteration traces (the figure's series) come from `repro fig10`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tsv_bench::workloads::bfs_source;
use tsv_core::bfs::{pull_csc, push_csc, push_csr, tile_bfs, BfsOptions, TileBfsGraph};
use tsv_core::exec::BfsEngine;
use tsv_core::tile::BitFrontier;
use tsv_sparse::suite::{by_name, SuiteScale};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for name in ["cant", "in-2004", "msdoor", "roadNet-TX"] {
        let e = by_name(name, SuiteScale::Tiny).expect("known matrix");
        let a = e.matrix;
        let src = bfs_source(&a);
        let g = TileBfsGraph::from_csr(&a).unwrap();
        let nt = g.bit().nt();
        let n = g.n();

        // Reconstruct a mid-traversal state: the frontier and mask at the
        // iteration where the frontier peaks.
        let full = tile_bfs(&g, src, BfsOptions::default()).unwrap();
        let peak_level = full
            .iterations
            .iter()
            .max_by_key(|it| it.frontier)
            .map_or(0, |it| it.level as i32 - 1);
        let mut x = BitFrontier::new(n, nt);
        let mut m = BitFrontier::new(n, nt);
        for (v, &l) in full.levels.iter().enumerate() {
            if l == peak_level {
                x.set(v);
            }
            if (0..=peak_level).contains(&l) {
                m.set(v);
            }
        }

        group.bench_with_input(BenchmarkId::new("Push-CSC", name), &name, |b, _| {
            b.iter(|| black_box(push_csc::push_csc(g.bit(), &x, &m)));
        });
        group.bench_with_input(BenchmarkId::new("Push-CSR", name), &name, |b, _| {
            b.iter(|| black_box(push_csr::push_csr(g.bit(), &x, &m)));
        });
        group.bench_with_input(BenchmarkId::new("Pull-CSC", name), &name, |b, _| {
            b.iter(|| black_box(pull_csc::pull_csc(g.bit(), &m)));
        });

        // Whole traversals: one-shot (scratch allocated per run) vs the
        // engine (scratch reused across runs).
        group.bench_with_input(BenchmarkId::new("TileBFS-one-shot", name), &name, |b, _| {
            b.iter(|| black_box(tile_bfs(&g, src, BfsOptions::default()).unwrap()));
        });
        let mut engine = BfsEngine::from_csr(&a).unwrap();
        group.bench_with_input(BenchmarkId::new("TileBFS-engine", name), &name, |b, _| {
            b.iter(|| black_box(engine.run(src).unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
