//! Banded matrices modelling FEM/structural problems.
//!
//! SuiteSparse matrices like `cant`, `ldoor`, `af_5_k101`, `msdoor` and
//! `audikw_1` concentrate their nonzeros in a band around the diagonal.
//! For the tiled format this means a small number of densely filled tiles —
//! exactly the regime where the paper reports TileSpMSpV/TileBFS win most.

use crate::coo::CooMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a symmetric banded matrix of order `n`.
///
/// Each entry `(i, j)` with `|i - j| <= half_bandwidth` is present with
/// probability `fill`, and the diagonal is always present; values are in
/// `(0, 1]`. `fill = 1.0` gives a fully dense band.
pub fn banded(n: usize, half_bandwidth: usize, fill: f64, seed: u64) -> CooMatrix<f64> {
    assert!(n > 0, "order must be positive");
    assert!((0.0..=1.0).contains(&fill), "fill must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let est = n * (half_bandwidth * 2 + 1).min(n);
    let mut m = CooMatrix::with_capacity(n, n, (est as f64 * fill) as usize + n);
    for i in 0..n {
        m.push(i, i, 1.0 - rng.random::<f64>());
        let hi = (i + half_bandwidth).min(n - 1);
        for j in (i + 1)..=hi {
            if fill >= 1.0 || rng.random::<f64>() < fill {
                let v = 1.0 - rng.random::<f64>();
                m.push(i, j, v);
                m.push(j, i, v);
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_stay_in_band() {
        let m = banded(100, 5, 0.8, 1);
        for (r, c, _) in m.iter() {
            assert!(r.abs_diff(c) <= 5);
        }
    }

    #[test]
    fn full_fill_gives_dense_band() {
        let m = banded(20, 2, 1.0, 1).to_csr();
        for i in 0..20usize {
            for j in i.saturating_sub(2)..=(i + 2).min(19) {
                assert!(m.get(i, j).is_some(), "missing ({i},{j})");
            }
        }
    }

    #[test]
    fn result_is_symmetric() {
        let m = banded(64, 4, 0.5, 9).to_csr();
        assert!(m.is_symmetric());
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(banded(50, 3, 0.5, 5), banded(50, 3, 0.5, 5));
        assert_ne!(banded(50, 3, 0.5, 5), banded(50, 3, 0.5, 6));
    }

    #[test]
    fn diagonal_always_present() {
        let m = banded(40, 3, 0.0, 2).to_csr();
        assert_eq!(m.nnz(), 40);
        for i in 0..40 {
            assert!(m.get(i, i).is_some());
        }
    }
}
