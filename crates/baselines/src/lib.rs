//! Comparator implementations for the TileSpMSpV evaluation (§4.1).
//!
//! Every algorithm the paper measures against is implemented here on the
//! same SIMT substrate as TileSpMSpV/TileBFS, so comparisons reflect the
//! algorithms rather than the harness:
//!
//! * [`tilespmv`] — TileSpMV (Niu et al., IPDPS '21): the same tiled
//!   storage, but a dense-vector SpMV that must touch every stored tile.
//! * [`bsr`] — cuSPARSE `bsrmv` stand-in: Block Sparse Row with dense
//!   `nt × nt` blocks, padding every non-empty block with zeros.
//! * [`combblas`] — the SpMSpV-bucket algorithm of CombBLAS (Azad & Buluç,
//!   IPDPS '17): column gather into row-range buckets, then per-bucket
//!   merge.
//! * [`gunrock`] — Gunrock-style BFS: frontier-queue advance/filter with
//!   Beamer direction switching.
//! * [`gswitch`] — GSwitch-style BFS: per-iteration strategy selection
//!   among sparse push, dense push and pull, driven by a cost model.
//! * [`enterprise`] — Enterprise-style BFS: out-degree-classified frontier
//!   bins with per-bin granularity, plus direction switching.

#![forbid(unsafe_code)]

pub mod bfs_common;
pub mod bsr;
pub mod combblas;
pub mod enterprise;
pub mod gswitch;
pub mod gunrock;
pub mod tilespmv;

pub use bfs_common::BaselineBfsResult;
pub use bsr::BsrMatrix;
pub use combblas::bucket_spmspv;
pub use enterprise::enterprise_bfs;
pub use gswitch::gswitch_bfs;
pub use gunrock::gunrock_bfs;
pub use tilespmv::{tile_spmv, tile_spmv_into};
